"""Shared fixtures: the paper's salary table and small synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Colarm
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.dataset.salary import salary_dataset
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable


@pytest.fixture(scope="session")
def salary() -> RelationalTable:
    return salary_dataset()


@pytest.fixture(scope="session")
def salary_index(salary) -> MIPIndex:
    # Primary 0.15 covers every query used in the tests (floor condition).
    return build_mip_index(salary, primary_support=0.15)


@pytest.fixture(scope="session")
def salary_engine(salary) -> Colarm:
    return Colarm(salary, primary_support=0.15)


def make_random_table(
    seed: int, n_records: int = 60, cardinalities: tuple[int, ...] = (3, 2, 4, 3)
) -> RelationalTable:
    """A small random relational table for brute-force comparisons."""
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, card, size=n_records) for card in cardinalities]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(card)))
        for i, card in enumerate(cardinalities)
    )
    return RelationalTable(Schema(attrs), data)


@pytest.fixture()
def random_table() -> RelationalTable:
    return make_random_table(seed=42)
