"""Interestingness measures: hand-computed values and invariants."""

import math

import pytest

from repro.errors import DataError
from repro.itemsets.measures import (
    RuleStats,
    all_confidence,
    conviction,
    cosine,
    evaluate_all,
    imbalance_ratio,
    jaccard,
    kulczynski,
    leverage,
    lift,
    max_confidence,
)


@pytest.fixture()
def stats():
    # 100 records; X in 40, Y in 30, XY in 20.
    return RuleStats(n=100, n_xy=20, n_x=40, n_y=30)


def test_support_confidence(stats):
    assert stats.support == pytest.approx(0.2)
    assert stats.confidence == pytest.approx(0.5)


def test_lift(stats):
    assert lift(stats) == pytest.approx(20 * 100 / (40 * 30))


def test_lift_independence():
    s = RuleStats(n=100, n_xy=12, n_x=30, n_y=40)
    assert lift(s) == pytest.approx(1.0)


def test_leverage(stats):
    assert leverage(stats) == pytest.approx(0.2 - 0.4 * 0.3)


def test_conviction(stats):
    assert conviction(stats) == pytest.approx(0.4 * 0.7 / 0.2)


def test_conviction_perfect_rule():
    s = RuleStats(n=100, n_xy=40, n_x=40, n_y=50)
    assert conviction(s) == math.inf


def test_cosine(stats):
    assert cosine(stats) == pytest.approx(20 / math.sqrt(40 * 30))


def test_kulczynski(stats):
    assert kulczynski(stats) == pytest.approx(0.5 * (20 / 40 + 20 / 30))


def test_max_and_all_confidence(stats):
    assert max_confidence(stats) == pytest.approx(20 / 30)
    assert all_confidence(stats) == pytest.approx(20 / 40)


def test_jaccard(stats):
    assert jaccard(stats) == pytest.approx(20 / 50)


def test_imbalance_ratio(stats):
    assert imbalance_ratio(stats) == pytest.approx(10 / 50)


def test_null_invariance():
    """Null-invariant measures ignore records containing neither X nor Y."""
    base = RuleStats(n=100, n_xy=20, n_x=40, n_y=30)
    padded = RuleStats(n=100000, n_xy=20, n_x=40, n_y=30)
    for measure in (cosine, kulczynski, max_confidence, all_confidence, jaccard):
        assert measure(base) == pytest.approx(measure(padded)), measure.__name__
    # ... while lift and leverage are NOT null-invariant.
    assert lift(base) != pytest.approx(lift(padded))


def test_evaluate_all_keys(stats):
    result = evaluate_all(stats)
    assert set(result) == {
        "support", "confidence", "lift", "leverage", "conviction", "cosine",
        "kulczynski", "max_confidence", "all_confidence", "jaccard",
        "imbalance_ratio",
    }


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n=100, n_xy=50, n_x=40, n_y=60),   # n_xy > n_x
        dict(n=100, n_xy=10, n_x=400, n_y=30),  # marginal > n
        dict(n=0, n_xy=0, n_x=0, n_y=0),        # empty universe
    ],
)
def test_validation(kwargs):
    with pytest.raises(DataError):
        RuleStats(**kwargs)
