"""Rule generation: exactness vs brute force, confidence pruning, dedup."""

import itertools

import pytest

from repro.dataset.schema import Item
from repro.errors import DataError
from repro.itemsets.itemset import make_itemset
from repro.itemsets.rules import Rule, generate_rules, rules_from_itemsets
from tests.conftest import make_random_table


def table_support_fn(table):
    def fn(items):
        return table.support_count(items)
    return fn


def brute_force_rules(table, itemset, minconf):
    """Every antecedent split checked by direct counting."""
    n = len(itemset)
    total = table.support_count(itemset)
    out = set()
    for r in range(1, n):
        for antecedent in itertools.combinations(itemset, r):
            consequent = tuple(i for i in itemset if i not in antecedent)
            conf = total / table.support_count(antecedent)
            if conf >= minconf:
                out.add((tuple(antecedent), consequent))
    return out


@pytest.mark.parametrize("minconf", [0.0, 0.5, 0.8, 1.0])
def test_generate_rules_matches_brute_force(salary, minconf):
    itemsets = [
        make_itemset([salary.schema.item("Age", "20-30"),
                      salary.schema.item("Salary", "90K-120K")]),
        make_itemset([salary.schema.item("Location", "Seattle"),
                      salary.schema.item("Gender", "F"),
                      salary.schema.item("Salary", "90K-120K")]),
        make_itemset([salary.schema.item("Company", "Google"),
                      salary.schema.item("Location", "Boston"),
                      salary.schema.item("Age", "20-30"),
                      salary.schema.item("Salary", "90K-120K")]),
    ]
    fn = table_support_fn(salary)
    for itemset in itemsets:
        got = {(r.antecedent, r.consequent)
               for r in generate_rules(itemset, fn, salary.n_records, minconf)}
        assert got == brute_force_rules(salary, itemset, minconf)


def test_generate_rules_on_random_tables():
    for seed in range(3):
        table = make_random_table(seed, n_records=40)
        fn = table_support_fn(table)
        itemset = make_itemset([Item(0, 0), Item(1, 0), Item(2, 0)])
        if table.support_count(itemset) == 0:
            continue
        got = {(r.antecedent, r.consequent)
               for r in generate_rules(itemset, fn, table.n_records, 0.3)}
        assert got == brute_force_rules(table, itemset, 0.3)


def test_rule_stats_are_exact(salary):
    itemset = make_itemset([salary.schema.item("Age", "20-30"),
                            salary.schema.item("Salary", "90K-120K")])
    fn = table_support_fn(salary)
    rules = generate_rules(itemset, fn, salary.n_records, 0.0)
    for rule in rules:
        assert rule.support_count == salary.support_count(itemset)
        assert rule.support == pytest.approx(salary.support(itemset))
        assert rule.confidence == pytest.approx(
            salary.support_count(itemset)
            / salary.support_count(rule.antecedent)
        )
        assert rule.items == itemset


def test_singleton_itemset_yields_no_rules(salary):
    fn = table_support_fn(salary)
    itemset = make_itemset([salary.schema.item("Gender", "F")])
    assert generate_rules(itemset, fn, salary.n_records, 0.0) == []


def test_unsupported_itemset_yields_no_rules(salary):
    fn = table_support_fn(salary)
    itemset = make_itemset([salary.schema.item("Company", "Facebook"),
                            salary.schema.item("Location", "Boston")])
    assert salary.support_count(itemset) == 0
    assert generate_rules(itemset, fn, salary.n_records, 0.0) == []


def test_none_support_skips(salary):
    itemset = make_itemset([salary.schema.item("Age", "20-30"),
                            salary.schema.item("Salary", "90K-120K")])
    assert generate_rules(itemset, lambda items: None, 11, 0.5) == []


def test_bad_minconf_rejected(salary):
    fn = table_support_fn(salary)
    itemset = make_itemset([salary.schema.item("Age", "20-30"),
                            salary.schema.item("Salary", "90K-120K")])
    with pytest.raises(DataError):
        generate_rules(itemset, fn, salary.n_records, 1.5)


def test_rules_from_itemsets_filters_minsupp(salary):
    fn = table_support_fn(salary)
    itemsets = [
        make_itemset([salary.schema.item("Age", "20-30"),
                      salary.schema.item("Salary", "90K-120K")]),  # 5/11
        make_itemset([salary.schema.item("Age", "30-40"),
                      salary.schema.item("Salary", "90K-120K")]),  # 3/11
    ]
    rules = rules_from_itemsets(itemsets, fn, salary.n_records, 0.4, 0.0)
    assert all(r.items == itemsets[0] for r in rules)


def test_rules_from_itemsets_dedupes(salary):
    fn = table_support_fn(salary)
    itemset = make_itemset([salary.schema.item("Age", "20-30"),
                            salary.schema.item("Salary", "90K-120K")])
    rules = rules_from_itemsets([itemset, itemset], fn, salary.n_records,
                                0.1, 0.0)
    keys = [(r.antecedent, r.consequent) for r in rules]
    assert len(keys) == len(set(keys)) == 2


def test_render(salary):
    rule = Rule(
        antecedent=(salary.schema.item("Age", "20-30"),),
        consequent=(salary.schema.item("Salary", "90K-120K"),),
        support_count=5,
        support=5 / 11,
        confidence=5 / 6,
    )
    text = rule.render(salary.schema)
    assert "{Age=20-30} => {Salary=90K-120K}" in text
    assert "supp=0.455" in text
