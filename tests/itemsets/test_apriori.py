"""Apriori against hand-checked cases and brute-force enumeration."""

import itertools

import pytest

from repro import tidset as ts
from repro.dataset.schema import Item
from repro.errors import DataError
from repro.itemsets.apriori import apriori, min_count_for
from tests.conftest import make_random_table


def brute_force_frequent(table, minsupp, max_length=None):
    """Enumerate every itemset by exhaustive search (small tables only)."""
    min_count = min_count_for(minsupp, table.n_records)
    items = sorted(table.item_tidsets())
    out = {}
    max_k = max_length or table.n_attributes
    for k in range(1, max_k + 1):
        for combo in itertools.combinations(items, k):
            attrs = [i.attribute for i in combo]
            if len(set(attrs)) != len(attrs):
                continue
            mask = table.itemset_tidset(combo)
            if ts.count(mask) >= min_count:
                out[tuple(combo)] = mask
    return out


def test_min_count_for():
    assert min_count_for(0.5, 10) == 5
    assert min_count_for(0.45, 11) == 5  # ceil(4.95)
    assert min_count_for(0.0, 10) == 1   # empty support never frequent
    assert min_count_for(1.0, 7) == 7
    with pytest.raises(DataError):
        min_count_for(1.5, 10)


def test_apriori_salary_level1(salary):
    result = apriori(salary.item_tidsets(), salary.n_records, 0.5)
    singletons = [f for f in result if len(f.items) == 1]
    # Items with count >= 6/11: Gender=F (7), Age=20-30 (6), Salary=90K-120K (8)
    assert len(singletons) == 3


def test_apriori_matches_brute_force(salary):
    for minsupp in (0.2, 0.35, 0.5):
        expected = brute_force_frequent(salary, minsupp)
        got = {f.items: f.tidset for f in
               apriori(salary.item_tidsets(), salary.n_records, minsupp)}
        assert got == expected, minsupp


def test_apriori_on_random_tables():
    for seed in range(3):
        table = make_random_table(seed, n_records=40)
        expected = brute_force_frequent(table, 0.2)
        got = {f.items: f.tidset for f in
               apriori(table.item_tidsets(), table.n_records, 0.2)}
        assert got == expected


def test_apriori_max_length(salary):
    result = apriori(salary.item_tidsets(), salary.n_records, 0.2, max_length=2)
    assert max(len(f.items) for f in result) == 2
    expected = brute_force_frequent(salary, 0.2, max_length=2)
    assert {f.items for f in result} == set(expected)


def test_apriori_output_is_sorted(salary):
    result = apriori(salary.item_tidsets(), salary.n_records, 0.3)
    keys = [(len(f.items), f.items) for f in result]
    assert keys == sorted(keys)


def test_apriori_respects_relational_constraint(salary):
    result = apriori(salary.item_tidsets(), salary.n_records, 0.1)
    for f in result:
        attrs = [i.attribute for i in f.items]
        assert len(set(attrs)) == len(attrs)


def test_apriori_support_counts_are_exact(salary):
    for f in apriori(salary.item_tidsets(), salary.n_records, 0.3):
        assert f.support_count == salary.support_count(f.items)
        assert f.support(salary.n_records) == pytest.approx(
            salary.support(f.items)
        )


def test_apriori_nothing_frequent():
    table = make_random_table(1, n_records=30)
    result = apriori(table.item_tidsets(), table.n_records, 1.0)
    # Only items present in every record can qualify (usually none).
    for f in result:
        assert f.support_count == table.n_records


def test_frequent_itemset_support_on_empty_universe():
    from repro.itemsets.apriori import FrequentItemset

    f = FrequentItemset(items=(Item(0, 0),), tidset=ts.EMPTY)
    assert f.support(0) == 0.0
