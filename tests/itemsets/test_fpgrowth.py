"""FP-Growth must agree exactly with Apriori/Eclat."""

import pytest

from repro.itemsets.apriori import apriori
from repro.itemsets.fpgrowth import fpgrowth
from tests.conftest import make_random_table


def assert_same(table, minsupp, max_length=None):
    a = apriori(table.item_tidsets(), table.n_records, minsupp, max_length)
    f = fpgrowth(table.item_tidsets(), table.n_records, minsupp, max_length)
    assert [(x.items, x.tidset) for x in a] == [(x.items, x.tidset) for x in f]


def test_fpgrowth_equals_apriori_on_salary(salary):
    for minsupp in (0.15, 0.3, 0.5, 0.8):
        assert_same(salary, minsupp)


def test_fpgrowth_on_random_tables():
    for seed in range(5):
        table = make_random_table(seed, n_records=50)
        assert_same(table, 0.2)


def test_fpgrowth_low_threshold():
    table = make_random_table(9, n_records=25, cardinalities=(2, 3, 2))
    assert_same(table, 0.05)


def test_fpgrowth_max_length(salary):
    assert_same(salary, 0.2, max_length=2)
    assert_same(salary, 0.2, max_length=1)


def test_fpgrowth_high_threshold_empty(salary):
    assert fpgrowth(salary.item_tidsets(), salary.n_records, 0.99) == []


@pytest.mark.parametrize("minsupp", [0.1, 0.4])
def test_fpgrowth_supports_are_exact(salary, minsupp):
    for f in fpgrowth(salary.item_tidsets(), salary.n_records, minsupp):
        assert f.support_count == salary.support_count(f.items)
