"""Closed IT-tree: closure lookup, levels, local support counts."""

import pytest

from repro import tidset as ts
from repro.errors import IndexError_
from repro.itemsets.apriori import apriori
from repro.itemsets.charm import charm
from repro.itemsets.ittree import ClosedITTree
from tests.conftest import make_random_table


@pytest.fixture()
def salary_tree(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.15)
    return ClosedITTree(closed), closed


def test_len_and_iteration(salary_tree):
    tree, closed = salary_tree
    assert len(tree) == len(closed)
    assert list(tree) == list(closed)


def test_levels_follow_lemma_4_3(salary_tree):
    """Lemma 4.3: an itemset's level equals its number of singleton items."""
    tree, closed = salary_tree
    levels = tree.levels()
    assert sum(levels.values()) == len(closed)
    for level, members in levels.items():
        assert len(tree.at_level(level)) == members
        assert all(c.length == level for c in tree.at_level(level))
    assert tree.height == max(c.length for c in closed)


def test_get_exact(salary_tree):
    tree, closed = salary_tree
    for cfi in closed:
        assert tree.get(cfi.items) is cfi


def test_closure_of_every_frequent_itemset(salary):
    """closure lookup returns the exact tidset of any floor-covered itemset."""
    closed = charm(salary.item_tidsets(), salary.n_records, 0.15)
    tree = ClosedITTree(closed)
    for f in apriori(salary.item_tidsets(), salary.n_records, 0.15):
        closure = tree.closure_of(f.items)
        assert closure is not None
        assert closure.tidset == f.tidset
        assert set(f.items) <= set(closure.items)
        assert tree.support_count_of(f.items) == f.support_count


def test_closure_below_floor_is_none(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.4)
    tree = ClosedITTree(closed)
    # An itemset with support below the floor has no stored superset.
    rare = (salary.schema.item("Company", "Facebook"),
            salary.schema.item("Age", "20-30"))
    assert salary.support(rare) < 0.4
    assert tree.closure_of(rare) is None
    assert tree.support_count_of(rare) is None
    assert tree.local_support_count(rare, ts.full(11)) is None


def test_closure_of_empty_is_none(salary_tree):
    tree, _ = salary_tree
    assert tree.closure_of(()) is None


def test_local_support_count(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.15)
    tree = ClosedITTree(closed)
    loc = salary.schema.attribute_index("Location")
    seattle = salary.schema.attributes[loc].value_index("Seattle")
    dq = salary.tids_matching({loc: {seattle}})
    a1 = salary.schema.item("Age", "30-40")
    s2 = salary.schema.item("Salary", "90K-120K")
    assert tree.local_support_count((a1, s2), dq) == 3


def test_rejects_duplicate_itemsets(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.3)
    with pytest.raises(IndexError_):
        ClosedITTree(list(closed) + [closed[0]])


def test_random_tables_closure_consistency():
    for seed in range(3):
        table = make_random_table(seed, n_records=40)
        closed = charm(table.item_tidsets(), table.n_records, 0.2)
        tree = ClosedITTree(closed)
        for f in apriori(table.item_tidsets(), table.n_records, 0.2):
            closure = tree.closure_of(f.items)
            assert closure is not None and closure.tidset == f.tidset


def test_empty_tree():
    from repro.dataset.schema import Item

    tree = ClosedITTree([])
    assert len(tree) == 0
    assert tree.height == 0
    assert tree.levels() == {}
    assert tree.closure_of([Item(0, 0)]) is None
