"""Eclat must agree exactly with Apriori (same contract, same output)."""

from repro.itemsets.apriori import apriori
from repro.itemsets.eclat import eclat
from tests.conftest import make_random_table


def assert_same(table, minsupp, max_length=None):
    a = apriori(table.item_tidsets(), table.n_records, minsupp, max_length)
    e = eclat(table.item_tidsets(), table.n_records, minsupp, max_length)
    assert [(f.items, f.tidset) for f in a] == [(f.items, f.tidset) for f in e]


def test_eclat_equals_apriori_on_salary(salary):
    for minsupp in (0.15, 0.3, 0.5, 0.8):
        assert_same(salary, minsupp)


def test_eclat_equals_apriori_on_random_tables():
    for seed in range(5):
        table = make_random_table(seed, n_records=50)
        assert_same(table, 0.2)


def test_eclat_max_length(salary):
    assert_same(salary, 0.2, max_length=2)
    assert_same(salary, 0.2, max_length=1)


def test_eclat_high_threshold_empty(salary):
    assert eclat(salary.item_tidsets(), salary.n_records, 0.99) == []
