"""CHARM: closedness, completeness, exact closures (vs brute force)."""

from repro import tidset as ts
from repro.itemsets.apriori import apriori, min_count_for
from repro.itemsets.charm import charm
from repro.itemsets.itemset import is_subset_itemset
from tests.conftest import make_random_table


def brute_force_closure(table, tidset):
    """The closure of a tidset: all items shared by every record in it."""
    items = []
    for item, mask in table.item_tidsets().items():
        if ts.is_subset(tidset, mask):
            items.append(item)
    return tuple(sorted(items))


def check_charm(table, minsupp):
    closed = charm(table.item_tidsets(), table.n_records, minsupp)
    frequent = apriori(table.item_tidsets(), table.n_records, minsupp)
    min_count = min_count_for(minsupp, table.n_records)

    # 1. Every output is frequent and its tidset is exact.
    for cfi in closed:
        assert cfi.support_count >= min_count
        assert cfi.tidset == table.itemset_tidset(cfi.items)

    # 2. Every output is CLOSED: it equals the closure of its tidset.
    for cfi in closed:
        assert cfi.items == brute_force_closure(table, cfi.tidset)

    # 3. Completeness: one closed set per distinct frequent tidset, and it
    #    covers every frequent itemset with that tidset.
    by_tidset = {c.tidset: c for c in closed}
    assert len(by_tidset) == len(closed)
    assert set(by_tidset) == {f.tidset for f in frequent}
    for f in frequent:
        assert is_subset_itemset(f.items, by_tidset[f.tidset].items)

    return closed


def test_charm_on_salary(salary):
    for minsupp in (0.15, 0.3, 0.5):
        check_charm(salary, minsupp)


def test_charm_on_random_tables():
    for seed in range(5):
        table = make_random_table(seed, n_records=50)
        check_charm(table, 0.2)


def test_charm_smaller_than_frequent(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.2)
    frequent = apriori(salary.item_tidsets(), salary.n_records, 0.2)
    assert len(closed) < len(frequent)


def test_charm_output_sorted(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.2)
    keys = [(c.length, c.items) for c in closed]
    assert keys == sorted(keys)


def test_charm_high_threshold():
    table = make_random_table(2, n_records=30)
    assert charm(table.item_tidsets(), table.n_records, 0.999) == []


def test_closed_itemset_properties(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.3)
    cfi = closed[0]
    assert cfi.length == len(cfi.items)
    assert cfi.support(salary.n_records) == cfi.support_count / 11
    assert cfi.support(0) == 0.0
