"""Bitmask tidsets: all operations plus error paths."""

import pytest

from repro import tidset as ts


def test_empty():
    assert ts.EMPTY == 0
    assert ts.count(ts.EMPTY) == 0
    assert ts.to_list(ts.EMPTY) == []


def test_from_tids_and_back():
    mask = ts.from_tids([5, 1, 3, 1])
    assert ts.to_list(mask) == [1, 3, 5]
    assert ts.count(mask) == 3


def test_from_tids_rejects_negative():
    with pytest.raises(ValueError):
        ts.from_tids([-1])


def test_full():
    assert ts.to_list(ts.full(4)) == [0, 1, 2, 3]
    assert ts.full(0) == ts.EMPTY
    with pytest.raises(ValueError):
        ts.full(-1)


def test_singleton():
    assert ts.to_list(ts.singleton(7)) == [7]
    with pytest.raises(ValueError):
        ts.singleton(-2)


def test_contains():
    mask = ts.from_tids([0, 64, 100])
    assert ts.contains(mask, 64)
    assert not ts.contains(mask, 63)


def test_set_algebra():
    a = ts.from_tids([1, 2, 3])
    b = ts.from_tids([3, 4])
    assert ts.to_list(ts.intersect(a, b)) == [3]
    assert ts.to_list(ts.union(a, b)) == [1, 2, 3, 4]
    assert ts.to_list(ts.difference(a, b)) == [1, 2]


def test_is_subset():
    a = ts.from_tids([1, 3])
    b = ts.from_tids([1, 2, 3])
    assert ts.is_subset(a, b)
    assert not ts.is_subset(b, a)
    assert ts.is_subset(ts.EMPTY, a)


def test_iter_tids_order_and_large():
    mask = ts.from_tids([200, 0, 63, 64])
    assert list(ts.iter_tids(mask)) == [0, 63, 64, 200]


def test_iter_is_lazy_over_members_only():
    # A single very high bit iterates in one step.
    mask = ts.singleton(10_000)
    assert list(ts.iter_tids(mask)) == [10_000]
