"""dCHARM must produce byte-identical output to tidset CHARM."""

from repro.itemsets.charm import charm
from repro.itemsets.dcharm import dcharm
from tests.conftest import make_random_table


def assert_same(table, minsupp):
    a = charm(table.item_tidsets(), table.n_records, minsupp)
    d = dcharm(table.item_tidsets(), table.n_records, minsupp)
    assert [(c.items, c.tidset) for c in a] == [(c.items, c.tidset) for c in d]


def test_dcharm_equals_charm_on_salary(salary):
    for minsupp in (0.15, 0.3, 0.5, 0.8):
        assert_same(salary, minsupp)


def test_dcharm_on_random_tables():
    for seed in range(6):
        table = make_random_table(seed, n_records=60)
        assert_same(table, 0.15)


def test_dcharm_on_dense_data():
    """Diffsets exist for dense data — exercise that regime explicitly."""
    from repro.dataset.synthetic import chess_like

    table = chess_like(n_records=300, seed=3)
    assert_same(table, 0.3)
    assert_same(table, 0.15)


def test_dcharm_high_threshold_empty(salary):
    assert dcharm(salary.item_tidsets(), salary.n_records, 0.99) == []


def test_dcharm_supports_are_exact(salary):
    for cfi in dcharm(salary.item_tidsets(), salary.n_records, 0.2):
        assert cfi.support_count == salary.support_count(cfi.items)
