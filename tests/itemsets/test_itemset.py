"""Itemset canonicalization and the one-value-per-attribute invariant."""

import pytest

from repro.dataset.schema import Item
from repro.errors import DataError
from repro.itemsets.itemset import (
    attributes_of,
    is_subset_itemset,
    make_itemset,
    proper_subsets,
    union_itemsets,
)


def test_make_itemset_sorts_and_dedupes():
    items = [Item(1, 0), Item(0, 2), Item(1, 0)]
    assert make_itemset(items) == (Item(0, 2), Item(1, 0))


def test_make_itemset_rejects_conflicting_values():
    with pytest.raises(DataError):
        make_itemset([Item(0, 1), Item(0, 2)])


def test_empty_itemset():
    assert make_itemset([]) == ()


def test_union():
    a = make_itemset([Item(0, 1)])
    b = make_itemset([Item(1, 0)])
    assert union_itemsets(a, b) == (Item(0, 1), Item(1, 0))
    with pytest.raises(DataError):
        union_itemsets(a, make_itemset([Item(0, 2)]))


def test_subset_relation():
    small = make_itemset([Item(0, 1)])
    big = make_itemset([Item(0, 1), Item(2, 0)])
    assert is_subset_itemset(small, big)
    assert not is_subset_itemset(big, small)
    assert is_subset_itemset((), small)


def test_attributes_of():
    itemset = make_itemset([Item(0, 1), Item(3, 2)])
    assert attributes_of(itemset) == frozenset({0, 3})


def test_proper_subsets_counts():
    itemset = make_itemset([Item(0, 0), Item(1, 0), Item(2, 0)])
    subsets = proper_subsets(itemset)
    assert len(subsets) == 6  # 2^3 - 2
    assert all(0 < len(s) < 3 for s in subsets)
    # ordered by length then lexicographically
    assert [len(s) for s in subsets] == [1, 1, 1, 2, 2, 2]


def test_proper_subsets_of_pair():
    itemset = make_itemset([Item(0, 0), Item(1, 1)])
    assert proper_subsets(itemset) == [(Item(0, 0),), (Item(1, 1),)]
