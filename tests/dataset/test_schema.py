"""Attribute/Schema/Item behaviour and validation."""

import pytest

from repro.dataset.schema import Attribute, Item, Schema
from repro.errors import SchemaError


def test_attribute_basics():
    attr = Attribute("Age", ("20-30", "30-40"))
    assert attr.cardinality == 2
    assert attr.value_index("30-40") == 1


def test_attribute_rejects_empty_name():
    with pytest.raises(SchemaError):
        Attribute("", ("x",))


def test_attribute_rejects_no_values():
    with pytest.raises(SchemaError):
        Attribute("A", ())


def test_attribute_rejects_duplicate_values():
    with pytest.raises(SchemaError):
        Attribute("A", ("x", "x"))


def test_attribute_unknown_value_mentions_candidates():
    attr = Attribute("A", ("x", "y"))
    with pytest.raises(SchemaError, match="no value 'z'"):
        attr.value_index("z")


@pytest.fixture()
def schema():
    return Schema(
        (
            Attribute("Color", ("red", "green", "blue")),
            Attribute("Size", ("S", "M")),
        )
    )


def test_schema_shape(schema):
    assert schema.n_attributes == 2
    assert len(schema) == 2
    assert schema.names == ("Color", "Size")
    assert schema.cardinalities() == (3, 2)


def test_schema_rejects_duplicate_names():
    attr = Attribute("A", ("x",))
    with pytest.raises(SchemaError):
        Schema((attr, attr))


def test_schema_rejects_empty():
    with pytest.raises(SchemaError):
        Schema(())


def test_schema_lookup(schema):
    assert schema.attribute_index("Size") == 1
    assert schema.attribute("Size").name == "Size"
    assert schema.attribute(0).name == "Color"
    with pytest.raises(SchemaError):
        schema.attribute_index("Nope")


def test_item_construction(schema):
    assert schema.item("Color", "blue") == Item(0, 2)
    assert schema.item(1, 0) == Item(1, 0)
    with pytest.raises(SchemaError):
        schema.item("Color", 3)
    with pytest.raises(SchemaError):
        schema.item("Color", "purple")


def test_all_items(schema):
    items = schema.all_items()
    assert len(items) == 5
    assert items[0] == Item(0, 0)
    assert items[-1] == Item(1, 1)


def test_render(schema):
    item = schema.item("Size", "M")
    assert schema.render_item(item) == "Size=M"
    rendered = schema.render_itemset([schema.item("Size", "M"),
                                      schema.item("Color", "red")])
    assert rendered == "{Color=red, Size=M}"


def test_schema_equality_and_hash(schema):
    other = Schema(schema.attributes)
    assert schema == other
    assert hash(schema) == hash(other)
    assert schema != Schema((Attribute("X", ("a",)),))


def test_items_sort_by_attribute_then_value():
    assert sorted([Item(1, 0), Item(0, 2), Item(0, 1)]) == [
        Item(0, 1), Item(0, 2), Item(1, 0),
    ]
