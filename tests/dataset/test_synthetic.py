"""Synthetic benchmark generators: determinism, shape, planted locality."""

import numpy as np
import pytest

from repro import tidset as ts
from repro.dataset.synthetic import (
    LocalPattern,
    chess_like,
    mushroom_like,
    plant_local_pattern,
    pumsb_like,
    quest_like,
)
from repro.errors import DataError


@pytest.mark.parametrize(
    "generator", [chess_like, mushroom_like, pumsb_like, quest_like]
)
def test_deterministic_in_seed(generator):
    a = generator(seed=5)
    b = generator(seed=5)
    c = generator(seed=6)
    assert np.array_equal(a.data, b.data)
    assert not np.array_equal(a.data, c.data)


def test_chess_like_shape():
    table = chess_like(n_records=300, n_attributes=10)
    assert table.n_records == 300
    assert table.n_attributes == 10
    assert table.schema.attributes[0].cardinality == 4  # region


def test_chess_like_is_dense():
    """A dominant background value makes columns heavily skewed."""
    table = chess_like(n_records=500, plant_patterns=False)
    for ai in range(1, table.n_attributes):
        top = np.bincount(table.data[:, ai]).max()
        assert top >= 0.6 * table.n_records


def test_mushroom_like_bimodal_clusters():
    """Two signature clusters -> long itemsets exist alongside short ones."""
    from repro.itemsets.charm import charm

    table = mushroom_like(n_records=600, seed=11)
    closed = charm(table.item_tidsets(), table.n_records, 0.25)
    lengths = sorted({c.length for c in closed})
    assert lengths[0] <= 2
    assert lengths[-1] >= 5  # the long signature shows up


def test_pumsb_like_cfi_growth():
    """Closed-itemset count rises steeply as the threshold drops (Fig. 8)."""
    from repro.itemsets.charm import charm

    table = pumsb_like(n_records=1500, seed=13)
    counts = [
        len(charm(table.item_tidsets(), table.n_records, supp))
        for supp in (0.4, 0.2, 0.1)
    ]
    assert counts[0] < counts[1] < counts[2]
    assert counts[2] >= 5 * max(counts[0], 1)


def test_generators_validate_arguments():
    with pytest.raises(DataError):
        chess_like(n_attributes=2)
    with pytest.raises(DataError):
        mushroom_like(n_attributes=3)
    with pytest.raises(DataError):
        pumsb_like(n_attributes=2)
    with pytest.raises(DataError):
        quest_like(n_categories=1)


def test_plant_local_pattern_creates_locality():
    rng = np.random.default_rng(0)
    cards = (4, 3, 3)
    data = np.column_stack(
        [rng.integers(0, c, size=2000) for c in cards]
    ).astype(np.int32)
    pattern = LocalPattern(
        region_attr=0,
        region_values=frozenset({1}),
        pattern=((1, 2), (2, 0)),
        strength=0.9,
        dilution=0.7,
    )
    plant_local_pattern(data, cards, pattern, rng)
    in_region = data[:, 0] == 1
    joint = (data[:, 1] == 2) & (data[:, 2] == 0)
    local_rate = joint[in_region].mean()
    global_rate = joint[~in_region].mean()
    assert local_rate > 0.8
    assert global_rate < 0.3


def test_plant_local_pattern_rejects_empty():
    with pytest.raises(DataError):
        plant_local_pattern(
            np.zeros((1, 2), dtype=np.int32),
            (2, 2),
            LocalPattern(0, frozenset({0}), ()),
            np.random.default_rng(0),
        )


def test_quest_like_region_cross_sell():
    """Each region plants a high-high category pair association."""
    table = quest_like(n_records=2000, n_categories=8, seed=17)
    region_col = table.data[:, 0]
    for region in range(4):
        in_region = region_col == region
        a, b = 3 + 2 * region, 4 + 2 * region
        joint = (table.data[:, a] == 2) & (table.data[:, b] == 2)
        assert joint[in_region].mean() > 0.5, region
        assert joint[~in_region].mean() < 0.2, region


def test_quest_like_schema_labels():
    table = quest_like(n_records=50, n_categories=3)
    assert table.schema.names[:3] == ("region", "daytype", "segment")
    assert table.schema.attribute("cat0").values == ("none", "low", "high")
