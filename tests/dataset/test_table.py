"""RelationalTable: validation, tidsets, selections, projections."""

import numpy as np
import pytest

from repro import tidset as ts
from repro.dataset.schema import Attribute, Item, Schema
from repro.dataset.table import RelationalTable, from_labeled_records
from repro.errors import DataError, SchemaError


@pytest.fixture()
def small():
    attrs = (
        Attribute("A", ("a0", "a1")),
        Attribute("B", ("b0", "b1", "b2")),
    )
    data = np.array([[0, 0], [0, 1], [1, 1], [1, 2]], dtype=np.int32)
    return RelationalTable(Schema(attrs), data)


def test_shape(small):
    assert small.n_records == 4
    assert small.n_attributes == 2
    assert len(small) == 4


def test_rejects_wrong_width():
    schema = Schema((Attribute("A", ("x",)),))
    with pytest.raises(DataError):
        RelationalTable(schema, np.zeros((2, 2), dtype=np.int32))


def test_rejects_out_of_domain():
    schema = Schema((Attribute("A", ("x", "y")),))
    with pytest.raises(DataError):
        RelationalTable(schema, np.array([[2]], dtype=np.int32))
    with pytest.raises(DataError):
        RelationalTable(schema, np.array([[-1]], dtype=np.int32))


def test_rejects_float_data():
    schema = Schema((Attribute("A", ("x", "y")),))
    with pytest.raises(DataError):
        RelationalTable(schema, np.array([[0.5]]))


def test_data_is_immutable(small):
    with pytest.raises(ValueError):
        small.data[0, 0] = 1


def test_record_access(small):
    assert small.record(1) == (Item(0, 0), Item(1, 1))
    assert small.record_labels(3) == {"A": "a1", "B": "b2"}


def test_item_tidsets(small):
    masks = small.item_tidsets()
    assert ts.to_list(masks[Item(0, 0)]) == [0, 1]
    assert ts.to_list(masks[Item(1, 1)]) == [1, 2]
    # never-occurring items are simply absent
    assert small.item_tidset(Item(1, 0)) == ts.from_tids([0])


def test_itemset_tidset_and_support(small):
    items = [Item(0, 1), Item(1, 1)]
    assert ts.to_list(small.itemset_tidset(items)) == [2]
    assert small.support_count(items) == 1
    assert small.support(items) == pytest.approx(0.25)
    # the empty itemset is supported everywhere
    assert small.support_count([]) == 4


def test_tids_matching(small):
    mask = small.tids_matching({0: {1}})
    assert ts.to_list(mask) == [2, 3]
    mask = small.tids_matching({0: {1}, 1: {1, 2}})
    assert ts.to_list(mask) == [2, 3]
    mask = small.tids_matching({0: {0}, 1: {2}})
    assert mask == ts.EMPTY


def test_tids_matching_bad_attribute(small):
    with pytest.raises(SchemaError):
        small.tids_matching({7: {0}})


def test_subset(small):
    sub = small.subset(ts.from_tids([1, 3]))
    assert sub.n_records == 2
    assert sub.record_labels(0) == {"A": "a0", "B": "b1"}
    assert sub.record_labels(1) == {"A": "a1", "B": "b2"}
    assert sub.schema == small.schema


def test_project(small):
    proj = small.project([1])
    assert proj.n_attributes == 1
    assert proj.schema.names == ("B",)
    assert proj.record(0) == (Item(0, 0),)


def test_transactions_roundtrip(small):
    txns = small.to_transactions()
    assert txns[0] == (0, 2)  # offsets: A at 0, B at 2
    assert txns[3] == (1, 4)
    assert small.item_offsets() == (0, 2)


def test_from_labeled_records():
    attrs = (Attribute("X", ("p", "q")),)
    table = from_labeled_records(attrs, [("p",), ("q",), ("p",)])
    assert table.n_records == 3
    assert table.data[:, 0].tolist() == [0, 1, 0]


def test_from_labeled_records_rejects_bad_width():
    attrs = (Attribute("X", ("p",)),)
    with pytest.raises(DataError):
        from_labeled_records(attrs, [("p", "extra")])


def test_from_labeled_records_rejects_unknown_label():
    attrs = (Attribute("X", ("p",)),)
    with pytest.raises(SchemaError):
        from_labeled_records(attrs, [("zzz",)])


def test_empty_table_supports_nothing():
    schema = Schema((Attribute("A", ("x",)),))
    table = RelationalTable(schema, np.zeros((0, 1), dtype=np.int32))
    assert table.support([Item(0, 0)]) == 0.0
    assert table.item_tidsets() == {}
