"""CSV / FIMI loaders and the transactional-to-relational conversion."""

import pytest

from repro.dataset.loaders import (
    load_csv,
    load_fimi,
    save_csv,
    save_fimi,
    transactions_to_table,
)
from repro.dataset.salary import salary_dataset
from repro.errors import DataError


def test_csv_roundtrip(tmp_path, salary):
    path = tmp_path / "salary.csv"
    save_csv(salary, path)
    loaded = load_csv(
        path,
        value_order={
            "Age": ("20-30", "30-40", "40-50"),
            "Salary": ("30K-60K", "60K-90K", "90K-120K", "120K-150K"),
        },
    )
    assert loaded.n_records == salary.n_records
    for tid in range(salary.n_records):
        assert loaded.record_labels(tid) == salary.record_labels(tid)


def test_csv_column_order_is_first_seen(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("X,Y\nb,1\na,2\nb,1\n")
    table = load_csv(path)
    assert table.schema.attribute("X").values == ("b", "a")


def test_csv_value_order_must_cover_labels(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("X\nfoo\nbar\n")
    with pytest.raises(DataError):
        load_csv(path, value_order={"X": ("foo",)})


def test_csv_empty_file(tmp_path):
    path = tmp_path / "e.csv"
    path.write_text("")
    with pytest.raises(DataError):
        load_csv(path)


def test_csv_header_only(tmp_path):
    path = tmp_path / "h.csv"
    path.write_text("A,B\n")
    with pytest.raises(DataError):
        load_csv(path)


def test_fimi_roundtrip(tmp_path):
    txns = [(1, 3, 5), (2, 3), (1,)]
    path = tmp_path / "t.dat"
    save_fimi(txns, path)
    assert load_fimi(path) == txns


def test_fimi_dedupes_and_sorts(tmp_path):
    path = tmp_path / "t.dat"
    path.write_text("5 3 3 1\n\n2\n")
    assert load_fimi(path) == [(1, 3, 5), (2,)]


def test_fimi_rejects_garbage(tmp_path):
    path = tmp_path / "t.dat"
    path.write_text("1 two 3\n")
    with pytest.raises(DataError):
        load_fimi(path)


def test_fimi_rejects_empty(tmp_path):
    path = tmp_path / "t.dat"
    path.write_text("\n\n")
    with pytest.raises(DataError):
        load_fimi(path)


def test_transactions_to_table():
    mapping = {1: "A", 2: "A", 3: "B", 4: "B"}
    txns = [(1, 3), (2, 4), (1, 4)]
    table = transactions_to_table(txns, mapping)
    assert table.schema.names == ("A", "B")
    assert table.n_records == 3
    assert table.record_labels(0) == {"A": "1", "B": "3"}
    assert table.record_labels(2) == {"A": "1", "B": "4"}


def test_transactions_to_table_missing_attribute():
    with pytest.raises(DataError, match="missing attributes"):
        transactions_to_table([(1,)], {1: "A", 2: "B"})


def test_transactions_to_table_double_assignment():
    with pytest.raises(DataError, match="assigned twice"):
        transactions_to_table([(1, 2)], {1: "A", 2: "A"})


def test_transactions_to_table_unmapped_item():
    with pytest.raises(DataError, match="unmapped"):
        transactions_to_table([(9,)], {1: "A"})
