"""Discretization: bin edges, application, labels, validation."""

import numpy as np
import pytest

from repro.dataset.discretize import (
    apply_edges,
    discretize_numeric,
    equal_frequency_edges,
    equal_width_edges,
    interval_labels,
)
from repro.errors import DataError


def test_equal_width_edges():
    edges = equal_width_edges([0.0, 10.0], 5)
    assert np.allclose(edges, [0, 2, 4, 6, 8, 10])


def test_equal_width_degenerate_column():
    edges = equal_width_edges([3.0, 3.0, 3.0], 2)
    assert edges[0] < edges[-1]
    assert len(edges) == 3


def test_equal_frequency_balances_counts():
    values = np.arange(100, dtype=float)
    edges = equal_frequency_edges(values, 4)
    codes = apply_edges(values, edges)
    counts = np.bincount(codes)
    assert counts.min() >= 20  # roughly balanced quartiles


def test_equal_frequency_collapses_ties():
    edges = equal_frequency_edges([1.0] * 50 + [2.0] * 50, 10)
    assert len(edges) <= 3  # heavy ties collapse most quantiles


def test_apply_edges_boundaries():
    edges = np.array([0.0, 1.0, 2.0])
    codes = apply_edges([0.0, 0.99, 1.0, 2.0], edges)
    assert codes.tolist() == [0, 0, 1, 1]  # max value lands in last cell


def test_apply_edges_rejects_outside_span():
    with pytest.raises(DataError):
        apply_edges([5.0], np.array([0.0, 1.0]))


def test_apply_edges_rejects_non_increasing():
    with pytest.raises(DataError):
        apply_edges([0.5], np.array([0.0, 0.0, 1.0]))


def test_interval_labels():
    assert interval_labels(np.array([20.0, 30.0, 40.0])) == ("20-30", "30-40")


def test_discretize_numeric_roundtrip():
    values = [15.0, 25.0, 35.0, 45.0]
    attr, codes = discretize_numeric("Age", values, 3, method="width")
    assert attr.name == "Age"
    assert attr.cardinality == 3
    # Edges are 15/25/35/45; cells are half-open, so 25 lands in cell 1.
    assert codes.tolist() == [0, 1, 2, 2]


def test_discretize_numeric_frequency():
    attr, codes = discretize_numeric("X", list(range(30)), 3, method="frequency")
    assert attr.cardinality == 3
    assert np.bincount(codes).tolist() == [10, 10, 10]


def test_discretize_rejects_unknown_method():
    with pytest.raises(DataError):
        discretize_numeric("X", [1.0, 2.0], 2, method="kmeans")


@pytest.mark.parametrize("bad", [[], [float("nan")], [float("inf")]])
def test_rejects_bad_columns(bad):
    with pytest.raises(DataError):
        equal_width_edges(bad, 2)


def test_rejects_bad_bins():
    with pytest.raises(DataError):
        equal_width_edges([1.0, 2.0], 0)
