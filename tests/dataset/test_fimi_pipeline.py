"""End-to-end FIMI smoke test: a bundled ``.dat`` fixture through the
full pipeline — load, relational conversion, index build, one localized
query (all plans, plus a cached repeat).

The fixture (``fixtures/micro_chess.dat``) is a 60-transaction
chess-style dataset: every record carries exactly one item per
attribute, with item ids partitioned per attribute exactly like the
FIMI chess/mushroom encodings the experiment specs consume.
"""

from pathlib import Path

from repro import tidset as ts
from repro.core.engine import Colarm
from repro.core.plans import PlanKind
from repro.core.query import LocalizedQuery
from repro.dataset.loaders import load_fimi, save_fimi, transactions_to_table

FIXTURE = Path(__file__).parent / "fixtures" / "micro_chess.dat"
#: The fixture's item-id partition: one attribute per contiguous block.
ATTR_ITEMS = {"a0": (1, 2, 3), "a1": (4, 5, 6), "a2": (7, 8),
              "a3": (9, 10, 11)}


def attribute_map():
    return {
        item: name for name, items in ATTR_ITEMS.items() for item in items
    }


def test_fixture_roundtrips_through_save(tmp_path):
    txns = load_fimi(FIXTURE)
    assert len(txns) == 60
    path = tmp_path / "copy.dat"
    save_fimi(txns, path)
    assert load_fimi(path) == txns


def test_fixture_to_table_schema():
    table = transactions_to_table(load_fimi(FIXTURE), attribute_map())
    assert table.n_records == 60
    assert table.schema.names == ("a0", "a1", "a2", "a3")
    assert table.schema.attribute("a1").values == ("4", "5", "6")


def test_fixture_through_index_build_and_query():
    txns = load_fimi(FIXTURE)
    table = transactions_to_table(txns, attribute_map())
    engine = Colarm(table, primary_support=0.05)
    # Focal subset: records whose a2-item is 7 (attribute value index 0).
    query = LocalizedQuery({2: frozenset({0})}, 0.2, 0.6)
    dq = table.tids_matching(query.range_selections)
    dq_size = ts.count(dq)
    assert dq_size == sum(1 for t in txns if 7 in t)

    results = {k: engine.query(query, plan=k) for k in PlanKind}
    key = lambda rs: sorted(
        (r.antecedent, r.consequent, r.support_count) for r in rs
    )
    base = key(results[PlanKind.SEV].rules)
    assert base  # the fixture's a0->a1 correlation yields rules
    for kind in (PlanKind.SVS, PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV):
        assert key(results[kind].rules) == base, kind
    # Every emitted support is exact against direct counting.
    for rule in results[PlanKind.SEV].rules:
        assert rule.support_count == ts.count(
            table.itemset_tidset(rule.items) & dq
        )

    # The cache tier composes with the pipeline: a repeat serves the
    # same rules without re-mining.
    engine.enable_cache(calibrate=False)
    first = engine.query(query)
    repeat = engine.query(query)
    assert repeat.cached and repeat.rules == first.rules
