"""The bundled FIMI fixture end-to-end through the cluster path.

``micro_chess.dat`` -> relational table -> writer engine -> published
snapshot -> two mmap-shared workers -> a mixed query/ingest stream, with
every response checked byte-identical against a cold single-engine
reference at the same data state.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.cluster import ClusterConfig, ClusterService
from repro.core.engine import Colarm
from repro.core.query import LocalizedQuery
from repro.dataset.loaders import load_fimi, transactions_to_table
from repro.serving import ServingConfig

FIXTURE = Path(__file__).parent / "fixtures" / "micro_chess.dat"
ATTR_ITEMS = {"a0": (1, 2, 3), "a1": (4, 5, 6), "a2": (7, 8),
              "a3": (9, 10, 11)}

QUERY_A2 = LocalizedQuery({2: frozenset({0})}, 0.2, 0.6)
QUERY_A0 = LocalizedQuery({0: frozenset({0, 1})}, 0.25, 0.6)
QUERY_A3 = LocalizedQuery({3: frozenset({1, 2})}, 0.2, 0.5)
STREAM = (QUERY_A2, QUERY_A0, QUERY_A3)


def fixture_table():
    amap = {
        item: name for name, items in ATTR_ITEMS.items() for item in items
    }
    return transactions_to_table(load_fimi(FIXTURE), amap)


def test_micro_chess_through_the_cluster(tmp_path):
    table = fixture_table()
    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)

    async def main():
        config = ClusterConfig(workers=2, serving=ServingConfig(workers=2))
        async with ClusterService(engine, tmp_path, config) as cluster:
            # Phase 1: queries over the published fixture.
            cold = Colarm(fixture_table(), primary_support=0.05)
            for query in STREAM * 2:
                res = await cluster.submit(query)
                assert res.rules == cold.query(query).rules

            # Phase 2: ingest a batch (recycled fixture rows), publish,
            # and serve the stream again — now against the grown data.
            new_rows = table.data[:10].tolist()
            await cluster.ingest(new_rows, publish=True)
            grown = Colarm(engine.index.table, primary_support=0.05)
            assert engine.index.table.n_records == table.n_records + 10
            for query in STREAM:
                res = await cluster.submit(query)
                assert res.epoch == cluster.publisher.epoch
                assert res.rules == grown.query(query).rules

            # The stream crossed both workers' key spaces or landed on
            # one — either way, the routing account adds up.
            snap = cluster.snapshot()
            assert snap["routed"] == 9
            assert sum(snap["routing"].values()) == 9
            assert snap["publishes"] >= 2

    asyncio.run(main())
