"""QueryService integration tests: coalescing, admission, concurrency edges.

No pytest-asyncio in this environment: every test drives its own event
loop with ``asyncio.run``.  The deterministic pattern used throughout:
submit requests *before* ``start()`` (the dispatcher is not running, so
flights queue up and attach predictably), then start and drain.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.engine import Colarm
from repro.core.plans import PlanKind
from repro.dataset.salary import salary_dataset
from repro.errors import ServiceClosedError, ServiceOverloadError
from repro.serving import (
    QueryService,
    ServedQuery,
    ServingConfig,
    serve_all,
)

SEATTLE_F = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) AND Gender = (F) "
    "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
)
BOSTON = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Boston) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)
SEATTLE = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)


@pytest.fixture()
def engine() -> Colarm:
    # Fresh per test: these tests mutate engine state (cache, index).
    return Colarm(salary_dataset(), primary_support=0.15)


async def _settle(predicate, timeout: float = 5.0) -> None:
    """Poll the loop until ``predicate()`` holds (submissions need a few
    executor round-trips to price and enqueue)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never settled")
        await asyncio.sleep(0.01)


def test_coalesce_fanout(engine):
    async def main():
        service = QueryService(engine)
        async with service:
            results = await asyncio.gather(
                *(service.submit(SEATTLE_F) for _ in range(6))
            )
        return service, results

    service, results = asyncio.run(main())
    reference = engine.query(SEATTLE_F, use_cache=False)
    assert all(r.rules == reference.rules for r in results)
    assert service.stats.executions == 1
    assert service.stats.coalesced == 5
    leaders = [r for r in results if r.trace.leader]
    assert len(leaders) == 1
    assert all(r.trace.coalesced == 6 for r in results)


def test_responses_carry_traces(engine):
    async def main():
        async with QueryService(engine) as service:
            return await service.submit(SEATTLE_F)

    served = asyncio.run(main())
    assert isinstance(served, ServedQuery)
    trace = served.trace
    assert trace.plan is served.plan
    assert trace.estimated_cost > 0
    assert trace.total_s >= trace.execute_s >= 0
    assert trace.queue_wait_s >= 0
    assert trace.generation == engine.index.generation
    payload = trace.as_dict()
    assert payload["plan"] == served.plan.value
    assert payload["coalesced"] == 1


def test_cancellation_mid_coalesce(engine):
    async def main():
        service = QueryService(engine)
        # Not started: flights queue, waiters attach deterministically.
        tasks = [
            asyncio.ensure_future(service.submit(SEATTLE_F))
            for _ in range(4)
        ]
        await _settle(lambda: service.stats.coalesced == 3)
        tasks[1].cancel()
        await service.start()
        survivors = await asyncio.gather(
            tasks[0], tasks[2], tasks[3]
        )
        with pytest.raises(asyncio.CancelledError):
            await tasks[1]
        await service.stop()
        return service, survivors

    service, survivors = asyncio.run(main())
    assert service.stats.executions == 1
    reference = engine.query(SEATTLE_F, use_cache=False)
    assert all(r.rules == reference.rules for r in survivors)


def test_queue_full_sheds(engine):
    async def main():
        service = QueryService(engine, ServingConfig(max_pending=1))
        task = asyncio.ensure_future(service.submit(SEATTLE_F))
        await _settle(lambda: service.n_pending == 1)
        with pytest.raises(ServiceOverloadError):
            await service.submit(BOSTON)  # distinct focal: cannot attach
        await service.start()
        first = await task
        await service.stop()
        return service, first

    service, first = asyncio.run(main())
    assert service.stats.shed_queue_full == 1
    assert first.rules == engine.query(SEATTLE_F, use_cache=False).rules


def test_zero_ceiling_sheds_everything(engine):
    async def main():
        config = ServingConfig(cost_ceiling=0.0, over_budget="shed")
        async with QueryService(engine, config) as service:
            for text in (SEATTLE_F, BOSTON, SEATTLE):
                with pytest.raises(ServiceOverloadError):
                    await service.submit(text)
            return service.stats.shed_over_budget

    assert asyncio.run(main()) == 3


def test_over_budget_defer_still_serves(engine):
    async def main():
        config = ServingConfig(cost_ceiling=0.0, over_budget="defer")
        async with QueryService(engine, config) as service:
            return service, await service.submit(SEATTLE_F)

    service, served = asyncio.run(main())
    assert served.trace.deferred
    assert service.stats.deferred == 1
    assert served.rules == engine.query(SEATTLE_F, use_cache=False).rules


def test_cache_hit_short_circuits_queue(engine):
    engine.enable_cache(calibrate=False)
    engine.query(SEATTLE_F)  # populate
    warm = engine.query(SEATTLE_F)
    assert warm.cached  # precondition: repeat is a cache serve

    async def main():
        async with QueryService(engine) as service:
            served = await service.submit(SEATTLE_F)
        return service, served

    service, served = asyncio.run(main())
    assert served.cached
    assert served.trace.cached
    assert service.stats.cache_short_circuits == 1
    assert service.n_pending == 0
    assert served.rules == warm.rules


def test_mutation_between_enqueue_and_execute_forces_reexecution(engine):
    """An index mutation while a request is queued must re-price and
    re-execute — never serve against the stale generation."""
    engine.enable_cache(calibrate=False)
    engine.query(SEATTLE_F)  # populate the cache pre-mutation
    fresh = engine.query(SEATTLE_F, use_cache=False)

    async def main():
        service = QueryService(engine)
        task = asyncio.ensure_future(service.submit(BOSTON))
        await _settle(lambda: service.n_pending == 1)
        # Mutate the index while the request sits in the queue.
        engine.index.rtree.tree.mutations += 1
        await service.start()
        served_boston = await task
        served = await service.submit(SEATTLE_F)
        await service.stop()
        return served_boston, served

    served_boston, served = asyncio.run(main())
    # The queued request's priced choice was stamped with the old
    # generation; execution re-chose at the new one.
    assert served_boston.trace.generation == engine.index.generation
    assert served_boston.outcome.choice.generation == engine.index.generation
    assert not served_boston.cached
    # And a query cached before the mutation is never served stale.
    assert not served.cached
    assert served.rules == fresh.rules


def test_mutation_between_attach_windows_splits_flights(engine):
    """A request arriving after a mutation must not attach to a flight
    priced against the older tree."""
    async def main():
        service = QueryService(engine)
        first = asyncio.ensure_future(service.submit(SEATTLE_F))
        await _settle(lambda: service.n_pending == 1)
        engine.index.rtree.tree.mutations += 1
        second = asyncio.ensure_future(service.submit(SEATTLE_F))
        await _settle(lambda: service.n_pending == 2)
        await service.start()
        results = await asyncio.gather(first, second)
        await service.stop()
        return service, results

    service, results = asyncio.run(main())
    assert service.stats.executions == 2  # no cross-generation sharing
    assert service.stats.coalesced == 0
    assert results[0].rules == results[1].rules


def test_use_cache_false_bypasses_coalescing(engine):
    """Satellite fix: a ``use_cache=False`` caller gets a fresh execution,
    not another waiter's shared result — and accepts no attachments."""
    async def main():
        service = QueryService(engine)
        shared = [
            asyncio.ensure_future(service.submit(SEATTLE_F))
            for _ in range(2)
        ]
        bypass = asyncio.ensure_future(
            service.submit(SEATTLE_F, use_cache=False)
        )
        late = asyncio.ensure_future(service.submit(SEATTLE_F))
        # Both attachers on the shared flight, bypass flight queued apart.
        await _settle(
            lambda: service.stats.coalesced == 2 and service.n_pending == 2
        )
        await service.start()
        results = await asyncio.gather(*shared, bypass, late)
        await service.stop()
        return service, results

    service, results = asyncio.run(main())
    # Two executions: one shared flight (leader + 2 attachers), one bypass.
    assert service.stats.executions == 2
    assert service.stats.coalesced == 2
    bypass_result = results[2]
    assert bypass_result.trace.leader
    assert bypass_result.trace.coalesced == 1
    assert all(r.rules == results[0].rules for r in results)


def test_shutdown_drains_inflight_requests(engine):
    async def main():
        service = QueryService(engine)
        tasks = [
            asyncio.ensure_future(service.submit(text))
            for text in (SEATTLE_F, BOSTON, SEATTLE)
        ]
        await _settle(lambda: service.n_pending == 3)
        await service.start()
        await service.stop(drain=True)  # must serve all three first
        return service, await asyncio.gather(*tasks)

    service, results = asyncio.run(main())
    assert service.stats.served == 3
    assert all(len(r.rules) >= 0 for r in results)


def test_shutdown_without_drain_fails_queued(engine):
    async def main():
        service = QueryService(engine)
        task = asyncio.ensure_future(service.submit(SEATTLE_F))
        await _settle(lambda: service.n_pending == 1)
        await service.stop(drain=False)
        with pytest.raises(ServiceClosedError):
            await task
        with pytest.raises(ServiceClosedError):
            await service.submit(BOSTON)

    asyncio.run(main())


def test_priority_orders_executions_by_cost(engine):
    """With aging=0 the queue must run cheap plans before expensive ones
    regardless of arrival order."""
    costs = {}
    for text in (SEATTLE_F, BOSTON, SEATTLE):
        q = engine.parse(text)
        costs[text] = engine.optimizer.choose(q).chosen_estimate
    # BOSTON's focal group is the largest, so it is strictly the most
    # expensive; the two Seattle queries may tie (the ARM fallback prices
    # the whole relation, ignoring the focal selection), so the assertion
    # below checks cost monotonicity rather than one exact permutation.
    expected = sorted(costs, key=costs.get)
    assert costs[BOSTON] == max(costs.values())

    order: list[str] = []

    async def main():
        service = QueryService(engine, ServingConfig(aging=0.0, workers=1))

        async def one(text):
            await service.submit(text)
            order.append(text)

        # Enqueue expensive-first (reverse of expected execution order).
        tasks = [
            asyncio.ensure_future(one(text)) for text in reversed(expected)
        ]
        await _settle(lambda: service.n_pending == 3)
        await service.start()
        await asyncio.gather(*tasks)
        await service.stop()

    asyncio.run(main())
    completed_costs = [costs[t] for t in order]
    assert completed_costs == sorted(completed_costs)
    assert order[-1] == BOSTON


def test_stats_snapshot_shape(engine):
    async def main():
        async with QueryService(engine) as service:
            await asyncio.gather(
                *(service.submit(SEATTLE_F) for _ in range(3)),
                service.submit(BOSTON),
            )
            return service.snapshot()

    snap = asyncio.run(main())
    assert snap["submitted"] == 4
    assert snap["served"] == 4
    assert snap["p50_s"] > 0
    assert snap["p99_s"] >= snap["p50_s"]
    assert snap["throughput_qps"] >= 0
    assert snap["pending"] == 0
    assert snap["inflight_groups"] == 0


def test_serve_all_keeps_submission_order(engine):
    requests = [SEATTLE_F, BOSTON, SEATTLE_F, SEATTLE]
    results, snapshot = asyncio.run(serve_all(engine, requests))
    assert len(results) == 4
    assert all(isinstance(r, ServedQuery) for r in results)
    assert results[0].rules == results[2].rules
    assert snapshot["served"] == 4


def test_serve_all_reports_shed_requests_in_place(engine):
    config = ServingConfig(cost_ceiling=0.0, over_budget="shed")
    results, snapshot = asyncio.run(
        serve_all(engine, [SEATTLE_F, BOSTON], config)
    )
    assert all(isinstance(r, ServiceOverloadError) for r in results)
    assert snapshot["shed"] == 2


def test_forced_plan_requests_coalesce_per_plan(engine):
    async def main():
        service = QueryService(engine)
        a = asyncio.ensure_future(service.submit(SEATTLE_F, plan="ARM"))
        b = asyncio.ensure_future(service.submit(SEATTLE_F, plan="ARM"))
        c = asyncio.ensure_future(service.submit(SEATTLE_F, plan="SS-VS"))
        await _settle(lambda: service.n_pending == 2)
        await service.start()
        results = await asyncio.gather(a, b, c)
        await service.stop()
        return service, results

    service, results = asyncio.run(main())
    assert service.stats.executions == 2  # ARM shared, SS-VS its own
    assert results[0].plan is PlanKind.ARM
    assert results[2].plan is PlanKind.SSVS
    assert results[0].rules == results[1].rules


def test_config_validation():
    with pytest.raises(ValueError):
        ServingConfig(max_pending=0)
    with pytest.raises(ValueError):
        ServingConfig(workers=0)
    with pytest.raises(ValueError):
        ServingConfig(cost_ceiling=-1.0)
    with pytest.raises(ValueError):
        ServingConfig(over_budget="park")
    with pytest.raises(ValueError):
        ServingConfig(aging=-0.5)
