"""CostScheduler unit tests: ordering, aging, admission, deferral."""

from __future__ import annotations

import pytest

from repro.serving import CostScheduler


def _drain(sched: CostScheduler) -> list:
    out = []
    while len(sched):
        out.append(sched.pop())
    return out


def test_pure_cost_order_at_zero_aging():
    sched = CostScheduler(aging=0.0)
    costs = [3.0, 1.0, 2.0, 0.5]
    for i, cost in enumerate(costs):
        sched.push(i, cost, enqueued=float(i))
    assert _drain(sched) == sorted(range(len(costs)), key=lambda i: costs[i])


def test_fifo_at_infinite_aging():
    sched = CostScheduler(aging=float("inf"))
    # Descending costs: cost order would be the exact reverse of FIFO.
    for i, cost in enumerate([5.0, 4.0, 3.0, 2.0, 1.0]):
        sched.push(i, cost, enqueued=float(i))
    assert _drain(sched) == [0, 1, 2, 3, 4]


def test_aging_lets_old_expensive_beat_new_cheap():
    # Effective priority is cost - aging * waited, i.e. static key
    # cost + aging * enqueued: an expensive request enqueued long ago
    # must eventually outrank a cheap newcomer.
    sched = CostScheduler(aging=1.0)
    sched.push("old-expensive", 10.0, enqueued=0.0)    # key 10
    sched.push("new-cheap", 1.0, enqueued=100.0)       # key 101
    assert sched.pop() == "old-expensive"
    # Without aging the cheap one wins regardless of age.
    sched = CostScheduler(aging=0.0)
    sched.push("old-expensive", 10.0, enqueued=0.0)
    sched.push("new-cheap", 1.0, enqueued=100.0)
    assert sched.pop() == "new-cheap"


def test_ties_break_by_arrival_order():
    sched = CostScheduler(aging=0.0)
    for i in range(4):
        sched.push(i, 1.0, enqueued=0.0)
    assert _drain(sched) == [0, 1, 2, 3]


def test_admission_verdicts():
    shed = CostScheduler(cost_ceiling=1.0, over_budget="shed")
    assert shed.admit(0.5) == "run"
    assert shed.admit(1.0) == "run"   # ceiling is inclusive
    assert shed.admit(1.5) == "shed"
    defer = CostScheduler(cost_ceiling=1.0, over_budget="defer")
    assert defer.admit(1.5) == "defer"
    everything = CostScheduler(cost_ceiling=0.0)
    assert everything.admit(1e-9) == "shed"
    unlimited = CostScheduler()
    assert unlimited.admit(1e12) == "run"


def test_deferred_popped_only_when_ready_empty():
    sched = CostScheduler(cost_ceiling=1.0, over_budget="defer", aging=0.0)
    sched.push("deferred-cheap", 0.1, enqueued=0.0, deferred=True)
    sched.push("ready-expensive", 0.9, enqueued=0.0)
    sched.push("ready-cheap", 0.2, enqueued=0.0)
    # Ready items first (in cost order), deferred only in the idle gap —
    # even though the deferred item has the lowest raw cost.
    assert _drain(sched) == ["ready-cheap", "ready-expensive", "deferred-cheap"]
    assert sched.n_deferred == 0


def test_drain_and_len():
    sched = CostScheduler(cost_ceiling=1.0, over_budget="defer")
    sched.push("a", 0.5, enqueued=0.0)
    sched.push("b", 2.0, enqueued=0.0, deferred=True)
    assert len(sched) == 2
    assert sched.n_deferred == 1
    assert set(sched.drain()) == {"a", "b"}
    assert len(sched) == 0
    with pytest.raises(IndexError):
        sched.pop()


def test_rejects_bad_over_budget():
    with pytest.raises(ValueError):
        CostScheduler(over_budget="drop")
