"""Rule ranking by interestingness measures."""

import pytest

from repro import tidset as ts
from repro.analysis.ranking import MEASURES, localized_rule_stats, rank_rules
from repro.core.mipindex import build_mip_index
from repro.core.operators import make_context, op_eliminate, op_search, op_verify
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=91, n_records=100,
                              cardinalities=(4, 3, 3, 2))
    index = build_mip_index(table, primary_support=0.05)
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.3, 0.5)
    ctx = make_context(index, query)
    rules = op_verify(ctx, op_eliminate(ctx, op_search(ctx)))
    assert rules
    return index, ctx, rules


def test_stats_are_exact(setup):
    index, ctx, rules = setup
    table = index.table
    for rule in rules[:20]:
        stats = localized_rule_stats(index, rule, ctx.dq)
        assert stats.n == ctx.dq_size
        assert stats.n_xy == ts.count(table.itemset_tidset(rule.items) & ctx.dq)
        assert stats.n_x == ts.count(
            table.itemset_tidset(rule.antecedent) & ctx.dq
        )
        assert stats.n_y == ts.count(
            table.itemset_tidset(rule.consequent) & ctx.dq
        )


@pytest.mark.parametrize("measure", sorted(MEASURES))
def test_rank_rules_sorted_descending(setup, measure):
    index, ctx, rules = setup
    ranked = rank_rules(index, rules, ctx.dq, measure=measure)
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)
    assert len(ranked) == len(rules)


def test_rank_rules_top_k(setup):
    index, ctx, rules = setup
    ranked = rank_rules(index, rules, ctx.dq, top_k=3)
    assert len(ranked) == min(3, len(rules))


def test_rank_rules_callable_measure(setup):
    index, ctx, rules = setup
    ranked = rank_rules(index, rules, ctx.dq, measure=lambda s: s.support)
    assert ranked[0][1] == max(r.support for r in rules)


def test_unknown_measure(setup):
    index, ctx, rules = setup
    with pytest.raises(QueryError):
        rank_rules(index, rules, ctx.dq, measure="wizardry")
