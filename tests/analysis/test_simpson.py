"""Simpson's-paradox analysis: planted patterns must be detected."""

import pytest

from repro.analysis.simpson import (
    compare_itemsets,
    find_rule_flips,
    find_vanishing_rules,
)
from repro.core.mipindex import build_mip_index
from repro.core.query import LocalizedQuery
from repro.dataset.synthetic import quest_like
from repro.itemsets.apriori import min_count_for


@pytest.fixture(scope="module")
def index():
    return build_mip_index(quest_like(n_records=600, n_categories=4, seed=3),
                           primary_support=0.05)


@pytest.fixture(scope="module")
def region_query(index):
    region = index.table.schema.attribute_index("region")
    categories = frozenset(
        i for i, a in enumerate(index.table.schema.attributes)
        if a.name.startswith("cat")
    )
    return LocalizedQuery(
        range_selections={region: frozenset({0})},
        minsupp=0.35,
        minconf=0.75,
        item_attributes=categories,
    )


def test_compare_itemsets_split_is_exact(index, region_query):
    split = compare_itemsets(index, region_query)
    assert split.n_local == split.n_fresh + split.n_repeated
    global_floor = min_count_for(region_query.minsupp, index.table.n_records)
    fresh_items = set(split.fresh_local)
    for itemset in split.fresh_local:
        assert index.table.support_count(itemset) < global_floor
    for itemset in split.repeated_global:
        assert index.table.support_count(itemset) >= global_floor
        assert itemset not in fresh_items


def test_fresh_local_itemsets_exist(index, region_query):
    """The planted region-0 cross-sell must produce fresh local itemsets."""
    split = compare_itemsets(index, region_query)
    assert split.n_fresh > 0


def test_compare_with_custom_global_threshold(index, region_query):
    lenient = compare_itemsets(index, region_query, global_minsupp=0.01)
    strict = compare_itemsets(index, region_query, global_minsupp=0.9)
    assert lenient.n_fresh <= strict.n_fresh
    assert lenient.n_local == strict.n_local


def test_find_rule_flips_detects_planted_pattern(index, region_query):
    flips = find_rule_flips(index, region_query, margin=0.05)
    assert flips, "planted cross-sell should flip at least one rule"
    schema = index.table.schema
    for flip in flips:
        assert flip.local_confidence >= region_query.minconf
        assert flip.global_confidence < region_query.minconf - 0.05
        assert flip.direction == "emerges"
    # flips sorted by confidence gap, largest first
    gaps = [f.local_confidence - f.global_confidence for f in flips]
    assert gaps == sorted(gaps, reverse=True)
    # the strongest flip involves the planted cat0/cat1 high-high pair
    top_items = {schema.render_item(i) for f in flips[:5] for i in f.rule.items}
    assert any("high" in t for t in top_items)


def test_flip_global_confidence_is_exact(index, region_query):
    table = index.table
    for flip in find_rule_flips(index, region_query)[:10]:
        g_conf = (
            table.support_count(flip.rule.items)
            / table.support_count(flip.rule.antecedent)
        )
        assert flip.global_confidence == pytest.approx(g_conf)


def test_find_vanishing_rules_recovers_paper_example():
    """The paper's R_G vanishes for Seattle's female employees."""
    from repro.dataset.salary import salary_dataset

    salary = salary_dataset()
    index = build_mip_index(salary, primary_support=0.15)
    query = LocalizedQuery.from_labels(
        salary.schema,
        ranges={"Location": ["Seattle"], "Gender": ["F"]},
        minsupp=0.5,
        minconf=0.8,
    )
    vanishing = find_vanishing_rules(index, query, global_minsupp=0.4)
    a0 = salary.schema.item("Age", "20-30")
    s2 = salary.schema.item("Salary", "90K-120K")
    match = [
        f for f in vanishing
        if f.rule.antecedent == (a0,) and f.rule.consequent == (s2,)
    ]
    assert match, "R_G must be reported as vanishing in the Seattle-F subset"
    flip = match[0]
    assert flip.global_confidence == pytest.approx(5 / 6)
    assert flip.local_confidence == pytest.approx(0.0)
    assert flip.direction == "vanishes"


def test_vanishing_rules_sorted_and_exact(index, region_query):
    table = index.table
    vanishing = find_vanishing_rules(index, region_query, global_minsupp=0.3)
    drops = [f.global_confidence - f.local_confidence for f in vanishing]
    assert drops == sorted(drops, reverse=True)
    from repro import tidset as ts

    dq = table.tids_matching(region_query.range_selections)
    for flip in vanishing[:10]:
        l_ante = ts.count(table.itemset_tidset(flip.rule.antecedent) & dq)
        l_both = ts.count(table.itemset_tidset(flip.rule.items) & dq)
        assert flip.local_confidence == pytest.approx(l_both / l_ante)
        assert flip.local_confidence < region_query.minconf
        assert flip.global_confidence >= region_query.minconf
