"""Parameter-space exploration: exactness and monotonicity."""

import pytest

from repro.analysis.paramspace import explore_parameter_space
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=81, n_records=100,
                              cardinalities=(4, 3, 3, 2))
    index = build_mip_index(table, primary_support=0.05)
    base = LocalizedQuery({0: frozenset({1, 2})}, 0.5, 0.5)
    return index, base


MINSUPPS = (0.25, 0.4, 0.55)
MINCONFS = (0.5, 0.7, 0.9)


def test_grid_counts_match_plan_executions(setup):
    """Every grid cell must equal an actual plan execution's rule count."""
    index, base = setup
    grid = explore_parameter_space(index, base, MINSUPPS, MINCONFS)
    for minsupp in MINSUPPS:
        for minconf in MINCONFS:
            query = LocalizedQuery(
                base.range_selections, minsupp, minconf,
                item_attributes=base.item_attributes,
            )
            result = execute_plan(PlanKind.SEV, index, query)
            assert grid.count_at(minsupp, minconf) == result.n_rules, \
                (minsupp, minconf)


def test_counts_monotone(setup):
    index, base = setup
    grid = explore_parameter_space(index, base, MINSUPPS, MINCONFS)
    for i in range(len(MINSUPPS) - 1):
        for j in range(len(MINCONFS) - 1):
            assert grid.counts[i][j] >= grid.counts[i + 1][j]
            assert grid.counts[i][j] >= grid.counts[i][j + 1]


def test_count_at_unknown_cell(setup):
    index, base = setup
    grid = explore_parameter_space(index, base, MINSUPPS, MINCONFS)
    with pytest.raises(QueryError):
        grid.count_at(0.33, 0.5)


def test_knee_cells(setup):
    index, base = setup
    grid = explore_parameter_space(index, base, MINSUPPS, MINCONFS)
    knees = grid.knee_cells(max_rules=10)
    for minsupp, minconf, count in knees:
        assert count <= 10
        assert grid.count_at(minsupp, minconf) == count


def test_rejects_below_coverage_floor(setup):
    index, base = setup
    with pytest.raises(QueryError, match="coverage"):
        explore_parameter_space(index, base, (0.01,), (0.5,))


def test_rejects_empty_axes(setup):
    index, base = setup
    with pytest.raises(QueryError):
        explore_parameter_space(index, base, (), (0.5,))
