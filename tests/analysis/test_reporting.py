"""Report formatting helpers."""

import csv

from repro.analysis.reporting import format_series, format_table, write_csv


def test_format_table_alignment():
    text = format_table(
        ["plan", "time"],
        [["S-E-V", 1.5], ["ARM", 20.25]],
        title="Results",
    )
    lines = text.splitlines()
    assert lines[0] == "Results"
    assert lines[1].startswith("plan")
    assert set(lines[2]) <= {"-", " "}
    assert "S-E-V" in lines[3]
    assert "20.25" in lines[4]
    # all rows padded to equal column starts
    assert lines[3].index("1.5") == lines[4].index("20.25")


def test_format_table_widens_for_long_cells():
    text = format_table(["x"], [["a-very-long-cell"]])
    header, sep, row = text.splitlines()
    assert len(sep) == len("a-very-long-cell")


def test_format_series():
    text = format_series("chess", [0.1, 0.2], [10, 20])
    assert text == "chess: (0.1, 10) (0.2, 20)"


def test_write_csv_roundtrip(tmp_path):
    path = tmp_path / "out" / "table.csv"
    write_csv(path, ["a", "b"], [[1, 2.5], ["x", "y"]])
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows == [["a", "b"], ["1", "2.5"], ["x", "y"]]


def test_float_rendering():
    text = format_table(["v"], [[0.123456789]])
    assert "0.123457" in text


def test_ascii_bars_positive_only():
    from repro.analysis.reporting import ascii_bars

    text = ascii_bars(["a", "bb"], [10.0, 5.0], width=10, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert all("|" in line for line in lines[1:])


def test_ascii_bars_with_negatives():
    from repro.analysis.reporting import ascii_bars

    text = ascii_bars(["up", "down"], [4.0, -2.0], width=8)
    up, down = text.splitlines()
    assert up.index("|") < up.index("#")
    assert down.index("#") < down.index("|")


def test_ascii_bars_validation():
    import pytest

    from repro.analysis.reporting import ascii_bars

    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])
    assert ascii_bars([], [], title="empty") == "empty"
