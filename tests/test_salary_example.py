"""The paper's Table 1 numbers, asserted exactly (Section 1.1)."""

from __future__ import annotations

import pytest

from repro import Colarm, salary_dataset
from repro.core.plans import PlanKind


def test_dataset_shape(salary):
    assert salary.n_records == 11
    assert salary.n_attributes == 6
    assert salary.schema.names == (
        "Company", "Title", "Location", "Gender", "Age", "Salary",
    )


def test_global_rule_rg(salary):
    """R_G = (A0 -> S2): support 5/11 (~45%), confidence 5/6 (~83%)."""
    a0 = salary.schema.item("Age", "20-30")
    s2 = salary.schema.item("Salary", "90K-120K")
    both = salary.support_count([a0, s2])
    antecedent = salary.support_count([a0])
    assert both == 5
    assert antecedent == 6
    assert both / salary.n_records == pytest.approx(5 / 11)
    assert both / antecedent == pytest.approx(5 / 6)


def test_focal_subset_seattle_females(salary):
    """The focal subset 'female employees in Seattle' is the last 4 records."""
    loc = salary.schema.attribute_index("Location")
    gen = salary.schema.attribute_index("Gender")
    seattle = salary.schema.attributes[loc].value_index("Seattle")
    female = salary.schema.attributes[gen].value_index("F")
    mask = salary.tids_matching({loc: {seattle}, gen: {female}})
    from repro import tidset as ts
    assert ts.to_list(mask) == [7, 8, 9, 10]


def test_localized_rule_rl_via_engine(salary):
    """R_L = (A1 -> S2) in the subset: support 75%, confidence 100%."""
    engine = Colarm(salary, primary_support=0.15, expand=True)
    outcome = engine.query(
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Location = (Seattle) AND Gender = (F) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    assert outcome.dq_size == 4
    a1 = engine.schema.item("Age", "30-40")
    s2 = engine.schema.item("Salary", "90K-120K")
    matches = [
        r for r in outcome.rules
        if r.antecedent == (a1,) and r.consequent == (s2,)
    ]
    assert len(matches) == 1
    assert matches[0].support == pytest.approx(0.75)
    assert matches[0].confidence == pytest.approx(1.0)


def test_rg_does_not_hold_locally(salary):
    """The paper: 'the global rule R_G does not hold true in this subset'."""
    engine = Colarm(salary, primary_support=0.15, expand=True)
    outcome = engine.query(
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Location = (Seattle) AND Gender = (F) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    a0 = engine.schema.item("Age", "20-30")
    s2 = engine.schema.item("Salary", "90K-120K")
    assert not any(
        r.antecedent == (a0,) and r.consequent == (s2,) for r in outcome.rules
    )


def test_all_plans_find_rl(salary):
    engine = Colarm(salary, primary_support=0.15, expand=True)
    a1 = engine.schema.item("Age", "30-40")
    s2 = engine.schema.item("Salary", "90K-120K")
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Location = (Seattle) AND Gender = (F) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    for kind in PlanKind:
        outcome = engine.query(text, plan=kind)
        assert any(
            r.antecedent == (a1,) and r.consequent == (s2,)
            for r in outcome.rules
        ), kind


def test_rl_hidden_globally_at_reasonable_minsupp(salary):
    """R_L needs global minsupport < 27% to surface in a global mining run."""
    engine = Colarm(salary, primary_support=0.15, expand=True)
    a1 = salary.schema.item("Age", "30-40")
    s2 = salary.schema.item("Salary", "90K-120K")
    # Globally the itemset {A1, S2} holds in 3/11 (~27%) of the records.
    assert salary.support_count([a1, s2]) == 3
    rules = engine.global_rules(minsupp=0.30, minconf=0.8)
    assert not any(
        r.antecedent == (a1,) and s2 in r.consequent for r in rules
    )
