"""The exception hierarchy: everything catchable as ReproError."""

import pytest

from repro.errors import (
    DataError,
    IndexError_,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
)


@pytest.mark.parametrize(
    "exc", [SchemaError, DataError, QueryError, IndexError_, ParseError]
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_parse_error_is_query_error():
    assert issubclass(ParseError, QueryError)


def test_library_raises_catchable_errors(salary):
    """A library misuse is always catchable with one except clause."""
    from repro import Colarm

    engine = Colarm(salary, primary_support=0.2)
    with pytest.raises(ReproError):
        engine.query("this is not a query")
    with pytest.raises(ReproError):
        engine.query(
            "REPORT LOCALIZED ASSOCIATION RULES FROM s "
            "WHERE RANGE Nope = (x) "
            "HAVING minsupport = 0.5 AND minconfidence = 0.5;"
        )
