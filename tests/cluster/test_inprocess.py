"""The in-process multi-service fallback: same routing surface, one engine.

Also covers the serving-layer hook it depends on: several
:class:`QueryService` instances over one engine must share one engine
lock (none of the engine structures are thread-safe).
"""

from __future__ import annotations

import asyncio
import threading

from repro.cluster import InProcessCluster, ClusterConfig, _focal_key_bytes
from repro.core.engine import Colarm
from repro.dataset.salary import salary_dataset
from repro.serving import QueryService, ServingConfig

SEATTLE = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)
BOSTON = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Boston) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)


def test_services_share_an_external_engine_lock():
    engine = Colarm(salary_dataset(), primary_support=0.15)
    lock = threading.Lock()
    a = QueryService(engine, ServingConfig(), engine_lock=lock)
    b = QueryService(engine, ServingConfig(), engine_lock=lock)
    assert a._engine_lock is lock and b._engine_lock is lock
    # Without the parameter each service still gets its own private lock.
    c = QueryService(engine, ServingConfig())
    assert c._engine_lock is not lock


def test_inprocess_cluster_routes_and_matches_the_engine():
    engine = Colarm(salary_dataset(), primary_support=0.15)
    refs = {
        q: Colarm(salary_dataset(), primary_support=0.15).query(q).rules
        for q in (SEATTLE, BOSTON)
    }

    async def main():
        config = ClusterConfig(workers=3, serving=ServingConfig(workers=2))
        async with InProcessCluster(engine, config) as cluster:
            lock = cluster.services[0]._engine_lock
            assert all(s._engine_lock is lock for s in cluster.services)
            seen: dict[str, int] = {}
            for _ in range(2):
                for q in (SEATTLE, BOSTON):
                    res = await cluster.submit(q)
                    assert res.rules == refs[q]
                    key = _focal_key_bytes(
                        engine.parse(q), engine.index.cardinalities
                    )
                    assert res.worker == cluster.ring.route(key)
                    assert seen.setdefault(q, res.worker) == res.worker
            snap = cluster.snapshot()
            assert snap["routed"] == 4
            stats = await cluster.worker_stats()
            assert sorted(s["worker"] for s in stats) == [0, 1, 2]

    asyncio.run(main())


def test_inprocess_concurrent_burst_is_safe_and_complete():
    engine = Colarm(salary_dataset(), primary_support=0.15)
    engine.enable_cache(calibrate=False)
    ref = Colarm(salary_dataset(), primary_support=0.15).query(SEATTLE).rules

    async def main():
        config = ClusterConfig(workers=2, serving=ServingConfig(workers=2))
        async with InProcessCluster(engine, config) as cluster:
            results = await asyncio.gather(
                *(cluster.submit(SEATTLE) for _ in range(16))
            )
            assert len(results) == 16
            for res in results:
                assert res.rules == ref

    asyncio.run(main())
