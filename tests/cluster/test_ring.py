"""Consistent-hash ring properties: balance, stability, determinism.

The stability properties are *exact* structural facts of consistent
hashing (keys only ever move onto a joiner / off a leaver), checked as
such; the balance and remap-fraction bounds are statistical and use the
generous margins appropriate for 128 virtual nodes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing
from repro.errors import ServiceError

REPLICAS = 128
KEYS = [f"focal-key-{i}".encode() for i in range(2000)]


def make_ring(worker_ids) -> HashRing:
    ring = HashRing(replicas=REPLICAS)
    for worker_id in worker_ids:
        ring.add(worker_id)
    return ring


def shares(ring: HashRing) -> dict[int, float]:
    counts: dict[int, int] = {w: 0 for w in ring.workers}
    for key in KEYS:
        counts[ring.route(key)] += 1
    return {w: n / len(KEYS) for w, n in counts.items()}


worker_sets = st.sets(st.integers(min_value=0, max_value=50),
                      min_size=2, max_size=6)


def test_empty_ring_refuses():
    with pytest.raises(ServiceError):
        HashRing().route(b"anything")


def test_add_remove_guards():
    ring = make_ring([0, 1])
    with pytest.raises(ValueError):
        ring.add(0)
    with pytest.raises(ValueError):
        ring.remove(7)


@given(worker_sets)
@settings(max_examples=20, deadline=None)
def test_routing_is_deterministic_across_ring_builds(workers):
    # Two independently built rings (different insertion orders) place
    # every key identically: routing depends only on membership, which
    # is what lets a test harness or a second router predict placement.
    a = make_ring(sorted(workers))
    b = make_ring(sorted(workers, reverse=True))
    for key in KEYS[:300]:
        assert a.route(key) == b.route(key)


@given(worker_sets)
@settings(max_examples=20, deadline=None)
def test_balance_no_worker_starves_or_hogs(workers):
    ring = make_ring(workers)
    w = len(workers)
    for share in shares(ring).values():
        assert share >= 1 / (4 * w), "a worker starves"
        assert share <= 3 / w, "a worker hogs the key space"


@given(worker_sets, st.integers(min_value=51, max_value=99))
@settings(max_examples=20, deadline=None)
def test_join_moves_keys_only_onto_the_joiner(workers, joiner):
    ring = make_ring(workers)
    before = {key: ring.route(key) for key in KEYS}
    ring.add(joiner)
    moved = 0
    for key, old in before.items():
        new = ring.route(key)
        if new != old:
            moved += 1
            assert new == joiner, "a key moved between surviving workers"
    # ~1/(W+1) of the key space in expectation; 1/W + ε bounds the
    # virtual-node variance.
    assert moved / len(KEYS) <= 1 / len(workers) + 0.08


@given(worker_sets)
@settings(max_examples=20, deadline=None)
def test_leave_moves_only_the_leavers_keys(workers):
    leaver = min(workers)
    ring = make_ring(workers)
    before = {key: ring.route(key) for key in KEYS}
    leaver_share = sum(1 for w in before.values() if w == leaver)
    ring.remove(leaver)
    moved = 0
    for key, old in before.items():
        new = ring.route(key)
        if old == leaver:
            moved += 1
            assert new != leaver
        else:
            assert new == old, "an unrelated key remapped on leave"
    assert moved == leaver_share
    assert moved / len(KEYS) <= 1 / (len(workers) - 1) + 0.08


@given(worker_sets)
@settings(max_examples=10, deadline=None)
def test_join_then_leave_restores_every_route(workers):
    ring = make_ring(workers)
    before = [ring.route(key) for key in KEYS[:500]]
    ring.add(99)
    ring.remove(99)
    assert [ring.route(key) for key in KEYS[:500]] == before
