"""Process-cluster integration: routing, epoch publish, crash recovery.

These tests spawn real worker processes over a published snapshot of the
paper's salary dataset (small enough that a worker loads in well under a
second on one CPU).  No pytest-asyncio in this environment: each test
drives its own loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterService,
    _focal_key_bytes,
    read_epoch,
)
from repro.core.engine import Colarm
from repro.dataset.salary import salary_dataset
from repro.serving import ServingConfig

SEATTLE = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)
BOSTON = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Boston) "
    "HAVING minsupport = 0.4 AND minconfidence = 0.7;"
)
SEATTLE_F = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) AND Gender = (F) "
    "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
)
QUERIES = (SEATTLE, BOSTON, SEATTLE_F)


def fresh_engine() -> Colarm:
    return Colarm(salary_dataset(), primary_support=0.15)


def config(workers: int = 2, **kw) -> ClusterConfig:
    kw.setdefault("serving", ServingConfig(workers=2))
    return ClusterConfig(workers=workers, **kw)


async def _settle(predicate, timeout: float = 10.0) -> None:
    """Poll until ``predicate()`` holds (crash recovery runs as a task)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never settled")
        await asyncio.sleep(0.01)


def test_routing_is_sticky_and_byte_identical(tmp_path):
    engine = fresh_engine()
    refs = {q: fresh_engine().query(q).rules for q in QUERIES}

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            seen: dict[str, int] = {}
            for _ in range(3):
                for q in QUERIES:
                    res = await cluster.submit(q)
                    assert res.rules == refs[q]
                    # Identical focal keys always land on the same worker
                    # — and on the worker the ring names, so placement is
                    # predictable from the outside.
                    key = _focal_key_bytes(
                        engine.parse(q), engine.index.cardinalities
                    )
                    assert res.worker == cluster.ring.route(key)
                    assert seen.setdefault(q, res.worker) == res.worker
            snap = cluster.snapshot()
            assert snap["routed"] == 9
            assert sum(snap["routing"].values()) == 9
            stats = await cluster.worker_stats()
            assert sorted(s["worker"] for s in stats) == [0, 1]
            assert sum(s["served"] for s in stats) >= 3  # coalescing may fold

    asyncio.run(main())


def test_crash_respawn_serves_every_request_byte_identically(tmp_path):
    engine = fresh_engine()
    refs = {q: fresh_engine().query(q).rules for q in QUERIES}

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            stream = [QUERIES[i % 3] for i in range(12)]
            tasks = [
                asyncio.ensure_future(cluster.submit(q)) for q in stream
            ]
            await asyncio.sleep(0.02)
            for handle in cluster._handles.values():
                os.kill(handle.process.pid, signal.SIGKILL)
                break  # one victim
            results = await asyncio.gather(*tasks)
            # Zero requests lost, every response byte-identical.
            assert len(results) == len(stream)
            for res, q in zip(results, stream):
                assert res.rules == refs[q]
            await _settle(lambda: cluster.snapshot()["crashes"] >= 1)
            await _settle(lambda: cluster.snapshot()["respawns"] >= 1)
            # The cluster still serves after recovery.
            res = await cluster.submit(SEATTLE)
            assert res.rules == refs[SEATTLE]

    asyncio.run(main())


def test_respawn_budget_exhausted_reroutes_to_survivors(tmp_path):
    engine = fresh_engine()
    refs = {q: fresh_engine().query(q).rules for q in QUERIES}

    async def main():
        cfg = config(max_respawns=0)
        async with ClusterService(engine, tmp_path, cfg) as cluster:
            victim = cluster.ring.route(_focal_key_bytes(
                engine.parse(SEATTLE), engine.index.cardinalities
            ))
            tasks = [
                asyncio.ensure_future(cluster.submit(q))
                for q in (SEATTLE, BOSTON, SEATTLE_F) * 2
            ]
            await asyncio.sleep(0.02)
            os.kill(cluster._handles[victim].process.pid, signal.SIGKILL)
            results = await asyncio.gather(*tasks)
            for res, q in zip(results, (SEATTLE, BOSTON, SEATTLE_F) * 2):
                assert res.rules == refs[q]
            # The victim is off the ring; survivors own its key space.
            await _settle(lambda: victim not in cluster.ring)
            res = await cluster.submit(SEATTLE)
            assert res.rules == refs[SEATTLE]
            assert res.worker != victim

    asyncio.run(main())


def test_epoch_publish_never_serves_stale_or_torn(tmp_path):
    """Interleaved ingest/publish with concurrent queries: every response
    carries the generation of a *published* epoch, and no response lands
    at an epoch older than the one current when it was submitted."""
    engine = fresh_engine()
    engine.enable_cache(calibrate=False)
    salary = salary_dataset()

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            published = {
                cluster.publisher.epoch: engine.index.generation
            }
            responses = []

            async def query_burst(n):
                stamped = cluster._min_epoch
                results = await asyncio.gather(
                    *(cluster.submit(QUERIES[i % 3]) for i in range(n))
                )
                for res in results:
                    responses.append((stamped, res))

            for round_no in range(3):
                burst = asyncio.ensure_future(query_burst(4))
                rows = salary.data[round_no::7][:3].tolist()
                await cluster.ingest(rows, publish=True)
                published[cluster.publisher.epoch] = engine.index.generation
                await burst
                await query_burst(2)

            for stamped, res in responses:
                assert res.epoch >= stamped, "a stale epoch was served"
                assert published[res.epoch] == res.generation, (
                    "a response carries a generation no published epoch has"
                )

            # The final answers equal a cold rebuild over the live records.
            reference = Colarm(
                engine.index.table, primary_support=0.15
            )
            for q in QUERIES:
                res = await cluster.submit(q)
                assert res.epoch == cluster.publisher.epoch
                assert res.rules == reference.query(q).rules

    asyncio.run(main())


def test_warm_cache_sidecar_survives_the_hot_swap(tmp_path):
    """The publisher seeds its cache with the hottest focal groups, so a
    worker that hot-swaps to the new epoch starts warm and serves the
    very first repeat of a hot query from its reloaded cache."""
    engine = fresh_engine()
    engine.enable_cache(calibrate=False)

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            for _ in range(3):
                await cluster.submit(SEATTLE)  # make the key hot
            await cluster.ingest(
                salary_dataset().data[:2].tolist(), publish=True
            )
            info = read_epoch(tmp_path)
            assert info.cache is not None, "publish did not seed a sidecar"
            res = await cluster.submit(SEATTLE)
            assert res.epoch == info.epoch
            assert res.cached, "the hot-swapped worker should start warm"

    asyncio.run(main())


def test_membership_changes_remap_boundedly(tmp_path):
    engine = fresh_engine()

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            keys = [f"key-{i}".encode() for i in range(400)]
            before = {k: cluster.ring.route(k) for k in keys}
            new_id = await cluster.add_worker()
            moved = [
                k for k in keys if cluster.ring.route(k) != before[k]
            ]
            assert all(cluster.ring.route(k) == new_id for k in moved)
            assert len(moved) / len(keys) <= 1 / 2 + 0.1
            res = await cluster.submit(SEATTLE)
            assert res.rules == fresh_engine().query(SEATTLE).rules
            await cluster.remove_worker(new_id)
            assert {k: cluster.ring.route(k) for k in keys} == before

    asyncio.run(main())


def test_worker_rss_reports_private_pages(tmp_path):
    engine = fresh_engine()

    async def main():
        async with ClusterService(engine, tmp_path, config()) as cluster:
            reports = await cluster.worker_rss()
            assert sorted(r["worker"] for r in reports) == [0, 1]
            for report in reports:
                if report["private_kb"] is None:
                    pytest.skip("no /proc/self/smaps_rollup on this host")
                assert report["private_kb"] > 0
                assert report["unique_kb"] >= 0

    asyncio.run(main())


def test_submit_after_stop_raises(tmp_path):
    from repro.errors import ServiceClosedError

    engine = fresh_engine()

    async def main():
        cluster = ClusterService(engine, tmp_path, config())
        await cluster.start()
        await cluster.stop()
        with pytest.raises(ServiceClosedError):
            await cluster.submit(SEATTLE)

    asyncio.run(main())
