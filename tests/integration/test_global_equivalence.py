"""A localized query with no range constraints IS global mining.

``D^Q = D`` when every attribute admits its full domain, so localized
rules must coincide exactly with the classic global rules from the stored
closed itemsets — a strong end-to-end sanity invariant linking the two
worlds.
"""

import pytest

from repro import Colarm, LocalizedQuery, PlanKind
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def engine():
    table = make_random_table(seed=101, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    return Colarm(table, primary_support=0.05)


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@pytest.mark.parametrize("minsupp,minconf", [(0.2, 0.5), (0.4, 0.8)])
def test_unconstrained_query_equals_global_rules(engine, minsupp, minconf):
    query = LocalizedQuery({}, minsupp, minconf)
    for kind in (PlanKind.SEV, PlanKind.SSEUV):
        outcome = engine.query(query, plan=kind)
        assert outcome.dq_size == engine.table.n_records
        assert rule_key(outcome.rules) == rule_key(
            engine.global_rules(minsupp, minconf)
        )


def test_unconstrained_query_all_mips_contained(engine):
    """With the full domain selected, every MIP is CONTAINED (Lemma 4.5
    applies everywhere and SS-E-U-V does zero record-level checks)."""
    query = LocalizedQuery({}, 0.3, 0.5)
    result = engine.query(query, plan=PlanKind.SSEUV)
    eliminate = result.result.trace.by_name("ELIMINATE")
    assert eliminate.input_size == 0
    assert eliminate.detail["record_checks"] == 0


def test_single_full_domain_selection_is_also_global(engine):
    """Selecting an attribute's entire domain changes nothing."""
    card = engine.schema.attributes[0].cardinality
    query = LocalizedQuery({0: frozenset(range(card))}, 0.3, 0.5)
    outcome = engine.query(query, plan=PlanKind.SEV)
    unconstrained = engine.query(LocalizedQuery({}, 0.3, 0.5),
                                 plan=PlanKind.SEV)
    assert rule_key(outcome.rules) == rule_key(unconstrained.rules)
