"""End-to-end integration: build -> calibrate -> parse -> optimize -> mine."""

import numpy as np
import pytest

from repro import Colarm, PlanKind
from repro.analysis import compare_itemsets, find_rule_flips
from repro.core.multiquery import execute_batch
from repro.dataset.synthetic import chess_like, quest_like
from repro.workloads.queries import random_focal_query


@pytest.fixture(scope="module")
def chess_engine():
    engine = Colarm(chess_like(n_records=400, seed=7), primary_support=0.10)
    engine.calibrate(n_probes=4, seed=1)
    return engine


def test_full_pipeline_text_query(chess_engine):
    outcome = chess_engine.query(
        "REPORT LOCALIZED ASSOCIATION RULES FROM chess "
        "WHERE RANGE region = (r1, r2) "
        "HAVING minsupport = 0.4 AND minconfidence = 0.85;"
    )
    assert outcome.chosen_by == "optimizer"
    assert outcome.dq_size > 0
    for rule in outcome.rules:
        assert rule.confidence >= 0.85


def test_plan_results_consistent_across_workload(chess_engine):
    rng = np.random.default_rng(3)
    key = lambda rs: sorted((r.antecedent, r.consequent) for r in rs)
    for fraction in (0.5, 0.1):
        wq = random_focal_query(chess_engine.table, fraction, 0.4, 0.8, rng)
        results = chess_engine.compare_plans(wq.query)
        mip_kinds = [k for k in PlanKind if k is not PlanKind.ARM]
        base = key(results[mip_kinds[0]].rules)
        for kind in mip_kinds[1:]:
            assert key(results[kind].rules) == base


def test_optimizer_choice_tracks_measured_times(chess_engine):
    """Over a small workload, the optimizer's cumulative pick should stay
    within 2x of the per-query best plan's cumulative time (regret bound)."""
    rng = np.random.default_rng(9)
    chosen_total = best_total = 0.0
    for fraction in (0.5, 0.2, 0.05):
        wq = random_focal_query(chess_engine.table, fraction, 0.45, 0.85, rng)
        results = chess_engine.compare_plans(wq.query)
        choice = chess_engine.choose_plan(wq.query)
        times = {k: v.elapsed for k, v in results.items()}
        chosen_total += times[choice.kind]
        best_total += min(times.values())
    assert chosen_total <= 2.0 * best_total + 0.05


def test_localized_rules_hidden_globally(chess_engine):
    """The planted region patterns must be invisible to a global run at the
    same thresholds but visible to localized queries."""
    engine = chess_engine
    found_flip = False
    for value in range(engine.schema.attributes[0].cardinality):
        from repro import LocalizedQuery

        query = LocalizedQuery(
            range_selections={0: frozenset({value})},
            minsupp=0.4,
            minconf=0.85,
            item_attributes=frozenset(range(1, engine.schema.n_attributes)),
        )
        if find_rule_flips(engine.index, query, margin=0.1):
            found_flip = True
            split = compare_itemsets(engine.index, query)
            assert split.n_fresh > 0
            break
    assert found_flip


def test_batch_and_single_agree_end_to_end():
    engine = Colarm(quest_like(n_records=300, n_categories=4, seed=17),
                    primary_support=0.05)
    from repro import LocalizedQuery

    queries = [
        LocalizedQuery({0: frozenset({v})}, 0.3, 0.7) for v in range(4)
    ]
    report = execute_batch(engine.index, queries)
    key = lambda rs: sorted((r.antecedent, r.consequent) for r in rs)
    for item, query in zip(report.items, queries):
        solo = engine.query(query, plan=PlanKind.SSEV)
        assert key(item.rules) == key(solo.rules)


def test_engine_survives_repeated_queries(chess_engine):
    """POQM: many online queries against one offline index."""
    rng = np.random.default_rng(13)
    for _ in range(10):
        wq = random_focal_query(chess_engine.table, 0.2, 0.5, 0.9, rng)
        outcome = chess_engine.query(wq.query)
        assert outcome.n_rules >= 0
