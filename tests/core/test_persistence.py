"""Index save/load round-trips and corruption handling."""

import json

import numpy as np
import pytest

from repro.core.costs import CostWeights
from repro.core.mipindex import build_mip_index
from repro.core.persistence import load_index, save_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import DataError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def index():
    table = make_random_table(seed=61, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    return build_mip_index(table, primary_support=0.08)


def test_roundtrip_identical_index(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    loaded, weights = load_index(path)
    assert weights is None
    assert loaded.primary_support == index.primary_support
    assert loaded.table.schema == index.table.schema
    assert np.array_equal(loaded.table.data, index.table.data)
    assert [m.itemset for m in loaded.mips] == [m.itemset for m in index.mips]
    assert [m.global_count for m in loaded.mips] == \
        [m.global_count for m in index.mips]


def test_roundtrip_same_query_answers(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    loaded, _ = load_index(path)
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.3, 0.6)
    key = lambda rs: sorted((r.antecedent, r.consequent, r.support_count)
                            for r in rs)
    for kind in PlanKind:
        a = execute_plan(kind, index, query)
        b = execute_plan(kind, loaded, query)
        assert key(a.rules) == key(b.rules), kind


def test_roundtrip_with_weights(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    weights = CostWeights({"nodes": 1e-6, "const": 2e-4})
    save_index(index, path, weights=weights)
    _, loaded_weights = load_index(path)
    assert loaded_weights is not None
    assert loaded_weights.weights == weights.weights


def test_load_missing_file(tmp_path):
    with pytest.raises(DataError):
        load_index(tmp_path / "nope.npz")


def test_load_garbage_file(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not an npz archive")
    with pytest.raises(DataError):
        load_index(path)


def test_load_wrong_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, something=np.arange(3))
    with pytest.raises(DataError, match="not a COLARM index"):
        load_index(path)


def test_load_rejects_future_version(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = dict(np.load(path))
    meta = json.loads(bytes(archive["meta"]).decode())
    meta["format_version"] = 999
    archive["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **archive)
    with pytest.raises(DataError, match="unsupported format version"):
        load_index(path)


def test_load_detects_itemset_mismatch(index, tmp_path):
    """Tampered itemsets must be caught by the rebuild cross-check."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = dict(np.load(path))
    items = archive["itemset_items"].copy()
    if len(items):
        items[0, 1] = (items[0, 1] + 1) % 2
        archive["itemset_items"] = items
        np.savez(path, **archive)
        with pytest.raises(DataError, match="disagree"):
            load_index(path)


def test_roundtrip_attaches_stored_flat_form(index, tmp_path):
    """v2 files carry the compiled flat R-tree; loading skips recompile
    and the attached form answers searches identically to a fresh one."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = np.load(path)
    assert any(k.startswith("flat_") for k in archive.files)
    loaded, _ = load_index(path)
    assert loaded.flat_rtree is not None
    assert loaded.rtree.flat_is_current()
    fresh = loaded.recompile_flat()  # reference compile from pointer tree
    stored, _ = load_index(path)
    hull = loaded.rtree.tree.root.mbr()
    for min_count in (None, 2, 10**9):
        a = fresh.search(hull, min_count=min_count)
        b = stored.flat_rtree.search(hull, min_count=min_count)
        assert sorted(e.payload.itemset for e in a.entries) == \
            sorted(e.payload.itemset for e in b.entries)
        assert a.nodes_visited == b.nodes_visited


def test_roundtrip_payload_first_no_entry_rebuild(index, tmp_path):
    """v2 files round-trip the payload arrays: the load path attaches the
    flat form without materializing leaf Entry objects, and the array
    search serves rows/counts identical to a fresh compile."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = np.load(path)
    assert "flat_payload_rows" in archive.files
    stored_rows = archive["flat_payload_rows"]
    assert sorted(stored_rows.tolist()) == list(range(index.n_mips))

    loaded, _ = load_index(path)
    flat = loaded.flat_rtree
    assert flat is not None
    # Entry-free attach: the lazy table has not been built by loading.
    assert flat._leaf_entries is None
    fresh = loaded.recompile_flat()
    hull = loaded.rtree.tree.root.mbr()
    stored_again, _ = load_index(path)
    flat = stored_again.flat_rtree
    for min_count in (None, 2, 10**9):
        a = fresh.search_hits(hull, min_count=min_count)
        b = flat.search_hits(hull, min_count=min_count)
        assert a.nodes_visited == b.nodes_visited
        assert sorted(zip(a.rows.tolist(), a.counts.tolist())) == \
            sorted(zip(b.rows.tolist(), b.counts.tolist()))
    # search_hits never forced Entry materialization either.
    assert flat._leaf_entries is None
    # The payload table maps slots to the reloaded MIPs per the stored rows.
    assert [p.row for p in flat.payloads] == stored_rows.tolist()


def test_load_v1_file_recompiles_flat(index, tmp_path):
    """A legacy v1 archive (no flat arrays) still loads; the flat form is
    compiled on load instead of attached."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = dict(np.load(path))
    meta = json.loads(bytes(archive["meta"]).decode())
    meta["format_version"] = 1
    stripped = {k: v for k, v in archive.items() if not k.startswith("flat_")}
    stripped["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **stripped)
    loaded, _ = load_index(path)
    assert loaded.flat_rtree is not None and loaded.rtree.flat_is_current()
    assert [m.itemset for m in loaded.mips] == [m.itemset for m in index.mips]


def test_load_detects_corrupt_flat_arrays(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = dict(np.load(path))

    # Broken payload bijection.
    tampered = dict(archive)
    rows = tampered["flat_payload_rows"].copy()
    if len(rows) > 1:
        rows[0] = rows[1]
        tampered["flat_payload_rows"] = rows
        np.savez(path, **tampered)
        with pytest.raises(DataError, match="bijection"):
            load_index(path)

    # Missing payload map entirely.
    tampered = {k: v for k, v in archive.items() if k != "flat_payload_rows"}
    np.savez(path, **tampered)
    with pytest.raises(DataError, match="payload map"):
        load_index(path)

    # Inconsistent CSR offsets.
    tampered = dict(archive)
    n_levels = int(tampered["flat_shape"][1])
    key = f"flat_offsets_{n_levels - 1}"
    offs = tampered[key].copy()
    offs[-1] += 1
    tampered[key] = offs
    np.savez(path, **tampered)
    with pytest.raises(DataError, match="corrupt flat"):
        load_index(path)


def test_mmap_load_zero_copy_and_identical(index, tmp_path):
    """Uncompressed v2 archives open their flat SoA arrays as read-only
    memory maps, and the mapped tree answers searches identically."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path, compress=False)
    loaded, _ = load_index(path, mmap_mode="r")
    flat = loaded.flat_rtree
    assert flat is not None

    def is_mapped(arr):
        while arr is not None:
            if isinstance(arr, np.memmap):
                return True
            arr = getattr(arr, "base", None)
        return False

    assert all(is_mapped(level.lows) for level in flat.levels)
    eager, _ = load_index(path)
    hull = eager.rtree.tree.root.mbr()
    for min_count in (None, 2):
        a = eager.flat_rtree.search_hits(hull, min_count=min_count)
        b = flat.search_hits(hull, min_count=min_count)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.counts, b.counts)


def test_mmap_load_compressed_falls_back_to_copy(index, tmp_path):
    """Compressed members cannot be mapped; the loader warns, falls back
    to the eager copy, and the index still works."""
    from repro.core.persistence import MmapFallbackWarning

    path = tmp_path / "t.colarm.npz"
    save_index(index, path)  # compressed (the default)
    with pytest.warns(MmapFallbackWarning):
        loaded, _ = load_index(path, mmap_mode="r")
    flat = loaded.flat_rtree
    assert flat is not None
    assert not any(
        isinstance(level.lows, np.memmap) for level in flat.levels
    )
    assert loaded.rtree.flat_is_current()


def test_mmap_load_rejects_writable_modes(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path, compress=False)
    with pytest.raises(DataError, match="mmap_mode"):
        load_index(path, mmap_mode="r+")
    with pytest.raises(DataError, match="mmap_mode"):
        load_index(path, mmap_mode="w+")


def _is_mapped(arr):
    while arr is not None:
        if isinstance(arr, np.memmap):
            return True
        arr = getattr(arr, "base", None)
    return False


def test_mmap_load_report_fully_mapped(index, tmp_path):
    """Uncompressed archives map every candidate member — including the
    packed kernel matrices and the raw data — and say so on the record."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path, compress=False)
    loaded, _ = load_index(path, mmap_mode="r")
    report = loaded.load_report
    assert report.requested and report.fully_mapped
    assert not report.fallbacks
    assert "kernel_mip_tidsets" in report.mapped
    assert "kernel_item_matrix" in report.mapped
    assert "data" in report.mapped
    assert _is_mapped(loaded.mip_tidset_matrix)
    assert _is_mapped(loaded.table.item_matrix()[0])
    # The adopted kernels are bit-for-bit the rebuilt ones.
    fresh, _ = load_index(path)
    assert np.array_equal(loaded.mip_tidset_matrix, fresh.mip_tidset_matrix)
    assert report.as_dict()["fully_mapped"] is True


def test_compressed_mmap_load_warns_and_reports_fallbacks(index, tmp_path):
    """The silent-degradation failure mode is no longer silent: mapping a
    compressed archive emits a warning naming the degraded members."""
    from repro.core.persistence import MmapFallbackWarning

    path = tmp_path / "t.colarm.npz"
    save_index(index, path)  # compressed (the default)
    with pytest.warns(MmapFallbackWarning, match="kernel_mip_tidsets"):
        loaded, _ = load_index(path, mmap_mode="r")
    report = loaded.load_report
    assert report.requested and not report.fully_mapped
    assert not report.mapped
    assert "data" in report.fallbacks


def test_eager_load_report_requested_false(index, tmp_path):
    path = tmp_path / "t.colarm.npz"
    save_index(index, path, compress=False)
    loaded, _ = load_index(path)
    assert not loaded.load_report.requested
    assert not loaded.load_report.fully_mapped


def test_load_detects_corrupt_kernel_matrix(index, tmp_path):
    """A tampered stored kernel matrix is caught by the bit-for-bit
    cross-check against the rebuild, not served."""
    path = tmp_path / "t.colarm.npz"
    save_index(index, path)
    archive = dict(np.load(path))
    kernel = archive["kernel_mip_tidsets"].copy()
    kernel[0, 0] ^= 1
    archive["kernel_mip_tidsets"] = kernel
    np.savez(path, **archive)
    with pytest.raises(DataError, match="kernel"):
        load_index(path)


def test_load_cache_accepts_rebased_generation(index, tmp_path):
    """Regression: ``load_cache`` compares ``index.generation`` (lineage
    base + ticks + mutations), not the raw R-tree mutation counter — a
    cluster worker re-bases its clock to the published generation, and a
    warm sidecar saved at that generation must load."""
    from repro.core.persistence import load_cache, save_cache
    from repro.core.engine import Colarm

    path = tmp_path / "t.colarm.npz"
    save_index(index, path, compress=False)
    loaded, _ = load_index(path, mmap_mode="r")
    loaded.clock.base = 7  # what a worker does to join the lineage
    assert loaded.generation == 7

    engine = Colarm.from_index(loaded).enable_cache(calibrate=False)
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.3, 0.6)
    engine.query(query)
    cache_path = tmp_path / "t.cache.npz"
    save_cache(engine.cache, cache_path, compress=False)
    warm = load_cache(cache_path, loaded, mmap_mode="r")
    assert len(warm) == len(engine.cache)

    loaded.clock.base = 8  # an actual lineage mismatch still refuses
    with pytest.raises(DataError, match="generation"):
        load_cache(cache_path, loaded)
