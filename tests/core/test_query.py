"""LocalizedQuery and FocalRange: validation, hull, exact classification."""

import itertools

import pytest

from repro.core.query import FocalRange, LocalizedQuery, Overlap
from repro.errors import QueryError
from repro.rtree.geometry import Rect


def test_query_validation():
    with pytest.raises(QueryError):
        LocalizedQuery({}, minsupp=0.0, minconf=0.5)
    with pytest.raises(QueryError):
        LocalizedQuery({}, minsupp=1.5, minconf=0.5)
    with pytest.raises(QueryError):
        LocalizedQuery({}, minsupp=0.5, minconf=-0.1)


def test_query_from_labels(salary):
    q = LocalizedQuery.from_labels(
        salary.schema,
        ranges={"Location": ["Seattle"], "Age": ["20-30", "30-40"]},
        minsupp=0.5,
        minconf=0.8,
        item_attributes=["Salary", "Title"],
    )
    loc = salary.schema.attribute_index("Location")
    age = salary.schema.attribute_index("Age")
    assert q.range_selections[loc] == frozenset({2})
    assert q.range_selections[age] == frozenset({0, 1})
    assert q.item_attributes == frozenset(
        {salary.schema.attribute_index("Salary"),
         salary.schema.attribute_index("Title")}
    )


def test_query_from_labels_errors(salary):
    with pytest.raises(QueryError):
        LocalizedQuery.from_labels(salary.schema, {"Location": []}, 0.5, 0.5)
    with pytest.raises(QueryError):
        LocalizedQuery.from_labels(
            salary.schema, {"Location": ["Seattle"]}, 0.5, 0.5,
            item_attributes=[],
        )


def test_query_hashable_and_describe(salary):
    q1 = LocalizedQuery.from_labels(
        salary.schema, {"Gender": ["F"]}, 0.5, 0.8
    )
    q2 = LocalizedQuery.from_labels(
        salary.schema, {"Gender": ["F"]}, 0.5, 0.8
    )
    assert q1 == q2
    assert hash(q1) == hash(q2)
    text = q1.describe(salary.schema)
    assert "Gender in (F)" in text and "minsupp=0.50" in text


def test_validate_against(salary):
    q = LocalizedQuery({99: frozenset({0})}, 0.5, 0.5)
    with pytest.raises(QueryError):
        q.validate_against(salary.schema)
    q = LocalizedQuery({0: frozenset({99})}, 0.5, 0.5)
    with pytest.raises(QueryError):
        q.validate_against(salary.schema)
    q = LocalizedQuery({0: frozenset({0})}, 0.5, 0.5,
                       item_attributes=frozenset({99}))
    with pytest.raises(QueryError):
        q.validate_against(salary.schema)


def test_focal_range_hull():
    fr = FocalRange.from_selections({0: frozenset({1, 3})}, (5, 3))
    assert fr.hull() == Rect((1, 0), (3, 2))
    assert fr.hull_extents() == (3, 3)


def test_focal_range_validation():
    with pytest.raises(QueryError):
        FocalRange.from_selections({0: frozenset()}, (3,))
    with pytest.raises(QueryError):
        FocalRange.from_selections({0: frozenset({5})}, (3,))


def test_selectivity():
    fr = FocalRange.from_selections({0: frozenset({0}), 1: frozenset({0, 1})},
                                    (4, 4))
    assert fr.selectivity() == pytest.approx((1 / 4) * (2 / 4))


def classify_brute(fr: FocalRange, box: Rect) -> Overlap:
    """Cell-by-cell classification (exponential, tiny boxes only)."""
    cells = list(
        itertools.product(*[
            range(lo, hi + 1) for lo, hi in zip(box.lows, box.highs)
        ])
    )
    admitted = [
        all((fr.value_masks[d] >> c) & 1 for d, c in enumerate(cell))
        for cell in cells
    ]
    if all(admitted):
        return Overlap.CONTAINED
    if any(admitted):
        return Overlap.PARTIAL
    return Overlap.DISJOINT


def test_classify_matches_brute_force():
    import random

    rng = random.Random(0)
    cards = (4, 3, 3)
    for _ in range(200):
        selections = {}
        for d, card in enumerate(cards):
            if rng.random() < 0.7:
                values = frozenset(
                    v for v in range(card) if rng.random() < 0.5
                ) or frozenset({rng.randrange(card)})
                selections[d] = values
        fr = FocalRange.from_selections(selections, cards)
        lows = tuple(rng.randrange(c) for c in cards)
        highs = tuple(
            min(c - 1, lo + rng.randrange(c)) for lo, c in zip(lows, cards)
        )
        box = Rect(lows, highs)
        assert fr.classify(box) == classify_brute(fr, box)


def test_classify_non_contiguous_selection():
    """Value sets with gaps: hull would be wrong, classify is exact."""
    fr = FocalRange.from_selections({0: frozenset({0, 2})}, (3,))
    assert fr.classify(Rect((1,), (1,))) is Overlap.DISJOINT
    assert fr.classify(Rect((0,), (2,))) is Overlap.PARTIAL
    assert fr.classify(Rect((2,), (2,))) is Overlap.CONTAINED
    # ... while the hull covers the gap
    assert fr.hull() == Rect((0,), (2,))


def test_classify_all_matches_classify():
    """The vectorized classifier equals per-box classification exactly."""
    import random

    import numpy as np

    from repro.core.mip import mip_bounding_box
    from repro.dataset.schema import Item

    rng = random.Random(3)
    cards = (4, 3, 3, 2)
    # random "MIPs": random subsets of attributes fixed to random values
    fixed = np.full((120, len(cards)), -1, dtype=np.int32)
    boxes = []
    for i in range(120):
        items = []
        for a, card in enumerate(cards):
            if rng.random() < 0.5:
                v = rng.randrange(card)
                fixed[i, a] = v
                items.append(Item(a, v))
        boxes.append(mip_bounding_box(tuple(items), cards))
    for _ in range(40):
        selections = {}
        for a, card in enumerate(cards):
            if rng.random() < 0.7:
                values = frozenset(
                    v for v in range(card) if rng.random() < 0.5
                ) or frozenset({rng.randrange(card)})
                selections[a] = values
        fr = FocalRange.from_selections(selections, cards)
        overlaps, contained = fr.classify_all(fixed)
        for i, box in enumerate(boxes):
            expected = fr.classify(box)
            assert overlaps[i] == (expected is not Overlap.DISJOINT), i
            if overlaps[i]:
                assert contained[i] == (expected is Overlap.CONTAINED), i
