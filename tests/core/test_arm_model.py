"""The ARM cardinality model: F1/F2/F3 exactness, density-aware series,
core extraction, chain bound, and the structural early returns."""

import numpy as np
import pytest

from repro import tidset as ts
from repro.core.costs import (
    ArmModelStats,
    _clique_equivalent_size,
    _model_arm_counts,
    _real_comb,
)
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable
from tests.conftest import make_random_table


def build_inputs(table, selections):
    dq = table.tids_matching(selections)
    item_tidsets = {
        (item.attribute, item.value): mask
        for item, mask in table.item_tidsets().items()
    }
    return item_tidsets, dq, ts.count(dq)


def exact_f1(table, dq, min_count, item_attrs=None):
    out = 0
    for item, mask in table.item_tidsets().items():
        if item_attrs is not None and item.attribute not in item_attrs:
            continue
        if ts.count(mask & dq) >= min_count:
            out += 1
    return out


# -- early returns ------------------------------------------------------------


def test_zero_when_nothing_frequent():
    """f1 == 0: no locally frequent item, zero mining mass."""
    table = make_random_table(seed=131, n_records=50)
    query = LocalizedQuery({0: frozenset({0})}, 0.9, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    stats = _model_arm_counts(
        query, item_tidsets, dq, dq_size, min_count=dq_size + 1
    )
    assert isinstance(stats, ArmModelStats)
    assert (stats.est_itemsets, stats.est_fanout) == (0.0, 0.0)
    assert stats.f1 == 0
    assert stats.chain_length == 0


def test_single_frequent_item():
    """f1 == 1: exactly one itemset, fan-out two."""
    attrs = (Attribute("a", ("p", "q")), Attribute("b", ("r", "s", "t")))
    rng = np.random.default_rng(1)
    data = np.column_stack([
        np.zeros(30, dtype=np.int32),           # a=p everywhere
        rng.integers(0, 3, size=30),            # b scattered
    ]).astype(np.int32)
    table = RelationalTable(Schema(attrs), data)
    query = LocalizedQuery({}, 0.9, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, {})
    stats = _model_arm_counts(query, item_tidsets, dq, dq_size, min_count=28)
    assert stats.f1 == 1
    assert stats.est_itemsets == pytest.approx(1.0)
    assert stats.est_fanout == pytest.approx(2.0)
    assert stats.chain_length == 1


# -- measured quantities ------------------------------------------------------


def test_f1_counted_exactly():
    table = make_random_table(seed=133, n_records=60)
    query = LocalizedQuery({0: frozenset({0, 1})}, 0.4, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    min_count = 20
    stats = _model_arm_counts(query, item_tidsets, dq, dq_size, min_count)
    f1 = exact_f1(table, dq, min_count)
    assert stats.f1 == f1
    assert stats.est_itemsets >= f1  # F1 is always included
    assert stats.est_fanout >= 2.0 * f1


def test_f2_f3_counted_exactly_when_sample_covers_all_items():
    """Small tables fit inside both sample caps: pairs and triples exact."""
    table = make_random_table(seed=134, n_records=80)
    query = LocalizedQuery({0: frozenset({0, 1})}, 0.3, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    min_count = 12
    stats = _model_arm_counts(query, item_tidsets, dq, dq_size, min_count)

    local = [
        mask & dq for mask in item_tidsets.values()
        if (mask & dq).bit_count() >= min_count
    ]
    exact_pairs = sum(
        1
        for i in range(len(local))
        for j in range(i + 1, len(local))
        if (local[i] & local[j]).bit_count() >= min_count
    )
    exact_triples = sum(
        1
        for i in range(len(local))
        for j in range(i + 1, len(local))
        for k in range(j + 1, len(local))
        if (local[i] & local[j] & local[k]).bit_count() >= min_count
    )
    assert stats.sample_size == stats.f1 == len(local)
    assert stats.f2_sampled == exact_pairs
    if stats.triangle_items == stats.f1:
        assert stats.f3_sampled == exact_triples
    # the estimate covers at least everything measured
    assert stats.est_itemsets >= stats.f1 + stats.f2_sampled + stats.f3_sampled


def test_respects_item_attributes():
    table = make_random_table(seed=135, n_records=60)
    base = {0: frozenset({0, 1})}
    restricted = LocalizedQuery(base, 0.4, 0.5,
                                item_attributes=frozenset({1}))
    unrestricted = LocalizedQuery(base, 0.4, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, base)
    s_restricted = _model_arm_counts(restricted, item_tidsets, dq,
                                     dq_size, 15)
    s_unrestricted = _model_arm_counts(unrestricted, item_tidsets, dq,
                                       dq_size, 15)
    assert s_restricted.f1 == exact_f1(table, dq, 15, item_attrs={1})
    assert s_restricted.f1 <= s_unrestricted.f1
    assert s_restricted.est_itemsets <= s_unrestricted.est_itemsets
    assert s_restricted.chain_length <= 1  # one attribute, one chain step


# -- planted dense cores ------------------------------------------------------


def test_chain_lower_bound_fires_on_pure_subset():
    """A cluster-pure region (all records identical) has 2^n frequent
    itemsets; the greedy chain must report that explosion."""
    n_attrs = 8
    attrs = tuple(
        Attribute(f"a{i}", ("x", "y")) for i in range(n_attrs)
    )
    data = np.zeros((40, n_attrs), dtype=np.int32)  # all-identical records
    data[30:, :] = 1  # a second block so items are not universal
    table = RelationalTable(Schema(attrs), data)
    query = LocalizedQuery({0: frozenset({0})}, 0.5, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    stats = _model_arm_counts(query, item_tidsets, dq, dq_size, min_count=15)
    assert stats.chain_length == n_attrs
    assert stats.est_itemsets >= 2.0 ** n_attrs
    assert stats.est_fanout >= 3.0 ** n_attrs
    # the pure block is a perfect pairwise core
    assert stats.core_size >= n_attrs
    assert stats.core_density == pytest.approx(1.0)


def test_noisy_dense_core_priced_at_least_chain_bound():
    """The ISSUE's planted dense-core contract: a cluster-pure focal
    subset (here with per-attribute noise, so the greedy chain decays)
    must still price >= the measured-chain 3**L fan-out bound, and the
    triangle-anchored series must price the core above the mean-field
    dilution."""
    rng = np.random.default_rng(7)
    n_attrs = 10
    attrs = tuple(Attribute(f"a{i}", ("x", "y", "z")) for i in range(n_attrs))
    n = 300
    data = rng.integers(0, 3, size=(n, n_attrs)).astype(np.int32)
    # plant a 60% cluster whose signature fixes every attribute with 90%
    # probability — pairwise/triple-frequent core, decaying chain
    cluster = rng.random(n) < 0.6
    for ai in range(1, n_attrs):
        rows = cluster & (rng.random(n) < 0.9)
        data[rows, ai] = 0
    data[cluster, 0] = 0
    table = RelationalTable(Schema(attrs), data)
    query = LocalizedQuery({0: frozenset({0})}, 0.5, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    stats = _model_arm_counts(
        query, item_tidsets, dq, dq_size,
        min_count=max(1, int(0.5 * dq_size)),
    )
    assert stats.est_fanout >= 3.0 ** min(stats.chain_length, 13)
    assert stats.est_itemsets >= 2.0 ** min(stats.chain_length, 16)
    # the signature items form a measured dense core
    assert stats.core_size >= 5
    assert stats.core_density >= 0.8
    assert stats.f3_sampled > 0


# -- monotonicity (unit-level; the hypothesis property is in
# tests/property/test_arm_model_properties.py) -------------------------------


def test_monotone_in_min_count():
    table = make_random_table(seed=137, n_records=80)
    query = LocalizedQuery({0: frozenset({0, 1, 2})}, 0.3, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    results = [
        _model_arm_counts(query, item_tidsets, dq, dq_size, mc)
        for mc in (5, 10, 15, 20, 30)
    ]
    counts = [r.est_itemsets for r in results]
    fanouts = [r.est_fanout for r in results]
    chains = [r.chain_length for r in results]
    assert counts == sorted(counts, reverse=True)
    assert fanouts == sorted(fanouts, reverse=True)
    assert chains == sorted(chains, reverse=True)


# -- numeric helpers ----------------------------------------------------------


def test_real_comb_matches_integer_comb():
    import math

    for n in (3, 5, 12, 40):
        for k in (2, 3, 5):
            assert _real_comb(float(n), k) == pytest.approx(math.comb(n, k))
    assert _real_comb(2.0, 3) == 0.0  # below the support of C(., 3)


def test_clique_equivalent_size_inverts_comb():
    import math

    for c in (3, 5, 9, 14):
        x = _clique_equivalent_size(float(math.comb(c, 3)), 3)
        assert x == pytest.approx(c, abs=1e-6)
    assert _clique_equivalent_size(0.0, 3) == 0.0
