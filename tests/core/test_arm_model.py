"""The ARM cardinality model: F1/F2 exactness, clique series, chain bound."""

import pytest

from repro import tidset as ts
from repro.core.costs import _model_arm_counts
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Item
from tests.conftest import make_random_table


def build_inputs(table, selections):
    dq = table.tids_matching(selections)
    item_tidsets = {
        (item.attribute, item.value): mask
        for item, mask in table.item_tidsets().items()
    }
    return item_tidsets, dq, ts.count(dq)


def exact_f1(table, dq, min_count, item_attrs=None):
    out = 0
    for item, mask in table.item_tidsets().items():
        if item_attrs is not None and item.attribute not in item_attrs:
            continue
        if ts.count(mask & dq) >= min_count:
            out += 1
    return out


def test_zero_when_nothing_frequent():
    table = make_random_table(seed=131, n_records=50)
    query = LocalizedQuery({0: frozenset({0})}, 0.9, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    count, fanout = _model_arm_counts(
        query, item_tidsets, dq, dq_size, min_count=dq_size + 1
    )
    assert (count, fanout) == (0.0, 0.0)


def test_f1_counted_exactly():
    table = make_random_table(seed=133, n_records=60)
    query = LocalizedQuery({0: frozenset({0, 1})}, 0.4, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    min_count = 20
    count, fanout = _model_arm_counts(query, item_tidsets, dq, dq_size,
                                      min_count)
    f1 = exact_f1(table, dq, min_count)
    assert count >= f1  # F1 is always included
    assert fanout >= 2.0 * f1


def test_respects_item_attributes():
    table = make_random_table(seed=135, n_records=60)
    base = {0: frozenset({0, 1})}
    restricted = LocalizedQuery(base, 0.4, 0.5,
                                item_attributes=frozenset({1}))
    unrestricted = LocalizedQuery(base, 0.4, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, base)
    c_restricted, _ = _model_arm_counts(restricted, item_tidsets, dq,
                                        dq_size, 15)
    c_unrestricted, _ = _model_arm_counts(unrestricted, item_tidsets, dq,
                                          dq_size, 15)
    assert c_restricted <= c_unrestricted


def test_chain_lower_bound_fires_on_pure_subset():
    """A cluster-pure region (all records identical) has 2^n frequent
    itemsets; the greedy chain must report that explosion."""
    import numpy as np

    from repro.dataset.schema import Attribute, Schema
    from repro.dataset.table import RelationalTable

    n_attrs = 8
    attrs = tuple(
        Attribute(f"a{i}", ("x", "y")) for i in range(n_attrs)
    )
    data = np.zeros((40, n_attrs), dtype=np.int32)  # all-identical records
    data[30:, :] = 1  # a second block so items are not universal
    table = RelationalTable(Schema(attrs), data)
    query = LocalizedQuery({0: frozenset({0})}, 0.5, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    count, fanout = _model_arm_counts(query, item_tidsets, dq, dq_size,
                                      min_count=15)
    # chain length reaches n_attrs (all records in the subset agree)
    assert count >= 2.0 ** n_attrs
    assert fanout >= 3.0 ** n_attrs


def test_monotone_in_min_count():
    table = make_random_table(seed=137, n_records=80)
    query = LocalizedQuery({0: frozenset({0, 1, 2})}, 0.3, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, query.range_selections)
    counts = [
        _model_arm_counts(query, item_tidsets, dq, dq_size, mc)[0]
        for mc in (5, 15, 30)
    ]
    assert counts[0] >= counts[1] >= counts[2]


def test_single_frequent_item():
    """Exactly one frequent item -> one itemset, fan-out two."""
    import numpy as np

    from repro.dataset.schema import Attribute, Schema
    from repro.dataset.table import RelationalTable

    attrs = (Attribute("a", ("p", "q")), Attribute("b", ("r", "s", "t")))
    rng = np.random.default_rng(1)
    data = np.column_stack([
        np.zeros(30, dtype=np.int32),           # a=p everywhere
        rng.integers(0, 3, size=30),            # b scattered
    ]).astype(np.int32)
    table = RelationalTable(Schema(attrs), data)
    query = LocalizedQuery({}, 0.9, 0.5)
    item_tidsets, dq, dq_size = build_inputs(table, {})
    count, fanout = _model_arm_counts(query, item_tidsets, dq, dq_size,
                                      min_count=28)
    assert count == pytest.approx(1.0)
    assert fanout == pytest.approx(2.0)
