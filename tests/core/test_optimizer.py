"""The COLARM optimizer: choice validity, weight sensitivity, explain."""

from dataclasses import replace

import pytest

from repro.core.costs import CostWeights
from repro.core.mipindex import build_mip_index
from repro.core.optimizer import ColarmOptimizer
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=21, n_records=120,
                              cardinalities=(4, 3, 3, 2, 3))
    index = build_mip_index(table, primary_support=0.05)
    return table, index


def test_choice_is_argmin(setup):
    _, index = setup
    optimizer = ColarmOptimizer(index)
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.3, 0.7)
    choice = optimizer.choose(query)
    assert choice.kind in PlanKind
    assert choice.estimates[choice.kind] == min(choice.estimates.values())
    assert set(choice.estimates) == set(PlanKind)


def test_explain_mentions_all_plans(setup):
    _, index = setup
    optimizer = ColarmOptimizer(index)
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.7)
    text = optimizer.choose(query).explain()
    for kind in PlanKind:
        assert kind.value in text
    assert "chosen" in text


def test_weights_change_choice(setup):
    """Extreme weights force the optimizer's hand — the knob works."""
    _, index = setup
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.3, 0.7)

    arm_free = CostWeights(
        {"nodes": 1e3, "touches": 1e3, "eliminate": 1e3, "verify": 1e3,
         "select": 0.0, "arm": 0.0, "const": 0.0}
    )
    optimizer = ColarmOptimizer(index, arm_free)
    assert optimizer.choose(query).kind is PlanKind.ARM

    arm_terrible = CostWeights(
        {"nodes": 0.0, "touches": 0.0, "eliminate": 0.0, "verify": 0.0,
         "select": 1e3, "arm": 1e3, "const": 0.0}
    )
    optimizer.set_weights(arm_terrible)
    assert optimizer.choose(query).kind is not PlanKind.ARM


def test_empty_focal_subset_rejected(setup):
    table, index = setup
    # find a selection with no records, if any; otherwise synthesize
    query = LocalizedQuery(
        {0: frozenset({0}), 1: frozenset({0}), 2: frozenset({0}),
         3: frozenset({0}), 4: frozenset({0})},
        0.3, 0.7,
    )
    if table.tids_matching(query.range_selections):
        pytest.skip("dataset has a record matching the all-zero selection")
    optimizer = ColarmOptimizer(index)
    with pytest.raises(QueryError):
        optimizer.choose(query)


def test_chosen_plan_executes(setup):
    _, index = setup
    optimizer = ColarmOptimizer(index)
    query = LocalizedQuery({0: frozenset({1})}, 0.35, 0.7)
    choice = optimizer.choose(query)
    result = execute_plan(choice.kind, index, query)
    assert result.kind is choice.kind


def test_profile_for_validates(setup):
    _, index = setup
    optimizer = ColarmOptimizer(index)
    with pytest.raises(QueryError):
        optimizer.profile_for(LocalizedQuery({99: frozenset({0})}, 0.3, 0.5))


def test_choice_is_generation_stamped(setup):
    _, index = setup
    optimizer = ColarmOptimizer(index)
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    choice = optimizer.choose(query)
    assert choice.generation == index.generation


def test_chosen_estimate_tracks_execution_variant(setup):
    """chosen_estimate is the admission-weight scalar: it must price the
    variant that will actually run (serial / sharded / cache serve)."""
    _, index = setup
    optimizer = ColarmOptimizer(index)
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    choice = optimizer.choose(query)

    serial = replace(choice, parallel=False, cached=False)
    assert serial.chosen_estimate == serial.estimates[serial.kind]

    sharded = replace(
        choice, parallel=True, cached=False,
        parallel_estimates={choice.kind: 0.25},
    )
    assert sharded.chosen_estimate == 0.25

    served = replace(
        choice, cached=True, cached_estimates={choice.kind: 0.01},
    )
    assert served.chosen_estimate == 0.01
