"""Cost-model calibration: probe generation and NNLS fitting."""

import pytest

from repro.core.calibration import calibrate, default_probe_queries
from repro.core.costs import DEFAULT_WEIGHTS
from repro.core.mipindex import build_mip_index
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def index():
    table = make_random_table(seed=31, n_records=100,
                              cardinalities=(4, 3, 3, 2, 3))
    return build_mip_index(table, primary_support=0.05)


def test_default_probe_queries(index):
    probes = default_probe_queries(index, n_queries=5, seed=3)
    assert len(probes) == 5
    for query in probes:
        assert index.table.tids_matching(query.range_selections) != 0
        assert 0 < query.minsupp <= 1


def test_probe_queries_deterministic(index):
    a = default_probe_queries(index, n_queries=4, seed=9)
    b = default_probe_queries(index, n_queries=4, seed=9)
    assert a == b


def test_calibrate_produces_usable_weights(index):
    report = calibrate(index, default_probe_queries(index, 4, seed=1))
    assert report.n_runs == 4 * 6  # every probe runs all six plans
    assert report.residual >= 0.0
    weights = report.weights.weights
    assert set(weights) == set(DEFAULT_WEIGHTS)
    assert all(w >= 0 for w in weights.values())
    assert any(w > 0 for w in weights.values())


def test_calibrated_weights_improve_fit(index):
    """Fitted weights should predict probe times at least as well as the
    defaults (they minimize exactly that residual)."""
    import numpy as np

    from repro import tidset as ts
    from repro.core.costs import CostModel, QueryProfile
    from repro.core.plans import PlanKind, execute_plan
    from repro.itemsets.apriori import min_count_for

    probes = default_probe_queries(index, 4, seed=7)
    report = calibrate(index, probes)

    default_model = CostModel(index.stats)
    fitted_model = CostModel(index.stats, report.weights)
    default_err, fitted_err = [], []
    for query in probes:
        focal = query.focal_range(index.cardinalities)
        dq = index.table.tids_matching(query.range_selections)
        profile = QueryProfile.from_query(
            query, focal, index.stats, ts.count(dq),
            min_count_for(query.minsupp, ts.count(dq)),
        )
        for kind in PlanKind:
            result = execute_plan(kind, index, query)
            focus = result.trace.by_name("FOCUS")
            measured = result.elapsed - (focus.elapsed if focus else 0)
            default_err.append(default_model.estimate(kind, profile) - measured)
            fitted_err.append(fitted_model.estimate(kind, profile) - measured)
    # Timing noise allows some slack, but the fit should not be far worse.
    assert np.sqrt(np.mean(np.square(fitted_err))) <= \
        2.0 * np.sqrt(np.mean(np.square(default_err)))


def test_degenerate_probe_does_not_poison_weights(index):
    """A probe whose ARM run explodes must not inflate every weight.

    The robust median-of-ratios fit exists exactly for this: synthesize a
    probe set that includes a degenerate two-record focal subset (whose
    rule fan-out blows up ARM's time relative to its load) and check that
    the fitted eliminate/verify weights stay within sane bounds of a fit
    without it.
    """
    from repro.core.query import LocalizedQuery

    clean = default_probe_queries(index, 4, seed=13)
    # find a tiny non-empty subset to serve as the degenerate probe
    degenerate = None
    table = index.table
    from repro import tidset as ts

    for a in range(table.n_attributes):
        for v in range(table.schema.attributes[a].cardinality):
            for b in range(table.n_attributes):
                if b == a:
                    continue
                for w in range(table.schema.attributes[b].cardinality):
                    sel = {a: frozenset({v}), b: frozenset({w})}
                    size = ts.count(table.tids_matching(sel))
                    if 1 <= size <= 4:
                        degenerate = LocalizedQuery(sel, 0.3, 0.5)
                        break
                if degenerate:
                    break
            if degenerate:
                break
        if degenerate:
            break
    if degenerate is None:
        pytest.skip("no tiny focal subset in this dataset")

    base = calibrate(index, clean)
    poisoned = calibrate(index, clean + [degenerate])
    for feature in ("eliminate", "verify", "search"):
        b = base.weights.weights[feature]
        p = poisoned.weights.weights[feature]
        assert p <= b * 10, (feature, b, p)
