"""The six mining plans: equivalence, traces, expansion semantics."""

import pytest

from repro import tidset as ts
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan, plan_from_name
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from tests.conftest import make_random_table

MIP_PLANS = (PlanKind.SEV, PlanKind.SVS, PlanKind.SSEV, PlanKind.SSVS,
             PlanKind.SSEUV)


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=8, n_records=90,
                              cardinalities=(4, 3, 3, 2, 3))
    index = build_mip_index(table, primary_support=0.05)
    return table, index


QUERIES = [
    LocalizedQuery({0: frozenset({1})}, 0.35, 0.6),
    LocalizedQuery({0: frozenset({0, 2}), 2: frozenset({1})}, 0.4, 0.7),
    LocalizedQuery({1: frozenset({0, 1})}, 0.25, 0.5,
                   item_attributes=frozenset({0, 2, 3})),
    LocalizedQuery({3: frozenset({0})}, 0.5, 0.9),
]


@pytest.mark.parametrize("query", QUERIES)
def test_all_mip_plans_identical(setup, query):
    _, index = setup
    results = {k: execute_plan(k, index, query) for k in MIP_PLANS}
    base = rule_key(results[PlanKind.SEV].rules)
    for kind in MIP_PLANS[1:]:
        assert rule_key(results[kind].rules) == base, kind


@pytest.mark.parametrize("query", QUERIES)
def test_expanded_plans_identical_including_arm(setup, query):
    """With the primary floor covering the query, expansion makes all six
    plans (including from-scratch ARM) return byte-identical rule sets."""
    table, index = setup
    dq = table.tids_matching(query.range_selections)
    floor_ok = index.primary_support <= query.minsupp * ts.count(dq) / len(table)
    assert floor_ok, "test setup must satisfy the POQM coverage condition"
    results = {
        k: execute_plan(k, index, query, expand=True) for k in PlanKind
    }
    base = rule_key(results[PlanKind.SEV].rules)
    for kind in PlanKind:
        assert rule_key(results[kind].rules) == base, kind


def test_mip_rules_subset_of_arm_expanded(setup):
    """Closed-itemset rules (expand=False) are a subset of the full
    expanded rule family."""
    _, index = setup
    query = QUERIES[0]
    closed_rules = execute_plan(PlanKind.SEV, index, query).rules
    expanded_rules = execute_plan(PlanKind.SEV, index, query, expand=True).rules
    expanded_keys = {(r.antecedent, r.consequent) for r in expanded_rules}
    for rule in closed_rules:
        assert (rule.antecedent, rule.consequent) in expanded_keys


@pytest.mark.parametrize(
    "kind,expected_ops",
    [
        (PlanKind.SEV, ["FOCUS", "SEARCH", "ELIMINATE", "VERIFY"]),
        (PlanKind.SVS, ["FOCUS", "SEARCH", "SUPPORTED-VERIFY"]),
        (PlanKind.SSEV, ["FOCUS", "SUPPORTED-SEARCH", "ELIMINATE", "VERIFY"]),
        (PlanKind.SSVS, ["FOCUS", "SUPPORTED-SEARCH", "SUPPORTED-VERIFY"]),
        (PlanKind.SSEUV,
         ["FOCUS", "SUPPORTED-SEARCH", "ELIMINATE", "UNION", "VERIFY"]),
        (PlanKind.ARM, ["FOCUS", "SELECT", "ARM"]),
    ],
)
def test_plan_operator_pipelines(setup, kind, expected_ops):
    """Each plan runs exactly the operator pipeline of Table 4 / Figs 5&7."""
    _, index = setup
    result = execute_plan(kind, index, QUERIES[0])
    assert [op.name for op in result.trace.operators] == expected_ops
    assert result.kind is kind
    assert result.elapsed > 0
    assert result.n_rules == len(result.rules)


def test_sseuv_contained_skip_record_checks(setup):
    """SS-E-U-V's ELIMINATE only sees partially overlapped candidates."""
    _, index = setup
    # A full-domain selection on one attribute makes many MIPs contained.
    query = LocalizedQuery({0: frozenset({0, 1, 2, 3})}, 0.3, 0.6)
    sseuv = execute_plan(PlanKind.SSEUV, index, query)
    ssev = execute_plan(PlanKind.SSEV, index, query)
    eliminate_sseuv = sseuv.trace.by_name("ELIMINATE")
    eliminate_ssev = ssev.trace.by_name("ELIMINATE")
    assert eliminate_sseuv.input_size <= eliminate_ssev.input_size
    assert rule_key(sseuv.rules) == rule_key(ssev.rules)


def test_plan_from_name():
    assert plan_from_name("SS-E-U-V") is PlanKind.SSEUV
    assert plan_from_name("ssev") is PlanKind.SSEV
    assert plan_from_name("ARM") is PlanKind.ARM
    assert plan_from_name("S-VS") is PlanKind.SVS
    with pytest.raises(QueryError):
        plan_from_name("nonsense")
