"""The Colarm engine facade."""

import pytest

from repro import Colarm, LocalizedQuery, PlanKind
from repro.errors import DataError, QueryError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def engine():
    table = make_random_table(seed=41, n_records=100,
                              cardinalities=(4, 3, 3, 2, 3))
    return Colarm(table, primary_support=0.05)


def test_construction_validates():
    table = make_random_table(seed=1, n_records=10)
    with pytest.raises(DataError):
        Colarm(table, primary_support=0.0)
    with pytest.raises(DataError):
        Colarm(table, primary_support=1.5)


def test_query_with_optimizer(engine):
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    outcome = engine.query(query)
    assert outcome.chosen_by == "optimizer"
    assert outcome.choice is not None
    assert outcome.plan is outcome.choice.kind
    assert outcome.n_rules == len(outcome.rules)
    assert outcome.elapsed > 0
    assert outcome.dq_size > 0


def test_query_with_forced_plan(engine):
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    for plan in (PlanKind.ARM, "SS-E-U-V", "sev"):
        outcome = engine.query(query, plan=plan)
        assert outcome.chosen_by == "forced"
        assert outcome.choice is None


def test_query_from_text(engine):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM t "
        "WHERE RANGE a0 = (v1) "
        "HAVING minsupport = 0.3 AND minconfidence = 0.6;"
    )
    outcome = engine.query(text)
    structured = engine.query(LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
                              plan=outcome.plan)
    key = lambda rs: [(r.antecedent, r.consequent) for r in rs]
    assert key(outcome.rules) == key(structured.rules)


def test_compare_plans_runs_all_six(engine):
    query = LocalizedQuery({0: frozenset({1, 2})}, 0.35, 0.7)
    results = engine.compare_plans(query)
    assert set(results) == set(PlanKind)
    key = lambda rs: sorted((r.antecedent, r.consequent) for r in rs)
    mip = [k for k in PlanKind if k is not PlanKind.ARM]
    base = key(results[mip[0]].rules)
    for kind in mip[1:]:
        assert key(results[kind].rules) == base


def test_choose_plan_without_execution(engine):
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    choice = engine.choose_plan(query)
    assert choice.kind in PlanKind


def test_calibrate_updates_optimizer(engine):
    before = engine.optimizer.weights
    report = engine.calibrate(n_probes=3, seed=5)
    assert engine.optimizer.weights is report.weights
    assert report.n_runs == 18


def test_global_rules(engine):
    rules = engine.global_rules(minsupp=0.3, minconf=0.5)
    table = engine.table
    for rule in rules:
        count = table.support_count(rule.items)
        assert count / table.n_records >= 0.3
        assert count / table.support_count(rule.antecedent) >= 0.5


def test_engine_introspection(engine):
    assert engine.n_mips == len(engine.index.mips)
    assert engine.schema is engine.table.schema


def test_bad_query_raises(engine):
    with pytest.raises(QueryError):
        engine.query(LocalizedQuery({99: frozenset({0})}, 0.3, 0.5))


def test_query_reuses_priced_choice(engine):
    """A caller that already priced the request (the serving layer) can
    hand its PlanChoice back and skip the second choose()."""
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    choice = engine.choose_plan(query)
    outcome = engine.query(query, choice=choice)
    assert outcome.choice is choice  # reused verbatim, not re-chosen
    assert outcome.plan is choice.kind


def test_query_rechooses_stale_choice():
    table = make_random_table(seed=43, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    engine = Colarm(table, primary_support=0.05)
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    choice = engine.choose_plan(query)
    assert choice.generation == engine.index.generation
    engine.index.rtree.tree.mutations += 1  # simulate index maintenance
    outcome = engine.query(query, choice=choice)
    assert outcome.choice is not choice  # stale generation: re-chosen
    assert outcome.choice.generation == engine.index.generation


def test_query_drops_cached_choice_without_consult():
    """A CACHE-variant choice must not survive into a use_cache=False
    call: the engine re-chooses instead of serving from the cache."""
    table = make_random_table(seed=44, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)
    query = LocalizedQuery({0: frozenset({1})}, 0.3, 0.6)
    warm_rules = engine.query(query).rules  # populate
    choice = engine.optimizer.choose(query, use_cache=True)
    assert choice.cached  # precondition: repeat would be a cache serve
    outcome = engine.query(query, use_cache=False, choice=choice)
    assert not outcome.cached
    assert outcome.choice is not choice
    assert outcome.rules == warm_rules
