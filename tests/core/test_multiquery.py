"""Multi-query batching: identical output, shared work."""

import pytest

from repro.core.mipindex import build_mip_index
from repro.core.multiquery import execute_batch
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def index():
    table = make_random_table(seed=51, n_records=100,
                              cardinalities=(4, 3, 3, 2, 3))
    return build_mip_index(table, primary_support=0.05)


def rule_key(rules):
    return sorted((r.antecedent, r.consequent, r.support_count) for r in rules)


def test_batch_matches_individual_execution(index):
    queries = [
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
        LocalizedQuery({0: frozenset({1})}, 0.4, 0.8),      # same subset
        LocalizedQuery({1: frozenset({0, 1})}, 0.3, 0.6),   # different subset
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6,
                       item_attributes=frozenset({1, 2})),
    ]
    report = execute_batch(index, queries)
    assert report.n_queries == 4
    for item, query in zip(report.items, queries):
        solo = execute_plan(PlanKind.SEV, index, query)
        assert rule_key(item.rules) == rule_key(solo.rules), query
        assert item.dq_size == solo.dq_size


def test_batch_shares_focal_groups(index):
    queries = [
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
        LocalizedQuery({0: frozenset({1})}, 0.5, 0.9),
        LocalizedQuery({0: frozenset({2})}, 0.3, 0.6),
    ]
    report = execute_batch(index, queries)
    assert report.n_groups == 2
    assert report.n_searches == 2
    assert report.items[0].shared_group == report.items[1].shared_group
    assert report.items[0].shared_group != report.items[2].shared_group


def test_batch_groups_canonical_focal_subsets(index):
    """A full-domain selection spells the same focal subset implicitly:
    queries differing only in thresholds (and spelling) share one group."""
    cards = index.cardinalities
    queries = [
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
        LocalizedQuery(
            {0: frozenset({1}), 1: frozenset(range(cards[1]))}, 0.4, 0.8
        ),
    ]
    report = execute_batch(index, queries)
    assert report.n_groups == 1
    assert report.n_searches == 1
    assert report.items[0].shared_group == report.items[1].shared_group
    for item, query in zip(report.items, queries):
        solo = execute_plan(PlanKind.SEV, index, query)
        assert rule_key(item.rules) == rule_key(solo.rules), query


def test_batch_shares_lattice_counts_across_thresholds(index):
    """Same focal subset probed at several minconfs: later queries replay
    the memoized subset-lattice rows instead of recounting."""
    queries = [
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.75),
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.9),
    ]
    report = execute_batch(index, queries)
    assert report.lattice_hits > 0
    for item, query in zip(report.items, queries):
        solo = execute_plan(PlanKind.SEV, index, query)
        assert rule_key(item.rules) == rule_key(solo.rules), query


def test_batch_lattice_hits_zero_for_distinct_subsets(index):
    queries = [
        LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
        LocalizedQuery({0: frozenset({2})}, 0.3, 0.6),
    ]
    report = execute_batch(index, queries)
    assert report.lattice_hits == 0


def test_batch_expand_mode(index):
    queries = [LocalizedQuery({0: frozenset({1})}, 0.35, 0.7)]
    report = execute_batch(index, queries, expand=True)
    solo = execute_plan(PlanKind.SEV, index, queries[0], expand=True)
    assert rule_key(report.items[0].rules) == rule_key(solo.rules)


def test_empty_batch_rejected(index):
    with pytest.raises(QueryError):
        execute_batch(index, [])


def test_batch_rejects_empty_subset(index):
    table = index.table
    impossible = LocalizedQuery(
        {0: frozenset({0}), 1: frozenset({2}), 2: frozenset({0}),
         3: frozenset({1}), 4: frozenset({2})},
        0.3, 0.5,
    )
    if table.tids_matching(impossible.range_selections):
        pytest.skip("selection unexpectedly non-empty")
    with pytest.raises(QueryError):
        execute_batch(index, [impossible])
