"""MIP bounding boxes and local counts."""

from repro import tidset as ts
from repro.core.mip import MIP, mip_bounding_box
from repro.itemsets.charm import charm
from repro.rtree.geometry import Rect


def test_bounding_box_construction(salary):
    a0 = salary.schema.item("Age", "20-30")       # attr 4, value 0
    s2 = salary.schema.item("Salary", "90K-120K")  # attr 5, value 2
    cards = salary.schema.cardinalities()
    box = mip_bounding_box((a0, s2), cards)
    # Free attributes span their domain; fixed ones collapse to a cell.
    assert box.lows == (0, 0, 0, 0, 0, 2)
    assert box.highs == (3, 5, 2, 1, 0, 2)


def test_empty_itemset_box_is_full_domain(salary):
    cards = salary.schema.cardinalities()
    assert mip_bounding_box((), cards) == Rect.full_domain(cards)


def test_from_closed(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.3)
    cards = salary.schema.cardinalities()
    for cfi in closed:
        mip = MIP.from_closed(cfi, cards)
        assert mip.itemset == cfi.items
        assert mip.tidset == cfi.tidset
        assert mip.global_count == cfi.support_count
        assert mip.length == cfi.length
        assert mip.fixed_attributes == {i.attribute for i in cfi.items}
        # every supporting record's coordinates lie inside the box
        for tid in ts.iter_tids(mip.tidset):
            coords = tuple(int(v) for v in salary.data[tid])
            assert mip.box.contains_point(coords)


def test_local_count(salary):
    closed = charm(salary.item_tidsets(), salary.n_records, 0.3)
    cards = salary.schema.cardinalities()
    mip = MIP.from_closed(closed[0], cards)
    dq = ts.from_tids(range(5))
    assert mip.local_count(dq) == ts.count(mip.tidset & dq)
    assert mip.local_count(ts.full(salary.n_records)) == mip.global_count
    assert mip.local_count(ts.EMPTY) == 0
