"""Incremental maintenance: delta-exactness against full rebuilds."""

import numpy as np
import pytest

from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.errors import DataError
from tests.conftest import make_random_table


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@pytest.fixture()
def maintained():
    table = make_random_table(seed=111, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    return table, MaintainedIndex(table, primary_support=0.05,
                                  auto_rebuild=False)


QUERY = LocalizedQuery({0: frozenset({1, 2})}, 0.35, 0.6)


def make_new_records(n, seed, cards=(4, 3, 3, 2)):
    rng = np.random.default_rng(seed)
    return [
        [int(rng.integers(0, c)) for c in cards]
        for _ in range(n)
    ]


def test_no_delta_matches_plain_index(maintained):
    table, mx = maintained
    index = build_mip_index(table, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, index, QUERY).rules
    assert rule_key(mx.query(QUERY)) == rule_key(expected)


def test_delta_query_equals_full_rebuild(maintained):
    """The delta-corrected answer must equal mining the combined table."""
    table, mx = maintained
    new_records = make_new_records(7, seed=5)
    mx.append(new_records)
    assert mx.n_delta_records == 7
    assert mx.coverage_guaranteed(QUERY, dq_size=40) or True  # informational

    combined = RelationalTable(
        table.schema,
        np.vstack([table.data, np.asarray(new_records, dtype=np.int32)]),
    )
    fresh = build_mip_index(combined, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    got = mx.query(QUERY)
    # Exactness holds when the coverage condition is met for this query;
    # with 7 delta records over 80 it comfortably is for minsupp 0.35.
    assert rule_key(got) == rule_key(expected)


def test_rebuild_folds_delta(maintained):
    table, mx = maintained
    mx.append(make_new_records(5, seed=9))
    before = mx.query(QUERY)
    mx.rebuild()
    assert mx.n_delta_records == 0
    assert mx.n_main_records == 85
    assert mx.n_rebuilds == 1
    assert rule_key(mx.query(QUERY)) == rule_key(before)


def test_auto_rebuild_threshold():
    table = make_random_table(seed=113, n_records=60,
                              cardinalities=(4, 3, 3, 2))
    mx = MaintainedIndex(table, primary_support=0.05,
                         max_delta_fraction=0.1, auto_rebuild=True)
    mx.append(make_new_records(5, seed=1))  # 5/60 < 10%? 5/60 = 8.3% -> no
    assert mx.n_rebuilds == 0
    mx.append(make_new_records(3, seed=2))  # 8/60 > 10% -> rebuild
    assert mx.n_rebuilds == 1
    assert mx.n_main_records == 68


def test_append_validation(maintained):
    _, mx = maintained
    with pytest.raises(DataError):
        mx.append([[0, 0]])  # wrong width
    with pytest.raises(DataError):
        mx.append([[9, 0, 0, 0]])  # out of domain


def test_coverage_guarantee_boundary(maintained):
    _, mx = maintained
    mx.append(make_new_records(6, seed=3))
    # floor = 0.05 * 80 = 4; guarantee needs minsupp*dq >= 4 + 6 = 10
    q_ok = LocalizedQuery({0: frozenset({1})}, 0.5, 0.5)
    q_bad = LocalizedQuery({0: frozenset({1})}, 0.2, 0.5)
    assert mx.coverage_guaranteed(q_ok, dq_size=25)
    assert not mx.coverage_guaranteed(q_bad, dq_size=25)


def test_empty_focal_subset(maintained):
    _, mx = maintained
    impossible = LocalizedQuery(
        {0: frozenset({3}), 1: frozenset({2}), 2: frozenset({2}),
         3: frozenset({1})},
        0.5, 0.5,
    )
    if mx.index.table.tids_matching(impossible.range_selections):
        pytest.skip("selection unexpectedly non-empty")
    assert mx.query(impossible) == []


def test_many_appends_random_equivalence():
    """Randomized: repeated appends, each query checked vs full rebuild."""
    table = make_random_table(seed=117, n_records=70,
                              cardinalities=(3, 3, 2, 3))
    mx = MaintainedIndex(table, primary_support=0.04, auto_rebuild=False)
    all_rows = [table.data]
    rng = np.random.default_rng(0)
    for step in range(3):
        new = make_new_records(4, seed=step + 40, cards=(3, 3, 2, 3))
        mx.append(new)
        all_rows.append(np.asarray(new, dtype=np.int32))
        combined = RelationalTable(table.schema, np.vstack(all_rows))
        fresh = build_mip_index(combined, primary_support=0.04)
        query = LocalizedQuery(
            {int(rng.integers(0, 4)): frozenset({0, 1})}, 0.4, 0.6
        )
        expected = execute_plan(PlanKind.SEV, fresh, query).rules
        assert rule_key(mx.query(query)) == rule_key(expected), step


def test_flat_form_tracks_index_lifecycle(maintained):
    """The maintained index's hull searches use the flat traversal while
    current, fall back (never stale) after direct R-tree mutations, and a
    rebuild's fresh index carries a fresh compile."""
    from repro.rtree.geometry import Rect

    _, mx = maintained
    assert mx.flat_rtree_current
    before = rule_key(mx.query(QUERY))

    # Mutate the pointer tree directly: flat goes stale, answers unchanged.
    tree = mx.index.rtree.tree
    mip = mx.index.mips[0]
    assert tree.delete(mip.box, mip)
    tree.insert(mip.box, mip, count=mip.global_count)
    assert not mx.flat_rtree_current
    assert rule_key(mx.query(QUERY)) == before

    # Explicit recompile restores the vectorized path, same answers.
    mx.index.recompile_flat()
    assert mx.flat_rtree_current
    assert rule_key(mx.query(QUERY)) == before

    # A rebuild produces a new index whose flat form is compiled and
    # current out of the box.
    mx.append(make_new_records(5, seed=77))
    mx.rebuild()
    assert mx.flat_rtree_current
    full = Rect.full_domain(mx.index.cardinalities)
    assert len(mx.index.rtree.search(full).entries) == mx.index.n_mips
