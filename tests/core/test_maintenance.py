"""Incremental maintenance: delta-exactness against full rebuilds."""

import numpy as np
import pytest

from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.errors import DataError
from tests.conftest import make_random_table


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@pytest.fixture()
def maintained():
    table = make_random_table(seed=111, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    return table, MaintainedIndex(table, primary_support=0.05,
                                  auto_rebuild=False)


QUERY = LocalizedQuery({0: frozenset({1, 2})}, 0.35, 0.6)


def make_new_records(n, seed, cards=(4, 3, 3, 2)):
    rng = np.random.default_rng(seed)
    return [
        [int(rng.integers(0, c)) for c in cards]
        for _ in range(n)
    ]


def test_no_delta_matches_plain_index(maintained):
    table, mx = maintained
    index = build_mip_index(table, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, index, QUERY).rules
    assert rule_key(mx.query(QUERY)) == rule_key(expected)


def test_delta_query_equals_full_rebuild(maintained):
    """The delta-corrected answer must equal mining the combined table."""
    table, mx = maintained
    new_records = make_new_records(7, seed=5)
    mx.append(new_records)
    assert mx.n_delta_records == 7
    assert mx.coverage_guaranteed(QUERY, dq_size=40) or True  # informational

    combined = RelationalTable(
        table.schema,
        np.vstack([table.data, np.asarray(new_records, dtype=np.int32)]),
    )
    fresh = build_mip_index(combined, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    got = mx.query(QUERY)
    # Exactness holds when the coverage condition is met for this query;
    # with 7 delta records over 80 it comfortably is for minsupp 0.35.
    assert rule_key(got) == rule_key(expected)


def test_rebuild_folds_delta(maintained):
    table, mx = maintained
    mx.append(make_new_records(5, seed=9))
    before = mx.query(QUERY)
    mx.rebuild()
    assert mx.n_delta_records == 0
    assert mx.n_main_records == 85
    assert mx.n_rebuilds == 1
    assert rule_key(mx.query(QUERY)) == rule_key(before)


def test_auto_rebuild_threshold():
    table = make_random_table(seed=113, n_records=60,
                              cardinalities=(4, 3, 3, 2))
    mx = MaintainedIndex(table, primary_support=0.05,
                         max_delta_fraction=0.1, auto_rebuild=True)
    mx.append(make_new_records(5, seed=1))  # 5/60 < 10%? 5/60 = 8.3% -> no
    assert mx.n_rebuilds == 0
    mx.append(make_new_records(3, seed=2))  # 8/60 > 10% -> rebuild
    assert mx.n_rebuilds == 1
    assert mx.n_main_records == 68


def test_append_validation(maintained):
    _, mx = maintained
    with pytest.raises(DataError):
        mx.append([[0, 0]])  # wrong width
    with pytest.raises(DataError):
        mx.append([[9, 0, 0, 0]])  # out of domain


def test_coverage_guarantee_boundary(maintained):
    _, mx = maintained
    mx.append(make_new_records(6, seed=3))
    # floor = 0.05 * 80 = 4; guarantee needs minsupp*dq >= 4 + 6 = 10
    q_ok = LocalizedQuery({0: frozenset({1})}, 0.5, 0.5)
    q_bad = LocalizedQuery({0: frozenset({1})}, 0.2, 0.5)
    assert mx.coverage_guaranteed(q_ok, dq_size=25)
    assert not mx.coverage_guaranteed(q_bad, dq_size=25)


def test_empty_focal_subset(maintained):
    _, mx = maintained
    impossible = LocalizedQuery(
        {0: frozenset({3}), 1: frozenset({2}), 2: frozenset({2}),
         3: frozenset({1})},
        0.5, 0.5,
    )
    if mx.index.table.tids_matching(impossible.range_selections):
        pytest.skip("selection unexpectedly non-empty")
    assert mx.query(impossible) == []


def test_many_appends_random_equivalence():
    """Randomized: repeated appends, each query checked vs full rebuild."""
    table = make_random_table(seed=117, n_records=70,
                              cardinalities=(3, 3, 2, 3))
    mx = MaintainedIndex(table, primary_support=0.04, auto_rebuild=False)
    all_rows = [table.data]
    rng = np.random.default_rng(0)
    for step in range(3):
        new = make_new_records(4, seed=step + 40, cards=(3, 3, 2, 3))
        mx.append(new)
        all_rows.append(np.asarray(new, dtype=np.int32))
        combined = RelationalTable(table.schema, np.vstack(all_rows))
        fresh = build_mip_index(combined, primary_support=0.04)
        query = LocalizedQuery(
            {int(rng.integers(0, 4)): frozenset({0, 1})}, 0.4, 0.6
        )
        expected = execute_plan(PlanKind.SEV, fresh, query).rules
        assert rule_key(mx.query(query)) == rule_key(expected), step


def test_append_bumps_generation(maintained):
    """Every delta mutation must advance the logical generation — the
    staleness token every cache entry and priced choice is stamped with."""
    _, mx = maintained
    g0 = mx.generation
    mx.append(make_new_records(3, seed=21))
    g1 = mx.generation
    assert g1 > g0
    mx.delete([0])
    assert mx.generation > g1
    # ...without knocking queries off the flat R-tree fast path.
    assert mx.flat_rtree_current


def test_cache_staleness_append_between_populate_and_probe():
    """Regression for the staleness hole: a cache entry populated before
    an append must not be served after it — the append bumps the
    generation, the probe drops the stale entry, and the fresh answer
    reflects the delta."""
    table = make_random_table(seed=119, n_records=90,
                              cardinalities=(4, 3, 3, 2))
    from repro.core.engine import Colarm

    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)
    engine.enable_maintenance(calibrate=False)
    engine.query(QUERY, plan=PlanKind.SEV)       # populates the cache
    assert engine.cache.probe(QUERY).kind == "rules"

    new_records = make_new_records(6, seed=31)
    engine.append(new_records)
    assert engine.cache.probe(QUERY).kind is None  # stale entry dropped

    combined = RelationalTable(
        table.schema,
        np.vstack([table.data, np.asarray(new_records, dtype=np.int32)]),
    )
    fresh = build_mip_index(combined, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    got = engine.query(QUERY, plan=PlanKind.SEV)
    assert not got.cached
    assert rule_key(got.rules) == rule_key(expected)
    # The delta-corrected answer repopulated the cache at the new
    # generation; the repeat serves it byte-identically.
    again = engine.query(QUERY, plan=PlanKind.SEV)
    assert again.cached
    assert rule_key(again.rules) == rule_key(expected)


def test_delete_matches_rebuild_of_live_subset(maintained):
    table, mx = maintained
    new = make_new_records(6, seed=13)
    mx.append(new)
    # Tombstone two main records and one delta record (tid 80+2 = delta 2).
    mx.delete([3, 17, 82])
    assert mx.n_main_live == 78
    assert mx.n_delta_records == 5
    live_main = np.delete(table.data, [3, 17], axis=0)
    live_delta = np.asarray(new, dtype=np.int32)[[0, 1, 3, 4, 5]]
    fresh = build_mip_index(
        RelationalTable(table.schema, np.vstack([live_main, live_delta])),
        primary_support=0.05,
    )
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    assert rule_key(mx.query(QUERY)) == rule_key(expected)
    # Deletes are idempotent; repeating them changes nothing but the clock.
    mx.delete([3, 82])
    assert mx.n_main_live == 78 and mx.n_delta_records == 5
    assert rule_key(mx.query(QUERY)) == rule_key(expected)


def test_batched_append_validation_is_all_or_nothing(maintained):
    """The batched validation admits no partial writes: one bad row
    rejects the whole batch before anything lands in the delta store."""
    _, mx = maintained
    g0 = mx.generation
    with pytest.raises(DataError):
        mx.append([[0, 0, 0, 0], [1, 1]])          # ragged batch
    with pytest.raises(DataError):
        mx.append([[0, 0, 0, 0], [0, 9, 0, 0]])    # out-of-domain value
    with pytest.raises(DataError):
        mx.append([[0, 0, 0, -1]])                 # negative value
    with pytest.raises(DataError):
        mx.append([["a", "b", "c", "d"]])          # non-integer payload
    assert mx.n_delta_records == 0
    assert mx.generation == g0


def test_delta_buffer_grows_as_packed_matrices(maintained):
    """The delta store is one growable 2-D array per matrix (amortized
    doubling), not a list of per-record rows."""
    _, mx = maintained
    buf = mx._buffer
    assert isinstance(buf.data, np.ndarray) and buf.data.ndim == 2
    assert isinstance(buf.items, np.ndarray) and buf.items.ndim == 2
    assert buf.items.dtype == np.dtype("<u8")
    start_capacity = buf.capacity
    mx.append(make_new_records(start_capacity + 1, seed=55))
    assert mx._buffer.capacity >= 2 * start_capacity
    assert mx._buffer.n_live == start_capacity + 1
    # Capacity growth keeps the packed columns word-aligned.
    assert mx._buffer.items.shape[1] == -(-mx._buffer.capacity // 64)


def test_background_recompaction_with_interleaved_mutations(maintained):
    """Appends and deletes racing a background fold land in the op log and
    survive the install — the final state equals a from-scratch build."""
    table, mx = maintained
    mx.append(make_new_records(8, seed=61))
    before = rule_key(mx.query(QUERY))
    assert mx.begin_recompaction()
    # Mutations while the fold is in flight:
    late = make_new_records(4, seed=62)
    mx.append(late)
    mx.delete([2, 81])  # one main record, one pre-snapshot delta record
    generation = mx.poll_recompaction(wait=True)
    assert generation is not None and mx.generation == generation
    assert not mx.recompacting

    rows = [table.data]
    delta = np.asarray(make_new_records(8, seed=61), dtype=np.int32)
    rows.append(np.delete(delta, [1], axis=0))  # tid 81 = delta pos 1
    live_main = np.delete(table.data, [2], axis=0)
    combined = np.vstack([live_main, np.delete(delta, [1], axis=0),
                          np.asarray(late, dtype=np.int32)])
    fresh = build_mip_index(
        RelationalTable(table.schema, combined), primary_support=0.05
    )
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    assert rule_key(mx.query(QUERY)) == rule_key(expected)
    assert rule_key(mx.query(QUERY)) != before or before == rule_key(expected)


def test_engine_append_delete_and_background_fold():
    """Colarm.append/delete ride the delta store; outgrowing the fraction
    starts a background fold that the next query installs, rebinding the
    optimizer and cache to the fresh index."""
    from repro.core.engine import Colarm

    table = make_random_table(seed=127, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)
    engine.enable_maintenance(max_delta_fraction=0.1, calibrate=False)
    old_index = engine.index

    gen = engine.append(make_new_records(5, seed=71))
    assert gen == engine.index.generation
    engine.delete([0])
    assert engine.maintenance.n_main_live == 79
    # 5 appends + 1 tombstone < 10% of 80: no fold yet.
    assert not engine.maintenance.recompacting and engine.index is old_index

    engine.append(make_new_records(4, seed=72))  # 10 mutations > 8: fold
    engine.maintenance.poll_recompaction(wait=True)
    outcome = engine.query(QUERY)  # installs the finished fold
    assert engine.index is not old_index
    assert engine.index is engine.maintenance.index
    assert engine.optimizer.index is engine.index
    assert engine.cache.index is engine.index
    assert engine.maintenance.n_delta_records == 0
    assert engine.index.table.n_records == 88  # 80 - 1 dead + 9 appended

    combined = engine.index.table
    fresh = build_mip_index(combined, primary_support=0.05)
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    assert rule_key(execute_plan(
        PlanKind.SEV, engine.index, QUERY,
        delta=engine.maintenance).rules) == rule_key(expected)
    assert outcome.n_rules >= 0  # the install path returned a live answer


def test_maintained_persistence_roundtrip(tmp_path, maintained):
    """save_maintained/load_maintained: the sidecar replays tombstones and
    delta records and restores the generation clock."""
    from repro.core.persistence import (
        delta_sidecar_path,
        load_maintained,
        save_maintained,
    )

    _, mx = maintained
    mx.append(make_new_records(6, seed=91))
    mx.delete([5, 82])
    before = rule_key(mx.query(QUERY))
    path = tmp_path / "m.colarm.npz"
    save_maintained(mx, path)
    assert delta_sidecar_path(path).exists()

    loaded, _weights = load_maintained(path)
    assert loaded.generation == mx.generation
    assert loaded.n_main_records == mx.n_main_records
    assert loaded.n_main_live == mx.n_main_live
    assert loaded.n_delta_records == mx.n_delta_records
    assert rule_key(loaded.query(QUERY)) == before


def test_service_ingest_is_serialized_with_queries():
    """QueryService.ingest lands batches atomically between flights."""
    import asyncio

    from repro.core.engine import Colarm
    from repro.serving import QueryService, ServingConfig

    table = make_random_table(seed=131, n_records=80,
                              cardinalities=(4, 3, 3, 2))
    engine = Colarm(table, primary_support=0.05)
    engine.enable_maintenance(calibrate=False)

    async def scenario():
        async with QueryService(engine, ServingConfig(workers=2)) as svc:
            first = await svc.submit(QUERY)
            gen = await svc.ingest(make_new_records(6, seed=81))
            assert gen == engine.index.generation
            second = await svc.submit(QUERY)
            gen2 = await svc.remove([1])
            assert gen2 > gen
            third = await svc.submit(QUERY)
            snap = svc.snapshot()
            return first, second, third, snap

    first, second, third, snap = asyncio.run(scenario())
    assert snap["maintenance"]["delta_records"] == 6
    assert snap["maintenance"]["main_live"] == 79
    live = np.vstack([
        np.delete(table.data, [1], axis=0),
        np.asarray(make_new_records(6, seed=81), dtype=np.int32),
    ])
    fresh = build_mip_index(
        RelationalTable(table.schema, live), primary_support=0.05
    )
    expected = execute_plan(PlanKind.SEV, fresh, QUERY).rules
    assert rule_key(third.rules) == rule_key(expected)
    assert first.rules is not None and second.rules is not None


def test_flat_form_tracks_index_lifecycle(maintained):
    """The maintained index's hull searches use the flat traversal while
    current, fall back (never stale) after direct R-tree mutations, and a
    rebuild's fresh index carries a fresh compile."""
    from repro.rtree.geometry import Rect

    _, mx = maintained
    assert mx.flat_rtree_current
    before = rule_key(mx.query(QUERY))

    # Mutate the pointer tree directly: flat goes stale, answers unchanged.
    tree = mx.index.rtree.tree
    mip = mx.index.mips[0]
    assert tree.delete(mip.box, mip)
    tree.insert(mip.box, mip, count=mip.global_count)
    assert not mx.flat_rtree_current
    assert rule_key(mx.query(QUERY)) == before

    # Explicit recompile restores the vectorized path, same answers.
    mx.index.recompile_flat()
    assert mx.flat_rtree_current
    assert rule_key(mx.query(QUERY)) == before

    # A rebuild produces a new index whose flat form is compiled and
    # current out of the box.
    mx.append(make_new_records(5, seed=77))
    mx.rebuild()
    assert mx.flat_rtree_current
    full = Rect.full_domain(mx.index.cardinalities)
    assert len(mx.index.rtree.search(full).entries) == mx.index.n_mips
