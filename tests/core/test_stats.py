"""Index statistics: every precomputed profile checked against brute force."""

import numpy as np
import pytest

from repro import tidset as ts
from repro.core.mipindex import build_mip_index
from repro.core.stats import LevelCountProfile
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=71, n_records=90,
                              cardinalities=(4, 3, 3, 2))
    index = build_mip_index(table, primary_support=0.08)
    return table, index


def test_basic_shape(setup):
    table, index = setup
    stats = index.stats
    assert stats.n_records == table.n_records
    assert stats.n_attributes == table.n_attributes
    assert stats.cardinalities == table.schema.cardinalities()
    assert stats.n_mips == len(index.mips)
    assert stats.primary_support == index.primary_support


def test_avg_box_extents(setup):
    _, index = setup
    stats = index.stats
    for dim in range(stats.n_attributes):
        expected = np.mean([m.box.extent(dim) for m in index.mips])
        assert stats.avg_box_extents[dim] == pytest.approx(expected)


def test_length_histogram_and_derived(setup):
    _, index = setup
    stats = index.stats
    lengths = [m.length for m in index.mips]
    assert sum(stats.length_histogram.values()) == len(lengths)
    assert stats.avg_length == pytest.approx(np.mean(lengths))
    assert stats.max_length == max(lengths)
    assert stats.avg_pow2_length == pytest.approx(
        np.mean([2.0 ** min(length, 16) for length in lengths])
    )


def test_attr_fix_prob(setup):
    _, index = setup
    stats = index.stats
    for dim in range(stats.n_attributes):
        expected = np.mean(
            [dim in m.fixed_attributes for m in index.mips]
        )
        assert stats.attr_fix_prob[dim] == pytest.approx(expected)


def test_fraction_with_count_at_least(setup):
    _, index = setup
    stats = index.stats
    counts = [m.global_count for m in index.mips]
    for threshold in (1, 10, max(counts), max(counts) + 1):
        expected = sum(1 for c in counts if c >= threshold) / len(counts)
        assert stats.fraction_with_count_at_least(threshold) == expected


def test_mip_fixed_values_matrix(setup):
    _, index = setup
    stats = index.stats
    for i, mip in enumerate(index.mips):
        fixed = {item.attribute: item.value for item in mip.itemset}
        for a in range(stats.n_attributes):
            assert stats.mip_fixed_values[i, a] == fixed.get(a, -1)


def test_item_local_counts_matrix(setup):
    table, index = setup
    stats = index.stats
    for (attribute, value), col in stats.item_columns.items():
        mask = table.item_tidsets().get((attribute, value))
        if mask is None:
            from repro.dataset.schema import Item

            mask = table.item_tidset(Item(attribute, value))
        for i, mip in enumerate(index.mips):
            assert stats.item_local_counts[i, col] == ts.count(
                mip.tidset & mask
            )


def test_level_count_profile():
    profile = LevelCountProfile(0, np.asarray([1, 3, 3, 7]))
    assert profile.fraction_at_least(0) == 1.0
    assert profile.fraction_at_least(3) == 0.75
    assert profile.fraction_at_least(8) == 0.0
    empty = LevelCountProfile(0, np.asarray([], dtype=np.int64))
    assert empty.fraction_at_least(1) == 0.0


def test_tidset_words(setup):
    _, index = setup
    assert index.stats.tidset_words == -(-index.stats.n_records // 64)


def test_level_counts_cover_tree(setup):
    _, index = setup
    stats = index.stats
    leaf_profile = next(p for p in stats.level_counts if p.level == 0)
    assert len(leaf_profile.sorted_max_counts) == \
        next(s for s in stats.level_stats if s.level == 0).n_nodes
