"""Unit tests for sharded execution: pool lifecycle, engine opt-in,
and the parallel-aware optimizer.

The merge *algebra* is covered property-style in
``tests/property/test_parallel_properties.py``; this file covers the
plumbing around it — the executor serves exact counts through a real
pool, ``Colarm.configure`` installs and tears down the whole stack, the
sharded plans return byte-identical rules, and the optimizer prices
parallel variants sanely (in particular: an infinite per-dispatch cost
must make it never choose a sharded variant).
"""

import numpy as np
import pytest

from repro import kernels
from repro.core.costs import CostModel, CostWeights, ParallelCostProfile
from repro.core.engine import Colarm
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.parallel import (
    ParallelConfig,
    ParallelContext,
    ShardedExecutor,
    shard_words,
)

QUERY = LocalizedQuery({0: frozenset({0, 1})}, 0.3, 0.6)


def _rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count) for r in rules
    )


def test_shard_words_degenerate_edges():
    assert shard_words(0, 3) == [(0, 0), (0, 0), (0, 0)]
    assert shard_words(5, 1) == [(0, 5)]
    assert shard_words(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_executor_rejects_bad_shard_count():
    with pytest.raises(ValueError, match="n_shards"):
        ShardedExecutor({}, ParallelConfig(n_shards=0))


def test_executor_exact_counts_through_real_pool():
    rng = np.random.default_rng(3)
    n_records = 1000  # not a multiple of 64: the last word has padding
    words = kernels.n_words(n_records)
    matrix = np.zeros((40, words), dtype=kernels._WORD_DTYPE)
    packed = np.packbits(
        rng.random((40, n_records)) < 0.3, axis=1, bitorder="little"
    )
    matrix.view(np.uint8)[:, : packed.shape[1]] = packed
    mask = matrix[-1]
    executor = ShardedExecutor({"m": matrix}, ParallelConfig(n_shards=3))
    try:
        rows = np.asarray([0, 5, 5, 17, 39], dtype=np.int64)
        got = executor.and_count("m", rows, mask, words)
        want = kernels.and_count(matrix[rows], mask).astype(np.int64)
        assert np.array_equal(got, want)
        got = executor.popcount_rows("m", rows, words)
        want = kernels.popcount_rows(matrix[rows]).astype(np.int64)
        assert np.array_equal(got, want)
    finally:
        executor.close()
    assert not executor.available


def test_context_lifecycle_and_describe(salary_index):
    ctx = ParallelContext(salary_index, ParallelConfig(n_shards=2))
    try:
        desc = ctx.describe()
        assert desc["n_shards"] == 2
        assert desc["dispatch_s"] > 0
        profile = ctx.cost_profile()
        assert isinstance(profile, ParallelCostProfile)
        assert profile.n_shards == 2
        assert 1 <= profile.effective_workers <= 2
    finally:
        ctx.close()
    assert not ctx.available


def test_engine_configure_and_sharded_rules_identical(salary):
    engine = Colarm(salary, primary_support=0.15)
    serial = engine.query(QUERY)
    engine.configure(parallel=ParallelConfig(n_shards=2, force=True))
    assert engine.parallel is not None
    assert engine.optimizer.parallel_profile is not None
    # Calibration installed the measured parallel weights.
    assert engine.optimizer.weights.weights["par_dispatch"] > 0
    # Forced plans execute with the context attached; rules identical.
    for kind in PlanKind:
        forced = engine.query(QUERY, plan=kind)
        ref = execute_plan(kind, engine.index, QUERY)
        assert _rule_key(forced.rules) == _rule_key(ref.rules), kind
    sharded = engine.query(QUERY)
    assert _rule_key(sharded.rules) == _rule_key(serial.rules)
    # The optimizer choice now carries parallel estimates for MIP plans.
    choice = engine.choose_plan(QUERY)
    assert choice.parallel_estimates
    assert PlanKind.ARM not in choice.parallel_estimates
    assert "+P" in choice.explain()
    engine.close()
    assert engine.parallel is None
    assert engine.optimizer.parallel_profile is None
    # Serial again after teardown.
    after = engine.query(QUERY)
    assert _rule_key(after.rules) == _rule_key(serial.rules)


def test_configure_is_idempotent_and_reconfigurable(salary):
    engine = Colarm(salary, primary_support=0.15)
    engine.configure(parallel=True)
    first = engine.parallel
    assert first is not None
    engine.configure(parallel=ParallelConfig(n_shards=2))
    assert engine.parallel is not first
    assert not first.available  # previous pool really torn down
    engine.close()


def test_optimizer_never_parallel_with_infinite_dispatch(salary_engine):
    """Pricing sanity: if a shard dispatch costs infinity, no parallel
    variant can ever win — the CI self-test gate relies on this."""
    optimizer = salary_engine.optimizer
    original = optimizer.weights
    weights = dict(original.weights)
    weights["par_dispatch"] = float("inf")
    optimizer.set_weights(CostWeights(weights))
    optimizer.set_parallel(ParallelCostProfile(n_shards=4,
                                               effective_workers=4))
    try:
        choice = optimizer.choose(QUERY)
        assert not choice.parallel
        assert all(
            np.isinf(cost) for cost in choice.parallel_estimates.values()
        )
    finally:
        optimizer.set_parallel(None)
        optimizer.set_weights(original)


def test_parallel_loads_scale_with_workers(salary_engine):
    """More effective workers => cheaper record-partitioned terms, same
    dispatch term; ARM has no parallel variant."""
    optimizer = salary_engine.optimizer
    profile = optimizer.profile_for(QUERY)
    model = CostModel(salary_engine.index.stats, optimizer.weights)
    p2 = ParallelCostProfile(n_shards=4, effective_workers=2)
    p4 = ParallelCostProfile(n_shards=4, effective_workers=4)
    assert model.parallel_loads(PlanKind.ARM, profile, p4) is None
    l2 = model.parallel_loads(PlanKind.SSVS, profile, p2)
    l4 = model.parallel_loads(PlanKind.SSVS, profile, p4)
    assert l4["eliminate"] <= l2["eliminate"]
    assert l4["verify"] <= l2["verify"]
    assert l4["par_dispatch"] == l2["par_dispatch"] == pytest.approx(8.0)
    est = model.estimate_parallel(PlanKind.SSVS, profile, p4)
    assert est > 0


def test_single_worker_profile_prices_parallel_above_serial(salary_engine):
    """With one effective worker the record-partitioned terms do not
    shrink, so parallel = serial + dispatch/merge overhead > serial."""
    optimizer = salary_engine.optimizer
    profile = optimizer.profile_for(QUERY)
    model = CostModel(salary_engine.index.stats, optimizer.weights)
    p1 = ParallelCostProfile(n_shards=4, effective_workers=1)
    for kind in PlanKind:
        if kind is PlanKind.ARM:
            continue
        serial = model.estimate(kind, profile)
        parallel = model.estimate_parallel(kind, profile, p1)
        assert parallel > serial, kind
