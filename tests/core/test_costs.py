"""Cost model: profiles match measured cardinalities; formula structure."""

import pytest

from repro.core.costs import CostModel, CostWeights, DEFAULT_WEIGHTS, QueryProfile
from repro.core.mipindex import build_mip_index
from repro.core.operators import make_context, op_eliminate, op_search, \
    op_supported_search
from repro.core.optimizer import ColarmOptimizer
from repro.core.plans import PlanKind
from repro.core.query import Overlap, LocalizedQuery
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=12, n_records=100,
                              cardinalities=(4, 3, 3, 2, 3))
    index = build_mip_index(table, primary_support=0.05)
    return table, index


QUERIES = [
    LocalizedQuery({0: frozenset({1})}, 0.3, 0.6),
    LocalizedQuery({0: frozenset({0, 2}), 1: frozenset({0, 1})}, 0.4, 0.7),
    LocalizedQuery({2: frozenset({1, 2})}, 0.25, 0.8,
                   item_attributes=frozenset({0, 1, 3})),
]


def profile_for(index, query):
    return ColarmOptimizer(index).profile_for(query)


@pytest.mark.parametrize("query", QUERIES)
def test_candidate_counts_exact(setup, query):
    """The vectorized profile reproduces the operators' true cardinalities."""
    _, index = setup
    profile = profile_for(index, query)
    ctx = make_context(index, query)
    candidates = op_search(ctx)
    assert profile.n_cands == len(candidates)
    ctx2 = make_context(index, query)
    supported = op_supported_search(ctx2)
    assert profile.n_cands_supported == len(supported)
    contained = [c for c in supported if c[1] is Overlap.CONTAINED]
    assert profile.n_contained == len(contained)


@pytest.mark.parametrize("query", QUERIES)
def test_qualified_estimate_upper_bounds_truth(setup, query):
    """The local-support upper bound never undercounts ELIMINATE output
    (for single-range-attribute queries it is exact)."""
    _, index = setup
    profile = profile_for(index, query)
    ctx = make_context(index, query)
    qualified = op_eliminate(ctx, op_search(ctx))
    assert profile.est_qualified >= len(qualified)
    if len(query.range_selections) == 1 and query.item_attributes is None:
        assert profile.est_qualified == len(qualified)


def test_loads_cover_all_plans(setup):
    _, index = setup
    profile = profile_for(index, QUERIES[0])
    model = CostModel(index.stats)
    for kind in PlanKind:
        loads = model.loads(kind, profile)
        assert loads["const"] >= 1.0
        assert all(v >= 0 for v in loads.values())
        assert set(loads) <= set(DEFAULT_WEIGHTS)
    # plan structure: ARM has no R-tree term; MIP plans have no SELECT term
    assert "search" not in model.loads(PlanKind.ARM, profile)
    assert "select" not in model.loads(PlanKind.SEV, profile)
    # selection push-up saves one pipeline stage
    sev = model.loads(PlanKind.SEV, profile)
    svs = model.loads(PlanKind.SVS, profile)
    assert svs["const"] == sev["const"] - 1


def test_sseuv_eliminate_term_smaller(setup):
    """Differential treatment: SS-E-U-V prices ELIMINATE on partial MIPs only."""
    _, index = setup
    profile = profile_for(index, QUERIES[0])
    model = CostModel(index.stats)
    ssev = model.loads(PlanKind.SSEV, profile)
    sseuv = model.loads(PlanKind.SSEUV, profile)
    assert sseuv["eliminate"] <= ssev["eliminate"]


def test_supported_search_term_not_larger(setup):
    _, index = setup
    profile = profile_for(index, QUERIES[0])
    model = CostModel(index.stats)
    assert model.est_node_accesses(profile, supported=True) <= \
        model.est_node_accesses(profile, supported=False) + 1e-9


def test_estimate_all_returns_every_plan(setup):
    _, index = setup
    profile = profile_for(index, QUERIES[0])
    model = CostModel(index.stats)
    estimates = model.estimate_all(profile)
    assert set(estimates) == set(PlanKind)
    assert all(v > 0 for v in estimates.values())


def test_weights_price():
    w = CostWeights({"a": 2.0, "b": 0.5})
    assert w.price({"a": 3.0, "b": 4.0, "unknown": 100.0}) == 8.0


def test_lemma41_estimator_available(setup):
    _, index = setup
    profile = profile_for(index, QUERIES[0])
    model = CostModel(index.stats)
    est = model.est_candidates_search(profile)
    # Lemma 4.1 is a coarse geometric estimate; sanity-check the range.
    assert 0 <= est <= index.n_mips


def test_fallback_without_item_profile(setup):
    """With the per-item profile stripped, estimates degrade gracefully."""
    import dataclasses

    import numpy as np

    _, index = setup
    stats = dataclasses.replace(
        index.stats,
        item_columns={},
        item_local_counts=np.zeros((index.n_mips, 0), dtype=np.int32),
    )
    query = QUERIES[0]
    focal = query.focal_range(index.cardinalities)
    profile = QueryProfile.from_query(query, focal, stats, dq_size=30,
                                      min_count=9)
    assert profile.n_cands > 0
    model = CostModel(stats)
    estimates = model.estimate_all(profile)
    assert all(v > 0 for v in estimates.values())
