"""Parameter suggestion (future-work extension (a))."""

import pytest

from repro.core.mipindex import build_mip_index
from repro.core.paramsuggest import (
    suggest_minconf,
    suggest_minsupp,
    suggest_ranges,
)
from repro.dataset.synthetic import quest_like
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def index():
    return build_mip_index(quest_like(n_records=400, n_categories=4, seed=3),
                           primary_support=0.05)


def test_suggest_minsupp_hits_quantile(index):
    minsupp = suggest_minsupp(index, qualify_fraction=0.25)
    assert index.primary_support <= minsupp <= 1.0
    counts = index.stats.sorted_global_counts
    floor = minsupp * index.table.n_records
    qualifying = (counts >= floor).mean()
    assert qualifying == pytest.approx(0.25, abs=0.1)


def test_suggest_minsupp_clamped_to_primary(index):
    # Asking for everything to qualify would dip below the primary floor.
    assert suggest_minsupp(index, qualify_fraction=1.0) >= index.primary_support


def test_suggest_minsupp_validation(index):
    with pytest.raises(QueryError):
        suggest_minsupp(index, qualify_fraction=0.0)


def test_suggest_minconf_in_range(index):
    minconf = suggest_minconf(index, target_fraction=0.3)
    assert 0.0 <= minconf <= 1.0


def test_suggest_minconf_monotone(index):
    strict = suggest_minconf(index, target_fraction=0.1)
    loose = suggest_minconf(index, target_fraction=0.9)
    assert strict >= loose


def test_suggest_ranges_surfaces_planted_regions(index):
    """quest_like plants region-local patterns; the region attribute's
    values should rank among the suggested focal subsets."""
    suggestions = suggest_ranges(index, minsupp=0.3, top_k=6)
    assert suggestions
    region = index.table.schema.attribute_index("region")
    assert any(s.attribute == region for s in suggestions)
    for s in suggestions:
        assert s.dq_size > 0
        assert s.fresh_local_itemsets >= 0
        text = s.describe(index.table.schema)
        assert "fresh local itemsets" in text


def test_suggest_ranges_counts_are_exact(index):
    """Recompute one suggestion's fresh/repeated split by hand."""
    from repro import tidset as ts
    from repro.dataset.schema import Item

    suggestions = suggest_ranges(index, minsupp=0.3, top_k=1)
    s = suggestions[0]
    table = index.table
    value = next(iter(s.values))
    mask = table.item_tidset(Item(s.attribute, value))
    local_floor = min_count_for(0.3, ts.count(mask))
    global_floor = min_count_for(0.3, table.n_records)
    fresh = repeated = 0
    for mip in index.mips:
        if Item(s.attribute, value) in mip.itemset:
            continue
        if ts.count(mip.tidset & mask) >= local_floor:
            if mip.global_count >= global_floor:
                repeated += 1
            else:
                fresh += 1
    assert (fresh, repeated) == (s.fresh_local_itemsets,
                                 s.repeated_global_itemsets)
