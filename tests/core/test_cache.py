"""The materialized rule cache: unit policy, engine integration, persistence.

Three layers of coverage:

* :class:`repro.cache.RuleCache` in isolation — keys, tiers, LRU +
  landmark eviction, generation invalidation, the stats ledger;
* the engine path — ``enable_cache``/``query`` serving repeats byte-
  identically, lattice hits replaying at a new ``minconf``, forced plans,
  the ``use_cache`` bypass, and composition with sharded execution
  (a broken pool must degrade to serial *and still populate the cache*);
* ``save_cache``/``load_cache`` round-trips, including ``mmap_mode`` and
  the strict generation check on load.
"""

import numpy as np
import pytest

from repro.cache import ARM_FAMILY, MIP_FAMILY, CachedLattice, RuleCache
from repro.core.costs import CostWeights
from repro.core.engine import Colarm
from repro.core.mipindex import build_mip_index
from repro.core.persistence import load_cache, save_cache
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import DataError
from tests.conftest import make_random_table

MIP_PLANS = (PlanKind.SEV, PlanKind.SVS, PlanKind.SSEV, PlanKind.SSVS,
             PlanKind.SSEUV)


@pytest.fixture(scope="module")
def index():
    table = make_random_table(seed=71, n_records=120,
                              cardinalities=(4, 3, 3, 2, 3))
    return build_mip_index(table, primary_support=0.05)


@pytest.fixture()
def engine(index):
    return Colarm.from_index(index)


def q(selections, minsupp=0.3, minconf=0.6, aitem=None):
    return LocalizedQuery(
        {ai: frozenset(vs) for ai, vs in selections.items()},
        minsupp, minconf, item_attributes=aitem,
    )


# -- unit: keys, tiers, policy ------------------------------------------------


def test_put_get_rules_roundtrip(index):
    cache = RuleCache(index)
    query = q({0: {1}})
    rules = execute_plan(PlanKind.SSVS, index, query).rules
    assert cache.put_rules(query, rules)
    served = cache.get_rules(query)
    assert served == rules
    assert served is not rules  # shallow copy, not the stored list
    # Family separation: the ARM tier is distinct.
    assert cache.get_rules(query, ARM_FAMILY) is None


def test_probe_preference_and_no_lru_bump(index):
    cache = RuleCache(index)
    query = q({0: {1}})
    result = execute_plan(PlanKind.SSVS, index, query)
    lattice = CachedLattice(
        groups=tuple((tuple(g), c) for g, c in result.lattice_groups),
        dq_size=result.dq_size,
        extract_min_count=None,
    )
    assert cache.put_lattice(query, lattice)
    probe = cache.probe(query)
    assert probe.kind == "lattice" and probe.lattice_cells > 0
    cache.put_rules(query, result.rules)
    probe = cache.probe(query)
    assert probe.kind == "rules" and probe.family == MIP_FAMILY
    assert probe.n_rules == len(result.rules)
    # Probes never count as serves.
    assert cache.stats.rule_hits == 0 and cache.stats.lattice_hits == 0
    assert cache.probe(q({0: {2}})).kind is None
    assert cache.stats.misses == 1


def test_focal_key_drops_full_domain_selections(index):
    cache = RuleCache(index)
    cards = index.cardinalities
    spelled = q({0: {1}, 1: set(range(cards[1]))})
    implicit = q({0: {1}})
    assert cache.focal_key(spelled) == cache.focal_key(implicit)
    rules = execute_plan(PlanKind.SSVS, index, implicit).rules
    cache.put_rules(spelled, rules)
    assert cache.get_rules(implicit) == rules


def test_lru_eviction_with_landmark_protection(index):
    queries = [q({0: {1}}, minconf=0.5 + i / 100) for i in range(4)]
    rules = execute_plan(PlanKind.SSVS, index, queries[0]).rules
    cache = RuleCache(index, budget_bytes=1 << 30, landmark_hits=2)
    cache.put_rules(queries[0], rules)
    per_entry = cache.stats.current_bytes
    # Room for exactly two entries; entry 0 is made a landmark.
    cache = RuleCache(index, budget_bytes=2 * per_entry, landmark_hits=2)
    cache.put_rules(queries[0], rules)
    for _ in range(2):
        assert cache.get_rules(queries[0]) is not None
    cache.put_rules(queries[1], rules)
    cache.put_rules(queries[2], rules)  # evicts 1 (cold LRU), never 0
    assert cache.get_rules(queries[1]) is None
    assert cache.get_rules(queries[0]) is not None
    assert cache.stats.evictions == 1
    assert cache.stats.current_bytes <= cache.budget_bytes
    # With only landmarks left, LRU order applies to them after all.
    for _ in range(2):
        cache.get_rules(queries[2])
    cache.put_rules(queries[3], rules)
    assert len(cache) == 2
    assert cache.stats.current_bytes <= cache.budget_bytes


def test_oversized_entry_rejected(index):
    query = q({0: {1}})
    rules = execute_plan(PlanKind.SSVS, index, query).rules
    cache = RuleCache(index, budget_bytes=64)
    assert not cache.put_rules(query, rules)
    assert cache.stats.rejected == 1 and len(cache) == 0


def test_generation_invalidation(index):
    cache = RuleCache(index)
    query = q({0: {1}})
    rules = execute_plan(PlanKind.SSVS, index, query).rules
    cache.put_rules(query, rules)
    index.rtree.tree.mutations += 1
    try:
        assert cache.probe(query).kind is None
        assert cache.stats.stale_drops == 1
        assert cache.stats.current_bytes == 0
        # A stale pre-mutation snapshot is refused at insert time too.
        assert not cache.put_rules(
            query, rules, generation=index.rtree.tree.mutations - 1
        )
        assert cache.stats.stale_drops == 2
        # A current-generation insert works again.
        assert cache.put_rules(
            query, rules, generation=index.rtree.tree.mutations
        )
        assert cache.get_rules(query) == rules
    finally:
        index.rtree.tree.mutations -= 1


def test_invalidate_clears_everything(index):
    cache = RuleCache(index)
    query = q({0: {1}})
    rules = execute_plan(PlanKind.SSVS, index, query).rules
    cache.put_rules(query, rules)
    cache.put_rules(query, rules, family=ARM_FAMILY)
    assert cache.invalidate() == 2
    assert len(cache) == 0 and cache.stats.current_bytes == 0
    stats = cache.stats.as_dict()
    assert stats["insertions"] == 2 and stats["stale_drops"] == 2


def test_constructor_validation(index):
    with pytest.raises(ValueError):
        RuleCache(index, budget_bytes=0)
    with pytest.raises(ValueError):
        RuleCache(index, landmark_hits=0)
    cache = RuleCache(index)
    with pytest.raises(ValueError):
        cache.put_rules(q({0: {1}}), [], family="nope")


# -- engine integration -------------------------------------------------------


def test_repeat_query_served_from_cache(engine):
    engine.enable_cache(calibrate=False)
    query = q({0: {1, 2}})
    first = engine.query(query)
    assert not first.cached
    second = engine.query(query)
    assert second.cached
    assert second.rules == first.rules
    assert second.chosen_by == "optimizer" and second.choice.cached
    ledger = engine.optimizer.cache_ledger
    assert ledger["cached_picks"] >= 1 and ledger["rule_hits"] >= 1


def test_lattice_hit_replays_at_new_minconf(engine):
    engine.enable_cache(calibrate=False)
    # Uncalibrated default weights underprice the fresh ARM plan on this
    # tiny index; pricing accuracy is the benches' concern — here ARM is
    # made expensive so the choice exercises the lattice-serve path.
    weights = dict(engine.optimizer.weights.weights)
    weights["arm"] = 1.0
    engine.optimizer.set_weights(CostWeights(weights))
    base = q({1: {0, 1}}, minsupp=0.3, minconf=0.6)
    engine.query(base, plan=PlanKind.SSVS)  # populates rules + lattice
    assert engine.cache.entries_by_kind()["lattice"] == 1
    shifted = q({1: {0, 1}}, minsupp=0.3, minconf=0.8)
    outcome = engine.query(shifted)
    assert outcome.cached
    assert outcome.choice.cache_probe.kind == "lattice"
    fresh = execute_plan(PlanKind.SSVS, engine.index, shifted)
    assert outcome.rules == fresh.rules
    # The extraction upgraded to a full rules hit for the next repeat.
    assert engine.cache.probe(shifted).kind == "rules"


def test_forced_plan_uses_own_family(engine):
    engine.enable_cache(calibrate=False)
    query = q({0: {1, 2}}, minconf=0.7)
    mip = engine.query(query, plan=PlanKind.SSEUV)
    arm = engine.query(query, plan=PlanKind.ARM)
    assert not mip.cached and not arm.cached
    mip2 = engine.query(query, plan=PlanKind.SVS)  # any MIP plan shares
    arm2 = engine.query(query, plan=PlanKind.ARM)
    assert mip2.cached and mip2.rules == mip.rules
    assert arm2.cached and arm2.rules == arm.rules


def test_use_cache_false_bypasses_consult_and_populate(engine):
    engine.enable_cache(calibrate=False)
    query = q({0: {1, 2}})
    engine.query(query, use_cache=False)
    assert len(engine.cache) == 0
    engine.query(query)
    repeat = engine.query(query, use_cache=False)
    assert not repeat.cached


def test_disable_cache_detaches(engine):
    engine.enable_cache(calibrate=False)
    query = q({0: {1, 2}})
    engine.query(query)
    engine.disable_cache()
    assert engine.cache is None
    assert not engine.query(query).cached


def test_enable_cache_rejects_expand_mismatch(engine, index):
    foreign = RuleCache(index, expand=True)
    with pytest.raises(ValueError, match="expand"):
        engine.enable_cache(cache=foreign)


def test_broken_pool_still_populates_cache(index):
    """Satellite regression: sharded fallback must not bypass the cache.

    With a SIGKILL-broken pool every sharded kernel call declines and the
    operators fall back to serial — the fresh execution must still
    populate the cache with the (correct, serial) rules, and the repeat
    must serve them; a broken pool must never poison cached entries.
    """
    from repro.parallel import ParallelConfig

    reference = {}
    query = q({0: {1, 2}})
    for kind in (PlanKind.SSVS, PlanKind.ARM):
        reference[kind] = execute_plan(kind, index, query).rules

    engine = Colarm.from_index(index)
    engine.configure(parallel=ParallelConfig(n_shards=2, force=True))
    try:
        engine.enable_cache(calibrate=False)
        engine.parallel.executor._broken = True
        first = engine.query(query)
        assert not first.cached
        assert first.rules == reference[
            PlanKind.ARM if first.plan is PlanKind.ARM else PlanKind.SSVS
        ]
        assert len(engine.cache) >= 1
        second = engine.query(query)
        assert second.cached and second.rules == first.rules
        forced = engine.query(query, plan=PlanKind.SSVS)
        assert forced.rules == reference[PlanKind.SSVS]
    finally:
        engine.close()


# -- persistence --------------------------------------------------------------


def populated_cache(index):
    engine = Colarm.from_index(index).enable_cache(calibrate=False)
    queries = [
        q({0: {1}}, minconf=0.6),
        q({0: {1}}, minconf=0.8),
        q({1: {0, 1}}, minsupp=0.35, aitem=frozenset({0, 2, 3})),
    ]
    for query in queries:
        engine.query(query, plan=PlanKind.SSVS)
        engine.query(query, plan=PlanKind.ARM)
    # Make one entry a landmark so hit counts are non-trivial.
    for _ in range(4):
        engine.query(queries[0], plan=PlanKind.SSVS)
    return engine.cache, queries


def test_save_load_roundtrip(index, tmp_path):
    cache, queries = populated_cache(index)
    path = tmp_path / "warm.cache.npz"
    save_cache(cache, path)
    loaded = load_cache(path, index)
    assert len(loaded) == len(cache)
    assert loaded.entries_by_kind() == cache.entries_by_kind()
    assert loaded.budget_bytes == cache.budget_bytes
    assert loaded.landmark_hits == cache.landmark_hits
    for query in queries:
        for family in (MIP_FAMILY, ARM_FAMILY):
            assert loaded.get_rules(query, family) == \
                cache.get_rules(query, family), (query, family)
        a, b = loaded.get_lattice(query), cache.get_lattice(query)
        assert a.extract(query.minconf) == b.extract(query.minconf)
    # Hit counts (landmark status) and LRU order survive the round-trip.
    assert [e.hits for e in loaded._entries.values()] == \
        [e.hits for e in cache._entries.values()]
    assert list(loaded._entries) == list(cache._entries)


def test_save_load_mmap_lattice(index, tmp_path):
    cache, queries = populated_cache(index)
    path = tmp_path / "warm.cache.npz"
    save_cache(cache, path, compress=False)
    loaded = load_cache(path, index, mmap_mode="r")

    def is_mapped(arr):
        while arr is not None:
            if isinstance(arr, np.memmap):
                return True
            arr = getattr(arr, "base", None)
        return False

    lattice = loaded.get_lattice(queries[0])
    assert any(is_mapped(counts) for _, counts in lattice.groups)
    assert lattice.extract(queries[0].minconf) == \
        cache.get_lattice(queries[0]).extract(queries[0].minconf)


def test_load_refuses_generation_mismatch(index, tmp_path):
    cache, _ = populated_cache(index)
    path = tmp_path / "warm.cache.npz"
    save_cache(cache, path)
    index.rtree.tree.mutations += 1
    try:
        with pytest.raises(DataError, match="generation"):
            load_cache(path, index)
    finally:
        index.rtree.tree.mutations -= 1
    assert len(load_cache(path, index)) == len(cache)


def test_load_adopts_into_engine(index, tmp_path):
    cache, queries = populated_cache(index)
    path = tmp_path / "warm.cache.npz"
    save_cache(cache, path)
    engine = Colarm.from_index(index)
    engine.enable_cache(cache=load_cache(path, index), calibrate=False)
    outcome = engine.query(queries[0], plan=PlanKind.SSVS)
    assert outcome.cached
    assert outcome.rules == cache.get_rules(queries[0])
