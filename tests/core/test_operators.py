"""The isolated online-mining operators against brute-force ground truth."""

import pytest

from repro import tidset as ts
from repro.core.mipindex import build_mip_index
from repro.core.operators import (
    make_context,
    op_arm,
    op_eliminate,
    op_search,
    op_select,
    op_supported_search,
    op_supported_verify,
    op_union,
    op_verify,
)
from repro.core.query import LocalizedQuery, Overlap
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from tests.conftest import make_random_table


@pytest.fixture(scope="module")
def setup():
    table = make_random_table(seed=3, n_records=80,
                              cardinalities=(4, 3, 3, 2, 3))
    index = build_mip_index(table, primary_support=0.05)
    query = LocalizedQuery(
        range_selections={0: frozenset({1, 2}), 1: frozenset({0})},
        minsupp=0.3,
        minconf=0.6,
    )
    return table, index, query


def test_make_context(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    expected_dq = table.tids_matching(query.range_selections)
    assert ctx.dq == expected_dq
    assert ctx.dq_size == ts.count(expected_dq)
    assert ctx.min_count == min_count_for(query.minsupp, ctx.dq_size)
    assert ctx.trace.by_name("FOCUS") is not None


def test_make_context_empty_focal(setup):
    _, index, _ = setup
    # attribute 3 has cardinality 2; an impossible pair of selections:
    query = LocalizedQuery(
        range_selections={3: frozenset({0})}, minsupp=0.5, minconf=0.5
    )
    # make it empty by intersecting two disjoint single-value picks
    table = index.table
    mask = table.tids_matching({3: frozenset({0})})
    if mask:  # fall back: choose a value that never occurs? build synthetic
        query = LocalizedQuery(
            range_selections={0: frozenset({1}), 1: frozenset({1})},
            minsupp=0.5, minconf=0.5,
        )
        if table.tids_matching(query.range_selections):
            pytest.skip("no empty focal subset available in this dataset")
    with pytest.raises(QueryError):
        make_context(index, query)


def test_search_exact_overlap(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    candidates = op_search(ctx)
    got = {mip.itemset for mip, _ in candidates}
    expected = {
        mip.itemset
        for mip in index.mips
        if ctx.focal.classify(mip.box) is not Overlap.DISJOINT
    }
    assert got == expected
    for mip, overlap in candidates:
        assert overlap == ctx.focal.classify(mip.box)
        assert overlap is not Overlap.DISJOINT


def test_supported_search_filters_by_count(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    plain = {m.itemset for m, _ in op_search(ctx)}
    supported = {m.itemset for m, _ in op_supported_search(ctx)}
    expected = {
        mip.itemset
        for mip in index.mips
        if ctx.focal.classify(mip.box) is not Overlap.DISJOINT
        and mip.global_count >= ctx.min_count
    }
    assert supported == expected
    assert supported <= plain


def test_eliminate_exact_local_counts(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    candidates = op_search(ctx)
    qualified = op_eliminate(ctx, candidates)
    for mip, local in qualified:
        truth = ts.count(table.itemset_tidset(mip.itemset) & ctx.dq)
        assert local == truth
        assert local >= ctx.min_count
    surviving = {m.itemset for m, _ in qualified}
    for mip, _ in candidates:
        truth = ts.count(table.itemset_tidset(mip.itemset) & ctx.dq)
        assert (mip.itemset in surviving) == (truth >= ctx.min_count)


def test_eliminate_applies_aitem(setup):
    table, index, _ = setup
    query = LocalizedQuery(
        range_selections={0: frozenset({1, 2})},
        minsupp=0.2,
        minconf=0.5,
        item_attributes=frozenset({1, 2}),
    )
    ctx = make_context(index, query)
    qualified = op_eliminate(ctx, op_search(ctx))
    for mip, _ in qualified:
        assert all(item.attribute in {1, 2} for item in mip.itemset)


def test_verify_rules_are_correct(setup):
    """Every rule's support and confidence re-checked by direct counting."""
    table, index, query = setup
    ctx = make_context(index, query)
    qualified = op_eliminate(ctx, op_search(ctx))
    rules = op_verify(ctx, qualified)
    assert rules, "expected at least one rule in this setup"
    for rule in rules:
        items_count = ts.count(table.itemset_tidset(rule.items) & ctx.dq)
        ante_count = ts.count(table.itemset_tidset(rule.antecedent) & ctx.dq)
        assert rule.support_count == items_count
        assert rule.support == pytest.approx(items_count / ctx.dq_size)
        assert rule.confidence == pytest.approx(items_count / ante_count)
        assert rule.confidence >= query.minconf
        assert items_count >= ctx.min_count


def test_supported_verify_equals_eliminate_verify(setup):
    table, index, query = setup
    ctx1 = make_context(index, query)
    rules1 = op_verify(ctx1, op_eliminate(ctx1, op_search(ctx1)))
    ctx2 = make_context(index, query)
    rules2 = op_supported_verify(ctx2, op_search(ctx2))
    key = lambda rs: [(r.antecedent, r.consequent, r.support_count) for r in rs]
    assert key(rules1) == key(rules2)


def test_union_merges(setup):
    _, index, query = setup
    ctx = make_context(index, query)
    a = [(index.mips[0], 5)]
    b = [(index.mips[1], 7)]
    merged = op_union(ctx, a, b)
    assert merged == a + b
    assert ctx.trace.by_name("UNION").output_size == 2


def test_contained_mips_local_equals_global(setup):
    """Lemma 4.5 on real data: contained MIP => local count == global count."""
    table, index, query = setup
    ctx = make_context(index, query)
    found = 0
    for mip, overlap in op_search(ctx):
        if overlap is Overlap.CONTAINED:
            assert mip.local_count(ctx.dq) == mip.global_count
            found += 1
    # the check is vacuous if no contained MIPs exist in this setup
    if found == 0:
        pytest.skip("no contained MIPs in this configuration")


def test_select_extracts_focal_subset(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    sub = op_select(ctx)
    assert sub.n_records == ctx.dq_size
    tids = ts.to_list(ctx.dq)
    for i, tid in enumerate(tids):
        assert sub.record(i) == table.record(tid)


def test_arm_rules_are_correct(setup):
    table, index, query = setup
    ctx = make_context(index, query)
    sub = op_select(ctx)
    rules = op_arm(ctx, sub)
    for rule in rules:
        items_count = ts.count(table.itemset_tidset(rule.items) & ctx.dq)
        ante_count = ts.count(table.itemset_tidset(rule.antecedent) & ctx.dq)
        assert rule.support_count == items_count
        assert rule.confidence == pytest.approx(items_count / ante_count)
        assert rule.confidence >= query.minconf


def test_traces_record_operator_sequence(setup):
    _, index, query = setup
    ctx = make_context(index, query)
    op_verify(ctx, op_eliminate(ctx, op_search(ctx)))
    names = [op.name for op in ctx.trace.operators]
    assert names == ["FOCUS", "SEARCH", "ELIMINATE", "VERIFY"]
    assert ctx.trace.total_elapsed() >= 0.0
