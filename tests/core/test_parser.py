"""The REPORT LOCALIZED ASSOCIATION RULES query language."""

import pytest

from repro.core.parser import parse_query
from repro.errors import ParseError, SchemaError


BASE = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    "WHERE RANGE Location = (Seattle) AND Gender = (F) "
    "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
)


def test_basic(salary):
    parsed = parse_query(BASE, salary.schema)
    assert parsed.dataset == "salary"
    q = parsed.query
    loc = salary.schema.attribute_index("Location")
    gen = salary.schema.attribute_index("Gender")
    assert q.range_selections == {loc: frozenset({2}), gen: frozenset({1})}
    assert q.minsupp == 0.5
    assert q.minconf == 0.8
    assert q.item_attributes is None


def test_item_attributes(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Location = (Seattle) "
        "AND ITEM ATTRIBUTES Age, Salary "
        "HAVING minsupport = 0.4 AND minconfidence = 0.9;"
    )
    q = parse_query(text, salary.schema).query
    assert q.item_attributes == frozenset(
        {salary.schema.attribute_index("Age"),
         salary.schema.attribute_index("Salary")}
    )


def test_multi_value_ranges_and_braces(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Age = {20-30, 30-40}, Company = {IBM} "
        "HAVING minsupport = 0.3 AND minconfidence = 0.7"
    )
    q = parse_query(text, salary.schema).query
    age = salary.schema.attribute_index("Age")
    comp = salary.schema.attribute_index("Company")
    assert q.range_selections[age] == frozenset({0, 1})
    assert q.range_selections[comp] == frozenset({0})


def test_quoted_labels(salary):
    text = (
        'REPORT LOCALIZED ASSOCIATION RULES FROM salary '
        'WHERE RANGE Title = ("QA Lead", "Sw Engg") '
        "HAVING minsupport = 0.2 AND minconfidence = 0.5;"
    )
    q = parse_query(text, salary.schema).query
    title = salary.schema.attribute_index("Title")
    assert q.range_selections[title] == frozenset({0, 1})


def test_case_insensitive_keywords(salary):
    text = (
        "report localized association rules from salary "
        "where range Gender = (F) "
        "having MINSUPPORT = 0.5 and MINCONFIDENCE = 0.8"
    )
    q = parse_query(text, salary.schema).query
    assert q.minsupp == 0.5


def test_percent_thresholds(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Gender = (F) "
        "HAVING minsupport = 50% AND minconfidence = 85%;"
    )
    q = parse_query(text, salary.schema).query
    assert q.minsupp == pytest.approx(0.5)
    assert q.minconf == pytest.approx(0.85)


def test_thresholds_any_order(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Gender = (F) "
        "HAVING minconfidence = 0.8 AND minsupport = 0.5;"
    )
    q = parse_query(text, salary.schema).query
    assert (q.minsupp, q.minconf) == (0.5, 0.8)


def test_single_bare_value(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Gender = F "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    q = parse_query(text, salary.schema).query
    gen = salary.schema.attribute_index("Gender")
    assert q.range_selections[gen] == frozenset({1})


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT * FROM salary",
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary",  # no WHERE
        # missing '='
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender (F) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;",
        # unterminated value list
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender = (F "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;",
        # missing confidence
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender = (F) "
        "HAVING minsupport = 0.5;",
        # bad threshold value
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender = (F) "
        "HAVING minsupport = high AND minconfidence = 0.8;",
        # duplicate range attribute
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary WHERE RANGE Gender = (F) "
        ", Gender = (M) HAVING minsupport = 0.5 AND minconfidence = 0.8;",
        # trailing junk
        BASE + " EXTRA",
    ],
)
def test_parse_errors(salary, bad):
    with pytest.raises(ParseError):
        parse_query(bad, salary.schema)


def test_unknown_attribute_raises_schema_error(salary):
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        "WHERE RANGE Nope = (x) "
        "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    )
    with pytest.raises(SchemaError):
        parse_query(text, salary.schema)
