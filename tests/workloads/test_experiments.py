"""The Section 5 experiment specs: completeness and internal consistency."""

from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS


def test_all_three_paper_datasets_present():
    assert set(EXPERIMENTS) == {"chess", "mushroom", "pumsb"}


def test_focal_fractions_match_paper():
    assert FOCAL_FRACTIONS == (0.50, 0.20, 0.10, 0.01)


def test_grids_have_paper_shape():
    """4 focal sizes x 3 minsupp x 3 minconf = 36 settings per dataset,
    108 in total — the Section 5.1 accuracy experiment."""
    total = 0
    for spec in EXPERIMENTS.values():
        assert len(spec.minsupps) == 3
        assert len(spec.minconfs) == 3
        total += len(FOCAL_FRACTIONS) * len(spec.minsupps) * len(spec.minconfs)
    assert total == 108


def test_specs_are_runnable():
    for spec in EXPERIMENTS.values():
        table = spec.make_table()
        assert table.n_records > 0
        assert 0 < spec.primary_support < min(spec.minsupps)
        assert spec.fig8_thresholds == tuple(sorted(spec.fig8_thresholds,
                                                    reverse=True))
        assert spec.queries_per_setting() >= 1


def test_paper_counterparts_recorded():
    for spec in EXPERIMENTS.values():
        assert 0 < spec.paper_primary <= 1
        assert len(spec.paper_minsupps) == 3
