"""Workload generation: target sizes, determinism, grid structure."""

import numpy as np
import pytest

from repro import tidset as ts
from repro.dataset.synthetic import chess_like
from repro.errors import QueryError
from repro.workloads.queries import focal_size_workload, random_focal_query


@pytest.fixture(scope="module")
def table():
    return chess_like(n_records=400, seed=7)


def test_random_focal_query_returns_nonempty(table):
    rng = np.random.default_rng(1)
    wq = random_focal_query(table, 0.2, 0.4, 0.8, rng)
    dq = table.tids_matching(wq.query.range_selections)
    assert ts.count(dq) == wq.dq_size > 0
    assert wq.query.minsupp == 0.4
    assert wq.query.minconf == 0.8


def test_random_focal_query_tracks_target(table):
    rng = np.random.default_rng(2)
    sizes = {frac: [] for frac in (0.5, 0.1)}
    for frac in sizes:
        for _ in range(8):
            wq = random_focal_query(table, frac, 0.4, 0.8, rng)
            sizes[frac].append(wq.dq_size)
    # big targets should, on average, produce bigger subsets
    assert np.mean(sizes[0.5]) > np.mean(sizes[0.1])


def test_random_focal_query_deterministic(table):
    a = random_focal_query(table, 0.2, 0.4, 0.8, np.random.default_rng(5))
    b = random_focal_query(table, 0.2, 0.4, 0.8, np.random.default_rng(5))
    assert a.query == b.query


def test_random_focal_query_validation(table):
    with pytest.raises(QueryError):
        random_focal_query(table, 0.0, 0.4, 0.8, np.random.default_rng(0))


def test_item_attributes_passed_through(table):
    rng = np.random.default_rng(3)
    wq = random_focal_query(
        table, 0.2, 0.4, 0.8, rng, item_attributes=frozenset({1, 2})
    )
    assert wq.query.item_attributes == frozenset({1, 2})


def test_focal_size_workload_grid(table):
    workload = focal_size_workload(
        table,
        fractions=(0.5, 0.1),
        minsupps=(0.3, 0.5),
        minconf=0.85,
        queries_per_setting=2,
        seed=0,
    )
    assert set(workload) == {(0.5, 0.3), (0.5, 0.5), (0.1, 0.3), (0.1, 0.5)}
    for (fraction, minsupp), queries in workload.items():
        assert len(queries) == 2
        for wq in queries:
            assert wq.query.minsupp == minsupp
            assert wq.query.minconf == 0.85
            assert wq.target_fraction == fraction
