"""n-dimensional rectangle geometry."""

import pytest

from repro.errors import DataError
from repro.rtree.geometry import Rect, mbr_of


def test_construction_and_shape():
    r = Rect((0, 1), (2, 3))
    assert r.n_dims == 2
    assert r.extents() == (3, 3)
    assert r.extent(0) == 3
    assert r.area() == 9
    assert r.margin() == 6
    assert r.center() == (1.0, 2.0)


def test_point_and_full_domain():
    p = Rect.point((2, 5))
    assert p.lows == p.highs == (2, 5)
    assert p.area() == 1
    full = Rect.full_domain((3, 4))
    assert full == Rect((0, 0), (2, 3))


def test_validation():
    with pytest.raises(DataError):
        Rect((2,), (1,))
    with pytest.raises(DataError):
        Rect((0, 0), (1,))
    with pytest.raises(DataError):
        Rect((), ())


def test_intersects():
    a = Rect((0, 0), (2, 2))
    assert a.intersects(Rect((2, 2), (4, 4)))  # closed boxes touch-intersect
    assert a.intersects(Rect((1, 1), (1, 1)))
    assert not a.intersects(Rect((3, 0), (4, 2)))


def test_contains():
    outer = Rect((0, 0), (5, 5))
    assert outer.contains(Rect((1, 1), (4, 4)))
    assert outer.contains(outer)
    assert not outer.contains(Rect((1, 1), (6, 4)))
    assert outer.contains_point((5, 5))
    assert not outer.contains_point((6, 0))


def test_union_and_intersection():
    a = Rect((0, 0), (2, 2))
    b = Rect((1, 1), (4, 3))
    assert a.union(b) == Rect((0, 0), (4, 3))
    assert a.intersection(b) == Rect((1, 1), (2, 2))
    assert a.intersection(Rect((3, 3), (4, 4))) is None


def test_enlargement():
    a = Rect((0, 0), (1, 1))       # area 4
    b = Rect((2, 0), (2, 1))       # needs growth to (0..2, 0..1), area 6
    assert a.enlargement(b) == 2
    assert a.enlargement(a) == 0


def test_dimension_mismatch():
    with pytest.raises(DataError):
        Rect((0,), (1,)).intersects(Rect((0, 0), (1, 1)))


def test_mbr_of():
    rects = [Rect((0, 3), (1, 4)), Rect((2, 0), (3, 1))]
    assert mbr_of(rects) == Rect((0, 0), (3, 4))
    with pytest.raises(DataError):
        mbr_of([])
