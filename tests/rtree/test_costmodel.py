"""Theodoridis-Sellis expected node accesses and Lemma 4.1."""

import random

import pytest

from repro.errors import DataError
from repro.rtree.costmodel import expected_leaf_matches, expected_node_accesses
from repro.rtree.packing import pack_hilbert
from repro.rtree.rtree import LevelStat
from tests.rtree.test_rtree import random_items


def test_empty_stats():
    assert expected_node_accesses([], [1.0], [4]) == 0.0


def test_root_only():
    stats = [LevelStat(level=0, n_nodes=1, avg_extents=(2.0,))]
    assert expected_node_accesses(stats, [1.0], [4]) == 1.0


def test_monotone_in_query_extent():
    stats = [
        LevelStat(level=0, n_nodes=20, avg_extents=(2.0, 2.0)),
        LevelStat(level=1, n_nodes=4, avg_extents=(4.0, 4.0)),
        LevelStat(level=2, n_nodes=1, avg_extents=(8.0, 8.0)),
    ]
    cards = (8, 8)
    small = expected_node_accesses(stats, (1.0, 1.0), cards)
    large = expected_node_accesses(stats, (6.0, 6.0), cards)
    assert small < large


def test_probability_clamped():
    """Huge extents cannot push per-node probability above 1."""
    stats = [
        LevelStat(level=0, n_nodes=10, avg_extents=(100.0,)),
        LevelStat(level=1, n_nodes=1, avg_extents=(100.0,)),
    ]
    # all 10 leaf-level nodes + the root, never more
    assert expected_node_accesses(stats, (100.0,), (4,)) == 11.0


def test_matches_measured_accesses_roughly():
    """The model should land within ~3x of measured node accesses."""
    rng = random.Random(2)
    items = random_items(rng, 500)
    tree = pack_hilbert(3, items, max_entries=8)
    stats = tree.level_stats()
    cards = (8, 6, 10)
    from tests.rtree.test_rtree import random_query

    total_est = total_meas = 0.0
    for _ in range(50):
        q = random_query(rng)
        total_est += expected_node_accesses(stats, q.extents(), cards)
        total_meas += tree.search(q).nodes_visited
    ratio = total_est / total_meas
    assert 1 / 3 < ratio < 3, ratio


def test_expected_leaf_matches_lemma41():
    # 100 boxes of avg extent 2 in a domain of 10: query extent 3
    # -> N * (2/10 + 3/10) = 50
    assert expected_leaf_matches(100, [2.0], [3.0], [10]) == pytest.approx(50.0)
    # factors clamp at 1
    assert expected_leaf_matches(100, [20.0], [30.0], [10]) == 100.0


def test_validation():
    with pytest.raises(DataError):
        expected_node_accesses([], [1.0, 2.0], [4])
    with pytest.raises(DataError):
        expected_node_accesses([], [1.0], [0])
    with pytest.raises(DataError):
        expected_node_accesses([], [-1.0], [4])
    with pytest.raises(DataError):
        expected_leaf_matches(10, [1.0, 1.0], [1.0], [4])
