"""Unit tests of the flat SoA R-tree: compile, search, staleness, arrays."""

import random

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.rtree.flat import FlatRTree, _gather_ranges
from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert, pack_str
from repro.rtree.rtree import RTree
from repro.rtree.supported import SupportedRTree

CARDS = (6, 5, 7)


def make_items(rng, n):
    items = []
    for k in range(n):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(3)) for lo, c in zip(lows, CARDS)
        )
        items.append((Rect(lows, highs), k, rng.randrange(1, 40)))
    return items


def make_queries(rng, n=8):
    queries = []
    for _ in range(n):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(4)) for lo, c in zip(lows, CARDS)
        )
        queries.append((Rect(lows, highs), rng.choice([None, rng.randrange(1, 40)])))
    return queries


def assert_equivalent(tree, flat, query, min_count):
    a = tree.search(query, min_count=min_count)
    b = flat.search(query, min_count=min_count)
    assert sorted(e.payload for e in a.entries) == \
        sorted(e.payload for e in b.entries)
    assert a.nodes_visited == b.nodes_visited


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_compile_packed_tree_equivalence(packer):
    rng = random.Random(11)
    items = make_items(rng, 100)
    tree = packer(3, items, max_entries=8)
    flat = FlatRTree.from_rtree(tree)
    assert len(flat) == len(tree)
    assert flat.height == tree.height
    for query, mc in make_queries(rng):
        assert_equivalent(tree, flat, query, mc)


def test_compile_dynamic_tree_equivalence():
    rng = random.Random(5)
    items = make_items(rng, 80)
    tree = RTree(n_dims=3, max_entries=4)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    flat = FlatRTree.from_rtree(tree)
    for query, mc in make_queries(rng):
        assert_equivalent(tree, flat, query, mc)


def test_empty_and_single_node_trees():
    empty = RTree(n_dims=3)
    flat = FlatRTree.from_rtree(empty)
    result = flat.search(Rect((0, 0, 0), (5, 4, 6)))
    assert result.entries == [] and result.nodes_visited == 1
    assert empty.search(Rect((0, 0, 0), (5, 4, 6))).nodes_visited == 1

    one = RTree(n_dims=3)
    one.insert(Rect.point((1, 2, 3)), "p", count=7)
    flat = FlatRTree.from_rtree(one)
    hit = flat.search(Rect((0, 0, 0), (5, 4, 6)))
    assert [e.payload for e in hit.entries] == ["p"]
    assert hit.nodes_visited == 1
    assert flat.search(Rect((0, 0, 0), (5, 4, 6)), min_count=8).entries == []
    miss = flat.search(Rect.point((0, 0, 0)))
    assert miss.entries == [] and miss.nodes_visited == 1


def test_flat_returns_same_entry_objects():
    """Hits are the pointer tree's own Entry objects (payload identity)."""
    rng = random.Random(3)
    items = make_items(rng, 40)
    tree = pack_hilbert(3, items, max_entries=8)
    flat = FlatRTree.from_rtree(tree)
    query = Rect((0, 0, 0), tuple(c - 1 for c in CARDS))
    pointer_ids = {id(e) for e in tree.search(query).entries}
    assert {id(e) for e in flat.search(query).entries} == pointer_ids


def test_gather_ranges():
    starts = np.asarray([0, 5, 9, 9], dtype=np.intp)
    ends = np.asarray([3, 5, 12, 10], dtype=np.intp)
    assert _gather_ranges(starts, ends).tolist() == [0, 1, 2, 9, 10, 11, 9]
    assert _gather_ranges(
        np.asarray([4], dtype=np.intp), np.asarray([4], dtype=np.intp)
    ).size == 0


def test_dimension_mismatch_rejected():
    tree = pack_hilbert(3, make_items(random.Random(1), 10), max_entries=4)
    flat = FlatRTree.from_rtree(tree)
    with pytest.raises(IndexError_):
        flat.search(Rect((0, 0), (1, 1)))


def test_arrays_round_trip():
    rng = random.Random(9)
    items = make_items(rng, 60)
    tree = pack_hilbert(3, items, max_entries=4)
    flat = FlatRTree.from_rtree(tree)
    arrays = flat.to_arrays()
    rebuilt = FlatRTree.from_arrays(
        arrays, [e.payload for e in flat.leaf_entries]
    )
    assert rebuilt.height == flat.height
    assert len(rebuilt) == len(flat)
    for query, mc in make_queries(rng):
        a = flat.search(query, min_count=mc)
        b = rebuilt.search(query, min_count=mc)
        assert sorted(e.payload for e in a.entries) == \
            sorted(e.payload for e in b.entries)
        assert a.nodes_visited == b.nodes_visited


def test_from_arrays_rejects_corruption():
    tree = pack_hilbert(3, make_items(random.Random(2), 30), max_entries=4)
    flat = FlatRTree.from_rtree(tree)
    payloads = [e.payload for e in flat.leaf_entries]
    good = flat.to_arrays()

    missing = dict(good)
    del missing["counts_0"]
    with pytest.raises(IndexError_):
        FlatRTree.from_arrays(missing, payloads)

    broken = dict(good)
    key = f"offsets_{flat.height - 1}"
    bad = np.array(broken[key])
    bad[-1] += 1  # CSR no longer covers exactly the entry array
    broken[key] = bad
    with pytest.raises(IndexError_):
        FlatRTree.from_arrays(broken, payloads)

    with pytest.raises(IndexError_):
        FlatRTree.from_arrays(good, payloads[:-1])  # payload table short


def test_supported_tree_uses_flat_and_detects_mutation():
    """Insert/delete after compile must never serve stale flat hits."""
    rng = random.Random(21)
    items = make_items(rng, 50)
    sup = SupportedRTree.build(3, items, max_entries=4)
    assert sup.flat_is_current()
    full = Rect((0, 0, 0), tuple(c - 1 for c in CARDS))
    assert len(sup.search(full).entries) == 50

    # Mutate the pointer tree directly: the compiled form is now stale.
    new_rect = Rect.point((2, 2, 2))
    sup.tree.insert(new_rect, "fresh", count=99)
    assert not sup.flat_is_current()
    # Search falls back to the pointer tree and sees the new entry.
    payloads = [e.payload for e in sup.search(full).entries]
    assert "fresh" in payloads and len(payloads) == 51
    assert "fresh" in [
        e.payload for e in sup.search_supported(full, min_count=50).entries
    ]

    # Recompile: the flat form is current again and agrees with pointer.
    sup.compile_flat()
    assert sup.flat_is_current()
    assert sorted(map(str, (e.payload for e in sup.search(full).entries))) == \
        sorted(map(str, payloads))

    # Deletion invalidates too.
    assert sup.tree.delete(new_rect, "fresh")
    assert not sup.flat_is_current()
    assert len(sup.search(full).entries) == 50
    sup.invalidate_flat()
    assert sup.flat is None and len(sup.search(full).entries) == 50


def test_unbalanced_tree_rejected():
    """The compiler refuses structurally broken (non-level-balanced) input."""
    from repro.rtree.node import Entry, Node

    leaf = Node(level=0, entries=[
        Entry(rect=Rect.point((0, 0, 0)), payload="x", count=1)
    ])
    wrong = Node(level=1, entries=[
        Entry(rect=leaf.mbr(), child=leaf, count=1)
    ])
    root = Node(level=2, entries=[
        Entry(rect=leaf.mbr(), child=leaf, count=1),
        Entry(rect=wrong.mbr(), child=wrong, count=1),
    ])
    tree = RTree(n_dims=3)
    tree._root = root
    with pytest.raises(IndexError_):
        FlatRTree.from_rtree(tree)


def test_search_hits_matches_entry_search():
    """The payload-array search returns the same hits (slots resolve to the
    same payloads and counts) and byte-identical nodes_visited."""
    rng = random.Random(31)
    items = make_items(rng, 80)
    tree = pack_hilbert(3, items, max_entries=6)
    flat = FlatRTree.from_rtree(tree)
    for query, mc in make_queries(rng):
        entry_result = flat.search(query, min_count=mc)
        hits = flat.search_hits(query, min_count=mc)
        assert len(hits) == len(entry_result.entries)
        assert hits.nodes_visited == entry_result.nodes_visited
        assert sorted(
            (flat.payloads[int(s)], int(c))
            for s, c in zip(hits.slots, hits.counts)
        ) == sorted((e.payload, e.count) for e in entry_result.entries)
        # Integer payloads carry no .row: the row vector reports -1.
        assert (hits.rows == -1).all()


def test_search_hits_rows_gather_payload_rows():
    """Payloads exposing ``.row`` surface their rows as a contiguous vector."""

    class P:
        def __init__(self, row):
            self.row = row

    rng = random.Random(32)
    items = [
        (rect, P(pid), cnt) for rect, pid, cnt in make_items(rng, 40)
    ]
    tree = pack_hilbert(3, items, max_entries=4)
    flat = FlatRTree.from_rtree(tree)
    full = Rect((0, 0, 0), tuple(c - 1 for c in CARDS))
    hits = flat.search_hits(full)
    assert sorted(hits.rows.tolist()) == list(range(40))
    assert hits.rows.dtype == np.int64


def test_search_arrays_refuses_stale_compile():
    """SupportedRTree.search_arrays returns None the moment the pointer
    tree diverges from the compile, and serves arrays again after a
    recompile."""
    rng = random.Random(33)
    sup = SupportedRTree.build(3, make_items(rng, 30), max_entries=4)
    full = Rect((0, 0, 0), tuple(c - 1 for c in CARDS))
    assert sup.search_arrays(full) is not None
    sup.tree.insert(Rect.point((1, 1, 1)), "fresh", count=7)
    assert sup.search_arrays(full) is None
    assert sup.search_arrays(full, min_count=5) is None
    sup.compile_flat()
    hits = sup.search_arrays(full)
    assert hits is not None and len(hits) == 31
