"""Supported R-tree: the Lemma 4.4 filter and its statistics."""

import random

from repro.rtree.geometry import Rect
from repro.rtree.supported import SupportedRTree
from tests.rtree.test_rtree import brute, random_items, random_query


def build(seed=9, n=300, method="hilbert"):
    rng = random.Random(seed)
    items = random_items(rng, n)
    return SupportedRTree.build(3, items, method=method), items, rng


def test_search_supported_matches_brute_force():
    tree, items, rng = build()
    for _ in range(50):
        q = random_query(rng)
        mc = rng.randrange(1, 50)
        got = sorted(e.payload for e in tree.search_supported(q, mc).entries)
        assert got == brute(items, q, mc)


def test_plain_search_unfiltered():
    tree, items, rng = build()
    q = Rect((0, 0, 0), (7, 5, 9))
    got = sorted(e.payload for e in tree.search(q).entries)
    assert got == brute(items, q)


def test_filter_prunes_node_accesses():
    """A high threshold must never visit more nodes than the plain search."""
    tree, items, rng = build()
    q = Rect((0, 0, 0), (7, 5, 9))
    plain = tree.search(q).nodes_visited
    for mc in (10, 30, 49):
        filtered = tree.search_supported(q, mc).nodes_visited
        assert filtered <= plain
    # an impossible threshold reads only the root
    assert tree.search_supported(q, 10_000).nodes_visited == 1
    assert tree.search_supported(q, 10_000).entries == []


def test_fraction_with_count_at_least():
    tree, items, _ = build()
    counts = sorted(c for _, _, c in items)
    for threshold in (1, 25, 50, 51):
        expected = sum(1 for c in counts if c >= threshold) / len(counts)
        assert tree.fraction_with_count_at_least(threshold) == expected


def test_fraction_empty_tree():
    tree = SupportedRTree.build(2, [])
    assert tree.fraction_with_count_at_least(1) == 0.0
    assert len(tree) == 0


def test_str_method_equivalent_results():
    hil, items, rng = build(method="hilbert")
    st, _, _ = build(method="str")
    for _ in range(30):
        q = random_query(rng)
        mc = rng.randrange(1, 50)
        a = sorted(e.payload for e in hil.search_supported(q, mc).entries)
        b = sorted(e.payload for e in st.search_supported(q, mc).entries)
        assert a == b


def test_level_stats_exposed():
    tree, _, _ = build()
    stats = tree.level_stats()
    assert stats and stats[0].level == 0
    assert tree.height == max(s.level for s in stats) + 1
