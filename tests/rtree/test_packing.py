"""Packed (bulk-loaded) R-trees: correctness and utilization."""

import random

import pytest

from repro.errors import IndexError_
from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert, pack_str
from tests.rtree.test_rtree import brute, random_items, random_query


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_search_matches_brute_force(packer):
    rng = random.Random(3)
    items = random_items(rng, 400)
    tree = packer(3, items, max_entries=8)
    assert len(tree) == 400
    for _ in range(60):
        q = random_query(rng)
        got = sorted(e.payload for e in tree.search(q).entries)
        assert got == brute(items, q)


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_utilization(packer):
    """Kamel-Faloutsos packing fills all but the last node at each level."""
    rng = random.Random(4)
    items = random_items(rng, 256)
    tree = packer(3, items, max_entries=8)
    stack = [tree.root]
    per_level = {}
    while stack:
        node = stack.pop()
        per_level.setdefault(node.level, []).append(len(node.entries))
        if not node.is_leaf:
            stack.extend(e.child for e in node.entries)
    for level, sizes in per_level.items():
        underfull = [s for s in sizes if s < 8]
        assert len(underfull) <= 1, (level, sizes)


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_height_is_minimal(packer):
    rng = random.Random(5)
    items = random_items(rng, 64)
    tree = packer(3, items, max_entries=8)
    assert tree.height == 2  # 64 leaves entries / 8 = 8 leaves -> 1 root


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_counts_aggregate(packer):
    rng = random.Random(6)
    items = random_items(rng, 100)
    tree = packer(3, items, max_entries=8)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        for entry in node.entries:
            assert entry.count == entry.child.max_count()
            stack.append(entry.child)


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_empty(packer):
    tree = packer(2, [])
    assert len(tree) == 0
    assert tree.search(Rect((0, 0), (1, 1))).entries == []


@pytest.mark.parametrize("packer", [pack_hilbert, pack_str])
def test_packed_single(packer):
    tree = packer(2, [(Rect((1, 1), (2, 2)), "x", 5)])
    assert len(tree) == 1
    assert tree.search(Rect((0, 0), (3, 3))).entries[0].payload == "x"


def test_pack_rejects_dim_mismatch():
    with pytest.raises(IndexError_):
        pack_hilbert(3, [(Rect((0,), (0,)), 1, 1)])
