"""Dynamic R-tree: search/insert/delete vs brute force, invariants."""

import random

import pytest

from repro.errors import IndexError_
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.rtree.rtree import RTree


def random_items(rng, n, cards=(8, 6, 10)):
    items = []
    for k in range(n):
        lows = tuple(rng.randrange(c) for c in cards)
        highs = tuple(
            min(c - 1, lo + rng.randrange(3)) for lo, c in zip(lows, cards)
        )
        items.append((Rect(lows, highs), k, rng.randrange(1, 50)))
    return items


def random_query(rng, cards=(8, 6, 10)):
    lows = tuple(rng.randrange(c) for c in cards)
    highs = tuple(min(c - 1, lo + rng.randrange(4)) for lo, c in zip(lows, cards))
    return Rect(lows, highs)


def brute(items, query, min_count=None):
    return sorted(
        pid for rect, pid, cnt in items
        if rect.intersects(query) and (min_count is None or cnt >= min_count)
    )


@pytest.fixture()
def loaded():
    rng = random.Random(7)
    items = random_items(rng, 300)
    tree = RTree(n_dims=3, max_entries=6)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    return tree, items, rng


def test_search_matches_brute_force(loaded):
    tree, items, rng = loaded
    for _ in range(60):
        q = random_query(rng)
        got = sorted(e.payload for e in tree.search(q).entries)
        assert got == brute(items, q)


def test_supported_search_matches_brute_force(loaded):
    tree, items, rng = loaded
    for _ in range(60):
        q = random_query(rng)
        mc = rng.randrange(1, 50)
        got = sorted(e.payload for e in tree.search(q, min_count=mc).entries)
        assert got == brute(items, q, mc)


def test_size_and_height(loaded):
    tree, items, _ = loaded
    assert len(tree) == len(items)
    assert tree.height >= 3  # 300 entries at fanout 6
    assert len(tree.all_entries()) == len(items)


def test_node_capacity_invariant(loaded):
    """No node overflows; non-root nodes respect the minimum fill."""
    tree, _, _ = loaded
    stack = [(tree.root, True)]
    while stack:
        node, is_root = stack.pop()
        assert len(node.entries) <= tree.max_entries
        if not is_root:
            assert len(node.entries) >= tree.min_entries
        if not node.is_leaf:
            stack.extend((e.child, False) for e in node.entries)


def test_mbr_invariant(loaded):
    """Every internal entry's rect equals its child's MBR."""
    tree, _, _ = loaded
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        for entry in node.entries:
            assert entry.rect == entry.child.mbr()
            assert entry.count == entry.child.max_count()
            stack.append(entry.child)


def test_nodes_visited_reported(loaded):
    tree, _, _ = loaded
    result = tree.search(Rect((0, 0, 0), (7, 5, 9)))
    assert result.nodes_visited >= tree.height


def test_delete(loaded):
    tree, items, rng = loaded
    removed = items[:150]
    for rect, pid, _ in removed:
        assert tree.delete(rect, pid)
    assert len(tree) == 150
    q = Rect((0, 0, 0), (7, 5, 9))
    got = sorted(e.payload for e in tree.search(q).entries)
    assert got == sorted(pid for _, pid, _ in items[150:])
    # deleting again fails cleanly
    assert not tree.delete(removed[0][0], removed[0][1])


def test_delete_everything(loaded):
    tree, items, _ = loaded
    for rect, pid, _ in items:
        assert tree.delete(rect, pid)
    assert len(tree) == 0
    assert tree.search(Rect((0, 0, 0), (7, 5, 9))).entries == []


def test_level_stats(loaded):
    tree, items, _ = loaded
    stats = tree.level_stats()
    assert stats[0].level == 0
    assert stats[0].n_nodes >= len(items) // tree.max_entries
    assert sum(1 for s in stats if s.level == tree.root.level) == 1
    for stat in stats:
        assert len(stat.avg_extents) == 3
        assert all(e >= 1.0 for e in stat.avg_extents)


def test_validation():
    with pytest.raises(IndexError_):
        RTree(n_dims=0)
    with pytest.raises(IndexError_):
        RTree(n_dims=2, max_entries=1)
    with pytest.raises(IndexError_):
        RTree(n_dims=2, max_entries=4, min_entries=3)
    tree = RTree(n_dims=2)
    with pytest.raises(IndexError_):
        tree.insert(Rect((0,), (0,)), payload=1)
    with pytest.raises(IndexError_):
        tree.search(Rect((0,), (0,)))


def test_entry_validation():
    with pytest.raises(IndexError_):
        Entry(rect=Rect((0,), (0,)))  # neither payload nor child
    with pytest.raises(IndexError_):
        Entry(rect=Rect((0,), (0,)), payload=1, child=Node(level=0))


def test_empty_node_has_no_mbr():
    with pytest.raises(IndexError_):
        Node(level=0).mbr()
    assert Node(level=0).max_count() == 0
