"""Hilbert curve: bijectivity, range, and locality."""

import itertools

import pytest

from repro.errors import DataError
from repro.rtree.hilbert import bits_needed, hilbert_index


def test_bits_needed():
    assert bits_needed(0) == 1
    assert bits_needed(1) == 1
    assert bits_needed(2) == 2
    assert bits_needed(255) == 8
    with pytest.raises(DataError):
        bits_needed(-1)


@pytest.mark.parametrize("n_dims,bits", [(1, 4), (2, 3), (3, 2)])
def test_bijective(n_dims, bits):
    """Every grid point maps to a distinct index within the curve's range."""
    side = 1 << bits
    seen = set()
    for coords in itertools.product(range(side), repeat=n_dims):
        idx = hilbert_index(coords, bits)
        assert 0 <= idx < side**n_dims
        seen.add(idx)
    assert len(seen) == side**n_dims


def test_2d_locality():
    """Consecutive indices along the curve are adjacent grid cells."""
    bits, side = 3, 8
    by_index = {}
    for x in range(side):
        for y in range(side):
            by_index[hilbert_index((x, y), bits)] = (x, y)
    for i in range(side * side - 1):
        (x0, y0), (x1, y1) = by_index[i], by_index[i + 1]
        assert abs(x0 - x1) + abs(y0 - y1) == 1  # Manhattan-adjacent


def test_rejects_out_of_range():
    with pytest.raises(DataError):
        hilbert_index((4,), bits=2)
    with pytest.raises(DataError):
        hilbert_index((-1, 0), bits=2)
    with pytest.raises(DataError):
        hilbert_index((), bits=2)


def test_1d_is_identity():
    for v in range(16):
        assert hilbert_index((v,), bits=4) == v
