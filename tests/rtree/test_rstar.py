"""R*-tree: correctness against brute force, invariants, quality."""

import random

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.rstar import RStarTree
from repro.rtree.rtree import RTree
from tests.rtree.test_rtree import brute, random_items, random_query


@pytest.fixture()
def loaded():
    rng = random.Random(17)
    items = random_items(rng, 300)
    tree = RStarTree(n_dims=3, max_entries=6)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    return tree, items, rng


def test_search_matches_brute_force(loaded):
    tree, items, rng = loaded
    assert len(tree) == len(items)
    for _ in range(60):
        q = random_query(rng)
        got = sorted(e.payload for e in tree.search(q).entries)
        assert got == brute(items, q)


def test_supported_search(loaded):
    tree, items, rng = loaded
    for _ in range(40):
        q = random_query(rng)
        mc = rng.randrange(1, 50)
        got = sorted(e.payload for e in tree.search(q, min_count=mc).entries)
        assert got == brute(items, q, mc)


def test_structure_invariants(loaded):
    tree, _, _ = loaded
    stack = [(tree.root, True)]
    while stack:
        node, is_root = stack.pop()
        assert len(node.entries) <= tree.max_entries
        if not is_root:
            assert len(node.entries) >= tree.min_entries
        if not node.is_leaf:
            for entry in node.entries:
                assert entry.rect == entry.child.mbr()
                assert entry.count == entry.child.max_count()
                stack.append((entry.child, False))


def test_delete_inherited(loaded):
    tree, items, _ = loaded
    for rect, pid, _ in items[:100]:
        assert tree.delete(rect, pid)
    assert len(tree) == 200
    q = Rect((0, 0, 0), (7, 5, 9))
    got = sorted(e.payload for e in tree.search(q).entries)
    assert got == sorted(pid for _, pid, _ in items[100:])


def test_rstar_not_worse_than_quadratic_on_average():
    """R* heuristics should not degrade query cost vs Guttman splits."""
    rng = random.Random(23)
    items = random_items(rng, 500)
    guttman = RTree(n_dims=3, max_entries=8)
    rstar = RStarTree(n_dims=3, max_entries=8)
    for rect, pid, cnt in items:
        guttman.insert(rect, pid, cnt)
        rstar.insert(rect, pid, cnt)
    g_nodes = r_nodes = 0
    for _ in range(100):
        q = random_query(rng)
        g_nodes += guttman.search(q).nodes_visited
        r_nodes += rstar.search(q).nodes_visited
    assert r_nodes <= g_nodes * 1.1  # allow noise, expect improvement


def test_small_trees():
    tree = RStarTree(n_dims=2, max_entries=4)
    for i in range(3):
        tree.insert(Rect((i, i), (i, i)), i)
    assert len(tree) == 3
    assert tree.height == 1
    got = sorted(e.payload for e in tree.search(Rect((0, 0), (2, 2))).entries)
    assert got == [0, 1, 2]
