"""The colarm command-line interface, end to end through main()."""

import pytest

from repro.cli import main
from repro.dataset.loaders import save_csv
from repro.dataset.synthetic import quest_like

QUERY = (
    "REPORT LOCALIZED ASSOCIATION RULES FROM d "
    "WHERE RANGE region = (north) "
    "HAVING minsupport = 0.3 AND minconfidence = 0.7;"
)


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    csv_path = root / "data.csv"
    save_csv(quest_like(n_records=250, n_categories=4, seed=3), csv_path)
    index_path = root / "data.colarm.npz"
    code = main([
        "build", str(csv_path), str(index_path),
        "--primary-support", "0.05", "--calibrate", "3",
    ])
    assert code == 0
    return csv_path, index_path


def test_build_output(workspace, capsys):
    # The build in the fixture already ran; rebuild to capture its message.
    csv_path, index_path = workspace
    code = main(["build", str(csv_path), str(index_path),
                 "--primary-support", "0.05"])
    captured = capsys.readouterr()
    assert code == 0
    assert "closed frequent itemsets" in captured.out


def test_info(workspace, capsys):
    _, index_path = workspace
    assert main(["info", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "records:" in out
    assert "closed itemsets:" in out
    assert "region" in out


def test_query(workspace, capsys):
    _, index_path = workspace
    assert main(["query", str(index_path), QUERY]) == 0
    out = capsys.readouterr().out
    assert "focal subset:" in out
    assert "=>" in out


def test_query_forced_plan_and_expand(workspace, capsys):
    _, index_path = workspace
    assert main([
        "query", str(index_path), QUERY, "--plan", "SS-E-U-V", "--expand",
        "--limit", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "SS-E-U-V (forced)" in out


def test_plans(workspace, capsys):
    _, index_path = workspace
    assert main(["plans", str(index_path), QUERY]) == 0
    out = capsys.readouterr().out
    for plan in ("S-E-V", "S-VS", "SS-E-V", "SS-VS", "SS-E-U-V", "ARM"):
        assert plan in out
    assert "optimizer" in out


def test_explain(workspace, capsys):
    _, index_path = workspace
    assert main(["explain", str(index_path), QUERY]) == 0
    out = capsys.readouterr().out
    assert "chosen" in out


def test_suggest(workspace, capsys):
    _, index_path = workspace
    assert main(["suggest", str(index_path), "--top-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "suggested minsupport" in out
    assert "promising focal subsets" in out


def test_error_paths(tmp_path, capsys):
    missing = tmp_path / "missing.npz"
    assert main(["info", str(missing)]) == 2
    assert "error" in capsys.readouterr().err


def test_query_bad_text(workspace, capsys):
    _, index_path = workspace
    assert main(["query", str(index_path), "SELECT nonsense"]) == 2
    assert "error" in capsys.readouterr().err


def test_simpson(workspace, capsys):
    _, index_path = workspace
    assert main(["simpson", str(index_path), QUERY, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "EMERGING" in out and "VANISHING" in out
    assert "global conf" in out


def test_rank(workspace, capsys):
    _, index_path = workspace
    assert main(["rank", str(index_path), QUERY, "--measure", "lift",
                 "--top-k", "4"]) == 0
    out = capsys.readouterr().out
    assert "by lift" in out
    assert "=>" in out


def test_rank_unknown_measure(workspace, capsys):
    _, index_path = workspace
    assert main(["rank", str(index_path), QUERY, "--measure", "magic"]) == 2
    assert "error" in capsys.readouterr().err


def test_replay(workspace, tmp_path, capsys):
    _, index_path = workspace
    workload = tmp_path / "workload.txt"
    workload.write_text(f"# comment line\n{QUERY}\n\n{QUERY}\n")
    assert main(["replay", str(index_path), str(workload),
                 "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "[1] plan" in out and "[2] plan" in out
    assert '"served": 2' in out  # stats snapshot JSON at the end


def test_replay_all_shed_exits_nonzero(workspace, tmp_path, capsys):
    _, index_path = workspace
    workload = tmp_path / "w.txt"
    workload.write_text(QUERY + "\n")
    code = main(["replay", str(index_path), str(workload),
                 "--cost-ceiling", "0", "--over-budget", "shed",
                 "--no-cache"])
    assert code == 1
    assert "ServiceOverloadError" in capsys.readouterr().out


def test_replay_empty_workload(workspace, tmp_path, capsys):
    _, index_path = workspace
    workload = tmp_path / "empty.txt"
    workload.write_text("# only comments\n\n")
    assert main(["replay", str(index_path), str(workload)]) == 2
    assert "empty workload" in capsys.readouterr().err


def test_serve_stdin_loop(workspace, capsys, monkeypatch):
    import io
    import json

    _, index_path = workspace
    monkeypatch.setattr(
        "sys.stdin", io.StringIO(f"{QUERY}\n# note\n{QUERY}\n")
    )
    assert main(["serve", str(index_path), "--workers", "1"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line)
                 for line in captured.out.strip().splitlines()]
    assert len(responses) == 2
    assert all(r["ok"] for r in responses)
    assert {r["line"] for r in responses} == {1, 2}
    assert all("trace" in r and "rules" in r for r in responses)
    snapshot = json.loads(captured.err.strip().splitlines()[-1])
    assert snapshot["served"] == 2
