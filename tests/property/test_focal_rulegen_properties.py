"""Property tests: the focal-projected rule-generation path is exact.

Two invariants guard the batched VERIFY pipeline:

* **Count parity** — for random tables, focal regions, and itemsets, the
  :class:`repro.kernels.FocalKernel`'s projected counts (scalar ``count``
  and batched ``count_family`` alike) equal the big-int reference
  ``popcount(t(I) & D^Q)``, including items missing from the table,
  empty focal subsets, and universes straddling the 64-bit word boundary;
* **Rule-set parity** — for every plan on random scenarios, in both
  expanded and non-expanded mode, the batched extraction
  (:func:`repro.core.operators._rules_from_qualified` via
  ``FocalKernel`` + :func:`repro.itemsets.rules.rules_from_counts`)
  returns *byte-identical* rules — antecedent, consequent, counts, and
  float support/confidence — to the retained scalar reference path
  (:func:`repro.core.operators._rules_from_qualified_reference`, the
  memoized big-int AND chain feeding the consequent-growth generator).
"""

from functools import reduce

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels, tidset as ts
from repro.core.mipindex import build_mip_index
from repro.core.operators import (
    _rules_from_qualified,
    _rules_from_qualified_reference,
    make_context,
    op_eliminate,
    op_search,
)
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable

MIP_PLANS = (PlanKind.SEV, PlanKind.SVS, PlanKind.SSEV, PlanKind.SSVS,
             PlanKind.SSEUV)


# ---------------------------------------------------------------------------
# Count parity: FocalKernel vs the big-int AND chain
# ---------------------------------------------------------------------------


@st.composite
def kernel_cases(draw):
    """Random packed item rows, a focal mask, and itemsets over the keys."""
    n = draw(st.sampled_from([1, 7, 63, 64, 65, 130, 300]))
    n_items = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    tidsets = {
        key: ts.from_tids(
            np.flatnonzero(rng.random(n) < rng.uniform(0.1, 0.9)).tolist()
        )
        for key in range(n_items)
    }
    mask = ts.from_tids(
        np.flatnonzero(rng.random(n) < rng.uniform(0.0, 0.9)).tolist()
    )
    itemsets = [
        tuple(
            sorted(
                draw(
                    st.sets(
                        # n_items is a *missing* key: zero-tidset semantics.
                        st.integers(min_value=0, max_value=n_items),
                        min_size=1,
                        max_size=min(n_items + 1, 5),
                    )
                )
            )
        )
        for _ in range(draw(st.integers(min_value=1, max_value=6)))
    ]
    return n, tidsets, mask, itemsets


@settings(max_examples=60, deadline=None)
@given(kernel_cases())
def test_focal_counts_match_bigint_reference(case):
    n, tidsets, mask, itemsets = case
    words = kernels.n_words(n)
    matrix = kernels.pack_many([tidsets[k] for k in sorted(tidsets)], words)
    row_of = {k: i for i, k in enumerate(sorted(tidsets))}
    dq_size = ts.count(mask)
    kernel = kernels.FocalKernel(matrix, row_of, kernels.pack(mask, words), dq_size)

    def reference(itemset):
        inter = reduce(
            lambda acc, key: acc & tidsets.get(key, 0), itemset, mask
        )
        return ts.count(inter)

    # Batched family evaluation first, scalar lookups after: both paths
    # must agree with the reference (and with each other through the
    # shared memo).
    family_counts = kernel.count_family(itemsets)
    for itemset in itemsets:
        assert family_counts[itemset] == reference(itemset)
        assert kernel.count(itemset) == reference(itemset)
    # Fresh kernel, scalar-only path (no prior family batch).
    scalar = kernels.FocalKernel(
        matrix, row_of, kernels.pack(mask, words), dq_size
    )
    for itemset in itemsets:
        assert scalar.count(itemset) == reference(itemset)
    assert kernel.count(()) == dq_size


# ---------------------------------------------------------------------------
# Rule-set parity: batched extraction vs the scalar reference, all plans
# ---------------------------------------------------------------------------


@st.composite
def rule_scenarios(draw):
    n_attrs = draw(st.integers(min_value=3, max_value=4))
    cards = [draw(st.integers(min_value=2, max_value=4)) for _ in range(n_attrs)]
    n_records = draw(st.integers(min_value=20, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    table = RelationalTable(Schema(attrs), data)

    ai = draw(st.integers(min_value=0, max_value=n_attrs - 1))
    values = draw(
        st.sets(
            st.integers(min_value=0, max_value=cards[ai] - 1),
            min_size=1, max_size=cards[ai],
        )
    )
    aitem = None
    if draw(st.booleans()):
        size = draw(st.integers(min_value=1, max_value=n_attrs - 1))
        aitem = frozenset(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_attrs - 1),
                    min_size=size, max_size=size, unique=True,
                )
            )
        )
    query = LocalizedQuery(
        range_selections={ai: frozenset(values)},
        minsupp=draw(st.sampled_from([0.2, 0.4, 0.6])),
        minconf=draw(st.sampled_from([0.0, 0.5, 0.8, 1.0])),
        item_attributes=aitem,
    )
    return table, query


def _exact(rules):
    """Byte-exact comparison key: all fields including the floats."""
    return [
        (r.antecedent, r.consequent, r.support_count, r.support, r.confidence)
        for r in rules
    ]


@settings(max_examples=25, deadline=None)
@given(rule_scenarios(), st.booleans())
def test_batched_rules_match_scalar_reference_all_plans(scenario, expand):
    table, query = scenario
    index = build_mip_index(table, primary_support=0.05)
    dq = table.tids_matching(query.range_selections)
    if ts.count(dq) == 0:
        return  # empty focal subset: every plan raises, nothing to compare

    # Reference rules from the retained scalar path, off the SEV pipeline.
    ref_ctx = make_context(index, query, expand=expand)
    qualified = op_eliminate(ref_ctx, op_search(ref_ctx))
    ref_rules, _lookups = _rules_from_qualified_reference(ref_ctx, qualified)

    # The batched path must agree byte-for-byte when fed the same
    # qualified candidates...
    batched_rules, _lk, _ks = _rules_from_qualified(ref_ctx, qualified)
    assert _exact(batched_rules) == _exact(ref_rules)

    # ...and through every full plan pipeline (array-native end to end).
    for kind in MIP_PLANS:
        result = execute_plan(kind, index, query, expand=expand)
        assert _exact(result.rules) == _exact(ref_rules), kind
