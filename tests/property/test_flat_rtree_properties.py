"""Property tests: the flat SoA traversal is bit-equivalent to the pointer
tree — same hit set *and the same exact* ``nodes_visited`` — for dynamic
and packed trees, all window/``min_count`` combinations, and degenerate
(empty / single-box) inputs; and a stale compile is never served after
inserts/deletes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.flat import FlatRTree
from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert, pack_str
from repro.rtree.rtree import RTree
from repro.rtree.supported import SupportedRTree

CARDS = (6, 5, 7)


@st.composite
def rect_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    # min_value=0 keeps the empty tree in scope; 1-box trees are frequent.
    n = draw(st.sampled_from([0, 1, 2] + list(range(3, 121, 7))))
    rng = random.Random(seed)
    items = []
    for k in range(n):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(3)) for lo, c in zip(lows, CARDS)
        )
        items.append((Rect(lows, highs), k, rng.randrange(1, 40)))
    queries = []
    for _ in range(5):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(4)) for lo, c in zip(lows, CARDS)
        )
        queries.append((Rect(lows, highs), rng.randrange(1, 40)))
    return items, queries


def assert_flat_equivalent(tree, flat, query, min_count):
    """Same hits and byte-identical nodes_visited on both layouts."""
    for mc in (None, min_count):
        pointer = tree.search(query, min_count=mc)
        vector = flat.search(query, min_count=mc)
        assert sorted(e.payload for e in pointer.entries) == \
            sorted(e.payload for e in vector.entries)
        assert pointer.nodes_visited == vector.nodes_visited


@settings(max_examples=30, deadline=None)
@given(rect_sets(), st.sampled_from(["hilbert", "str"]), st.sampled_from([3, 8]))
def test_flat_matches_packed_pointer_tree(data, method, max_entries):
    items, queries = data
    packer = pack_hilbert if method == "hilbert" else pack_str
    tree = packer(3, items, max_entries=max_entries)
    flat = FlatRTree.from_rtree(tree)
    for query, mc in queries:
        assert_flat_equivalent(tree, flat, query, mc)


@settings(max_examples=30, deadline=None)
@given(rect_sets(), st.sampled_from([3, 8]))
def test_flat_matches_dynamic_pointer_tree(data, max_entries):
    items, queries = data
    tree = RTree(n_dims=3, max_entries=max_entries)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    flat = FlatRTree.from_rtree(tree)
    for query, mc in queries:
        assert_flat_equivalent(tree, flat, query, mc)


@settings(max_examples=25, deadline=None)
@given(rect_sets())
def test_flat_array_round_trip_preserves_search(data):
    items, queries = data
    tree = pack_hilbert(3, items, max_entries=8)
    flat = FlatRTree.from_rtree(tree)
    rebuilt = FlatRTree.from_arrays(
        flat.to_arrays(), [e.payload for e in flat.leaf_entries]
    )
    for query, mc in queries:
        assert_flat_equivalent(tree, rebuilt, query, mc)


@settings(max_examples=20, deadline=None)
@given(rect_sets(), st.integers(min_value=0, max_value=2**31))
def test_mutations_never_serve_stale_flat_hits(data, seed):
    """After any insert/delete sequence, SupportedRTree search results
    equal a brute-force scan — the stale compile is bypassed, and a
    recompile re-enables the flat path with identical answers."""
    items, queries = data
    rng = random.Random(seed)
    sup = SupportedRTree.build(3, items, max_entries=4)
    live = dict()
    for rect, pid, cnt in items:
        live[pid] = (rect, cnt)

    # Random mutation burst against the pointer tree underneath the compile.
    for step in range(rng.randrange(1, 6)):
        if live and rng.random() < 0.4:
            pid = rng.choice(sorted(live))
            rect, _cnt = live.pop(pid)
            assert sup.tree.delete(rect, pid)
        else:
            pid = 1000 + step
            lows = tuple(rng.randrange(c) for c in CARDS)
            rect = Rect.point(lows)
            cnt = rng.randrange(1, 40)
            sup.tree.insert(rect, pid, cnt)
            live[pid] = (rect, cnt)
    assert not sup.flat_is_current()

    def brute(query, mc=None):
        return sorted(
            pid for pid, (rect, cnt) in live.items()
            if rect.intersects(query) and (mc is None or cnt >= mc)
        )

    for query, mc in queries:
        assert sorted(
            e.payload for e in sup.search(query).entries
        ) == brute(query)
        assert sorted(
            e.payload for e in sup.search_supported(query, mc).entries
        ) == brute(query, mc)
        # The payload-array path must refuse to answer from the stale
        # compile — never arrays from a diverged snapshot.
        assert sup.search_arrays(query) is None
        assert sup.search_arrays(query, min_count=mc) is None

    # Recompile: flat path returns, answers unchanged.
    sup.compile_flat()
    assert sup.flat_is_current()
    for query, mc in queries:
        assert sorted(
            e.payload for e in sup.search(query).entries
        ) == brute(query)
        assert sorted(
            e.payload for e in sup.search_supported(query, mc).entries
        ) == brute(query, mc)
        # Payload arrays are served again and agree with the brute-force
        # scan: slots resolve to the live payloads with their counts.
        for eff_mc in (None, mc):
            hits = sup.search_arrays(query, min_count=eff_mc)
            assert hits is not None
            got = sorted(
                (sup.flat.payloads[int(slot)], int(cnt))
                for slot, cnt in zip(hits.slots, hits.counts)
            )
            assert got == sorted(
                (pid, live[pid][1]) for pid in brute(query, eff_mc)
            )
