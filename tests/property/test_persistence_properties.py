"""Property tests: index persistence round-trips on random tables."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mipindex import build_mip_index
from repro.core.persistence import load_index, save_index
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable


@st.composite
def small_tables(draw):
    n_attrs = draw(st.integers(min_value=2, max_value=4))
    cards = [draw(st.integers(min_value=2, max_value=4)) for _ in range(n_attrs)]
    n_records = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    return RelationalTable(Schema(attrs), data)


@settings(max_examples=15, deadline=None)
@given(small_tables(), st.sampled_from([0.1, 0.3]))
def test_roundtrip_preserves_everything(tmp_path_factory, table, primary):
    index = build_mip_index(table, primary_support=primary)
    path = tmp_path_factory.mktemp("persist") / "t.npz"
    save_index(index, path)
    loaded, weights = load_index(path)
    assert weights is None
    assert loaded.table.schema == index.table.schema
    assert np.array_equal(loaded.table.data, index.table.data)
    assert [(m.itemset, m.tidset, m.global_count) for m in loaded.mips] == \
        [(m.itemset, m.tidset, m.global_count) for m in index.mips]
    assert loaded.stats.length_histogram == index.stats.length_histogram
