"""Property tests: the three miners agree on random relational tables."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tidset as ts
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable
from repro.itemsets.apriori import apriori
from repro.itemsets.charm import charm
from repro.itemsets.eclat import eclat
from repro.itemsets.itemset import is_subset_itemset


@st.composite
def tables(draw):
    n_attrs = draw(st.integers(min_value=2, max_value=4))
    cards = [draw(st.integers(min_value=2, max_value=4)) for _ in range(n_attrs)]
    n_records = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    return RelationalTable(Schema(attrs), data)


minsupps = st.sampled_from([0.1, 0.25, 0.4, 0.6])


@settings(max_examples=40, deadline=None)
@given(tables(), minsupps)
def test_apriori_equals_eclat(table, minsupp):
    a = apriori(table.item_tidsets(), table.n_records, minsupp)
    e = eclat(table.item_tidsets(), table.n_records, minsupp)
    assert [(f.items, f.tidset) for f in a] == [(f.items, f.tidset) for f in e]


@settings(max_examples=40, deadline=None)
@given(tables(), minsupps)
def test_charm_is_exactly_the_closures(table, minsupp):
    frequent = apriori(table.item_tidsets(), table.n_records, minsupp)
    closed = charm(table.item_tidsets(), table.n_records, minsupp)
    by_tidset = {c.tidset: c for c in closed}
    # one closed itemset per distinct frequent tidset
    assert set(by_tidset) == {f.tidset for f in frequent}
    assert len(by_tidset) == len(closed)
    for f in frequent:
        closure = by_tidset[f.tidset]
        assert is_subset_itemset(f.items, closure.items)
    # closedness: the closure equals the items shared by all its records
    for cfi in closed:
        shared = tuple(sorted(
            item for item, mask in table.item_tidsets().items()
            if ts.is_subset(cfi.tidset, mask)
        ))
        assert cfi.items == shared
