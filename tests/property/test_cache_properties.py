"""Property tests: the materialized cache never changes answers.

Three invariants on random tables, queries, and interleavings:

* cache-served rules are byte-identical to fresh execution for every one
  of the six plans (list equality, not set equality — order included);
* under random interleavings of queries, index mutations, and explicit
  invalidation, a served result always equals the fresh execution at the
  current generation (stale entries are dropped, never served);
* under an adversarially tight byte budget the accounting invariant
  holds after every insert: ``current_bytes <= budget_bytes``, and the
  byte counter matches the sum over live entries exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import RuleCache
from repro.core.engine import Colarm
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable


@st.composite
def tables(draw):
    n_attrs = draw(st.integers(min_value=3, max_value=4))
    cards = [draw(st.integers(min_value=2, max_value=4)) for _ in range(n_attrs)]
    n_records = draw(st.integers(min_value=20, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    return RelationalTable(Schema(attrs), data)


def query_for(draw, table):
    cards = [len(a.values) for a in table.schema.attributes]
    ai = draw(st.integers(min_value=0, max_value=len(cards) - 1))
    values = draw(st.sets(
        st.integers(min_value=0, max_value=cards[ai] - 1),
        min_size=1, max_size=cards[ai],
    ))
    return LocalizedQuery(
        {ai: frozenset(values)},
        draw(st.sampled_from([0.3, 0.45, 0.6])),
        draw(st.sampled_from([0.5, 0.75, 0.9])),
    )


@st.composite
def plan_scenarios(draw):
    table = draw(tables())
    return table, query_for(draw, table)


@settings(max_examples=20, deadline=None)
@given(plan_scenarios())
def test_cache_served_rules_identical_across_all_six_plans(scenario):
    table, query = scenario
    if not table.tids_matching(query.range_selections):
        return  # empty focal subsets are rejected; nothing to serve
    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)
    for kind in PlanKind:
        fresh = execute_plan(kind, engine.index, query)
        first = engine.query(query, plan=kind)
        repeat = engine.query(query, plan=kind)
        assert repeat.cached, kind
        assert first.rules == fresh.rules, kind
        assert repeat.rules == fresh.rules, kind


@st.composite
def interleavings(draw):
    table = draw(tables())
    pool = [query_for(draw, table) for _ in range(draw(
        st.integers(min_value=1, max_value=3)
    ))]
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("query"),
                      st.integers(min_value=0, max_value=len(pool) - 1)),
            st.tuples(st.just("mutate"), st.just(0)),
            st.tuples(st.just("invalidate"), st.just(0)),
        ),
        min_size=4, max_size=12,
    ))
    return table, pool, ops


@settings(max_examples=20, deadline=None)
@given(interleavings())
def test_mutation_and_invalidation_interleavings_never_serve_stale(scenario):
    table, pool, ops = scenario
    pool = [q for q in pool if table.tids_matching(q.range_selections)]
    if not pool:
        return
    engine = Colarm(table, primary_support=0.05)
    engine.enable_cache(calibrate=False)
    cache = engine.cache
    for op, arg in ops:
        if op == "mutate":
            # The generation token is the R-tree mutation counter; bumping
            # it models any structural index maintenance.
            engine.index.rtree.tree.mutations += 1
        elif op == "invalidate":
            cache.invalidate()
            assert len(cache) == 0 and cache.stats.current_bytes == 0
        else:
            query = pool[arg % len(pool)]
            before = cache.stats.stale_drops
            outcome = engine.query(query, plan=PlanKind.SSVS)
            fresh = execute_plan(PlanKind.SSVS, engine.index, query)
            assert outcome.rules == fresh.rules
            if outcome.cached:
                # A serve is only legal from a current-generation entry.
                assert cache.stats.stale_drops == before
    # Closing invariant: staleness is dropped lazily — after probing
    # every pool query, only current-generation entries remain.
    for query in pool:
        cache.probe(query)
    generation = cache.generation()
    assert all(
        e.generation == generation for e in cache._entries.values()
    )


@st.composite
def eviction_scenarios(draw):
    table = draw(tables())
    pool = []
    seen = set()
    for _ in range(6):
        q = query_for(draw, table)
        if q not in seen:
            seen.add(q)
            pool.append(q)
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["put", "get"]),
            st.integers(min_value=0, max_value=len(pool) - 1),
        ),
        min_size=6, max_size=20,
    ))
    budget_entries = draw(st.integers(min_value=1, max_value=3))
    return table, pool, ops, budget_entries


@settings(max_examples=20, deadline=None)
@given(eviction_scenarios())
def test_tight_budget_eviction_keeps_byte_accounting_exact(scenario):
    table, pool, ops, budget_entries = scenario
    pool = [q for q in pool if table.tids_matching(q.range_selections)]
    if not pool:
        return
    index = build_mip_index(table, primary_support=0.05)
    rules = {q: execute_plan(PlanKind.SSVS, index, q).rules for q in pool}
    probe = RuleCache(index, budget_bytes=1 << 30)
    probe.put_rules(pool[0], rules[pool[0]])
    per_entry = max(probe.stats.current_bytes, 1)
    cache = RuleCache(
        index, budget_bytes=budget_entries * per_entry, landmark_hits=2
    )
    accepted = 0
    for op, arg in ops:
        query = pool[arg % len(pool)]
        if op == "put":
            accepted += cache.put_rules(query, rules[query])
        else:
            served = cache.get_rules(query)
            if served is not None:
                assert served == rules[query]
        assert cache.stats.current_bytes <= cache.budget_bytes
        assert cache.stats.current_bytes == sum(
            e.nbytes for e in cache._entries.values()
        )
    # Rejected (over-budget) puts return False and never count.
    assert cache.stats.insertions == accepted
    assert cache.stats.rejected == \
        sum(1 for op, _ in ops if op == "put") - accepted
    assert len(cache) <= max(accepted, 1)
