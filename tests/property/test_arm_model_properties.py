"""Property tests for the density-aware ARM cardinality model.

The contract the cost model leans on: as ``min_count`` rises, every
*measured* component of :class:`ArmModelStats` — the frequent-item count,
the sampled frequent pairs and triples, and the greedy chain length — is
monotone non-increasing, because each is a threshold count over fixed
measured supports (and the strongest-first sample at a higher floor is a
prefix of the sample at a lower one).  The derived mining-mass estimate is
checked against its hard structural lower bounds at every floor.

Tables stay small (<= 5 attributes, cardinality <= 3, so <= 15 items):
every item fits inside both sample caps and the sampled measurements are
exact, which is what makes the monotonicity provable rather than merely
typical.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tidset as ts
from repro.core.costs import _model_arm_counts
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable


@st.composite
def tables_and_focal(draw):
    n_attrs = draw(st.integers(min_value=2, max_value=5))
    cards = tuple(
        draw(st.integers(min_value=2, max_value=3)) for _ in range(n_attrs)
    )
    n_records = draw(st.integers(min_value=15, max_value=70))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    # optionally plant a correlated block so dense cores appear often
    if draw(st.booleans()):
        block = rng.random(n_records) < 0.5
        data[block] = data[block][:1]
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    table = RelationalTable(Schema(attrs), data)
    ai = draw(st.integers(min_value=0, max_value=n_attrs - 1))
    values = frozenset(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=cards[ai] - 1),
                min_size=1,
                max_size=cards[ai],
            )
        )
    )
    return table, {ai: values}


def model_inputs(table, selections):
    dq = table.tids_matching(selections)
    item_tidsets = {
        (item.attribute, item.value): mask
        for item, mask in table.item_tidsets().items()
    }
    return item_tidsets, dq, ts.count(dq)


@given(tables_and_focal())
@settings(max_examples=60, deadline=None)
def test_measured_components_monotone_in_min_count(table_and_focal):
    """f1, f2_sampled, f3_sampled, chain_length all shrink as the floor
    rises — the measured backbone of the estimate is provably monotone."""
    table, selections = table_and_focal
    item_tidsets, dq, dq_size = model_inputs(table, selections)
    if dq_size == 0:
        return
    query = LocalizedQuery(selections, 0.3, 0.5)
    ladder = [
        _model_arm_counts(query, item_tidsets, dq, dq_size, mc)
        for mc in range(1, dq_size + 2)
    ]
    for lo, hi in zip(ladder, ladder[1:]):
        assert hi.f1 <= lo.f1
        assert hi.f2_sampled <= lo.f2_sampled
        assert hi.f3_sampled <= lo.f3_sampled
        assert hi.chain_length <= lo.chain_length


@given(tables_and_focal())
@settings(max_examples=60, deadline=None)
def test_estimate_dominates_structural_lower_bounds(table_and_focal):
    """At every floor the mining-mass estimate covers what was *measured*:
    all frequent items, pairs and triples, and the 2**L / 3**L mass the
    greedy chain certifies."""
    table, selections = table_and_focal
    item_tidsets, dq, dq_size = model_inputs(table, selections)
    if dq_size == 0:
        return
    query = LocalizedQuery(selections, 0.3, 0.5)
    for mc in range(1, dq_size + 2):
        s = _model_arm_counts(query, item_tidsets, dq, dq_size, mc)
        measured = s.f1 + s.f2_sampled + s.f3_sampled
        assert s.est_itemsets >= measured
        # a frequent chain of length L certifies 2**L - 1 non-empty
        # frequent subsets and 3**L - 1 rule candidates
        assert s.est_itemsets >= 2.0 ** min(s.chain_length, 16) - 1.0 - 1e-9
        assert s.est_fanout >= 3.0 ** min(s.chain_length, 13) - 1.0 - 1e-9
        if s.f1 == 0:
            assert s.est_itemsets == 0.0 and s.est_fanout == 0.0
        # fit stays inside its clamp: never more items than F1, never
        # denser than a clique
        assert s.fit_size <= s.f1 + 1e-9
        assert 0.0 <= s.fit_density <= 1.0
