"""Property suite for delta-store maintenance.

Random interleavings of append / delete / query / recompact must be
byte-identical (expanded mode, where all plan families agree exactly) to a
from-scratch rebuild of the live data whenever the coverage guarantee
holds — across all six plans, and through the engine with the materialized
cache on and off.  Closed-mode output is checked against the scalar
oracle (``MaintainedIndex.query_scalar``), which shares no code with the
kernel path.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.engine import Colarm
from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable

CARDS = (3, 3, 2, 3)
PRIMARY = 0.05


def _schema() -> Schema:
    return Schema(tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(card)))
        for i, card in enumerate(CARDS)
    ))


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count,
         round(r.confidence, 12))
        for r in rules
    )


@st.composite
def scenarios(draw):
    """A base table, an op interleaving, and a query."""
    seed = draw(st.integers(0, 2**16))
    n_base = draw(st.integers(40, 70))
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(1, 4),
                      st.integers(0, 2**16)),
            st.tuples(st.just("delete"), st.integers(1, 3),
                      st.integers(0, 2**16)),
            st.tuples(st.just("recompact"), st.booleans()),
        ),
        min_size=1, max_size=5,
    ))
    attr = draw(st.integers(0, len(CARDS) - 1))
    values = draw(st.sets(st.integers(0, CARDS[attr] - 1),
                          min_size=1, max_size=2))
    minsupp = draw(st.sampled_from([0.45, 0.55, 0.65]))
    minconf = draw(st.sampled_from([0.5, 0.7]))
    return seed, n_base, ops, {attr: frozenset(values)}, minsupp, minconf


def _apply_ops(mx, rows, alive, ops):
    """Drive the maintained index and a plain-python mirror in lockstep.

    ``rows``/``alive`` mirror the full tid space (main + every delta slot,
    dead or alive); a recompact collapses both to the live rows, matching
    the fold's main-live + delta-live ordering.
    """
    for op in ops:
        if op[0] == "append":
            _, n, op_seed = op
            rng = np.random.default_rng(op_seed)
            batch = [[int(rng.integers(0, c)) for c in CARDS]
                     for _ in range(n)]
            mx.append(batch)
            rows.extend(batch)
            alive.extend([True] * n)
        elif op[0] == "delete":
            _, n, op_seed = op
            rng = np.random.default_rng(op_seed)
            tids = sorted({int(rng.integers(0, len(rows)))
                           for _ in range(n)})
            mx.delete(tids)
            for tid in tids:
                alive[tid] = False
        else:
            _, background = op
            if background:
                mx.begin_recompaction()
                mx.poll_recompaction(wait=True)
            else:
                mx.recompact()
            rows[:] = [r for r, ok in zip(rows, alive) if ok]
            alive[:] = [True] * len(rows)


def _live_table(rows, alive):
    data = np.asarray(
        [r for r, ok in zip(rows, alive) if ok], dtype=np.int32
    ).reshape(-1, len(CARDS))
    return RelationalTable(_schema(), data)


@settings(max_examples=20, deadline=None)
@given(scenarios())
def test_interleavings_byte_identical_to_rebuild_all_plans(scenario):
    seed, n_base, ops, selections, minsupp, minconf = scenario
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [rng.integers(0, c, size=n_base) for c in CARDS]
    ).astype(np.int32)
    table = RelationalTable(_schema(), base)
    mx = MaintainedIndex(table, primary_support=PRIMARY, auto_rebuild=False)
    rows = [list(map(int, r)) for r in base]
    alive = [True] * n_base
    _apply_ops(mx, rows, alive, ops)

    query = LocalizedQuery(selections, minsupp, minconf)
    live = _live_table(rows, alive)
    dq_combined = int(
        np.all([np.isin(live.data[:, a], list(vs))
                for a, vs in selections.items()], axis=0).sum()
    )
    assume(dq_combined > 0)
    assume(mx.coverage_guaranteed(query, dq_combined))

    fresh = build_mip_index(live, primary_support=PRIMARY)
    for plan in PlanKind:
        expected = execute_plan(plan, fresh, query, expand=True).rules
        got = execute_plan(
            plan, mx.index, query, expand=True, delta=mx
        ).rules
        assert rule_key(got) == rule_key(expected), plan

    # Closed mode: the kernel path against the scalar oracle (generation-
    # independent code path; exactness needs no coverage argument beyond
    # the one already assumed).
    oracle = mx.query_scalar(query)
    assert rule_key(mx.query(query)) == rule_key(oracle)


@settings(max_examples=12, deadline=None)
@given(scenarios())
def test_engine_with_cache_matches_rebuild(scenario):
    """The optimizer-driven engine path — cache on and off — agrees with
    a from-scratch rebuild after every interleaving (expanded mode)."""
    seed, n_base, ops, selections, minsupp, minconf = scenario
    rng = np.random.default_rng(seed)
    base = np.column_stack(
        [rng.integers(0, c, size=n_base) for c in CARDS]
    ).astype(np.int32)
    table = RelationalTable(_schema(), base)
    engine = Colarm(table, primary_support=PRIMARY, expand=True)
    engine.enable_cache(calibrate=False)
    engine.enable_maintenance(calibrate=False)
    mx = engine.maintenance
    rows = [list(map(int, r)) for r in base]
    alive = [True] * n_base
    query = LocalizedQuery(selections, minsupp, minconf)

    for op in ops:
        _apply_ops(mx, rows, alive, [op])
        engine._install_recompaction()  # adopt any fold immediately
        live = _live_table(rows, alive)
        dq_combined = int(
            np.all([np.isin(live.data[:, a], list(vs))
                    for a, vs in selections.items()], axis=0).sum()
        )
        if dq_combined == 0 or not mx.coverage_guaranteed(
            query, dq_combined
        ):
            continue
        fresh = build_mip_index(live, primary_support=PRIMARY)
        expected = rule_key(
            execute_plan(PlanKind.SEV, fresh, query, expand=True).rules
        )
        cold = engine.query(query, use_cache=False)
        assert rule_key(cold.rules) == expected, op
        primed = engine.query(query, use_cache=True)   # populates
        assert rule_key(primed.rules) == expected, op
        served = engine.query(query, use_cache=True)   # may serve cached
        assert rule_key(served.rules) == expected, op
