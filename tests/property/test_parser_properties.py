"""Property tests: query rendering round-trips through the parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.dataset.salary import salary_dataset

SALARY = salary_dataset()
SCHEMA = SALARY.schema


@st.composite
def random_queries(draw):
    """A random well-formed query text plus its expected structure."""
    n_range = draw(st.integers(min_value=1, max_value=3))
    attr_idxs = draw(
        st.lists(
            st.integers(min_value=0, max_value=SCHEMA.n_attributes - 1),
            min_size=n_range, max_size=n_range, unique=True,
        )
    )
    ranges = {}
    clauses = []
    for ai in attr_idxs:
        attr = SCHEMA.attributes[ai]
        values = draw(
            st.lists(
                st.sampled_from(range(attr.cardinality)),
                min_size=1, max_size=attr.cardinality, unique=True,
            )
        )
        ranges[ai] = frozenset(values)
        labels = ", ".join(f'"{attr.values[v]}"' for v in values)
        clauses.append(f"{attr.name} = ({labels})")
    minsupp = draw(st.sampled_from([0.1, 0.25, 0.5, 0.8]))
    minconf = draw(st.sampled_from([0.0, 0.3, 0.6, 1.0]))
    use_items = draw(st.booleans())
    item_clause = ""
    item_attrs = None
    if use_items:
        item_idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=SCHEMA.n_attributes - 1),
                min_size=1, max_size=SCHEMA.n_attributes, unique=True,
            )
        )
        item_attrs = frozenset(item_idxs)
        names = ", ".join(SCHEMA.attributes[i].name for i in item_idxs)
        item_clause = f"AND ITEM ATTRIBUTES {names} "
    connector = draw(st.sampled_from([" AND ", ", "]))
    text = (
        "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
        f"WHERE RANGE {connector.join(clauses)} "
        f"{item_clause}"
        f"HAVING minsupport = {minsupp} AND minconfidence = {minconf};"
    )
    return text, ranges, minsupp, minconf, item_attrs


@settings(max_examples=80, deadline=None)
@given(random_queries())
def test_parse_recovers_structure(case):
    text, ranges, minsupp, minconf, item_attrs = case
    parsed = parse_query(text, SCHEMA)
    assert parsed.dataset == "salary"
    query = parsed.query
    assert dict(query.range_selections) == ranges
    assert query.minsupp == minsupp
    assert query.minconf == minconf
    assert query.item_attributes == item_attrs
