"""Property tests: every batched kernel agrees with the pure-int reference.

``repro.kernels`` is an optimization layer only — ``repro.tidset`` ints
remain the semantic reference.  For random tidset batches (including
universes with ``n % 64 != 0`` trailing-word edges and empty batches /
empty masks) every kernel must agree *exactly* with the big-int path,
under both popcount implementations (``np.bitwise_count`` and the 16-bit
lookup-table fallback used on numpy < 2).
"""

from contextlib import contextmanager
from functools import reduce

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import kernels, tidset as ts

#: Both popcount dispatch paths (hypothesis forbids function-scoped
#: fixtures, so tests parametrize and flip the flag via context manager).
POPCOUNT_PATHS = ["native", "lut"]
both_paths = pytest.mark.parametrize("popcount_path", POPCOUNT_PATHS)


@contextmanager
def use_path(path):
    """Temporarily force one popcount implementation."""
    if path == "native" and not kernels.HAS_BITWISE_COUNT:
        pytest.skip("numpy < 2 has no bitwise_count")
    saved = kernels._use_bitwise_count
    kernels._use_bitwise_count = path == "native"
    try:
        yield
    finally:
        kernels._use_bitwise_count = saved


#: Universes straddling the word boundary: n % 64 == 0 and != 0, n < 64.
universes = st.sampled_from([1, 7, 63, 64, 65, 128, 130, 300])


@st.composite
def batches(draw):
    """A universe size plus a batch of random tidsets inside it."""
    n = draw(universes)
    k = draw(st.integers(min_value=0, max_value=8))
    sets = [
        ts.from_tids(
            draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        )
        for _ in range(k)
    ]
    mask = ts.from_tids(
        draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
    )
    return n, sets, mask


@both_paths
@given(batches())
def test_pack_unpack_roundtrip(popcount_path, batch):
    n, sets, mask = batch
    with use_path(popcount_path):
        words = kernels.n_words(n)
        matrix = kernels.pack_many(sets, words)
        assert matrix.shape == (len(sets), words)
        assert [kernels.unpack(row) for row in matrix] == sets
        assert kernels.unpack(kernels.pack(mask, words)) == mask
        assert kernels.unpack(kernels.full_row(n, words)) == ts.full(n)
        assert kernels.unpack(kernels.zero_row(words)) == ts.EMPTY


@both_paths
@given(batches())
def test_counts_match_reference(popcount_path, batch):
    n, sets, mask = batch
    with use_path(popcount_path):
        words = kernels.n_words(n)
        matrix = kernels.pack_many(sets, words)
        packed_mask = kernels.pack(mask, words)
        assert list(kernels.popcount_rows(matrix)) == [
            ts.count(s) for s in sets
        ]
        assert list(kernels.and_count(matrix, packed_mask)) == [
            ts.count(ts.intersect(s, mask)) for s in sets
        ]
        assert list(kernels.andnot_count(matrix, packed_mask)) == [
            ts.count(ts.difference(s, mask)) for s in sets
        ]


@both_paths
@given(batches())
def test_set_algebra_matches_reference(popcount_path, batch):
    n, sets, mask = batch
    with use_path(popcount_path):
        words = kernels.n_words(n)
        matrix = kernels.pack_many(sets, words)
        packed_mask = kernels.pack(mask, words)
        inter = kernels.intersect_many(matrix, packed_mask)
        assert [kernels.unpack(row) for row in inter] == [
            s & mask for s in sets
        ]
        assert list(kernels.subset_of(matrix, packed_mask)) == [
            ts.is_subset(s, mask) for s in sets
        ]
        assert list(kernels.is_zero_rows(matrix)) == [
            s == ts.EMPTY for s in sets
        ]
        assert kernels.unpack(kernels.union_reduce(matrix)) == reduce(
            ts.union, sets, ts.EMPTY
        )
        assert kernels.unpack(
            kernels.and_reduce(matrix, kernels.full_row(n, words))
        ) == reduce(ts.intersect, sets, ts.full(n))


@both_paths
@given(universes)
def test_empty_matrix_edges(popcount_path, n):
    with use_path(popcount_path):
        words = kernels.n_words(n)
        empty = kernels.pack_many([], words)
        zero = kernels.zero_row(words)
        assert empty.shape == (0, words)
        assert kernels.popcount_rows(empty).shape == (0,)
        assert kernels.and_count(empty, zero).shape == (0,)
        assert kernels.subset_of(empty, zero).shape == (0,)
        assert kernels.unpack(kernels.union_reduce(empty)) == ts.EMPTY
        # AND over zero rows is the seed (here: the packed universe).
        assert kernels.unpack(
            kernels.and_reduce(empty, kernels.full_row(n, words))
        ) == ts.full(n)


@both_paths
@given(universes)
def test_empty_mask_edge(popcount_path, n):
    with use_path(popcount_path):
        words = kernels.n_words(n)
        matrix = kernels.pack_many([ts.full(n)], words)
        zero = kernels.zero_row(words)
        assert list(kernels.and_count(matrix, zero)) == [0]
        assert list(kernels.subset_of(matrix, zero)) == [n == 0]
        assert kernels.unpack(
            kernels.intersect_many(matrix, zero)[0]
        ) == ts.EMPTY


def test_pack_overflow_raises():
    with pytest.raises(OverflowError):
        kernels.pack(1 << 64, 1)
    with pytest.raises(ValueError):
        kernels.pack(-1, 1)


def test_popcount_elementwise_paths_agree():
    rng = np.random.default_rng(7)
    array = rng.integers(0, 2**63, size=(13, 5), dtype=np.uint64)
    lut = kernels._popcount16_table()
    expected = lut[array.view("<u2")].reshape(13, 5, 4).sum(axis=-1)
    assert np.array_equal(kernels.popcount(array).astype(np.int64), expected)
