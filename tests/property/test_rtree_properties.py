"""Property tests: R-tree variants agree with brute-force range search."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import Rect
from repro.rtree.packing import pack_hilbert, pack_str
from repro.rtree.rtree import RTree

CARDS = (6, 5, 7)


@st.composite
def rect_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=0, max_value=120))
    rng = random.Random(seed)
    items = []
    for k in range(n):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(3)) for lo, c in zip(lows, CARDS)
        )
        items.append((Rect(lows, highs), k, rng.randrange(1, 40)))
    queries = []
    for _ in range(5):
        lows = tuple(rng.randrange(c) for c in CARDS)
        highs = tuple(
            min(c - 1, lo + rng.randrange(4)) for lo, c in zip(lows, CARDS)
        )
        queries.append((Rect(lows, highs), rng.randrange(1, 40)))
    return items, queries


def brute(items, query, min_count=None):
    return sorted(
        pid for rect, pid, cnt in items
        if rect.intersects(query) and (min_count is None or cnt >= min_count)
    )


@settings(max_examples=30, deadline=None)
@given(rect_sets(), st.sampled_from([3, 8]))
def test_dynamic_tree_matches_brute_force(data, max_entries):
    items, queries = data
    tree = RTree(n_dims=3, max_entries=max_entries)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    for query, mc in queries:
        assert sorted(e.payload for e in tree.search(query).entries) == \
            brute(items, query)
        assert sorted(
            e.payload for e in tree.search(query, min_count=mc).entries
        ) == brute(items, query, mc)


@settings(max_examples=30, deadline=None)
@given(rect_sets(), st.sampled_from(["hilbert", "str"]))
def test_packed_tree_matches_brute_force(data, method):
    items, queries = data
    packer = pack_hilbert if method == "hilbert" else pack_str
    tree = packer(3, items, max_entries=8)
    for query, mc in queries:
        assert sorted(e.payload for e in tree.search(query).entries) == \
            brute(items, query)
        assert sorted(
            e.payload for e in tree.search(query, min_count=mc).entries
        ) == brute(items, query, mc)


@settings(max_examples=20, deadline=None)
@given(rect_sets())
def test_insert_then_delete_half(data):
    items, queries = data
    tree = RTree(n_dims=3, max_entries=4)
    for rect, pid, cnt in items:
        tree.insert(rect, pid, cnt)
    keep = items[len(items) // 2:]
    for rect, pid, _ in items[: len(items) // 2]:
        assert tree.delete(rect, pid)
    assert len(tree) == len(keep)
    for query, _ in queries:
        assert sorted(e.payload for e in tree.search(query).entries) == \
            brute(keep, query)
