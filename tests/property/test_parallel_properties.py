"""Property tests for the sharded-execution merge algebra.

The whole correctness argument of :mod:`repro.parallel` is *record
partitionability*: every hot-path count is a popcount over packed words,
so for ANY split of the word axis into contiguous shards, the int64 sum
of per-shard partials equals the unsharded count exactly — no floating
point, no ordering sensitivity, no edge dependence on where the cuts
fall.  These tests state that as a property over random universes
(including non-word-aligned record counts, where the last word carries
padding bits) and random shard splits (including empty shards and more
shards than words).

The subset-lattice reference here is deliberately *independent* of the
production DP: it enumerates every sub-itemset and ANDs its item rows
from scratch, so a mask-recurrence bug and a merge bug cannot cancel.

The final test is not a property: it kills a live pool's workers and
checks every operator-facing sharded op degrades to the ``None``
serial-fallback signal instead of propagating the crash.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.parallel import (
    and_count_partial,
    popcount_rows_partial,
    shard_words,
    subset_lattice_partial,
)


@st.composite
def sharded_batches(draw):
    """A packed matrix, a mask, a row subset, and a random word split."""
    n_records = draw(st.integers(min_value=1, max_value=300))
    n_rows = draw(st.integers(min_value=0, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    bits = rng.random((n_rows + 1, n_records)) < density
    words = kernels.n_words(n_records)
    packed = np.zeros((n_rows + 1, words), dtype=kernels._WORD_DTYPE)
    bytes_ = np.packbits(bits, axis=1, bitorder="little")
    packed.view(np.uint8)[:, : bytes_.shape[1]] = bytes_
    matrix, mask = packed[:-1], packed[-1]
    rows = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max(n_rows - 1, 0)),
                max_size=2 * n_rows,
            )
        )
        if n_rows
        else [],
        dtype=np.int64,
    )
    # Random contiguous split of [0, words]: duplicated cut points yield
    # empty shards, which must contribute all-zero partials.
    n_cuts = draw(st.integers(min_value=0, max_value=6))
    cuts = sorted(
        draw(st.integers(min_value=0, max_value=words))
        for _ in range(n_cuts)
    )
    bounds = [0, *cuts, words]
    shards = list(zip(bounds[:-1], bounds[1:]))
    return matrix, mask, rows, shards


@given(sharded_batches())
def test_and_count_merge_exact(batch):
    matrix, mask, rows, shards = batch
    total = sum(
        and_count_partial(matrix, rows, mask, lo, hi) for lo, hi in shards
    )
    expected = kernels.and_count(matrix[rows], mask).astype(np.int64)
    assert np.array_equal(np.asarray(total, dtype=np.int64), expected)


@given(sharded_batches())
def test_popcount_rows_merge_exact(batch):
    matrix, _mask, rows, shards = batch
    total = sum(
        popcount_rows_partial(matrix, rows, lo, hi) for lo, hi in shards
    )
    expected = kernels.popcount_rows(matrix[rows]).astype(np.int64)
    assert np.array_equal(np.asarray(total, dtype=np.int64), expected)


@given(sharded_batches(), st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=4))
@settings(deadline=None)
def test_subset_lattice_merge_exact(batch, n_items, n_itemsets):
    matrix, mask, _rows, shards = batch
    rng = np.random.default_rng(n_items * 1000 + n_itemsets)
    # idx -1 denotes "no item": its row is defined as all-zeros.
    idx = rng.integers(-1, matrix.shape[0], size=(n_itemsets, n_items))
    idx = idx.astype(np.int64)
    total = sum(
        subset_lattice_partial(matrix, idx, mask, lo, hi)
        for lo, hi in shards
    )
    # Independent reference: enumerate every sub-itemset explicitly.
    zero = np.zeros(matrix.shape[1], dtype=matrix.dtype)
    expected = np.zeros((n_itemsets, 1 << n_items), dtype=np.int64)
    for j in range(n_itemsets):
        for s in range(1 << n_items):
            acc = mask.copy()
            for b in range(n_items):
                if s >> b & 1:
                    row = zero if idx[j, b] < 0 else matrix[idx[j, b]]
                    acc &= row
            expected[j, s] = kernels.popcount_rows(acc[None, :])[0]
    assert np.array_equal(np.asarray(total, dtype=np.int64), expected)


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=12))
def test_shard_words_partitions(n_words, n_shards):
    shards = shard_words(n_words, n_shards)
    assert len(shards) == n_shards
    pos = 0
    for lo, hi in shards:
        assert lo == pos and hi >= lo
        pos = hi
    assert pos == n_words
    sizes = [hi - lo for lo, hi in shards]
    assert max(sizes) - min(sizes) <= 1  # balanced split


def test_pool_crash_degrades_to_serial_fallback(salary_index):
    """SIGKILLed workers must yield ``None`` (serial fallback), not raise."""
    import os
    import signal

    from repro.parallel import ParallelConfig, ParallelContext

    ctx = ParallelContext(
        salary_index, ParallelConfig(n_shards=2, force=True)
    )
    try:
        rows = np.arange(salary_index.n_mips, dtype=np.int64)
        n_records = salary_index.table.n_records
        dq = kernels.pack((1 << n_records) - 1, salary_index.tidset_words)
        live = ctx.and_count_mips(rows, dq)
        assert live is not None
        assert np.array_equal(
            live, kernels.and_count(
                salary_index.mip_tidset_matrix[rows], dq
            ).astype(np.int64),
        )
        for pid in ctx.executor.worker_pids():
            os.kill(pid, signal.SIGKILL)
        assert ctx.and_count_mips(rows, dq) is None
        assert ctx.item_popcounts(np.arange(2, dtype=np.int64)) is None
        assert not ctx.executor.available
        # Broken stays broken: no half-alive pool resurrection.
        assert ctx.and_count_mips(rows, dq) is None
    finally:
        ctx.close()
