"""Property tests: plan equivalence and rule correctness on random data.

The strongest end-to-end invariants of the system:

* the five MIP-index plans always return identical rule sets;
* in expanded mode, with the POQM coverage condition satisfied, the ARM
  plan agrees byte-for-byte as well;
* every rule any plan emits has exact support and confidence, re-verified
  by direct counting over the focal records.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tidset as ts
from repro.core.mipindex import build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable

MIP_PLANS = (PlanKind.SEV, PlanKind.SVS, PlanKind.SSEV, PlanKind.SSVS,
             PlanKind.SSEUV)


@st.composite
def scenarios(draw):
    n_attrs = draw(st.integers(min_value=3, max_value=4))
    cards = [draw(st.integers(min_value=2, max_value=4)) for _ in range(n_attrs)]
    n_records = draw(st.integers(min_value=20, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in cards]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cards)
    )
    table = RelationalTable(Schema(attrs), data)

    n_range = draw(st.integers(min_value=1, max_value=2))
    range_attrs = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_attrs - 1),
            min_size=n_range, max_size=n_range, unique=True,
        )
    )
    selections = {}
    for ai in range_attrs:
        values = draw(
            st.sets(
                st.integers(min_value=0, max_value=cards[ai] - 1),
                min_size=1, max_size=cards[ai],
            )
        )
        selections[ai] = frozenset(values)
    minsupp = draw(st.sampled_from([0.3, 0.45, 0.6]))
    minconf = draw(st.sampled_from([0.5, 0.75, 0.9]))
    use_aitem = draw(st.booleans())
    item_attributes = None
    if use_aitem:
        item_attributes = frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_attrs - 1),
                    min_size=2, max_size=n_attrs,
                )
            )
        )
    query = LocalizedQuery(
        range_selections=selections,
        minsupp=minsupp,
        minconf=minconf,
        item_attributes=item_attributes,
    )
    return table, query


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@settings(max_examples=25, deadline=None)
@given(scenarios())
def test_mip_plans_identical_and_rules_exact(scenario):
    table, query = scenario
    dq = table.tids_matching(query.range_selections)
    if not dq:
        return  # empty focal subsets are rejected; nothing to compare
    index = build_mip_index(table, primary_support=0.05)
    results = {k: execute_plan(k, index, query) for k in MIP_PLANS}
    base = rule_key(results[PlanKind.SEV].rules)
    for kind in MIP_PLANS[1:]:
        assert rule_key(results[kind].rules) == base, kind

    dq_size = ts.count(dq)
    min_count = -(-int(query.minsupp * dq_size) // 1)
    for rule in results[PlanKind.SEV].rules:
        items_count = ts.count(table.itemset_tidset(rule.items) & dq)
        ante_count = ts.count(table.itemset_tidset(rule.antecedent) & dq)
        assert rule.support_count == items_count
        assert items_count / dq_size >= query.minsupp - 1e-9
        assert abs(rule.confidence - items_count / ante_count) < 1e-9
        assert rule.confidence >= query.minconf - 1e-9
        if query.item_attributes is not None:
            assert all(
                i.attribute in query.item_attributes for i in rule.items
            )


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_expanded_mode_all_six_plans_agree(scenario):
    table, query = scenario
    dq = table.tids_matching(query.range_selections)
    if not dq:
        return
    # POQM coverage: primary floor below minsupp * |D^Q| / |D|.
    floor = query.minsupp * ts.count(dq) / table.n_records
    primary = min(0.05, floor * 0.9)
    if primary <= 0:
        return
    index = build_mip_index(table, primary_support=primary)
    results = {k: execute_plan(k, index, query, expand=True) for k in PlanKind}
    base = rule_key(results[PlanKind.SEV].rules)
    for kind in PlanKind:
        assert rule_key(results[kind].rules) == base, kind
