"""Property tests for the extension modules: batching and maintenance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import build_mip_index
from repro.core.multiquery import execute_batch
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable

CARDS = (3, 3, 2, 3)


def rule_key(rules):
    return sorted(
        (r.antecedent, r.consequent, r.support_count, round(r.confidence, 12))
        for r in rules
    )


@st.composite
def tables_and_queries(draw):
    n_records = draw(st.integers(min_value=20, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = np.column_stack(
        [rng.integers(0, c, size=n_records) for c in CARDS]
    ).astype(np.int32)
    attrs = tuple(
        Attribute(f"a{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(CARDS)
    )
    table = RelationalTable(Schema(attrs), data)
    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        ai = draw(st.integers(min_value=0, max_value=len(CARDS) - 1))
        values = draw(
            st.sets(
                st.integers(min_value=0, max_value=CARDS[ai] - 1),
                min_size=1, max_size=CARDS[ai],
            )
        )
        queries.append(
            LocalizedQuery(
                {ai: frozenset(values)},
                draw(st.sampled_from([0.3, 0.5])),
                draw(st.sampled_from([0.5, 0.8])),
            )
        )
    return table, queries


@settings(max_examples=20, deadline=None)
@given(tables_and_queries())
def test_batch_always_matches_individual_runs(case):
    table, queries = case
    runnable = [
        q for q in queries if table.tids_matching(q.range_selections)
    ]
    if not runnable:
        return
    index = build_mip_index(table, primary_support=0.05)
    report = execute_batch(index, runnable)
    for item, query in zip(report.items, runnable):
        solo = execute_plan(PlanKind.SEV, index, query)
        assert rule_key(item.rules) == rule_key(solo.rules)


@settings(max_examples=12, deadline=None)
@given(
    tables_and_queries(),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=5),
)
def test_maintained_index_matches_full_rebuild(case, seed, n_new):
    table, queries = case
    runnable = [
        q
        for q in queries
        if table.tids_matching(q.range_selections)
        # Keep to queries whose coverage condition holds comfortably:
        # minsupp * |D^Q| >= primary*|main| + |delta|.
        and q.minsupp >= 0.5
    ]
    if not runnable:
        return
    mx = MaintainedIndex(table, primary_support=0.05, auto_rebuild=False)
    rng = np.random.default_rng(seed)
    new = [[int(rng.integers(0, c)) for c in CARDS] for _ in range(n_new)]
    mx.append(new)
    combined = RelationalTable(
        table.schema, np.vstack([table.data, np.asarray(new, dtype=np.int32)])
    )
    fresh = build_mip_index(combined, primary_support=0.05)
    from repro import tidset as ts

    for query in runnable:
        dq = combined.tids_matching(query.range_selections)
        if not dq:
            continue
        dq_size = ts.count(dq)
        got = mx.query(query)

        # Invariant 1: every maintained rule's statistics are exact over
        # the combined (main + delta) data and pass the thresholds.
        for rule in got:
            items_count = ts.count(combined.itemset_tidset(rule.items) & dq)
            ante_count = ts.count(
                combined.itemset_tidset(rule.antecedent) & dq
            )
            assert rule.support_count == items_count
            assert abs(rule.confidence - items_count / ante_count) < 1e-9
            assert items_count / dq_size >= query.minsupp - 1e-9
            assert rule.confidence >= query.minconf - 1e-9

        # Invariant 2 (closure-invariant containment): every maintained
        # rule corresponds to a full-rebuild rule with the same local
        # antecedent/itemset tidsets — a rebuild can only surface *more*
        # representations, never contradict the delta-corrected answer.
        def tidset_pair(rule):
            return (
                combined.itemset_tidset(rule.antecedent) & dq,
                combined.itemset_tidset(rule.items) & dq,
            )

        fresh_rules = execute_plan(PlanKind.SEV, fresh, query).rules
        fresh_pairs = {tidset_pair(r) for r in fresh_rules}
        for rule in got:
            assert tidset_pair(rule) in fresh_pairs
