"""Property tests: bitmask tidsets behave exactly like Python sets."""

from hypothesis import given
from hypothesis import strategies as st

from repro import tidset as ts

tid_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=60)


@given(tid_sets)
def test_roundtrip(tids):
    assert set(ts.iter_tids(ts.from_tids(tids))) == tids
    assert ts.count(ts.from_tids(tids)) == len(tids)


@given(tid_sets, tid_sets)
def test_algebra_matches_sets(a, b):
    ma, mb = ts.from_tids(a), ts.from_tids(b)
    assert set(ts.iter_tids(ts.intersect(ma, mb))) == a & b
    assert set(ts.iter_tids(ts.union(ma, mb))) == a | b
    assert set(ts.iter_tids(ts.difference(ma, mb))) == a - b
    assert ts.is_subset(ma, mb) == (a <= b)


@given(tid_sets, st.integers(min_value=0, max_value=300))
def test_contains(tids, probe):
    assert ts.contains(ts.from_tids(tids), probe) == (probe in tids)


@given(
    st.lists(st.integers(min_value=0, max_value=300), max_size=60),
    st.randoms(use_true_random=False),
)
def test_from_tids_order_and_duplicates_irrelevant(tids, rnd):
    """Regression: the packed-bytearray construction must be insensitive
    to input order and repeated tids (the incremental big-int OR it
    replaced trivially was)."""
    reference = ts.from_tids(set(tids))
    shuffled = list(tids)
    rnd.shuffle(shuffled)
    assert ts.from_tids(shuffled) == reference
    assert ts.from_tids(shuffled + shuffled) == reference
    assert set(ts.iter_tids(ts.from_tids(shuffled))) == set(tids)


def test_from_tids_rejects_negative():
    import pytest

    with pytest.raises(ValueError):
        ts.from_tids([3, -1])


@given(st.integers(min_value=0, max_value=200))
def test_full_has_every_tid(n):
    mask = ts.full(n)
    assert ts.count(mask) == n
    assert ts.to_list(mask) == list(range(n))
