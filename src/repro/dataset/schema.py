"""Relational schema for discretized datasets.

COLARM mines rules over a relational table whose every attribute has been
discretized into a finite, *ordered* list of cells (Section 2.1 of the
paper).  An :class:`Attribute` names those cells; a :class:`Schema` is an
ordered collection of attributes; an :class:`Item` is a single
attribute-value pair such as ``Age=20-30`` (the paper's ``A0``).

Items are plain ``(attribute_index, value_index)`` tuples so they hash and
sort cheaply; the schema renders them back into human-readable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import SchemaError

__all__ = ["Item", "Attribute", "Schema"]


class Item(NamedTuple):
    """A single attribute-value pair, e.g. ``(Age, 20-30)``.

    Both fields are indices: ``attribute`` into ``Schema.attributes`` and
    ``value`` into that attribute's ordered cell list.
    """

    attribute: int
    value: int


@dataclass(frozen=True)
class Attribute:
    """A discretized attribute: a name plus its ordered cell labels.

    The order of ``values`` is semantic — focal-subset ranges and bounding
    boxes are intervals over value *indices*, so quantitative attributes
    must list their cells in increasing order (``20-30`` before ``30-40``).
    """

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not self.values:
            raise SchemaError(f"attribute {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SchemaError(f"attribute {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        """Number of cells in this attribute's domain."""
        return len(self.values)

    def value_index(self, label: str) -> int:
        """Index of a cell label, raising :class:`SchemaError` if unknown."""
        try:
            return self.values.index(label)
        except ValueError:
            raise SchemaError(
                f"attribute {self.name!r} has no value {label!r}; "
                f"known values: {list(self.values)}"
            ) from None


class Schema:
    """An ordered collection of attributes with name-based lookup."""

    def __init__(self, attributes: tuple[Attribute, ...] | list[Attribute]):
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self.attributes = attributes
        self._index = {a.name: i for i, a in enumerate(attributes)}

    # -- basic shape ----------------------------------------------------

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def cardinalities(self) -> tuple[int, ...]:
        """Per-attribute domain sizes, in attribute order."""
        return tuple(a.cardinality for a in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}({a.cardinality})" for a in self.attributes)
        return f"Schema({parts})"

    # -- lookups ---------------------------------------------------------

    def attribute_index(self, name: str) -> int:
        """Index of an attribute by name."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; known: {list(self._index)}"
            ) from None

    def attribute(self, ref: int | str) -> Attribute:
        """Attribute by index or name."""
        if isinstance(ref, str):
            ref = self.attribute_index(ref)
        return self.attributes[ref]

    # -- items -----------------------------------------------------------

    def item(self, attribute: int | str, value: int | str) -> Item:
        """Build an :class:`Item` from attribute/value given as index or label."""
        attr_idx = (
            self.attribute_index(attribute) if isinstance(attribute, str) else attribute
        )
        attr = self.attributes[attr_idx]
        val_idx = attr.value_index(value) if isinstance(value, str) else value
        if not 0 <= val_idx < attr.cardinality:
            raise SchemaError(
                f"value index {val_idx} out of range for attribute "
                f"{attr.name!r} (cardinality {attr.cardinality})"
            )
        return Item(attr_idx, val_idx)

    def all_items(self) -> list[Item]:
        """Every possible item, in (attribute, value) order."""
        return [
            Item(ai, vi)
            for ai, attr in enumerate(self.attributes)
            for vi in range(attr.cardinality)
        ]

    def render_item(self, item: Item) -> str:
        """Human-readable form of an item, e.g. ``Age=20-30``."""
        attr = self.attributes[item.attribute]
        return f"{attr.name}={attr.values[item.value]}"

    def render_itemset(self, items) -> str:
        """Human-readable form of an itemset, e.g. ``{Age=20-30, Salary=90K-120K}``."""
        return "{" + ", ".join(self.render_item(i) for i in sorted(items)) + "}"
