"""Discretization of quantitative columns into ordered cells.

The paper treats discretization as an orthogonal offline step (footnote 3,
citing Srikant & Agrawal): quantitative attributes are cut into disjoint
intervals *before* the MIP-index is built, and online focal subsets must
align with those cells.  This module provides the standard binning schemes
plus helpers to turn raw numeric columns into :class:`~repro.dataset.schema.Attribute`
definitions with interval labels such as ``20-30``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataset.schema import Attribute
from repro.errors import DataError

__all__ = [
    "equal_width_edges",
    "equal_frequency_edges",
    "apply_edges",
    "interval_labels",
    "discretize_numeric",
]


def equal_width_edges(values: Sequence[float], n_bins: int) -> np.ndarray:
    """Bin edges splitting ``[min, max]`` into ``n_bins`` equal-width cells.

    Returns ``n_bins + 1`` strictly increasing edges.
    """
    _check_bins(n_bins)
    arr = _as_numeric(values)
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        # Degenerate column: widen artificially so edges stay distinct.
        hi = lo + 1.0
    return np.linspace(lo, hi, n_bins + 1)


def equal_frequency_edges(values: Sequence[float], n_bins: int) -> np.ndarray:
    """Quantile-based edges placing roughly equal record counts per cell.

    Duplicate quantiles (heavy ties) are collapsed, so the result may have
    fewer than ``n_bins`` cells; it always has at least one.
    """
    _check_bins(n_bins)
    arr = _as_numeric(values)
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)
    edges = np.unique(np.quantile(arr, quantiles))
    if len(edges) < 2:
        edges = np.array([float(edges[0]), float(edges[0]) + 1.0])
    return edges


def apply_edges(values: Sequence[float], edges: np.ndarray) -> np.ndarray:
    """Map each value to its cell index under ``edges``.

    Cells are half-open ``[e_i, e_{i+1})`` except the last, which is closed
    so the maximum lands in the final cell.  Values outside the edge span
    raise :class:`DataError` — discretization is supposed to be built from
    the same data it is applied to.
    """
    arr = _as_numeric(values)
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or len(edges) < 2:
        raise DataError("edges must be a 1-D array of at least two values")
    if np.any(np.diff(edges) <= 0):
        raise DataError("edges must be strictly increasing")
    if arr.size and (arr.min() < edges[0] or arr.max() > edges[-1]):
        raise DataError(
            f"values outside edge span [{edges[0]}, {edges[-1]}]: "
            f"min={arr.min()}, max={arr.max()}"
        )
    idx = np.searchsorted(edges, arr, side="right") - 1
    n_cells = len(edges) - 1
    return np.clip(idx, 0, n_cells - 1).astype(np.int32)


def interval_labels(edges: np.ndarray, fmt: str = "g") -> tuple[str, ...]:
    """Render edges into cell labels like ``('20-30', '30-40', ...)``."""
    edges = np.asarray(edges, dtype=float)
    return tuple(
        f"{edges[i]:{fmt}}-{edges[i + 1]:{fmt}}" for i in range(len(edges) - 1)
    )


def discretize_numeric(
    name: str,
    values: Sequence[float],
    n_bins: int,
    method: str = "width",
) -> tuple[Attribute, np.ndarray]:
    """Discretize one numeric column into an attribute plus cell indices.

    ``method`` is ``"width"`` (equal-width) or ``"frequency"``
    (equal-frequency).  Returns the :class:`Attribute` (with interval
    labels) and the per-record cell indices.
    """
    if method == "width":
        edges = equal_width_edges(values, n_bins)
    elif method == "frequency":
        edges = equal_frequency_edges(values, n_bins)
    else:
        raise DataError(f"unknown discretization method {method!r}")
    codes = apply_edges(values, edges)
    return Attribute(name, interval_labels(edges)), codes


def _check_bins(n_bins: int) -> None:
    if n_bins < 1:
        raise DataError(f"n_bins must be >= 1, got {n_bins}")


def _as_numeric(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise DataError("expected a 1-D column of numeric values")
    if arr.size == 0:
        raise DataError("cannot discretize an empty column")
    if np.any(~np.isfinite(arr)):
        raise DataError("column contains NaN or infinite values")
    return arr
