"""Relational data model, discretization, loaders and benchmark datasets."""

from repro.dataset.discretize import (
    apply_edges,
    discretize_numeric,
    equal_frequency_edges,
    equal_width_edges,
    interval_labels,
)
from repro.dataset.loaders import (
    load_csv,
    load_fimi,
    save_csv,
    save_fimi,
    transactions_to_table,
)
from repro.dataset.salary import SALARY_RECORDS, salary_dataset
from repro.dataset.schema import Attribute, Item, Schema
from repro.dataset.synthetic import (
    LocalPattern,
    chess_like,
    mushroom_like,
    plant_local_pattern,
    pumsb_like,
    quest_like,
)
from repro.dataset.table import RelationalTable, from_labeled_records

__all__ = [
    "Attribute",
    "Item",
    "Schema",
    "RelationalTable",
    "from_labeled_records",
    "equal_width_edges",
    "equal_frequency_edges",
    "apply_edges",
    "interval_labels",
    "discretize_numeric",
    "load_csv",
    "save_csv",
    "load_fimi",
    "save_fimi",
    "transactions_to_table",
    "salary_dataset",
    "SALARY_RECORDS",
    "LocalPattern",
    "plant_local_pattern",
    "chess_like",
    "mushroom_like",
    "pumsb_like",
    "quest_like",
]
