"""File loaders: CSV relational tables and FIMI transactional files.

The UCI benchmark datasets the paper uses (chess, mushroom, PUMSB) circulate
in the FIMI repository's transactional format — one transaction per line,
space-separated integer item ids.  COLARM itself works on relational tables,
so this module also converts transactional data into the relational model
when every transaction assigns exactly one item per attribute (true for
chess and mushroom, whose items encode attribute=value pairs).
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable, from_labeled_records
from repro.errors import DataError

__all__ = [
    "load_csv",
    "save_csv",
    "load_fimi",
    "save_fimi",
    "transactions_to_table",
]


def load_csv(path: str | Path, value_order: dict[str, Sequence[str]] | None = None
             ) -> RelationalTable:
    """Load a relational table from a header-ed CSV of value labels.

    Every column becomes a categorical attribute whose domain is the set of
    labels seen in that column.  ``value_order`` optionally fixes the cell
    order for named columns (needed for quantitative attributes whose labels
    must stay in increasing order, e.g. ``20-30`` before ``30-40``); other
    columns get their labels in first-seen order.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty CSV") from None
        rows = [row for row in reader if row]
    if not rows:
        raise DataError(f"{path}: CSV has a header but no records")
    attributes = []
    for col, name in enumerate(header):
        seen: list[str] = []
        for row in rows:
            if row[col] not in seen:
                seen.append(row[col])
        if value_order and name in value_order:
            ordered = list(value_order[name])
            missing = set(seen) - set(ordered)
            if missing:
                raise DataError(
                    f"{path}: column {name!r} has labels {sorted(missing)} "
                    "absent from the supplied value_order"
                )
            seen = ordered
        attributes.append(Attribute(name, tuple(seen)))
    return from_labeled_records(attributes, rows)


def save_csv(table: RelationalTable, path: str | Path) -> None:
    """Write a table as a CSV of value labels (inverse of :func:`load_csv`)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        for tid in range(table.n_records):
            labels = table.record_labels(tid)
            writer.writerow([labels[name] for name in table.schema.names])


def load_fimi(path: str | Path) -> list[tuple[int, ...]]:
    """Load a FIMI ``.dat`` file: one transaction of integer items per line."""
    path = Path(path)
    transactions: list[tuple[int, ...]] = []
    with path.open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                items = tuple(sorted({int(tok) for tok in line.split()}))
            except ValueError:
                raise DataError(f"{path}:{line_no}: non-integer item id") from None
            transactions.append(items)
    if not transactions:
        raise DataError(f"{path}: no transactions")
    return transactions


def save_fimi(transactions: Sequence[Sequence[int]], path: str | Path) -> None:
    """Write transactions in FIMI format (inverse of :func:`load_fimi`)."""
    path = Path(path)
    with path.open("w") as fh:
        for txn in transactions:
            fh.write(" ".join(str(i) for i in sorted(txn)) + "\n")


def transactions_to_table(
    transactions: Sequence[Sequence[int]],
    attribute_of_item: dict[int, str],
) -> RelationalTable:
    """Convert attribute-encoded transactions into a relational table.

    ``attribute_of_item`` maps each global item id to the attribute it
    belongs to (as in chess/mushroom, where every record carries exactly one
    item per attribute).  Raises :class:`DataError` if any transaction
    misses an attribute or assigns it twice.
    """
    attr_names: list[str] = []
    for item in sorted(attribute_of_item):
        name = attribute_of_item[item]
        if name not in attr_names:
            attr_names.append(name)
    items_per_attr: dict[str, list[int]] = {name: [] for name in attr_names}
    for item in sorted(attribute_of_item):
        items_per_attr[attribute_of_item[item]].append(item)
    attributes = tuple(
        Attribute(name, tuple(str(i) for i in items_per_attr[name]))
        for name in attr_names
    )
    schema = Schema(attributes)
    value_index = {
        item: (attr_names.index(name), items_per_attr[name].index(item))
        for item, name in attribute_of_item.items()
    }

    data = np.empty((len(transactions), len(attr_names)), dtype=np.int32)
    for tid, txn in enumerate(transactions):
        assigned = [False] * len(attr_names)
        for item in txn:
            if item not in value_index:
                raise DataError(f"transaction {tid}: unmapped item id {item}")
            ai, vi = value_index[item]
            if assigned[ai]:
                raise DataError(
                    f"transaction {tid}: attribute {attr_names[ai]!r} assigned twice"
                )
            assigned[ai] = True
            data[tid, ai] = vi
        if not all(assigned):
            missing = [attr_names[i] for i, ok in enumerate(assigned) if not ok]
            raise DataError(f"transaction {tid}: missing attributes {missing}")
    return RelationalTable(schema, data)
