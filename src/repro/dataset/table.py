"""The relational table COLARM mines over.

A :class:`RelationalTable` couples a :class:`~repro.dataset.schema.Schema`
with an ``m x n`` matrix of cell indices (record ``r``'s value for attribute
``i`` is ``data[r, i]``).  It owns the per-item tidsets that every mining
algorithm and every online operator in this library is built on.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro import kernels, tidset as ts
from repro.dataset.schema import Attribute, Item, Schema
from repro.errors import DataError, SchemaError

__all__ = ["RelationalTable", "from_labeled_records"]


class RelationalTable:
    """An immutable discretized relational dataset.

    Parameters
    ----------
    schema:
        Attribute definitions; column ``i`` of ``data`` is interpreted
        against ``schema.attributes[i]``.
    data:
        Integer matrix of shape ``(n_records, n_attributes)`` whose entries
        are value indices within each attribute's domain.
    """

    def __init__(self, schema: Schema, data: np.ndarray):
        data = np.asarray(data)
        if data.ndim != 2:
            raise DataError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[1] != schema.n_attributes:
            raise DataError(
                f"data has {data.shape[1]} columns but schema has "
                f"{schema.n_attributes} attributes"
            )
        if not np.issubdtype(data.dtype, np.integer):
            raise DataError(f"data must be integer cell indices, got {data.dtype}")
        cards = np.asarray(schema.cardinalities())
        if data.size:
            if data.min() < 0 or np.any(data.max(axis=0) >= cards):
                raise DataError("cell index outside its attribute's domain")
        self.schema = schema
        self.data = np.ascontiguousarray(data, dtype=np.int32)
        self.data.setflags(write=False)
        self._item_tidsets: dict[Item, int] | None = None
        self._item_matrix: tuple[np.ndarray, dict[Item, int]] | None = None

    # -- shape -----------------------------------------------------------

    @property
    def n_records(self) -> int:
        return self.data.shape[0]

    @property
    def n_attributes(self) -> int:
        return self.data.shape[1]

    def __len__(self) -> int:
        return self.n_records

    def __repr__(self) -> str:
        return (
            f"RelationalTable({self.n_records} records x "
            f"{self.n_attributes} attributes)"
        )

    # -- records and items -------------------------------------------------

    def record(self, tid: int) -> tuple[Item, ...]:
        """Record ``tid`` as a tuple of items, one per attribute."""
        row = self.data[tid]
        return tuple(Item(ai, int(v)) for ai, v in enumerate(row))

    def record_labels(self, tid: int) -> dict[str, str]:
        """Record ``tid`` as an ``{attribute_name: value_label}`` mapping."""
        row = self.data[tid]
        return {
            attr.name: attr.values[int(v)]
            for attr, v in zip(self.schema.attributes, row)
        }

    def item_tidsets(self) -> dict[Item, int]:
        """Tidset for every item that occurs in the data (computed once).

        Items that occur in no record are omitted; their tidset is empty.
        """
        if self._item_tidsets is None:
            masks: dict[Item, int] = {}
            for ai in range(self.n_attributes):
                column = self.data[:, ai]
                for vi in np.unique(column):
                    # One vectorized packbits per item: the column's
                    # membership bits become the tidset's little-endian
                    # bytes directly (no per-tid Python work).
                    bits = np.packbits(column == vi, bitorder="little")
                    masks[Item(ai, int(vi))] = int.from_bytes(
                        bits.tobytes(), "little"
                    )
            self._item_tidsets = masks
        return self._item_tidsets

    def item_matrix(self) -> tuple[np.ndarray, dict[Item, int]]:
        """Packed ``(n_items, words)`` item-tidset matrix plus row lookup.

        Row ``rows[item]`` of the matrix is ``pack(item_tidset(item))``;
        items are ordered by their natural sort, matching the column order
        of :func:`repro.core.stats.gather_statistics`.  Computed once and
        cached — this is the vectorized mirror of :meth:`item_tidsets`.
        """
        if self._item_matrix is None:
            tidsets = self.item_tidsets()
            items = sorted(tidsets)
            words = kernels.n_words(self.n_records)
            matrix = kernels.pack_many([tidsets[it] for it in items], words)
            matrix.setflags(write=False)
            self._item_matrix = (matrix, {it: i for i, it in enumerate(items)})
        return self._item_matrix

    @property
    def tidset_words(self) -> int:
        """64-bit words per packed tidset row for this table's universe."""
        return kernels.n_words(self.n_records)

    def item_tidset(self, item: Item) -> int:
        """Tidset of one item (empty if the item never occurs)."""
        return self.item_tidsets().get(item, ts.EMPTY)

    def itemset_tidset(self, items: Iterable[Item]) -> int:
        """Tidset of an itemset: intersection of its items' tidsets.

        The empty itemset is supported by every record.  The intersection
        runs over packed rows of :meth:`item_matrix` in one vectorized
        reduce; any item absent from the data empties the result.
        """
        matrix, rows = self.item_matrix()
        indices: list[int] = []
        for item in items:
            row = rows.get(item)
            if row is None:
                return ts.EMPTY
            indices.append(row)
        if not indices:
            return ts.full(self.n_records)
        return kernels.unpack(kernels.and_reduce(matrix[indices]))

    def support_count(self, items: Iterable[Item]) -> int:
        """Number of records containing every item of ``items``."""
        return ts.count(self.itemset_tidset(items))

    def support(self, items: Iterable[Item]) -> float:
        """Relative support of an itemset (0.0 on an empty table)."""
        if self.n_records == 0:
            return 0.0
        return self.support_count(items) / self.n_records

    # -- selections ---------------------------------------------------------

    def tids_matching(self, selections: Mapping[int, frozenset[int] | set[int]]) -> int:
        """Tidset of records matching per-attribute value-set selections.

        ``selections`` maps attribute index to the set of admitted value
        indices; attributes absent from the mapping admit their full domain.
        This is the record-level semantics of the paper's ``Arange``.
        """
        matrix, rows = self.item_matrix()
        mask = kernels.full_row(self.n_records, self.tidset_words)
        for ai, values in selections.items():
            if not 0 <= ai < self.n_attributes:
                raise SchemaError(f"attribute index {ai} out of range")
            indices = [
                row
                for vi in values
                if (row := rows.get(Item(ai, vi))) is not None
            ]
            # One vectorized OR over the admitted values' rows, then AND
            # into the running selection.
            mask &= kernels.union_reduce(matrix[indices])
            if not mask.any():
                break
        return kernels.unpack(mask)

    def subset(self, tids: int) -> "RelationalTable":
        """A new table holding only the records in tidset ``tids``.

        Used by the ARM plan, which runs a miner from scratch on the
        extracted focal subset.
        """
        rows = ts.to_list(tids)
        return RelationalTable(self.schema, self.data[rows, :])

    def project(self, attribute_indices: Sequence[int]) -> "RelationalTable":
        """A new table keeping only the given attributes, in the given order."""
        attrs = tuple(self.schema.attributes[i] for i in attribute_indices)
        return RelationalTable(Schema(attrs), self.data[:, list(attribute_indices)])

    # -- transactional view --------------------------------------------------

    def to_transactions(self) -> list[tuple[int, ...]]:
        """Records as transactions of globally numbered items.

        Item ``(a, v)`` becomes integer ``offset[a] + v`` where offsets
        accumulate attribute cardinalities — the encoding used by FIMI-style
        transactional files.
        """
        offsets = self.item_offsets()
        return [
            tuple(int(offsets[ai] + v) for ai, v in enumerate(row))
            for row in self.data
        ]

    def item_offsets(self) -> tuple[int, ...]:
        """Global-id offset of each attribute in the transactional encoding."""
        offsets = [0]
        for attr in self.schema.attributes[:-1]:
            offsets.append(offsets[-1] + attr.cardinality)
        return tuple(offsets)


def from_labeled_records(
    attributes: Sequence[Attribute], records: Iterable[Sequence[str]]
) -> RelationalTable:
    """Build a table from rows of value *labels* (strings).

    Convenience constructor used by the bundled example datasets and the
    CSV loader: each row must supply one label per attribute.
    """
    schema = Schema(tuple(attributes))
    rows = []
    for rec_no, record in enumerate(records):
        record = list(record)
        if len(record) != schema.n_attributes:
            raise DataError(
                f"record {rec_no} has {len(record)} fields, "
                f"expected {schema.n_attributes}"
            )
        rows.append(
            [schema.attributes[i].value_index(label) for i, label in enumerate(record)]
        )
    data = np.asarray(rows, dtype=np.int32).reshape(len(rows), schema.n_attributes)
    return RelationalTable(schema, data)
