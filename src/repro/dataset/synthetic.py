"""Synthetic stand-ins for the paper's UCI benchmark datasets.

The evaluation in the paper runs on chess, mushroom and PUMSB from the UCI
repository, which are not redistributable in this offline environment.
These generators reproduce the *characteristics the evaluation depends on*,
as described in Section 5 and in Zaki & Hsiao's CHARM paper:

* ``chess_like``    — dense records over low-cardinality attributes with a
  dominant background pattern, giving many closed frequent itemsets whose
  length distribution is roughly symmetric;
* ``mushroom_like`` — two record clusters with short and long signatures,
  giving the *bi-modal* closed-itemset length distribution the paper calls
  out for mushroom;
* ``pumsb_like``    — census-style data with skewed (Zipf) value frequencies
  and high density, whose closed-itemset count explodes as the primary
  threshold drops;
* ``quest_like``    — a retail/market-basket style relational table used by
  the examples.

Every generator designates attribute 0 (and for some, attribute 1) as
*region-like* partitioning attributes and plants region-local associations
that are diluted or reversed globally, so localized queries exhibit the
Simpson's-paradox behaviour the paper reports (Section 5.3).  All output is
deterministic in ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable
from repro.errors import DataError

__all__ = [
    "LocalPattern",
    "plant_local_pattern",
    "chess_like",
    "mushroom_like",
    "pumsb_like",
    "quest_like",
]


@dataclass(frozen=True)
class LocalPattern:
    """A planted localized association.

    Within records where ``region_attr`` takes a value in ``region_values``,
    the items of ``pattern`` (attribute index -> value index) are jointly
    forced with probability ``strength``; outside the region, each pattern
    attribute is re-drawn away from its pattern value with probability
    ``dilution`` so the association stays locally strong but globally weak.
    """

    region_attr: int
    region_values: frozenset[int]
    pattern: tuple[tuple[int, int], ...]
    strength: float = 0.9
    dilution: float = 0.6


def plant_local_pattern(
    data: np.ndarray,
    cardinalities: tuple[int, ...],
    pattern: LocalPattern,
    rng: np.random.Generator,
) -> None:
    """Apply one :class:`LocalPattern` to a value matrix in place."""
    if not pattern.pattern:
        raise DataError("pattern must set at least one item")
    in_region = np.isin(data[:, pattern.region_attr], list(pattern.region_values))
    hit = in_region & (rng.random(len(data)) < pattern.strength)
    for attr, value in pattern.pattern:
        data[hit, attr] = value
        # Outside the region, push the pattern value towards other cells.
        outside = ~in_region & (data[:, attr] == value)
        flip = outside & (rng.random(len(data)) < pattern.dilution)
        if flip.any():
            card = cardinalities[attr]
            replacement = rng.integers(0, card - 1, size=int(flip.sum()))
            replacement = np.where(replacement >= value, replacement + 1, replacement)
            data[flip, attr] = replacement


def _skewed_probs(cardinality: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like value probabilities with a randomly permuted rank order."""
    ranks = np.arange(1, cardinality + 1, dtype=float)
    probs = ranks**-skew
    probs /= probs.sum()
    return rng.permutation(probs)


def _draw_columns(
    rng: np.random.Generator,
    n_records: int,
    cardinalities: tuple[int, ...],
    skew: float,
) -> np.ndarray:
    data = np.empty((n_records, len(cardinalities)), dtype=np.int32)
    for ai, card in enumerate(cardinalities):
        probs = _skewed_probs(card, skew, rng)
        data[:, ai] = rng.choice(card, size=n_records, p=probs)
    return data


def _make_schema(prefix: str, cardinalities: tuple[int, ...],
                 region_name: str = "region") -> Schema:
    attrs = [Attribute(region_name, tuple(f"r{v}" for v in range(cardinalities[0])))]
    attrs += [
        Attribute(
            f"{prefix}{ai}",
            tuple(f"v{v}" for v in range(card)),
        )
        for ai, card in enumerate(cardinalities[1:], start=1)
    ]
    return Schema(tuple(attrs))


def _default_local_patterns(
    cardinalities: tuple[int, ...], rng: np.random.Generator, n_patterns: int
) -> list[LocalPattern]:
    """One planted association per region value, over distinct attribute pairs."""
    n_attrs = len(cardinalities)
    patterns = []
    free_attrs = list(range(1, n_attrs))
    for region_value in range(min(n_patterns, cardinalities[0])):
        if len(free_attrs) < 2:
            break
        a, b = rng.choice(free_attrs, size=2, replace=False)
        free_attrs.remove(int(a))
        free_attrs.remove(int(b))
        va = int(rng.integers(0, cardinalities[int(a)]))
        vb = int(rng.integers(0, cardinalities[int(b)]))
        patterns.append(
            LocalPattern(
                region_attr=0,
                region_values=frozenset({region_value}),
                pattern=((int(a), va), (int(b), vb)),
            )
        )
    return patterns


def chess_like(
    n_records: int = 1000,
    n_attributes: int = 12,
    seed: int = 7,
    plant_patterns: bool = True,
) -> RelationalTable:
    """Dense, chess-style dataset (UCI kr-vs-kp stand-in).

    Attribute 0 is a four-valued region; the rest are binary or ternary with
    a dominant background value, producing dense co-occurrence and a roughly
    symmetric closed-itemset length distribution.
    """
    if n_attributes < 4:
        raise DataError("chess_like needs at least 4 attributes")
    rng = np.random.default_rng(seed)
    cards = (4,) + tuple(2 if i % 3 else 3 for i in range(1, n_attributes))
    data = np.empty((n_records, n_attributes), dtype=np.int32)
    data[:, 0] = rng.integers(0, cards[0], size=n_records)
    for ai in range(1, n_attributes):
        # A strong background value makes the data dense, as in chess.
        probs = np.full(cards[ai], 0.15 / (cards[ai] - 1))
        probs[0] = 0.85
        data[:, ai] = rng.choice(cards[ai], size=n_records, p=probs)
    if plant_patterns:
        for pattern in _default_local_patterns(cards, rng, n_patterns=4):
            plant_local_pattern(data, cards, pattern, rng)
    return RelationalTable(_make_schema("c", cards), data)


def mushroom_like(
    n_records: int = 1600,
    n_attributes: int = 15,
    seed: int = 11,
    plant_patterns: bool = True,
) -> RelationalTable:
    """Bi-modal, mushroom-style dataset (UCI agaricus-lepiota stand-in).

    Records come from two clusters: one fixes a *short* attribute signature,
    the other a *long* one, yielding the bi-modal distribution of closed
    frequent itemset lengths the paper attributes to mushroom.
    """
    if n_attributes < 8:
        raise DataError("mushroom_like needs at least 8 attributes")
    rng = np.random.default_rng(seed)
    cards = (4,) + tuple(3 + (i % 2) for i in range(1, n_attributes))
    data = _draw_columns(rng, n_records, cards, skew=0.8)
    data[:, 0] = rng.integers(0, cards[0], size=n_records)

    short_len = max(3, n_attributes // 4)
    long_len = max(short_len + 3, (3 * n_attributes) // 4)
    short_sig = {ai: int(rng.integers(0, cards[ai])) for ai in range(1, 1 + short_len)}
    long_sig = {
        ai: int(rng.integers(0, cards[ai])) for ai in range(1, min(1 + long_len, n_attributes))
    }
    cluster = rng.random(n_records) < 0.55
    for ai, value in short_sig.items():
        rows = cluster & (rng.random(n_records) < 0.92)
        data[rows, ai] = value
    for ai, value in long_sig.items():
        rows = ~cluster & (rng.random(n_records) < 0.92)
        data[rows, ai] = value
    if plant_patterns:
        for pattern in _default_local_patterns(cards, rng, n_patterns=3):
            plant_local_pattern(data, cards, pattern, rng)
    return RelationalTable(_make_schema("m", cards), data)


def pumsb_like(
    n_records: int = 4000,
    n_attributes: int = 16,
    seed: int = 13,
    plant_patterns: bool = True,
) -> RelationalTable:
    """Dense census-style dataset (PUMSB stand-in).

    Value frequencies are Zipf-skewed and several attribute pairs are
    correlated, so the number of closed frequent itemsets rises steeply as
    the primary support threshold drops — the behaviour Figure 8 shows for
    PUMSB.
    """
    if n_attributes < 6:
        raise DataError("pumsb_like needs at least 6 attributes")
    rng = np.random.default_rng(seed)
    cards = (5,) + tuple(4 + (i % 5) for i in range(1, n_attributes))
    data = _draw_columns(rng, n_records, cards, skew=1.6)
    data[:, 0] = rng.integers(0, cards[0], size=n_records)
    # Census-style correlations: some attributes copy another's value class.
    for ai in range(2, n_attributes, 3):
        src = ai - 1
        rows = rng.random(n_records) < 0.7
        data[rows, ai] = data[rows, src] % cards[ai]
    if plant_patterns:
        for pattern in _default_local_patterns(cards, rng, n_patterns=5):
            plant_local_pattern(data, cards, pattern, rng)
    return RelationalTable(_make_schema("p", cards), data)


def quest_like(
    n_records: int = 2000,
    n_categories: int = 8,
    seed: int = 17,
) -> RelationalTable:
    """Retail-style relational dataset for the example applications.

    Attributes: a four-valued ``region``, a binary ``daytype``, a
    three-valued customer ``segment`` and ``n_categories`` product-category
    attributes with purchase levels ``none/low/high``.  Region-and-segment
    local purchase associations are planted so localized queries surface
    rules hidden in the global view.
    """
    if n_categories < 2:
        raise DataError("quest_like needs at least 2 product categories")
    rng = np.random.default_rng(seed)
    cards = (4, 2, 3) + (3,) * n_categories
    data = np.empty((n_records, len(cards)), dtype=np.int32)
    data[:, 0] = rng.integers(0, 4, size=n_records)
    data[:, 1] = rng.integers(0, 2, size=n_records)
    data[:, 2] = rng.choice(3, size=n_records, p=[0.5, 0.3, 0.2])
    for ci in range(3, len(cards)):
        data[:, ci] = rng.choice(3, size=n_records, p=[0.6, 0.25, 0.15])
    # Region-local cross-sell patterns: in region r, categories (a, b) are
    # bought at high level together.  One disjoint category pair per region
    # — never more patterns than pairs, or the wrap-around would overwrite
    # (and dilute) an earlier region's pattern.
    for region in range(min(4, n_categories // 2)):
        a = 3 + 2 * region
        b = 3 + 2 * region + 1
        pattern = LocalPattern(
            region_attr=0,
            region_values=frozenset({region}),
            pattern=((a, 2), (b, 2)),
            strength=0.8,
            dilution=0.7,
        )
        plant_local_pattern(data, cards, pattern, rng)
    attrs = (
        Attribute("region", ("north", "south", "east", "west")),
        Attribute("daytype", ("weekday", "weekend")),
        Attribute("segment", ("retail", "loyalty", "wholesale")),
    ) + tuple(
        Attribute(f"cat{ci}", ("none", "low", "high")) for ci in range(n_categories)
    )
    return RelationalTable(Schema(attrs), data)
