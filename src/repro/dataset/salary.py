"""The paper's running example: the Table 1 salary dataset.

Eleven anonymized IT-employee records over six discretized attributes.
The paper derives two rules from it:

* global rule ``R_G = (Age=20-30 -> Salary=90K-120K)`` with support
  5/11 (~45%) and confidence 5/6 (~83%);
* localized rule ``R_L = (Age=30-40 -> Salary=90K-120K)`` for the focal
  subset *female employees in Seattle* (the last four records) with
  support 3/4 (75%) and confidence 3/3 (100%) — while ``R_G`` does not
  hold in that subset (Simpson's paradox).

``tests/test_salary_example.py`` asserts all four numbers.
"""

from __future__ import annotations

from repro.dataset.schema import Attribute
from repro.dataset.table import RelationalTable, from_labeled_records

__all__ = ["salary_dataset", "SALARY_RECORDS"]

_ATTRIBUTES = (
    Attribute("Company", ("IBM", "Google", "Microsoft", "Facebook")),
    Attribute(
        "Title",
        ("QA Lead", "Sw Engg", "Engg Mgr", "Tech Arch", "QA Mgr", "QA Engg"),
    ),
    Attribute("Location", ("Boston", "SFO", "Seattle")),
    Attribute("Gender", ("M", "F")),
    # Quantitative attributes keep their cells in increasing order, matching
    # the paper's A0/A1/A2 and S0..S3 interval numbering.
    Attribute("Age", ("20-30", "30-40", "40-50")),
    Attribute("Salary", ("30K-60K", "60K-90K", "90K-120K", "120K-150K")),
)

SALARY_RECORDS: tuple[tuple[str, ...], ...] = (
    ("IBM", "QA Lead", "Boston", "M", "30-40", "60K-90K"),
    ("IBM", "Sw Engg", "Boston", "F", "20-30", "90K-120K"),
    ("IBM", "Engg Mgr", "SFO", "M", "20-30", "90K-120K"),
    ("Google", "Sw Engg", "SFO", "F", "20-30", "90K-120K"),
    ("Google", "Sw Engg", "Boston", "F", "20-30", "90K-120K"),
    ("Google", "Sw Engg", "Boston", "M", "20-30", "90K-120K"),
    ("Google", "Tech Arch", "Boston", "M", "40-50", "120K-150K"),
    ("Microsoft", "Engg Mgr", "Seattle", "F", "30-40", "90K-120K"),
    ("Microsoft", "Sw Engg", "Seattle", "F", "30-40", "90K-120K"),
    ("Facebook", "QA Mgr", "Seattle", "F", "30-40", "90K-120K"),
    ("Facebook", "QA Engg", "Seattle", "F", "20-30", "30K-60K"),
)


def salary_dataset() -> RelationalTable:
    """Build the Table 1 salary dataset as a relational table."""
    return from_labeled_records(_ATTRIBUTES, SALARY_RECORDS)
