"""Plain-text reporting helpers used by the benchmark harness.

The benchmarks print the same rows/series the paper's figures plot; these
helpers render them as aligned fixed-width tables and optionally persist
them as CSV for external plotting.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "write_csv", "format_series", "ascii_bars"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned fixed-width text table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One figure series as ``name: (x1, y1) (x2, y2) ...``."""
    points = " ".join(f"({_render(x)}, {_render(y)})" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Persist table rows as CSV (for re-plotting outside the harness)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow([_render(v) for v in row])


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """A horizontal bar chart in plain text (for figure-style bench output).

    Negative values draw to the left of a zero axis so gain/loss charts
    (like the paper's Figure 12) read naturally.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines)
    label_width = max(len(lbl) for lbl in labels)
    peak = max(abs(v) for v in values) or 1.0
    neg_width = width if any(v < 0 for v in values) else 0
    for label, value in zip(labels, values):
        bar_len = int(round(abs(value) / peak * width))
        if value >= 0:
            bar = " " * neg_width + "|" + "#" * bar_len
        else:
            bar = " " * (neg_width - bar_len) + "#" * bar_len + "|"
        lines.append(f"{label.ljust(label_width)}  {bar} {_render(value)}")
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
