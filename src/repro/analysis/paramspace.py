"""Parameter-space exploration over (minsupport, minconfidence).

COLARM grew out of the authors' PARAS framework [13, 15], which precomputes
how the *rule output* changes across the (minsupp, minconf) parameter
space so analysts can pick thresholds interactively.  This module provides
that capability for localized queries: one grid evaluation per focal
subset, reusing a single SEARCH + record-level pass for every cell.

The key observation mirrors PARAS: a rule ``X => Y`` appears in the output
of exactly the cells with ``minsupp <= supp(rule)`` and
``minconf <= conf(rule)``, so computing each candidate rule's *stability
region* once answers every grid cell by counting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mipindex import MIPIndex
from repro.core.operators import make_context, op_search
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from repro.itemsets.itemset import Itemset
from repro.itemsets.rules import Rule, generate_rules

__all__ = ["ParameterGrid", "explore_parameter_space"]


@dataclass(frozen=True)
class ParameterGrid:
    """Rule counts over a (minsupp, minconf) grid for one focal subset.

    ``counts[i][j]`` is the number of localized rules output at
    ``minsupps[i]`` / ``minconfs[j]``.  Counts are non-increasing along
    both axes (tested as an invariant).
    """

    minsupps: tuple[float, ...]
    minconfs: tuple[float, ...]
    counts: tuple[tuple[int, ...], ...]
    rules: tuple[Rule, ...]  # all candidate rules with their exact stats

    def count_at(self, minsupp: float, minconf: float) -> int:
        """Rules output at an exact grid cell."""
        try:
            i = self.minsupps.index(minsupp)
            j = self.minconfs.index(minconf)
        except ValueError:
            raise QueryError(
                f"({minsupp}, {minconf}) is not a grid cell; cells: "
                f"{self.minsupps} x {self.minconfs}"
            ) from None
        return self.counts[i][j]

    def knee_cells(self, max_rules: int) -> list[tuple[float, float, int]]:
        """The loosest cells still emitting at most ``max_rules`` rules.

        For each minconf column, the smallest minsupp whose count fits the
        budget — the PARAS-style "interesting boundary" analysts start from.
        """
        out = []
        for j, minconf in enumerate(self.minconfs):
            for i, minsupp in enumerate(self.minsupps):
                if self.counts[i][j] <= max_rules:
                    out.append((minsupp, minconf, self.counts[i][j]))
                    break
        return out


def explore_parameter_space(
    index: MIPIndex,
    base_query: LocalizedQuery,
    minsupps: tuple[float, ...],
    minconfs: tuple[float, ...],
) -> ParameterGrid:
    """Evaluate the rule-output grid for one focal subset.

    ``base_query`` supplies the range selections and item attributes; its
    own thresholds are ignored.  All candidate rules are generated once at
    the loosest cell and bucketed into the grid by their exact (support,
    confidence) — one pass instead of ``len(grid)`` plan executions.

    Exact for every cell with
    ``minsupp >= primary_support * |D| / |D^Q|`` (the POQM floor); looser
    cells would need the ARM plan and raise :class:`QueryError`.
    """
    if not minsupps or not minconfs:
        raise QueryError("grid axes must be non-empty")
    minsupps = tuple(sorted(set(minsupps)))
    minconfs = tuple(sorted(set(minconfs)))

    floor_query = LocalizedQuery(
        range_selections=base_query.range_selections,
        minsupp=minsupps[0],
        minconf=minconfs[0],
        item_attributes=base_query.item_attributes,
    )
    ctx = make_context(index, floor_query)
    coverage = index.primary_support * index.table.n_records / ctx.dq_size
    if minsupps[0] < coverage:
        raise QueryError(
            f"grid minsupp {minsupps[0]:.3f} is below the POQM coverage "
            f"floor {coverage:.3f} for this focal subset; rebuild the index "
            "with a lower primary support or raise the grid"
        )

    candidates = op_search(ctx)
    cache: dict[Itemset, int | None] = {}

    def local_count(items: Itemset) -> int | None:
        if items not in cache:
            cache[items] = ctx.index.ittree.local_support_count(items, ctx.dq)
        return cache[items]

    rules: list[Rule] = []
    for mip, _overlap in candidates:
        if not ctx.aitem_allows(mip.itemset):
            continue
        local = mip.local_count(ctx.dq)
        if local < ctx.min_count:
            continue
        cache[mip.itemset] = local
        rules.extend(
            generate_rules(mip.itemset, local_count, ctx.dq_size, minconfs[0])
        )

    counts = tuple(
        tuple(
            sum(
                1
                for rule in rules
                if rule.support >= minsupp - 1e-12
                and rule.confidence >= minconf - 1e-12
            )
            for minconf in minconfs
        )
        for minsupp in minsupps
    )
    return ParameterGrid(
        minsupps=minsupps,
        minconfs=minconfs,
        counts=counts,
        rules=tuple(rules),
    )
