"""Local-vs-global comparison: surfacing Simpson's paradox (Section 5.3).

Two questions from the paper's evaluation:

* how many closed frequent itemsets found by a localized query are *fresh*
  (locally frequent but hidden globally) versus *repeated* (already global)
  — the Figure 13 quantities;
* which rules flip between the global and the local context — the classic
  Simpson's-paradox signature (a rule confident globally that fails
  locally, or vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import tidset as ts
from repro.core.mipindex import MIPIndex
from repro.core.operators import make_context, op_eliminate, op_search
from repro.core.query import LocalizedQuery
from repro.itemsets.apriori import min_count_for
from repro.itemsets.itemset import Itemset
from repro.itemsets.rules import Rule, generate_rules

__all__ = [
    "LocalGlobalItemsets",
    "RuleFlip",
    "compare_itemsets",
    "find_rule_flips",
    "find_vanishing_rules",
]


@dataclass(frozen=True)
class LocalGlobalItemsets:
    """Fig. 13's split of locally frequent closed itemsets."""

    fresh_local: tuple[Itemset, ...]      # locally frequent, globally hidden
    repeated_global: tuple[Itemset, ...]  # locally and globally frequent

    @property
    def n_fresh(self) -> int:
        return len(self.fresh_local)

    @property
    def n_repeated(self) -> int:
        return len(self.repeated_global)

    @property
    def n_local(self) -> int:
        return self.n_fresh + self.n_repeated


def compare_itemsets(
    index: MIPIndex,
    query: LocalizedQuery,
    global_minsupp: float | None = None,
) -> LocalGlobalItemsets:
    """Split the query's locally frequent itemsets into fresh vs repeated.

    ``global_minsupp`` is the threshold an analyst would use for a *global*
    mining request (defaults to the query's own minsupp): a locally
    frequent itemset whose global support stays below it is *fresh* — it
    would be missed, or buried, in the global context.
    """
    if global_minsupp is None:
        global_minsupp = query.minsupp
    ctx = make_context(index, query)
    candidates = op_search(ctx)
    qualified = op_eliminate(ctx, candidates)
    global_floor = min_count_for(global_minsupp, index.table.n_records)
    fresh, repeated = [], []
    for mip, _local in qualified:
        if mip.global_count >= global_floor:
            repeated.append(mip.itemset)
        else:
            fresh.append(mip.itemset)
    return LocalGlobalItemsets(
        fresh_local=tuple(fresh), repeated_global=tuple(repeated)
    )


@dataclass(frozen=True)
class RuleFlip:
    """A rule whose confidence crosses the threshold between contexts."""

    rule: Rule               # stats w.r.t. the focal subset
    global_confidence: float
    local_confidence: float

    @property
    def direction(self) -> str:
        """``"emerges"`` if only locally confident, ``"vanishes"`` otherwise."""
        return (
            "emerges" if self.local_confidence > self.global_confidence else "vanishes"
        )


def find_rule_flips(
    index: MIPIndex,
    query: LocalizedQuery,
    margin: float = 0.0,
) -> list[RuleFlip]:
    """Rules confident in exactly one of the two contexts.

    Returns localized rules passing ``minconf`` locally whose global
    confidence misses it by at least ``margin``, plus (as negative
    ``local_confidence`` evidence) global rules that fail locally.  Sorted
    by the size of the confidence gap, largest first.
    """
    ctx = make_context(index, query)
    candidates = op_search(ctx)
    qualified = op_eliminate(ctx, candidates)
    full = ts.full(index.table.n_records)

    def local_count(items: Itemset) -> int | None:
        return index.ittree.local_support_count(items, ctx.dq)

    def global_count(items: Itemset) -> int | None:
        return index.ittree.local_support_count(items, full)

    flips: list[RuleFlip] = []
    seen: set[tuple[Itemset, Itemset]] = set()
    for mip, _local in qualified:
        local_rules = generate_rules(
            mip.itemset, local_count, ctx.dq_size, query.minconf
        )
        for rule in local_rules:
            key = (rule.antecedent, rule.consequent)
            if key in seen:
                continue
            seen.add(key)
            g_itemset = global_count(rule.items)
            g_antecedent = global_count(rule.antecedent)
            if not g_antecedent:
                continue
            g_conf = (g_itemset or 0) / g_antecedent
            if g_conf < query.minconf - margin:
                flips.append(
                    RuleFlip(
                        rule=rule,
                        global_confidence=g_conf,
                        local_confidence=rule.confidence,
                    )
                )
    flips.sort(key=lambda f: -(f.local_confidence - f.global_confidence))
    return flips


def find_vanishing_rules(
    index: MIPIndex,
    query: LocalizedQuery,
    global_minsupp: float,
    margin: float = 0.0,
) -> list[RuleFlip]:
    """Global rules that *fail* inside the focal subset.

    The mirror image of :func:`find_rule_flips` — and the paper's opening
    example: R_G = (Age 20-30 -> Salary 90-120K) holds globally but not
    for Seattle's female employees.  Generates the global rules at
    ``(global_minsupp, query.minconf)`` from the stored itemsets, then
    keeps those whose *local* confidence misses ``minconf`` by at least
    ``margin`` (rules whose antecedent never occurs locally are skipped —
    they neither hold nor fail there).  Sorted by confidence drop,
    largest first.
    """
    ctx = make_context(index, query)
    full = ts.full(index.table.n_records)

    def global_count(items: Itemset) -> int | None:
        return index.ittree.local_support_count(items, full)

    def local_count(items: Itemset) -> int | None:
        return index.ittree.local_support_count(items, ctx.dq)

    global_floor = min_count_for(global_minsupp, index.table.n_records)
    flips: list[RuleFlip] = []
    seen: set[tuple[Itemset, Itemset]] = set()
    for mip in index.mips:
        if mip.global_count < global_floor:
            continue
        if query.item_attributes is not None and not all(
            item.attribute in query.item_attributes for item in mip.itemset
        ):
            continue
        for rule in generate_rules(
            mip.itemset, global_count, index.table.n_records, query.minconf
        ):
            key = (rule.antecedent, rule.consequent)
            if key in seen:
                continue
            seen.add(key)
            l_antecedent = local_count(rule.antecedent)
            if not l_antecedent:
                continue  # the rule is vacuous in this subset
            l_conf = (local_count(rule.items) or 0) / l_antecedent
            if l_conf < query.minconf - margin:
                flips.append(
                    RuleFlip(
                        rule=rule,
                        global_confidence=rule.confidence,
                        local_confidence=l_conf,
                    )
                )
    flips.sort(key=lambda f: -(f.global_confidence - f.local_confidence))
    return flips
