"""Ranking localized rules by interestingness measures.

Support/confidence admit floods of trivially-correlated rules; the
null-invariant measures of Wu, Chen & Han [23] (which the paper's VERIFY
step motivates) separate the interesting ones.  This module evaluates any
measure for localized rules — contingency counts taken *within the focal
subset* — and ranks rule lists by it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro import tidset as ts
from repro.core.mipindex import MIPIndex
from repro.errors import QueryError
from repro.itemsets import measures
from repro.itemsets.measures import RuleStats
from repro.itemsets.rules import Rule

__all__ = ["localized_rule_stats", "rank_rules", "MEASURES"]

#: Name -> measure function, as accepted by :func:`rank_rules`.
MEASURES: dict[str, Callable[[RuleStats], float]] = {
    "lift": measures.lift,
    "leverage": measures.leverage,
    "conviction": measures.conviction,
    "cosine": measures.cosine,
    "kulczynski": measures.kulczynski,
    "max_confidence": measures.max_confidence,
    "all_confidence": measures.all_confidence,
    "jaccard": measures.jaccard,
}


def localized_rule_stats(index: MIPIndex, rule: Rule, dq: int) -> RuleStats:
    """Exact contingency counts of a rule inside a focal tidset.

    Counts come from IT-tree closure lookups intersected with ``dq``; a
    rule whose parts fall below the index's primary floor cannot be
    evaluated and raises :class:`QueryError`.
    """
    n = ts.count(dq)
    n_xy = index.ittree.local_support_count(rule.items, dq)
    n_x = index.ittree.local_support_count(rule.antecedent, dq)
    n_y = index.ittree.local_support_count(rule.consequent, dq)
    if n_xy is None or n_x is None or n_y is None:
        raise QueryError(
            "rule parts below the index's primary floor; cannot evaluate "
            "measures from the MIP-index"
        )
    return RuleStats(n=n, n_xy=n_xy, n_x=n_x, n_y=n_y)


def rank_rules(
    index: MIPIndex,
    rules: Sequence[Rule],
    dq: int,
    measure: str | Callable[[RuleStats], float] = "kulczynski",
    top_k: int | None = None,
) -> list[tuple[Rule, float]]:
    """Rules sorted by a measure (descending), with their scores.

    ``measure`` is a name from :data:`MEASURES` or any callable on
    :class:`RuleStats`.  ``top_k`` truncates the result.
    """
    if isinstance(measure, str):
        try:
            fn = MEASURES[measure]
        except KeyError:
            raise QueryError(
                f"unknown measure {measure!r}; known: {sorted(MEASURES)}"
            ) from None
    else:
        fn = measure
    scored = [
        (rule, fn(localized_rule_stats(index, rule, dq))) for rule in rules
    ]
    scored.sort(key=lambda rs: (-rs[1], rs[0].antecedent, rs[0].consequent))
    return scored[:top_k] if top_k is not None else scored
