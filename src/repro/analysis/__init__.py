"""Analysis utilities: Simpson's-paradox detection, parameter-space
exploration, rule ranking and report formatting."""

from repro.analysis.paramspace import ParameterGrid, explore_parameter_space
from repro.analysis.ranking import MEASURES, localized_rule_stats, rank_rules
from repro.analysis.reporting import format_series, format_table, write_csv
from repro.analysis.simpson import (
    LocalGlobalItemsets,
    RuleFlip,
    compare_itemsets,
    find_rule_flips,
    find_vanishing_rules,
)

__all__ = [
    "LocalGlobalItemsets",
    "RuleFlip",
    "compare_itemsets",
    "find_rule_flips",
    "find_vanishing_rules",
    "ParameterGrid",
    "explore_parameter_space",
    "MEASURES",
    "localized_rule_stats",
    "rank_rules",
    "format_table",
    "format_series",
    "write_csv",
]
