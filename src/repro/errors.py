"""Exception hierarchy for the COLARM reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing schema problems from query problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition or a value outside an attribute's domain."""


class DataError(ReproError):
    """Malformed input data (bad shapes, unparsable files, ...)."""


class QueryError(ReproError):
    """An invalid localized mining query (unknown attribute, bad threshold,
    selections that do not align with the discretized cells, ...)."""


class IndexError_(ReproError):
    """An inconsistency detected inside the MIP-index or the R-tree."""


class ParseError(QueryError):
    """The textual ``REPORT LOCALIZED ASSOCIATION RULES`` query could not be
    parsed."""


class ServiceError(ReproError):
    """A request failed inside the concurrent query service."""


class ServiceOverloadError(ServiceError):
    """The service shed the request (queue full or over the cost ceiling)."""


class ServiceClosedError(ServiceError):
    """The service is stopped (or stopping) and accepts no new requests."""
