"""The closed IT-tree: query-time access to stored closed itemsets.

The MIP-index's second layer (Section 3.3 of the COLARM paper).  It stores
the closed frequent itemsets produced offline by CHARM, organized by level —
Lemma 4.3: the level of an itemset equals its number of singleton items
``C_I`` — together with an inverted item index that answers the two
questions the online operators ask:

* ``closure_of(X)`` — the smallest stored closed superset of an arbitrary
  itemset ``X``.  Because ``t(X) = t(closure(X))``, this gives the *exact*
  tidset (hence global and local support) of any itemset whose global
  support reaches the primary threshold;
* ``local_support_count(X, dq)`` — ``|t(X) ∩ D^Q|``, the record-level check
  at the heart of ELIMINATE and VERIFY.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro import tidset as ts
from repro.dataset.schema import Item
from repro.errors import IndexError_
from repro.itemsets.charm import ClosedItemset
from repro.itemsets.itemset import Itemset, make_itemset

__all__ = ["ClosedITTree"]


class ClosedITTree:
    """Level-indexed store of closed frequent itemsets with closure lookup."""

    def __init__(self, closed_itemsets: Sequence[ClosedItemset]):
        self._all = tuple(closed_itemsets)
        self._levels: dict[int, list[int]] = {}
        self._by_item: dict[Item, set[int]] = {}
        self._by_items_key: dict[Itemset, int] = {}
        for idx, cfi in enumerate(self._all):
            if cfi.items in self._by_items_key:
                raise IndexError_(f"duplicate closed itemset {cfi.items}")
            self._by_items_key[cfi.items] = idx
            self._levels.setdefault(cfi.length, []).append(idx)
            for item in cfi.items:
                self._by_item.setdefault(item, set()).add(idx)

    # -- shape -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[ClosedItemset]:
        return iter(self._all)

    @property
    def height(self) -> int:
        """Deepest level (longest stored itemset); 0 when empty."""
        return max(self._levels, default=0)

    def levels(self) -> dict[int, int]:
        """Number of stored itemsets per level (itemset length)."""
        return {level: len(ids) for level, ids in sorted(self._levels.items())}

    def at_level(self, level: int) -> list[ClosedItemset]:
        """All stored itemsets of the given length."""
        return [self._all[i] for i in self._levels.get(level, [])]

    def get(self, items: Itemset) -> ClosedItemset | None:
        """The stored closed itemset exactly equal to ``items``, if any."""
        idx = self._by_items_key.get(make_itemset(items))
        return self._all[idx] if idx is not None else None

    # -- closure lookups ---------------------------------------------------

    def closure_of(self, items: Iterable[Item]) -> ClosedItemset | None:
        """Smallest stored closed superset of ``items`` (its closure).

        Among stored supersets of ``X`` the closure is the one with the
        largest tidset, because every closed superset's tidset is contained
        in ``t(X)`` and the closure achieves ``t(X)`` itself.  Returns
        ``None`` iff the global support of ``X`` is below the primary
        threshold the index was built with (the POQM coverage floor,
        footnote 2 of the paper).
        """
        items = list(items)
        if not items:
            return None
        candidate_ids = self._by_item.get(items[0])
        if not candidate_ids:
            return None
        candidate_ids = set(candidate_ids)
        for item in items[1:]:
            candidate_ids &= self._by_item.get(item, set())
            if not candidate_ids:
                return None
        best = max(candidate_ids, key=lambda i: self._all[i].support_count)
        return self._all[best]

    def support_count_of(self, items: Iterable[Item]) -> int | None:
        """Exact global support count of ``X``, or ``None`` below the floor."""
        closure = self.closure_of(items)
        return closure.support_count if closure is not None else None

    def local_support_count(self, items: Iterable[Item], dq: int) -> int | None:
        """``|t(X) ∩ dq|`` — exact local support count w.r.t. a focal tidset.

        ``None`` when the itemset's global support is below the primary
        threshold (its tidset is not recoverable from the index).
        """
        closure = self.closure_of(items)
        if closure is None:
            return None
        return ts.count(closure.tidset & dq)
