"""FP-Growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

Builds an FP-tree — a prefix tree over transactions with items ordered by
descending frequency — and mines it recursively through conditional
pattern bases, without candidate generation.  Included as the third miner
of the substrate (with Apriori and Eclat) both for completeness and as an
independent implementation the equivalence tests cross-check the vertical
miners against.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro import tidset as ts
from repro.dataset.schema import Item
from repro.itemsets.apriori import FrequentItemset, min_count_for
from repro.itemsets.itemset import make_itemset

__all__ = ["fpgrowth"]


@dataclass
class _FPNode:
    item: Item | None
    count: int = 0
    parent: "_FPNode | None" = None
    children: dict[Item, "_FPNode"] = field(default_factory=dict)


class _FPTree:
    """An FP-tree plus its header table (item -> nodes holding it)."""

    def __init__(self) -> None:
        self.root = _FPNode(item=None)
        self.header: dict[Item, list[_FPNode]] = {}

    def insert(self, items: list[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item=item, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def conditional_pattern_base(self, item: Item) -> list[tuple[list[Item], int]]:
        """Prefix paths leading to each occurrence of ``item``."""
        paths = []
        for node in self.header.get(item, []):
            path: list[Item] = []
            current = node.parent
            while current is not None and current.item is not None:
                path.append(current.item)
                current = current.parent
            path.reverse()
            if node.count > 0:
                paths.append((path, node.count))
        return paths


def fpgrowth(
    item_tidsets: Mapping[Item, int],
    n_records: int,
    minsupp: float,
    max_length: int | None = None,
) -> list[FrequentItemset]:
    """Mine all frequent itemsets at relative support ``minsupp``.

    Same contract and output order as :func:`repro.itemsets.apriori.apriori`
    and :func:`repro.itemsets.eclat.eclat`.  FP-Growth itself reports
    support *counts*; the exact tidsets of the results are reconstructed
    from the item tidsets afterwards so the return type matches the other
    miners (and the reconstruction doubles as an internal consistency
    check).
    """
    min_count = min_count_for(minsupp, n_records)
    counts = {
        item: ts.count(mask)
        for item, mask in item_tidsets.items()
        if ts.count(mask) >= min_count
    }
    if not counts:
        return []
    # Global frequency-descending item order (ties by item identity).
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(counts, key=lambda it: (-counts[it], it))
        )
    }

    tree = _FPTree()
    for tid in range(n_records):
        transaction = [
            item
            for item, mask in item_tidsets.items()
            if item in counts and ts.contains(mask, tid)
        ]
        transaction.sort(key=lambda it: order[it])
        if transaction:
            tree.insert(transaction, 1)

    found: dict[tuple[Item, ...], int] = {}
    _mine(tree, (), min_count, max_length, found)

    out = []
    for items, support_count in found.items():
        itemset = make_itemset(items)
        mask = _tidset_of(itemset, item_tidsets, n_records)
        assert ts.count(mask) == support_count, (
            "FP-growth support disagrees with tidset reconstruction"
        )
        out.append(FrequentItemset(itemset, mask))
    out.sort(key=lambda f: (len(f.items), f.items))
    return out


def _mine(
    tree: _FPTree,
    suffix: tuple[Item, ...],
    min_count: int,
    max_length: int | None,
    found: dict[tuple[Item, ...], int],
) -> None:
    if max_length is not None and len(suffix) >= max_length:
        return
    # Process header items in reverse frequency order (least frequent first).
    items = sorted(
        tree.header,
        key=lambda it: sum(n.count for n in tree.header[it]),
    )
    for item in items:
        support = sum(node.count for node in tree.header[item])
        if support < min_count:
            continue
        new_suffix = (item, *suffix)
        found[tuple(sorted(new_suffix))] = support
        conditional = _FPTree()
        for path, count in tree.conditional_pattern_base(item):
            # Keep only items frequent within this conditional base.
            conditional.insert(path, count)
        _prune_infrequent(conditional, min_count)
        if conditional.header:
            _mine(conditional, new_suffix, min_count, max_length, found)


def _prune_infrequent(tree: _FPTree, min_count: int) -> None:
    """Rebuild the tree without items below the threshold."""
    infrequent = [
        item
        for item, nodes in tree.header.items()
        if sum(n.count for n in nodes) < min_count
    ]
    if not infrequent:
        return
    # Collect surviving paths and rebuild from scratch (simple and correct).
    paths: list[tuple[list[Item], int]] = []

    def collect(node: _FPNode, prefix: list[Item]) -> None:
        for child in node.children.values():
            new_prefix = prefix + [child.item]
            passthrough = child.count - sum(
                c.count for c in child.children.values()
            )
            if passthrough > 0:
                paths.append((list(new_prefix), passthrough))
            collect(child, new_prefix)

    collect(tree.root, [])
    drop = set(infrequent)
    tree.root = _FPNode(item=None)
    tree.header = {}
    for path, count in paths:
        kept = [item for item in path if item not in drop]
        if kept:
            tree.insert(kept, count)


def _tidset_of(itemset, item_tidsets, n_records: int) -> int:
    mask = ts.full(n_records)
    for item in itemset:
        mask &= item_tidsets[item]
    return mask
