"""Frequent/closed itemset mining, the closed IT-tree, rules and measures."""

from repro.itemsets.apriori import FrequentItemset, apriori, min_count_for
from repro.itemsets.charm import ClosedItemset, charm
from repro.itemsets.dcharm import dcharm
from repro.itemsets.eclat import eclat
from repro.itemsets.fpgrowth import fpgrowth
from repro.itemsets.itemset import (
    Itemset,
    attributes_of,
    is_subset_itemset,
    make_itemset,
    proper_subsets,
    union_itemsets,
)
from repro.itemsets.ittree import ClosedITTree
from repro.itemsets.measures import RuleStats, evaluate_all
from repro.itemsets.rules import Rule, generate_rules, rules_from_itemsets

__all__ = [
    "Itemset",
    "make_itemset",
    "union_itemsets",
    "is_subset_itemset",
    "attributes_of",
    "proper_subsets",
    "FrequentItemset",
    "apriori",
    "min_count_for",
    "eclat",
    "fpgrowth",
    "ClosedItemset",
    "charm",
    "dcharm",
    "ClosedITTree",
    "Rule",
    "generate_rules",
    "rules_from_itemsets",
    "RuleStats",
    "evaluate_all",
]
