"""Itemset values and invariants.

An itemset is a sorted tuple of :class:`~repro.dataset.schema.Item` pairs
with **at most one value per attribute** — the relational-model constraint
of Section 2.1 (a record cannot take two values of one attribute, so any
itemset violating this has empty support and is never generated).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dataset.schema import Item
from repro.errors import DataError

__all__ = [
    "Itemset",
    "make_itemset",
    "union_itemsets",
    "is_subset_itemset",
    "attributes_of",
    "proper_subsets",
]

#: An itemset is a sorted tuple of items; the empty tuple is the empty itemset.
Itemset = tuple[Item, ...]


def make_itemset(items: Iterable[Item]) -> Itemset:
    """Canonicalize items into a sorted, duplicate-free itemset.

    Raises :class:`DataError` if two items name the same attribute with
    different values (impossible in the relational model).
    """
    unique = sorted(set(items))
    seen_attrs: set[int] = set()
    for item in unique:
        if item.attribute in seen_attrs:
            raise DataError(
                f"itemset assigns attribute {item.attribute} more than once"
            )
        seen_attrs.add(item.attribute)
    return tuple(unique)


def union_itemsets(a: Itemset, b: Itemset) -> Itemset:
    """Union of two itemsets (validating the one-value-per-attribute rule)."""
    return make_itemset((*a, *b))


def is_subset_itemset(inner: Itemset, outer: Itemset) -> bool:
    """Whether every item of ``inner`` appears in ``outer``."""
    return set(inner) <= set(outer)


def attributes_of(itemset: Itemset) -> frozenset[int]:
    """The attribute indices an itemset fixes."""
    return frozenset(item.attribute for item in itemset)


def proper_subsets(itemset: Itemset) -> list[Itemset]:
    """All non-empty proper subsets, in length-then-lexicographic order.

    Exponential in ``len(itemset)``; callers cap itemset length (rule
    generation never needs sets longer than the stored closed itemsets).
    """
    n = len(itemset)
    subsets: list[Itemset] = []
    for mask in range(1, (1 << n) - 1):
        subsets.append(tuple(itemset[i] for i in range(n) if mask >> i & 1))
    subsets.sort(key=lambda s: (len(s), s))
    return subsets
