"""Rule interestingness measures (Wu, Chen & Han, PKDD 2007).

The paper motivates verifying confidence online by "the importance of
null-invariant measures" [23].  This module provides the standard suite —
including the null-invariant ones (cosine, Kulczynski, max-confidence,
all-confidence, Jaccard) and the classic non-null-invariant ones (lift,
leverage, conviction) — computed from the four counts that fully determine
a rule's contingency table: universe size ``n``, itemset count ``n_xy``,
antecedent count ``n_x`` and consequent count ``n_y``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DataError

__all__ = [
    "RuleStats",
    "lift",
    "leverage",
    "conviction",
    "cosine",
    "kulczynski",
    "max_confidence",
    "all_confidence",
    "jaccard",
    "imbalance_ratio",
    "evaluate_all",
]


@dataclass(frozen=True)
class RuleStats:
    """Contingency counts of a rule ``X => Y`` in a universe of ``n`` records."""

    n: int
    n_xy: int
    n_x: int
    n_y: int

    def __post_init__(self) -> None:
        if not 0 <= self.n_xy <= min(self.n_x, self.n_y):
            raise DataError(
                f"inconsistent counts: n_xy={self.n_xy}, n_x={self.n_x}, n_y={self.n_y}"
            )
        if max(self.n_x, self.n_y) > self.n:
            raise DataError(f"marginals exceed universe size n={self.n}")
        if self.n <= 0:
            raise DataError("universe must be non-empty")

    @property
    def support(self) -> float:
        return self.n_xy / self.n

    @property
    def confidence(self) -> float:
        return self.n_xy / self.n_x if self.n_x else 0.0


def lift(s: RuleStats) -> float:
    """``P(XY) / (P(X) P(Y))``; 1.0 means independence.  Not null-invariant."""
    if s.n_x == 0 or s.n_y == 0:
        return 0.0
    return (s.n_xy * s.n) / (s.n_x * s.n_y)


def leverage(s: RuleStats) -> float:
    """``P(XY) - P(X) P(Y)`` (Piatetsky-Shapiro).  Not null-invariant."""
    return s.n_xy / s.n - (s.n_x / s.n) * (s.n_y / s.n)


def conviction(s: RuleStats) -> float:
    """``P(X) P(not Y) / P(X and not Y)``; ``inf`` for exact implications."""
    p_not_y = 1.0 - s.n_y / s.n
    p_x_not_y = (s.n_x - s.n_xy) / s.n
    if p_x_not_y == 0.0:
        return math.inf
    return (s.n_x / s.n) * p_not_y / p_x_not_y


def cosine(s: RuleStats) -> float:
    """``P(XY) / sqrt(P(X) P(Y))`` — null-invariant."""
    if s.n_x == 0 or s.n_y == 0:
        return 0.0
    return s.n_xy / math.sqrt(s.n_x * s.n_y)


def kulczynski(s: RuleStats) -> float:
    """Mean of the two conditional probabilities — null-invariant."""
    if s.n_x == 0 or s.n_y == 0:
        return 0.0
    return 0.5 * (s.n_xy / s.n_x + s.n_xy / s.n_y)


def max_confidence(s: RuleStats) -> float:
    """``max(P(Y|X), P(X|Y))`` — null-invariant."""
    if s.n_x == 0 or s.n_y == 0:
        return 0.0
    return max(s.n_xy / s.n_x, s.n_xy / s.n_y)


def all_confidence(s: RuleStats) -> float:
    """``min(P(Y|X), P(X|Y)) = P(XY) / max(P(X), P(Y))`` — null-invariant."""
    denom = max(s.n_x, s.n_y)
    return s.n_xy / denom if denom else 0.0


def jaccard(s: RuleStats) -> float:
    """``P(XY) / P(X or Y)`` — null-invariant."""
    denom = s.n_x + s.n_y - s.n_xy
    return s.n_xy / denom if denom else 0.0


def imbalance_ratio(s: RuleStats) -> float:
    """``|P(X) - P(Y)| / P(X or Y)`` — how skewed the two directions are."""
    denom = s.n_x + s.n_y - s.n_xy
    return abs(s.n_x - s.n_y) / denom if denom else 0.0


def evaluate_all(s: RuleStats) -> dict[str, float]:
    """All measures keyed by name, for reporting."""
    return {
        "support": s.support,
        "confidence": s.confidence,
        "lift": lift(s),
        "leverage": leverage(s),
        "conviction": conviction(s),
        "cosine": cosine(s),
        "kulczynski": kulczynski(s),
        "max_confidence": max_confidence(s),
        "all_confidence": all_confidence(s),
        "jaccard": jaccard(s),
        "imbalance_ratio": imbalance_ratio(s),
    }
