"""Association-rule generation with confidence pruning.

Rules are generated from itemsets by the classic Agrawal-Srikant consequent
growth: for an itemset ``I``, confidence of ``X => I\\X`` only drops as the
antecedent ``X`` shrinks (its support grows), so once a consequent fails
``minconf`` all of its supersets can be pruned.

Support lookups are abstracted behind a ``support_fn`` so the same generator
serves both the global case (counts over the whole dataset) and COLARM's
localized case (counts intersected with the focal subset) — the VERIFY
operator is this module parameterized by local counts.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.dataset.schema import Schema
from repro.errors import DataError
from repro.itemsets.itemset import Itemset, make_itemset

__all__ = ["Rule", "generate_rules", "rules_from_itemsets"]

#: Returns the support count of an itemset within the current universe, or
#: ``None`` when the count is unavailable (below the index's primary floor).
SupportFn = Callable[[Itemset], "int | None"]


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent => consequent`` with its stats.

    ``support`` and ``confidence`` are relative to the universe the rule was
    mined in — the full dataset for global rules, the focal subset ``D^Q``
    for localized rules (the paper's ``Supp^Q`` and ``Conf^Q``).
    """

    antecedent: Itemset
    consequent: Itemset
    support_count: int
    support: float
    confidence: float

    @property
    def items(self) -> Itemset:
        """The underlying itemset ``antecedent ∪ consequent``."""
        return make_itemset((*self.antecedent, *self.consequent))

    def render(self, schema: Schema) -> str:
        """Human-readable form, e.g. ``{Age=20-30} => {Salary=90K-120K}``."""
        return (
            f"{schema.render_itemset(self.antecedent)} => "
            f"{schema.render_itemset(self.consequent)} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f})"
        )


def generate_rules(
    itemset: Itemset,
    support_fn: SupportFn,
    universe_count: int,
    minconf: float,
) -> list[Rule]:
    """All rules from one itemset whose confidence reaches ``minconf``.

    The itemset's own support is obtained through ``support_fn``; when it or
    an antecedent's support is unreported (``None``) the corresponding rules
    are skipped — the caller guarantees candidates sit above the primary
    floor, so this only happens for deliberately truncated indexes.
    """
    if not 0.0 <= minconf <= 1.0:
        raise DataError(f"minconf must be in [0, 1], got {minconf}")
    if len(itemset) < 2:
        return []
    itemset_count = support_fn(itemset)
    if itemset_count is None or itemset_count == 0:
        return []
    support = itemset_count / universe_count if universe_count else 0.0

    rules: list[Rule] = []
    # Consequent growth: level k holds consequents of size k that passed.
    consequents: list[Itemset] = [(item,) for item in itemset]
    while consequents:
        passed: list[Itemset] = []
        for consequent in consequents:
            antecedent = tuple(i for i in itemset if i not in set(consequent))
            if not antecedent:
                continue
            antecedent_count = support_fn(antecedent)
            if antecedent_count is None or antecedent_count == 0:
                continue
            confidence = itemset_count / antecedent_count
            if confidence >= minconf:
                rules.append(
                    Rule(antecedent, consequent, itemset_count, support, confidence)
                )
                passed.append(consequent)
        consequents = _grow_consequents(passed)
    rules.sort(key=lambda r: (r.antecedent, r.consequent))
    return rules


def _grow_consequents(passed: Sequence[Itemset]) -> list[Itemset]:
    """Join passing size-k consequents sharing a (k-1)-prefix into size k+1.

    Mirrors Apriori candidate generation: a consequent of size k+1 can only
    pass if all its size-k subsets did, and joining sorted same-prefix pairs
    enumerates each candidate exactly once.
    """
    passed_set = set(passed)
    grown: list[Itemset] = []
    ordered = sorted(passed)
    for i, left in enumerate(ordered):
        for right in ordered[i + 1:]:
            if left[:-1] != right[:-1]:
                break
            candidate = left + (right[-1],)
            if all(
                candidate[:k] + candidate[k + 1:] in passed_set
                for k in range(len(candidate) - 2)
            ):
                grown.append(candidate)
    return grown


def rules_from_itemsets(
    itemsets: Iterable[Itemset],
    support_fn: SupportFn,
    universe_count: int,
    minsupp: float,
    minconf: float,
) -> list[Rule]:
    """Rules from many itemsets, filtering itemsets below ``minsupp`` first.

    Deduplicates rules that arise from several source itemsets (e.g. when a
    candidate list contains both an itemset and its superset).
    """
    from repro.itemsets.apriori import min_count_for

    min_count = min_count_for(minsupp, universe_count) if universe_count else 1
    seen: set[tuple[Itemset, Itemset]] = set()
    out: list[Rule] = []
    for itemset in itemsets:
        count_ = support_fn(itemset)
        if count_ is None or count_ < min_count:
            continue
        for rule in generate_rules(itemset, support_fn, universe_count, minconf):
            key = (rule.antecedent, rule.consequent)
            if key not in seen:
                seen.add(key)
                out.append(rule)
    out.sort(key=lambda r: (r.antecedent, r.consequent))
    return out
