"""Association-rule generation with confidence pruning.

Rules are generated from itemsets by the classic Agrawal-Srikant consequent
growth: for an itemset ``I``, confidence of ``X => I\\X`` only drops as the
antecedent ``X`` shrinks (its support grows), so once a consequent fails
``minconf`` all of its supersets can be pruned.

Support lookups are abstracted behind a ``support_fn`` so the same generator
serves both the global case (counts over the whole dataset) and COLARM's
localized case (counts intersected with the focal subset) — the VERIFY
operator is this module parameterized by local counts.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.dataset.schema import Schema
from repro.errors import DataError
from repro.itemsets.itemset import Itemset, make_itemset

__all__ = [
    "Rule",
    "generate_rules",
    "rules_from_itemsets",
    "rules_from_counts",
    "rules_from_subset_lattice",
    "rules_from_subset_lattices",
]

#: Returns the support count of an itemset within the current universe, or
#: ``None`` when the count is unavailable (below the index's primary floor).
SupportFn = Callable[[Itemset], "int | None"]


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent => consequent`` with its stats.

    ``support`` and ``confidence`` are relative to the universe the rule was
    mined in — the full dataset for global rules, the focal subset ``D^Q``
    for localized rules (the paper's ``Supp^Q`` and ``Conf^Q``).
    """

    antecedent: Itemset
    consequent: Itemset
    support_count: int
    support: float
    confidence: float

    @property
    def items(self) -> Itemset:
        """The underlying itemset ``antecedent ∪ consequent``."""
        return make_itemset((*self.antecedent, *self.consequent))

    def render(self, schema: Schema) -> str:
        """Human-readable form, e.g. ``{Age=20-30} => {Salary=90K-120K}``."""
        return (
            f"{schema.render_itemset(self.antecedent)} => "
            f"{schema.render_itemset(self.consequent)} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f})"
        )


def generate_rules(
    itemset: Itemset,
    support_fn: SupportFn,
    universe_count: int,
    minconf: float,
) -> list[Rule]:
    """All rules from one itemset whose confidence reaches ``minconf``.

    The itemset's own support is obtained through ``support_fn``; when it or
    an antecedent's support is unreported (``None``) the corresponding rules
    are skipped — the caller guarantees candidates sit above the primary
    floor, so this only happens for deliberately truncated indexes.
    """
    if not 0.0 <= minconf <= 1.0:
        raise DataError(f"minconf must be in [0, 1], got {minconf}")
    if len(itemset) < 2:
        return []
    itemset_count = support_fn(itemset)
    if itemset_count is None or itemset_count == 0:
        return []
    support = itemset_count / universe_count if universe_count else 0.0

    rules: list[Rule] = []
    # Consequent growth: level k holds consequents of size k that passed.
    consequents: list[Itemset] = [(item,) for item in itemset]
    while consequents:
        passed: list[Itemset] = []
        for consequent in consequents:
            antecedent = tuple(i for i in itemset if i not in set(consequent))
            if not antecedent:
                continue
            antecedent_count = support_fn(antecedent)
            if antecedent_count is None or antecedent_count == 0:
                continue
            confidence = itemset_count / antecedent_count
            if confidence >= minconf:
                rules.append(
                    Rule(antecedent, consequent, itemset_count, support, confidence)
                )
                passed.append(consequent)
        consequents = _grow_consequents(passed)
    rules.sort(key=lambda r: (r.antecedent, r.consequent))
    return rules


def _grow_consequents(passed: Sequence[Itemset]) -> list[Itemset]:
    """Join passing size-k consequents sharing a (k-1)-prefix into size k+1.

    Mirrors Apriori candidate generation: a consequent of size k+1 can only
    pass if all its size-k subsets did, and joining sorted same-prefix pairs
    enumerates each candidate exactly once.
    """
    passed_set = set(passed)
    grown: list[Itemset] = []
    ordered = sorted(passed)
    for i, left in enumerate(ordered):
        for right in ordered[i + 1:]:
            if left[:-1] != right[:-1]:
                break
            candidate = left + (right[-1],)
            if all(
                candidate[:k] + candidate[k + 1:] in passed_set
                for k in range(len(candidate) - 2)
            ):
                grown.append(candidate)
    return grown


def rules_from_itemsets(
    itemsets: Iterable[Itemset],
    support_fn: SupportFn,
    universe_count: int,
    minsupp: float,
    minconf: float,
) -> list[Rule]:
    """Rules from many itemsets, filtering itemsets below ``minsupp`` first.

    Deduplicates rules that arise from several source itemsets (e.g. when a
    candidate list contains both an itemset and its superset).
    """
    from repro.itemsets.apriori import min_count_for

    min_count = min_count_for(minsupp, universe_count) if universe_count else 1
    seen: set[tuple[Itemset, Itemset]] = set()
    out: list[Rule] = []
    for itemset in itemsets:
        count_ = support_fn(itemset)
        if count_ is None or count_ < min_count:
            continue
        for rule in generate_rules(itemset, support_fn, universe_count, minconf):
            key = (rule.antecedent, rule.consequent)
            if key not in seen:
                seen.add(key)
                out.append(rule)
    out.sort(key=lambda r: (r.antecedent, r.consequent))
    return out


def rules_from_counts(
    itemsets: Iterable[Itemset],
    count_of: Callable[[Itemset], int],
    universe_count: int,
    minconf: float,
    min_count: int | None = None,
) -> list[Rule]:
    """Batched rule extraction from pre-computed support counts.

    The array-native sibling of :func:`rules_from_itemsets`: ``count_of``
    must return an exact support count for every source itemset *and every
    proper non-empty sub-itemset* of the sources (a
    :class:`repro.kernels.FocalKernel` whose family has been evaluated
    satisfies this).  All antecedent/consequent splits are enumerated
    eagerly and confidences are evaluated in one vectorized pass.

    This produces *exactly* the same rule set as the consequent-growth
    generator: pruning there is lossless (dropping a consequent only skips
    supersets whose confidence is provably lower, never a passing rule),
    deduplication is a no-op because ``antecedent ∪ consequent`` uniquely
    determines the source itemset, and the float64 division here matches
    Python int division for any counts below ``2**53``.

    ``min_count`` filters *source* itemsets below the support floor (the
    expanded-mode caller passes the focal minimum count); sub-itemsets are
    never filtered — they only serve as antecedents.
    """
    if not 0.0 <= minconf <= 1.0:
        raise DataError(f"minconf must be in [0, 1], got {minconf}")
    antecedents: list[Itemset] = []
    consequents: list[Itemset] = []
    i_counts: list[int] = []
    a_counts: list[int] = []
    seen: set[tuple[Itemset, Itemset]] = set()
    for itemset in itemsets:
        if len(itemset) < 2:
            continue
        itemset_count = count_of(itemset)
        if itemset_count is None or itemset_count == 0:
            continue
        if min_count is not None and itemset_count < min_count:
            continue
        n = len(itemset)
        for mask in range(1, (1 << n) - 1):
            antecedent = tuple(
                itemset[k] for k in range(n) if mask >> k & 1
            )
            consequent = tuple(
                itemset[k] for k in range(n) if not mask >> k & 1
            )
            key = (antecedent, consequent)
            if key in seen:
                continue
            seen.add(key)
            antecedents.append(antecedent)
            consequents.append(consequent)
            i_counts.append(itemset_count)
            a_counts.append(count_of(antecedent))
    if not antecedents:
        return []
    ic = np.asarray(i_counts, dtype=np.int64)
    ac = np.asarray(a_counts, dtype=np.int64)
    ok = ac > 0
    conf = np.zeros(len(ic), dtype=np.float64)
    np.divide(ic, ac, out=conf, where=ok)
    keep = ok & (conf >= minconf)
    supp = (
        ic / universe_count
        if universe_count
        else np.zeros(len(ic), dtype=np.float64)
    )
    out = [
        Rule(
            antecedents[i],
            consequents[i],
            int(ic[i]),
            float(supp[i]),
            float(conf[i]),
        )
        for i in np.flatnonzero(keep)
    ]
    out.sort(key=lambda r: (r.antecedent, r.consequent))
    return out



# ---------------------------------------------------------------------------
# Mask-indexed extraction over whole subset lattices
# ---------------------------------------------------------------------------

#: Cached per-width split accessors: for width ``n``, entry ``p`` describes
#: the split whose antecedent is submask ``p + 1`` of the full itemset —
#: C-speed ``itemgetter``s building the antecedent/consequent tuples.
_SPLIT_GETTERS: dict[int, tuple[list, list]] = {}


def _tuple_getter(positions: list[int]):
    """A callable mapping an itemset tuple to the sub-tuple at positions."""
    if len(positions) == 1:
        pos = positions[0]
        return lambda s: (s[pos],)
    return operator.itemgetter(*positions)


def _split_getters(n: int) -> tuple[list, list]:
    """Antecedent/consequent getters for every proper non-empty split of a
    width-``n`` itemset, indexed by ``antecedent_mask - 1`` (built once)."""
    cached = _SPLIT_GETTERS.get(n)
    if cached is not None:
        return cached
    ants: list = []
    cons: list = []
    for mask in range(1, (1 << n) - 1):
        ants.append(_tuple_getter([b for b in range(n) if mask >> b & 1]))
        cons.append(
            _tuple_getter([b for b in range(n) if not mask >> b & 1])
        )
    table = (ants, cons)
    _SPLIT_GETTERS[n] = table
    return table


def rules_from_subset_lattice(
    itemsets: Sequence[Itemset],
    counts: np.ndarray,
    universe_count: int,
    minconf: float,
    *,
    min_count: int | None = None,
    seen: "set[tuple[Itemset, Itemset]] | None" = None,
) -> list[Rule]:
    """Vectorized rule extraction from mask-indexed subset-lattice counts.

    ``itemsets`` are *distinct* same-length (``n``) sorted tuples and
    ``counts`` the matching ``(m, 2**n)`` matrix from
    :meth:`repro.kernels.FocalKernel.count_subset_lattice`:
    ``counts[j, mask]`` is the support of the sub-itemset of
    ``itemsets[j]`` selected by ``mask``'s bits.  Each itemset is a rule
    source; every proper non-empty antecedent/consequent split is checked
    in one vectorized confidence pass, and Python objects (two cached
    ``itemgetter`` calls and one :class:`Rule`) materialize only for
    splits that pass ``minconf`` — the interpreter cost is proportional to
    the emitted rule set, not the enumerated lattice.

    ``min_count`` (floored at 1) filters source supports.  Because
    ``antecedent ∪ consequent`` uniquely determines the source and sources
    are distinct, emitted rules are distinct; ``seen`` is only needed when
    a caller stitches together lattices whose sources may repeat across
    calls.  Rules are returned unsorted; callers sort the concatenation.
    """
    if not 0.0 <= minconf <= 1.0:
        raise DataError(f"minconf must be in [0, 1], got {minconf}")
    m = len(itemsets)
    if m == 0:
        return []
    n = len(itemsets[0])
    if n < 2:
        return []
    floor = max(min_count if min_count is not None else 1, 1)
    full = (1 << n) - 1
    ant_getters, cons_getters = _split_getters(n)
    rules: list[Rule] = []
    # Chunk the (m_c, 2**n - 2) confidence slabs to a fixed footprint.
    chunk = max(1, (4 << 20) // max(1, full - 1))
    for lo in range(0, m, chunk):
        hi = min(m, lo + chunk)
        source_counts = counts[lo:hi, full]
        ac = counts[lo:hi, 1:full]  # column p: antecedent mask p + 1
        ok = (source_counts[:, None] >= floor) & (ac > 0)
        conf = np.zeros(ac.shape, dtype=np.float64)
        np.divide(source_counts[:, None], ac, out=conf, where=ok)
        keep = ok & (conf >= minconf)
        js, ps = np.nonzero(keep)
        if len(js) == 0:
            continue
        kept_ic = source_counts[js]
        # True division, not a reciprocal multiply: bit-identical to the
        # scalar reference's ``count / universe`` for counts below 2**53.
        kept_supp = (
            kept_ic / universe_count
            if universe_count
            else np.zeros(len(js), dtype=np.float64)
        )
        kept = zip(
            js.tolist(),
            ps.tolist(),
            kept_ic.tolist(),
            kept_supp.tolist(),
            conf[js, ps].tolist(),
        )
        if seen is None:
            append = rules.append
            for j, p, count_, supp, conf_ in kept:
                source = itemsets[lo + j]
                append(
                    Rule(
                        ant_getters[p](source),
                        cons_getters[p](source),
                        count_,
                        supp,
                        conf_,
                    )
                )
        else:
            for j, p, count_, supp, conf_ in kept:
                source = itemsets[lo + j]
                antecedent = ant_getters[p](source)
                consequent = cons_getters[p](source)
                key = (antecedent, consequent)
                if key in seen:
                    continue
                seen.add(key)
                rules.append(
                    Rule(antecedent, consequent, count_, supp, conf_)
                )
    return rules


def rules_from_subset_lattices(
    groups: "Sequence[tuple[Sequence[Itemset], np.ndarray]]",
    universe_count: int,
    minconf: float,
    *,
    min_count: int | None = None,
) -> list[Rule]:
    """Globally sorted rule extraction across several subset-lattice groups.

    ``groups`` pairs each same-width source batch with its
    :meth:`~repro.kernels.FocalKernel.count_subset_lattice` matrix (sources
    must be distinct across *all* groups).  Beyond running the vectorized
    confidence pass of :func:`rules_from_subset_lattice` per group, the
    canonical ``(antecedent, consequent)`` output order is produced
    *numerically*: every kept split's antecedent/consequent item ranks are
    compacted into fixed-width packed integer keys (pad rank 0 sorts
    shorter tuples first, exactly like tuple comparison) and one
    ``np.lexsort`` replaces the comparison sort over Python tuple keys —
    so :class:`Rule` objects are built once, already in final order.

    Falls back to per-group extraction plus a tuple-keyed sort in the
    (never-observed) case of more than ``2**16 - 1`` distinct items.
    """
    if not 0.0 <= minconf <= 1.0:
        raise DataError(f"minconf must be in [0, 1], got {minconf}")
    live = [
        (list(itemsets), counts)
        for itemsets, counts in groups
        if len(itemsets) and len(itemsets[0]) >= 2
    ]
    if not live:
        return []
    distinct = sorted({item for itemsets, _ in live for s in itemsets for item in s})
    if len(distinct) >= (1 << 16) - 1:  # pragma: no cover - absurd schema
        out: list[Rule] = []
        for itemsets, counts in live:
            out.extend(
                rules_from_subset_lattice(
                    itemsets, counts, universe_count, minconf,
                    min_count=min_count,
                )
            )
        out.sort(key=operator.attrgetter("antecedent", "consequent"))
        return out
    rank_of = {item: r + 1 for r, item in enumerate(distinct)}
    floor = max(min_count if min_count is not None else 1, 1)
    n_pad = max(len(itemsets[0]) for itemsets, _ in live)
    slots = 2 * n_pad
    n_words = -(-slots // 4)  # four 16-bit ranks per packed int64 word
    shifts = np.array([48, 32, 16, 0], dtype=np.int64)

    kept_keys: list[np.ndarray] = []
    kept_gid: list[int] = []
    kept_js: list[np.ndarray] = []
    kept_ps: list[np.ndarray] = []
    kept_ic: list[np.ndarray] = []
    kept_supp: list[np.ndarray] = []
    kept_conf: list[np.ndarray] = []
    getters_by_group: list[tuple[list, list]] = []
    pad = np.int64(1) << np.int64(40)  # sorts after every real rank

    for gid, (itemsets, counts) in enumerate(live):
        m = len(itemsets)
        n = len(itemsets[0])
        full = (1 << n) - 1
        getters_by_group.append(_split_getters(n))
        ranks = np.array(
            [[rank_of[item] for item in s] for s in itemsets], dtype=np.int64
        )
        masks = np.arange(1, full, dtype=np.int64)
        ant_table = ((masks[:, None] >> np.arange(n)) & 1).astype(bool)
        chunk = max(1, (4 << 20) // max(1, full - 1))
        for lo in range(0, m, chunk):
            hi = min(m, lo + chunk)
            source_counts = counts[lo:hi, full]
            ac = counts[lo:hi, 1:full]
            ok = (source_counts[:, None] >= floor) & (ac > 0)
            conf = np.zeros(ac.shape, dtype=np.float64)
            np.divide(source_counts[:, None], ac, out=conf, where=ok)
            keep = ok & (conf >= minconf)
            js, ps = np.nonzero(keep)
            if len(js) == 0:
                continue
            ic = source_counts[js]
            # True division: bit-identical to the scalar reference's
            # ``count / universe`` for counts below 2**53.
            supp = (
                ic / universe_count
                if universe_count
                else np.zeros(len(js), dtype=np.float64)
            )
            sel = ant_table[ps]  # (K, n) — bits of antecedent mask p + 1
            src_ranks = ranks[lo + js]
            # Compact selected ranks to the left, in order: sources are
            # sorted so their ranks ascend, and an ascending sort with an
            # oversized placeholder both compacts and preserves order.
            ant = np.where(sel, src_ranks, pad)
            ant.sort(axis=1)
            ant[ant == pad] = 0
            con = np.where(sel, pad, src_ranks)
            con.sort(axis=1)
            con[con == pad] = 0
            padded = np.zeros((len(js), n_words * 4), dtype=np.int64)
            padded[:, :n] = ant
            padded[:, n_pad:n_pad + n] = con
            words = np.bitwise_or.reduce(
                padded.reshape(len(js), n_words, 4) << shifts, axis=2
            )
            kept_keys.append(words)
            kept_gid.append(gid)
            kept_js.append(js + lo)
            kept_ps.append(ps)
            kept_ic.append(ic)
            kept_supp.append(supp)
            kept_conf.append(conf[js, ps])

    if not kept_keys:
        return []
    keys = np.concatenate(kept_keys, axis=0)
    gids = np.concatenate(
        [np.full(len(a), g, dtype=np.int64) for g, a in zip(kept_gid, kept_js)]
    )
    js_all = np.concatenate(kept_js)
    ps_all = np.concatenate(kept_ps)
    ic_all = np.concatenate(kept_ic)
    supp_all = np.concatenate(kept_supp)
    conf_all = np.concatenate(kept_conf)
    order = np.lexsort(keys.T[::-1])

    gid_l = gids[order].tolist()
    js_l = js_all[order].tolist()
    ps_l = ps_all[order].tolist()
    ic_l = ic_all[order].tolist()
    supp_l = supp_all[order].tolist()
    conf_l = conf_all[order].tolist()
    itemsets_by_group = [itemsets for itemsets, _ in live]
    rules: list[Rule] = []
    append = rules.append
    for g, j, p, count_, supp_, conf_ in zip(
        gid_l, js_l, ps_l, ic_l, supp_l, conf_l
    ):
        source = itemsets_by_group[g][j]
        ant_getters, cons_getters = getters_by_group[g]
        append(
            Rule(
                ant_getters[p](source),
                cons_getters[p](source),
                count_,
                supp_,
                conf_,
            )
        )
    return rules
