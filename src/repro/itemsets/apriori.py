"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

Level-wise candidate generation with downward-closure pruning.  Support
counting uses the vertical (tidset) representation shared by the whole
library rather than repeated horizontal scans; the candidate-generation
logic is the classic join-and-prune.

Used as a correctness oracle for Eclat/CHARM in the tests and as one of the
miners the ARM plan can run from scratch on a focal subset.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro import tidset as ts
from repro.dataset.schema import Item
from repro.errors import DataError
from repro.itemsets.itemset import Itemset

__all__ = ["FrequentItemset", "min_count_for", "apriori"]


@dataclass(frozen=True)
class FrequentItemset:
    """A frequent itemset with its tidset and absolute support count."""

    items: Itemset
    tidset: int

    @property
    def support_count(self) -> int:
        return ts.count(self.tidset)

    def support(self, n_records: int) -> float:
        return self.support_count / n_records if n_records else 0.0


def min_count_for(minsupp: float, n_records: int) -> int:
    """Absolute support count threshold for a relative ``minsupp``.

    An itemset is frequent iff its count is at least
    ``ceil(minsupp * n_records)`` (and at least 1 — empty support never
    counts as frequent).
    """
    if not 0.0 <= minsupp <= 1.0:
        raise DataError(f"minsupp must be in [0, 1], got {minsupp}")
    exact = minsupp * n_records
    threshold = int(exact)
    if threshold < exact:
        threshold += 1
    return max(threshold, 1)


def apriori(
    item_tidsets: Mapping[Item, int],
    n_records: int,
    minsupp: float,
    max_length: int | None = None,
) -> list[FrequentItemset]:
    """Mine all frequent itemsets at relative support ``minsupp``.

    ``item_tidsets`` maps every singleton item to its tidset (as produced by
    :meth:`RelationalTable.item_tidsets`).  Returns itemsets of length >= 1
    sorted by (length, items).  ``max_length`` optionally caps the itemset
    length explored.
    """
    min_count = min_count_for(minsupp, n_records)
    frequent: list[FrequentItemset] = []

    level: dict[Itemset, int] = {
        (item,): mask
        for item, mask in sorted(item_tidsets.items())
        if ts.count(mask) >= min_count
    }
    k = 1
    while level:
        frequent.extend(
            FrequentItemset(items, mask) for items, mask in sorted(level.items())
        )
        if max_length is not None and k >= max_length:
            break
        level = _next_level(level, min_count)
        k += 1
    return frequent


def _next_level(level: dict[Itemset, int], min_count: int) -> dict[Itemset, int]:
    """Join k-itemsets sharing a (k-1)-prefix, prune, and count."""
    candidates: dict[Itemset, int] = {}
    keys = sorted(level)
    prev = set(keys)
    for i, left in enumerate(keys):
        for right in keys[i + 1:]:
            if left[:-1] != right[:-1]:
                break  # keys are sorted, so prefixes only diverge onward
            last_left, last_right = left[-1], right[-1]
            if last_left.attribute == last_right.attribute:
                continue  # one value per attribute in the relational model
            candidate = left + (last_right,)
            if not _all_subsets_frequent(candidate, prev):
                continue
            mask = ts.intersect(level[left], level[right])
            if ts.count(mask) >= min_count:
                candidates[candidate] = mask
    return candidates


def _all_subsets_frequent(candidate: Itemset, prev: set[Itemset]) -> bool:
    """Downward-closure prune: every (k-1)-subset must be frequent."""
    for drop in range(len(candidate) - 2):  # last two came from frequent parents
        subset = candidate[:drop] + candidate[drop + 1:]
        if subset not in prev:
            return False
    return True
