"""CHARM closed frequent itemset mining (Zaki & Hsiao, SDM 2002).

CHARM explores itemset-tidset (IT) pairs depth-first and applies four
tidset-relation properties to jump directly between closed sets:

1. ``t(Xi) == t(Xj)`` — Xj is fused into Xi (same closure), Xj removed;
2. ``t(Xi) ⊂ t(Xj)``  — Xi is extended by Xj (Xi's closure contains Xj),
   Xj kept for its own branch;
3. ``t(Xi) ⊃ t(Xj)``  — ``Xi ∪ Xj`` (tidset ``t(Xj)``) becomes a child of
   Xi, Xj removed from the current level;
4. otherwise           — ``Xi ∪ Xj`` becomes a child of Xi if frequent.

A hash on tidsets provides the subsumption check that keeps only closed
sets.  This is the offline miner that populates the MIP-index (Section 3.2
of the COLARM paper) and the miner the ARM plan runs on focal subsets.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro import kernels, tidset as ts
from repro.dataset.schema import Item
from repro.itemsets.apriori import min_count_for
from repro.itemsets.itemset import Itemset, make_itemset

__all__ = ["ClosedItemset", "charm"]


@dataclass(frozen=True)
class ClosedItemset:
    """A closed frequent itemset with its exact tidset."""

    items: Itemset
    tidset: int

    @property
    def support_count(self) -> int:
        return ts.count(self.tidset)

    def support(self, n_records: int) -> float:
        return self.support_count / n_records if n_records else 0.0

    @property
    def length(self) -> int:
        """Number of singleton items (the paper's ``C_I``, Lemma 4.3)."""
        return len(self.items)


@dataclass
class _Node:
    """A mutable IT-pair during the search; ``items`` grows via properties 1-2."""

    items: set[Item]
    tidset: int
    children: list["_Node"] = field(default_factory=list)
    removed: bool = False


def charm(
    item_tidsets: Mapping[Item, int],
    n_records: int,
    minsupp: float,
) -> list[ClosedItemset]:
    """Mine all closed frequent itemsets at relative support ``minsupp``.

    Returns closed itemsets sorted by (length, items).  The result is
    exactly the set of closure-distinct tidsets among frequent itemsets:
    for every frequent itemset X there is exactly one returned set with
    tidset ``t(X)`` that contains X (its closure).
    """
    min_count = min_count_for(minsupp, n_records)
    roots = [
        _Node({item}, mask)
        for item, mask in sorted(item_tidsets.items())
        if ts.count(mask) >= min_count
    ]
    closed_by_tidset: dict[int, set[Item]] = {}
    # Size packed rows from the widest tidset actually present, so callers
    # whose masks outrun ``n_records`` (legal for the pure-int reference)
    # still pack without overflow.
    max_bits = max((mask.bit_length() for mask in item_tidsets.values()), default=0)
    words = kernels.n_words(max(n_records, max_bits))
    _charm_extend(roots, min_count, closed_by_tidset, words)
    result = [
        ClosedItemset(make_itemset(items), mask)
        for mask, items in closed_by_tidset.items()
    ]
    result.sort(key=lambda c: (c.length, c.items))
    return result


#: Classes smaller than this skip the packed-matrix kernel — the fixed
#: numpy overhead beats what the batch saves on a handful of pairs
#: (bench_kernels.py puts break-even near 32 members on small universes).
_KERNEL_MIN_NODES = 16


def _charm_extend(
    nodes: list[_Node], min_count: int, closed: dict[int, set[Item]], words: int
) -> None:
    # Zaki & Hsiao process classes in increasing support order so that the
    # subset-tidset properties (1 and 2) fire as often as possible.
    nodes.sort(key=lambda n: ts.count(n.tidset))
    # One-vs-rest kernel: tidsets never change within a class, so pack the
    # class once and batch ``|t(Xi) ∩ t(Xj)|`` for all j > i in one
    # vectorized AND+popcount per i.  Since ``t(Xi) ∩ t(Xj)`` is contained
    # in both operands, count equality is set equality — properties 1–3
    # dispatch on the batched cardinalities alone, and the intersection
    # itself is materialized only when property 4 creates a child.
    use_kernel = len(nodes) >= _KERNEL_MIN_NODES
    if use_kernel:
        matrix = kernels.pack_many([n.tidset for n in nodes], words)
        counts = kernels.popcount_rows(matrix)
    for i, node in enumerate(nodes):
        if node.removed:
            continue
        inter_counts = (
            kernels.and_count(matrix[i + 1:], matrix[i]) if use_kernel else None
        )
        for off, other in enumerate(nodes[i + 1:]):
            if other.removed:
                continue
            ti, tj = node.tidset, other.tidset
            if inter_counts is not None:
                cij = int(inter_counts[off])
                eq_i = cij == int(counts[i])
                eq_j = cij == int(counts[i + 1 + off])
            else:
                tij = ti & tj
                cij = ts.count(tij)
                eq_i = tij == ti
                eq_j = tij == tj
            if eq_i and eq_j:  # property 1: equal tidsets
                node.items |= other.items
                _absorb_into_children(node, other.items)
                other.removed = True
            elif eq_i:  # property 2: t(Xi) subset of t(Xj)
                node.items |= other.items
                _absorb_into_children(node, other.items)
            elif eq_j:  # property 3: t(Xi) superset of t(Xj)
                node.children.append(_Node(node.items | other.items, tj))
                other.removed = True
            elif cij >= min_count:  # property 4: new child if frequent
                node.children.append(_Node(node.items | other.items, ti & tj))
        if node.children:
            # Children were created before later property-1/2 extensions of
            # this node, so refresh them with the final item set.
            _absorb_into_children(node, node.items)
            _charm_extend(node.children, min_count, closed, words)
        _record_closed(node, closed)


def _absorb_into_children(node: _Node, items: set[Item]) -> None:
    """Propagate a property-1/2 extension of ``node`` into its subtree.

    Any child's tidset is a subset of the node's, so the extending items
    (whose tidset covers the node's) belong to every child's closure too.
    """
    for child in node.children:
        child.items |= items
        _absorb_into_children(child, items)


def _record_closed(node: _Node, closed: dict[int, set[Item]]) -> None:
    """Keep ``node`` unless an itemset with the same tidset already covers it.

    Two itemsets with equal tidsets share a closure, so per tidset only the
    largest item set survives (union-compatible by construction).
    """
    existing = closed.get(node.tidset)
    if existing is None:
        closed[node.tidset] = set(node.items)
    else:
        existing |= node.items
