"""dCHARM: CHARM over diffsets (Zaki & Hsiao, SDM 2002 / Zaki & Gouda 2003).

On dense datasets tidsets barely shrink as itemsets grow, so intersecting
them repeats most of the work.  The *diffset* of a class member ``PX`` is
``d(PX) = t(P) - t(PX)`` — what the extension lost, which is small exactly
when tidsets are large.  Within a class, children are computed purely from
diffsets::

    d(P X_i X_j) = d(P X_j) - d(P X_i)
    sup(P X_i X_j) = sup(P X_i) - |d(P X_i X_j)|

and the four CHARM tidset properties translate to diffset relations (with
directions flipped: ``t_i ⊂ t_j  <=>  d_i ⊃ d_j``).

The output — the exact closed frequent itemsets with their tidsets — is
identical to :func:`repro.itemsets.charm.charm`; the equivalence tests
assert byte equality.  Parent tidsets are carried down only to materialize
the output (one AND-NOT per closed set), never for the search itself.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro import kernels, tidset as ts
from repro.dataset.schema import Item
from repro.itemsets.apriori import min_count_for
from repro.itemsets.charm import ClosedItemset
from repro.itemsets.itemset import make_itemset

__all__ = ["dcharm"]


@dataclass
class _DNode:
    """A class member: itemset, its diffset w.r.t. the class prefix, support."""

    items: set[Item]
    diffset: int
    support: int
    children: list["_DNode"] = field(default_factory=list)
    removed: bool = False


def dcharm(
    item_tidsets: Mapping[Item, int],
    n_records: int,
    minsupp: float,
) -> list[ClosedItemset]:
    """Mine all closed frequent itemsets, using diffset arithmetic."""
    min_count = min_count_for(minsupp, n_records)
    universe = ts.full(n_records)
    roots = [
        _DNode({item}, universe & ~mask, ts.count(mask))
        for item, mask in sorted(item_tidsets.items())
        if ts.count(mask) >= min_count
    ]
    closed: dict[int, set[Item]] = {}
    words = kernels.n_words(n_records)
    _extend(roots, universe, min_count, closed, words)
    result = [
        ClosedItemset(make_itemset(items), mask)
        for mask, items in closed.items()
    ]
    result.sort(key=lambda c: (c.length, c.items))
    return result


#: Classes smaller than this skip the packed-matrix kernel (fixed numpy
#: overhead beats the batch on a handful of pairs) — mirrors charm's.
_KERNEL_MIN_NODES = 16


def _extend(
    nodes: list[_DNode],
    parent_tidset: int,
    min_count: int,
    closed: dict[int, set[Item]],
    words: int,
) -> None:
    nodes.sort(key=lambda n: n.support)
    # One-vs-rest kernel over the class's packed diffsets: from the batch
    # ``a = |d_i ∩ d_j|`` and the per-row popcounts, ``|d_j - d_i| =
    # |d_j| - a`` and ``|d_i - d_j| = |d_i| - a`` — which decide all four
    # properties (d_i == d_j iff both differences are empty) and give the
    # child support without materializing any diffset; the child's diffset
    # int is built only when a child is actually created.
    use_kernel = len(nodes) >= _KERNEL_MIN_NODES
    if use_kernel:
        matrix = kernels.pack_many([n.diffset for n in nodes], words)
        counts = kernels.popcount_rows(matrix)
    for i, node in enumerate(nodes):
        if node.removed:
            continue
        inter_counts = (
            kernels.and_count(matrix[i + 1:], matrix[i]) if use_kernel else None
        )
        for off, other in enumerate(nodes[i + 1:]):
            if other.removed:
                continue
            di, dj = node.diffset, other.diffset
            if inter_counts is not None:
                a = int(inter_counts[off])
                j_minus_i = int(counts[i + 1 + off]) - a   # |d(P Xi Xj)|
                i_minus_j = int(counts[i]) - a
            else:
                j_minus_i = ts.count(dj & ~di)
                i_minus_j = ts.count(di & ~dj)
            # d(P Xi Xj) = d(P Xj) - d(P Xi); new support from Xi's.
            child_support = node.support - j_minus_i
            if j_minus_i == 0 and i_minus_j == 0:  # property 1: equal tidsets
                node.items |= other.items
                _absorb(node, other.items)
                other.removed = True
            elif j_minus_i == 0:  # dj ⊆ di <=> t_i ⊆ t_j: property 2 or 1
                # (strict subset here since equality was handled above)
                node.items |= other.items
                _absorb(node, other.items)
            elif i_minus_j == 0:  # di ⊂ dj <=> t_i ⊃ t_j: property 3
                node.children.append(
                    _DNode(node.items | other.items, dj & ~di, child_support)
                )
                other.removed = True
            elif child_support >= min_count:  # property 4
                node.children.append(
                    _DNode(node.items | other.items, dj & ~di, child_support)
                )
        node_tidset = parent_tidset & ~node.diffset
        if node.children:
            _absorb(node, node.items)
            # Children's diffsets are relative to this node's tidset already.
            _extend(node.children, node_tidset, min_count, closed, words)
        existing = closed.get(node_tidset)
        if existing is None:
            closed[node_tidset] = set(node.items)
        else:
            existing |= node.items


def _absorb(node: _DNode, items: set[Item]) -> None:
    """Propagate a property-1/2 extension into the subtree (same closure)."""
    for child in node.children:
        child.items |= items
        _absorb(child, items)
