"""Eclat frequent-itemset mining (Zaki, 1997-2000).

Depth-first exploration of prefix-based equivalence classes over the
vertical tidset representation.  Faster than Apriori on dense data and the
miner the ARM plan uses by default when the full frequent-itemset family is
requested.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import tidset as ts
from repro.dataset.schema import Item
from repro.itemsets.apriori import FrequentItemset, min_count_for
from repro.itemsets.itemset import Itemset

__all__ = ["eclat"]


def eclat(
    item_tidsets: Mapping[Item, int],
    n_records: int,
    minsupp: float,
    max_length: int | None = None,
) -> list[FrequentItemset]:
    """Mine all frequent itemsets at relative support ``minsupp``.

    Same contract and output order as :func:`repro.itemsets.apriori.apriori`
    (the tests cross-check the two); only the search strategy differs.
    """
    min_count = min_count_for(minsupp, n_records)
    roots = [
        ((item,), mask)
        for item, mask in sorted(item_tidsets.items())
        if ts.count(mask) >= min_count
    ]
    out: list[FrequentItemset] = []
    _extend(roots, min_count, max_length, out)
    out.sort(key=lambda f: (len(f.items), f.items))
    return out


def _extend(
    nodes: list[tuple[Itemset, int]],
    min_count: int,
    max_length: int | None,
    out: list[FrequentItemset],
) -> None:
    """Recurse over one equivalence class of same-prefix itemsets."""
    for i, (items, mask) in enumerate(nodes):
        out.append(FrequentItemset(items, mask))
        if max_length is not None and len(items) >= max_length:
            continue
        children: list[tuple[Itemset, int]] = []
        for other_items, other_mask in nodes[i + 1:]:
            last = other_items[-1]
            if last.attribute == items[-1].attribute:
                continue  # relational model: one value per attribute
            child_mask = mask & other_mask
            if ts.count(child_mask) >= min_count:
                children.append((items + (last,), child_mask))
        if children:
            _extend(children, min_count, max_length, out)
