"""Sharded multi-process kernel execution over shared-memory arrays.

The packed-uint64 tidset matrices (:mod:`repro.kernels`) and the flat SoA
R-tree (:mod:`repro.rtree.flat`) are *record-partitionable*: a tidset row
is a sequence of 64-bit words, word ``w`` covering records ``64w ..
64w+63``, and every hot-path count — MIP qualification, table lookups,
the ``count_subset_lattice`` rule-generation kernel — is a popcount of an
AND of such rows.  Popcounts are sums over words, so splitting the record
universe into ``P`` contiguous shards *at the packed-word boundary* and
summing the per-shard partials reproduces the serial counts **exactly**
(integer sums, byte-identical; property-tested in
``tests/property/test_parallel_properties.py``).

This module builds on that invariant:

* :func:`shard_words` — split ``n_words`` into ``P`` contiguous word
  ranges (empty shards allowed when ``P > n_words``);
* :func:`and_count_partial` / :func:`popcount_rows_partial` /
  :func:`subset_lattice_partial` — the pure per-shard kernels, callable
  in-process (the property suite) or inside a worker (the pool);
* :class:`ShardedExecutor` — a persistent ``multiprocessing`` worker pool
  whose workers attach the kernel matrices and the flat R-tree per-level
  arrays through :mod:`multiprocessing.shared_memory` **by name**: only
  shard descriptors (array key, word range) and query payloads (row index
  vectors, one packed focal row) ever cross the pipe — never a matrix;
* :class:`ParallelContext` — the engine-facing handle threaded through
  :mod:`repro.core.operators`: decides per call whether the estimated
  work clears the fitted break-even point, dispatches shards, merges
  partials, and *falls back to serial* (returns ``None``) whenever the
  pool is broken, below break-even, or disabled.

Failure semantics: a worker death surfaces as
``concurrent.futures.process.BrokenProcessPool`` on the next dispatch;
the executor marks itself broken, the in-flight call returns ``None``,
and every caller serves the serial result instead — a crashed pool can
slow queries down but never change an answer.
"""

from __future__ import annotations

import atexit
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from repro import kernels
from repro.core.mipindex import MIPIndex
from repro.rtree.flat import FlatRTree
from repro.rtree.geometry import Rect

__all__ = [
    "shard_words",
    "and_count_partial",
    "popcount_rows_partial",
    "subset_lattice_partial",
    "available_cpus",
    "ParallelConfig",
    "ShardedExecutor",
    "ParallelContext",
]

_WORD_DTYPE = kernels._WORD_DTYPE

#: Shared-array keys used by :class:`ParallelContext`.
_KEY_MIPS = "mips"
_KEY_ITEMS = "items"
_KEY_RTREE = "rtree/"


def available_cpus() -> int:
    """Usable CPU count (affinity-aware; 1 when undetectable)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Shard geometry and the pure per-shard kernels
# ---------------------------------------------------------------------------


def shard_words(n_words: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``n_words`` into ``n_shards`` contiguous ``(lo, hi)`` ranges.

    Ranges are balanced to within one word and cover ``[0, n_words)``
    exactly; when ``n_shards > n_words`` the tail shards are empty
    (``lo == hi``), which every partial kernel handles (a zero-width
    slice popcounts to zero).
    """
    if n_words < 0:
        raise ValueError(f"n_words must be non-negative, got {n_words}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    base, extra = divmod(n_words, n_shards)
    bounds = [0]
    for k in range(n_shards):
        bounds.append(bounds[-1] + base + (1 if k < extra else 0))
    return [(bounds[k], bounds[k + 1]) for k in range(n_shards)]


def and_count_partial(
    matrix: np.ndarray, rows: np.ndarray, mask: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Per-shard qualification partial: ``popcount(matrix[rows, lo:hi] &
    mask[lo:hi])`` per row, as int64.

    Summing over a complete word partition equals
    ``kernels.and_count(matrix[rows], mask)`` exactly.
    """
    if hi <= lo or len(rows) == 0:
        return np.zeros(len(rows), dtype=np.int64)
    return kernels.popcount_rows(matrix[rows, lo:hi] & mask[lo:hi])


def popcount_rows_partial(
    matrix: np.ndarray, rows: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Per-shard row-popcount partial (table-lookup counts)."""
    if hi <= lo or len(rows) == 0:
        return np.zeros(len(rows), dtype=np.int64)
    return kernels.popcount_rows(matrix[rows, lo:hi])


def subset_lattice_partial(
    item_matrix: np.ndarray,
    idx: np.ndarray,
    mask: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Per-shard subset-lattice partial: ``(m, 2**n)`` int64 counts.

    ``idx`` is an ``(m, n)`` matrix of *item rows* into ``item_matrix``
    (``-1`` for items absent from the table: the empty tidset), ``mask``
    the packed focal row.  Entry ``[j, s]`` is the popcount, over words
    ``lo:hi``, of the AND of the focal row with the item rows selected by
    the bits of ``s`` — so the shard sum is ``|t(S) ∩ D^Q|``, exactly the
    counts :meth:`repro.kernels.FocalKernel.count_subset_lattice` produces
    (the projection invariant makes the focal-universe popcounts equal the
    full-width ones).  Sharding at full width instead of projecting keeps
    workers free of any per-query repack: the lattice root *is* the focal
    slice, and every lattice row inherits it through the mask recurrence.

    Slab memory is chunked exactly like the serial kernel (~64 MiB cap).
    """
    m, n = idx.shape
    size = 1 << n
    if m == 0:
        return np.zeros((0, size), dtype=np.int64)
    span = hi - lo
    counts = np.zeros((m, size), dtype=np.int64)
    if span <= 0:
        return counts
    dq_slice = np.ascontiguousarray(mask[lo:hi])
    counts[:, 0] = int(kernels.popcount_rows(dq_slice[None, :])[0])
    if n == 0:
        return counts
    rows = np.zeros((m, n, span), dtype=_WORD_DTYPE)
    valid = idx >= 0
    if valid.any():  # an all-absent idx (even an empty item_matrix) is fine
        rows[valid] = item_matrix[idx[valid], lo:hi]
    lowbit = [(s & -s).bit_length() - 1 for s in range(size)]
    chunk = max(1, (64 << 20) // (size * max(span, 1) * 8))
    for c_lo in range(0, m, chunk):
        c_hi = min(m, c_lo + chunk)
        lattice = np.empty((c_hi - c_lo, size, span), dtype=_WORD_DTYPE)
        lattice[:, 0] = dq_slice
        for s in range(1, size):
            np.bitwise_and(
                lattice[:, s & (s - 1)],
                rows[c_lo:c_hi, lowbit[s]],
                out=lattice[:, s],
            )
        counts[c_lo:c_hi] = kernels.popcount_rows(
            lattice.reshape(-1, span)
        ).reshape(c_hi - c_lo, size)
    return counts


# ---------------------------------------------------------------------------
# Worker-process side: attach shared arrays by name, serve shard ops
# ---------------------------------------------------------------------------

#: Worker-global views onto the parent's shared-memory arrays, keyed by
#: the registry names the initializer received.  Query payloads reference
#: arrays *by key*; the matrices themselves never cross the pipe.
_WORKER_ARRAYS: dict[str, np.ndarray] = {}
_WORKER_SHMS: list[shared_memory.SharedMemory] = []
_WORKER_TREES: dict[str, FlatRTree] = {}


def _worker_init(
    descriptors: dict[str, tuple[str, tuple[int, ...], str]],
    own_tracker: bool,
) -> None:
    """Pool initializer: map every registered array, read-only.

    ``own_tracker`` is True for spawn-style workers, which run their own
    resource-tracker process: attaching registers each segment there, and
    without unregistering, that tracker would unlink the parent's live
    segments at worker exit.  Fork workers *share* the parent's tracker —
    unregistering from one would erase the parent's own bookkeeping — so
    they must leave it alone.
    """
    _WORKER_ARRAYS.clear()
    _WORKER_TREES.clear()
    for key, (name, shape, dtype) in descriptors.items():
        shm = shared_memory.SharedMemory(name=name)
        if own_tracker:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals shifted
                pass
        _WORKER_SHMS.append(shm)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        view.setflags(write=False)
        _WORKER_ARRAYS[key] = view
    atexit.register(_worker_close)


def _worker_close() -> None:  # pragma: no cover - process teardown
    _WORKER_ARRAYS.clear()
    _WORKER_TREES.clear()
    while _WORKER_SHMS:
        try:
            _WORKER_SHMS.pop().close()
        except Exception:
            pass


def _w_ping(payload: int = 0) -> int:
    """Round-trip no-op: measures per-dispatch overhead."""
    return payload


def _w_and_count(
    key: str, rows: bytes, mask: bytes, lo: int, hi: int
) -> bytes:
    row_idx = np.frombuffer(rows, dtype=np.int64).astype(np.intp, copy=False)
    mask_row = np.frombuffer(mask, dtype=_WORD_DTYPE)
    out = and_count_partial(_WORKER_ARRAYS[key], row_idx, mask_row, lo, hi)
    return out.tobytes()


def _w_popcount_rows(key: str, rows: bytes, lo: int, hi: int) -> bytes:
    row_idx = np.frombuffer(rows, dtype=np.int64).astype(np.intp, copy=False)
    out = popcount_rows_partial(_WORKER_ARRAYS[key], row_idx, lo, hi)
    return out.tobytes()


def _w_subset_lattice(
    key: str, idx: bytes, shape: tuple[int, int], mask: bytes, lo: int, hi: int
) -> bytes:
    idx_matrix = np.frombuffer(idx, dtype=np.int64).reshape(shape)
    mask_row = np.frombuffer(mask, dtype=_WORD_DTYPE)
    out = subset_lattice_partial(
        _WORKER_ARRAYS[key], idx_matrix, mask_row, lo, hi
    )
    return out.tobytes()


def _w_search(
    prefix: str,
    q_lo: tuple[int, ...],
    q_hi: tuple[int, ...],
    min_count: int | None,
) -> tuple[bytes, bytes, int]:
    """Flat R-tree window search served entirely from the shared arrays.

    The tree view is reconstructed lazily (and cached) from the per-level
    SoA arrays the parent registered — zero-copy: the worker's FlatLevel
    arrays alias the parent's shared-memory pages.
    """
    tree = _WORKER_TREES.get(prefix)
    if tree is None:
        shape = _WORKER_ARRAYS[prefix + "shape"]
        arrays = {
            key[len(prefix):]: arr
            for key, arr in _WORKER_ARRAYS.items()
            if key.startswith(prefix) and key != prefix + "payload_rows"
        }
        n_levels = int(shape[1])
        payload_rows = _WORKER_ARRAYS[prefix + "payload_rows"]
        tree = FlatRTree.from_arrays(
            arrays,
            payloads=[None] * len(payload_rows),
            payload_rows=payload_rows,
        )
        assert tree.height == n_levels
        _WORKER_TREES[prefix] = tree
    hits = tree.search_hits(Rect(q_lo, q_hi), min_count=min_count)
    return (
        hits.rows.astype(np.int64, copy=False).tobytes(),
        hits.counts.astype(np.int64, copy=False).tobytes(),
        hits.nodes_visited,
    )


# ---------------------------------------------------------------------------
# Parent-process side: registry, pool, shard dispatch, exact merges
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelConfig:
    """Opt-in parallel execution settings (``engine.configure(parallel=...)``).

    ``n_shards`` is the record-partition count P; ``n_workers`` defaults
    to ``min(P, available_cpus())``.  ``force`` bypasses the fitted
    break-even check (benchmarks and exactness tests want the sharded
    path even where it cannot win, e.g. single-core CI containers);
    correctness never depends on it.
    """

    n_shards: int = 4
    n_workers: int | None = None
    start_method: str | None = None
    force: bool = False


class _PoolBroken(RuntimeError):
    """Internal: the worker pool can no longer serve dispatches."""


class ShardedExecutor:
    """Shared-memory registry plus the persistent worker pool.

    ``arrays`` maps registry keys to numpy arrays; each is copied **once**
    into a :class:`multiprocessing.shared_memory.SharedMemory` block at
    construction, and workers attach by segment name in their initializer.
    After that, a dispatch ships only ``(key, shard range, payload)``
    tuples — for a qualification call that is one int64 row-index vector
    and one packed focal row (a few KiB), regardless of matrix size.
    """

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        config: ParallelConfig,
    ):
        self.config = config
        self.n_shards = int(config.n_shards)
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        self.n_workers = int(
            config.n_workers
            if config.n_workers is not None
            else max(1, min(self.n_shards, available_cpus()))
        )
        self._shms: list[shared_memory.SharedMemory] = []
        self._broken = False
        descriptors: dict[str, tuple[str, tuple[int, ...], str]] = {}
        for key, array in arrays.items():
            source = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, source.nbytes)
            )
            self._shms.append(shm)
            view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
            view[...] = source
            descriptors[key] = (shm.name, source.shape, source.dtype.str)
        method = config.start_method
        if method is None:
            # fork shares the parent's imports (no per-worker numpy import)
            # and is available on every platform this repo targets; fall
            # back to the platform default elsewhere.
            try:
                ctx = get_context("fork")
            except ValueError:  # pragma: no cover - fork-less platform
                ctx = get_context()
        else:
            ctx = get_context(method)
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(descriptors, ctx.get_start_method() != "fork"),
        )
        self._finalize = atexit.register(self.close)
        # Spawn every worker now: dispatch-overhead calibration must see
        # steady-state round-trips, not worker start-up.
        self.ping_all()

    # -- lifecycle ---------------------------------------------------------

    @property
    def available(self) -> bool:
        return self._pool is not None and not self._broken

    def worker_pids(self) -> list[int]:
        """Live worker PIDs (test hook for the crash-fallback suite)."""
        if self._pool is None:
            return []
        return [p.pid for p in (self._pool._processes or {}).values()]

    def close(self) -> None:
        """Shut the pool down and release every shared segment."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        while self._shms:
            shm = self._shms.pop()
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, fn, tasks: list[tuple]) -> list:
        """Submit one task per shard and gather results in shard order.

        Any pool-level failure (worker death, closed pool) marks the
        executor broken and raises :class:`_PoolBroken`; shard-op callers
        translate that into a ``None`` serial-fallback signal.
        """
        if not self.available:
            raise _PoolBroken("worker pool unavailable")
        assert self._pool is not None
        try:
            futures = [self._pool.submit(fn, *task) for task in tasks]
            return [f.result(timeout=120.0) for f in futures]
        except Exception as exc:
            self._broken = True
            raise _PoolBroken(str(exc)) from exc

    def ping_all(self) -> float:
        """One ping per worker; returns the round's wall time."""
        start = time.perf_counter()
        self._dispatch(_w_ping, [(k,) for k in range(self.n_workers)])
        return time.perf_counter() - start

    def measure_dispatch_overhead(self, rounds: int = 5) -> float:
        """Median per-task round-trip time of an empty shard dispatch."""
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            self._dispatch(_w_ping, [(k,) for k in range(self.n_shards)])
            samples.append((time.perf_counter() - start) / self.n_shards)
        return float(statistics.median(samples))

    # -- shard ops (exact merges) -----------------------------------------

    def and_count(
        self, key: str, rows: np.ndarray, mask: np.ndarray, n_words: int
    ) -> np.ndarray:
        """Sharded ``kernels.and_count(matrix[rows], mask)`` — exact."""
        rows64 = np.ascontiguousarray(rows, dtype=np.int64)
        payload = rows64.tobytes()
        mask_b = np.ascontiguousarray(mask).tobytes()
        parts = self._dispatch(
            _w_and_count,
            [
                (key, payload, mask_b, lo, hi)
                for lo, hi in shard_words(n_words, self.n_shards)
            ],
        )
        total = np.zeros(len(rows64), dtype=np.int64)
        for part in parts:
            total += np.frombuffer(part, dtype=np.int64)
        return total

    def popcount_rows(
        self, key: str, rows: np.ndarray, n_words: int
    ) -> np.ndarray:
        """Sharded ``kernels.popcount_rows(matrix[rows])`` — exact."""
        rows64 = np.ascontiguousarray(rows, dtype=np.int64)
        payload = rows64.tobytes()
        parts = self._dispatch(
            _w_popcount_rows,
            [
                (key, payload, lo, hi)
                for lo, hi in shard_words(n_words, self.n_shards)
            ],
        )
        total = np.zeros(len(rows64), dtype=np.int64)
        for part in parts:
            total += np.frombuffer(part, dtype=np.int64)
        return total

    def subset_lattice(
        self, key: str, idx: np.ndarray, mask: np.ndarray, n_words: int
    ) -> np.ndarray:
        """Sharded subset-lattice counts, merged exactly (int64 sums)."""
        idx64 = np.ascontiguousarray(idx, dtype=np.int64)
        payload = idx64.tobytes()
        shape = (int(idx64.shape[0]), int(idx64.shape[1]))
        parts = self._dispatch(
            _w_subset_lattice,
            [
                (key, payload, shape,
                 np.ascontiguousarray(mask).tobytes(), lo, hi)
                for lo, hi in shard_words(n_words, self.n_shards)
            ],
        )
        size = 1 << shape[1]
        total = np.zeros((shape[0], size), dtype=np.int64)
        for part in parts:
            total += np.frombuffer(part, dtype=np.int64).reshape(shape[0], size)
        return total

    def search(
        self,
        prefix: str,
        query: Rect,
        min_count: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Window search served by one worker from the shared tree arrays.

        Returns ``(payload rows, global counts, nodes_visited)`` —
        identical to the parent-side :meth:`FlatRTree.search_hits` (the
        traversal is deterministic over the very same arrays).  Exists to
        keep the *whole* candidate pipeline servable off-process (remote
        shard servers, the ROADMAP's service north-star); the in-process
        operators keep searching locally, where the arrays are already
        mapped.
        """
        rows_b, counts_b, visited = self._dispatch(
            _w_search,
            [(prefix, tuple(query.lows), tuple(query.highs), min_count)],
        )[0]
        return (
            np.frombuffer(rows_b, dtype=np.int64),
            np.frombuffer(counts_b, dtype=np.int64),
            int(visited),
        )


class ParallelContext:
    """The engine's handle on sharded execution for one MIP-index.

    Registers the index's kernel matrices (MIP tidsets, item tidsets) and
    the compiled flat R-tree's per-level SoA arrays in shared memory,
    owns the worker pool, and serves the operator-facing sharded ops with
    break-even gating and serial fallback.  Created by
    ``Colarm.configure(parallel=...)``; explicitly opt-in.
    """

    def __init__(self, index: MIPIndex, config: ParallelConfig | None = None):
        self.config = config or ParallelConfig()
        self.index = index
        self.tidset_words = index.tidset_words
        matrix, row_of = index.table.item_matrix()
        self._row_of = dict(row_of)
        arrays: dict[str, np.ndarray] = {
            _KEY_MIPS: index.mip_tidset_matrix,
            _KEY_ITEMS: matrix,
        }
        flat = index.rtree.flat if index.rtree.flat_is_current() else None
        if flat is not None:
            for key, arr in flat.to_arrays().items():
                arrays[_KEY_RTREE + key] = arr
            arrays[_KEY_RTREE + "payload_rows"] = flat.payload_rows
        self._has_tree = flat is not None
        self.executor = ShardedExecutor(arrays, self.config)
        #: Median per-task dispatch overhead, measured on the live pool.
        self.dispatch_s = self.executor.measure_dispatch_overhead()
        #: Serial AND+popcount throughput (seconds per word) on this host,
        #: measured over the registered MIP matrix — the same work the
        #: shards split.
        self.word_s = self._measure_word_throughput()
        self.break_even_words = self._fit_break_even()

    # -- break-even model --------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.executor.n_shards

    @property
    def effective_workers(self) -> int:
        """Shards that can actually run concurrently on this host."""
        return max(
            1, min(self.executor.n_workers, self.n_shards, available_cpus())
        )

    def _measure_word_throughput(self, target_rows: int = 256) -> float:
        matrix = self.index.mip_tidset_matrix
        if matrix.size == 0:
            return 25e-12
        reps = max(1, target_rows // max(1, matrix.shape[0]))
        mask = np.full(matrix.shape[1], ~np.uint64(0), dtype=_WORD_DTYPE)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(reps):
                kernels.and_count(matrix, mask)
            best = min(best, (time.perf_counter() - start) / reps)
        return max(best / matrix.size, 1e-12)

    def _fit_break_even(self) -> float:
        """Words of AND+popcount work above which sharding wins.

        Sharding saves ``work * word_s * (1 - 1/P_eff)`` and costs
        ``n_shards * dispatch_s`` (merge cost is a few microseconds and
        is absorbed by the 1.5x safety margin).  With one effective
        worker there is nothing to save and the break-even is infinite —
        the optimizer and the operators then always run serial unless
        ``force`` is set.
        """
        p_eff = self.effective_workers
        if p_eff <= 1:
            return float("inf")
        saving_per_word = self.word_s * (1.0 - 1.0 / p_eff)
        return 1.5 * self.n_shards * self.dispatch_s / saving_per_word

    def should_shard(self, work_words: float) -> bool:
        """Break-even gate: is sharding expected to beat serial here?"""
        if not self.available:
            return False
        if self.config.force:
            return True
        return work_words >= self.break_even_words

    @property
    def available(self) -> bool:
        return self.executor.available

    def close(self) -> None:
        self.executor.close()

    # -- operator-facing sharded ops (None => caller runs serial) ----------

    def and_count_mips(
        self, rows: np.ndarray, packed_dq: np.ndarray
    ) -> np.ndarray | None:
        """Sharded MIP qualification counts, or ``None`` for serial."""
        if not self.should_shard(len(rows) * self.tidset_words):
            return None
        try:
            return self.executor.and_count(
                _KEY_MIPS, rows, packed_dq, self.tidset_words
            )
        except _PoolBroken:
            return None

    def count_subset_lattice(
        self, itemsets, packed_dq: np.ndarray, dq_size: int
    ) -> np.ndarray | None:
        """Sharded rule-generation lattice counts, or ``None`` for serial.

        Mirrors :meth:`repro.kernels.FocalKernel.count_subset_lattice`
        byte for byte (itemsets share one width ``n``; ``counts[j, 0]``
        is ``|D^Q|``), but over full-width shards of the *raw* item
        matrix ANDed with the focal row — no per-query projection.
        """
        m = len(itemsets)
        if m == 0:
            return np.zeros((0, 1), dtype=np.int64)
        n = len(itemsets[0])
        work = m * (1 << n) * self.tidset_words
        if n == 0 or n >= 60 or not self.should_shard(work):
            return None
        idx = np.array(
            [
                [self._row_of.get(key, -1) for key in itemset]
                for itemset in itemsets
            ],
            dtype=np.int64,
        )
        try:
            counts = self.executor.subset_lattice(
                _KEY_ITEMS, idx, packed_dq, self.tidset_words
            )
        except _PoolBroken:
            return None
        # The empty sub-itemset column is |D^Q| by definition; the shard
        # sum reproduces it (popcounts of the focal slices), asserted here
        # as a cheap end-to-end merge check.
        if m and int(counts[0, 0]) != int(dq_size):  # pragma: no cover
            return None
        return counts

    def item_popcounts(self, rows: np.ndarray) -> np.ndarray | None:
        """Sharded global item supports (table-lookup counts)."""
        if not self.should_shard(len(rows) * self.tidset_words):
            return None
        try:
            return self.executor.popcount_rows(
                _KEY_ITEMS, rows, self.tidset_words
            )
        except _PoolBroken:
            return None

    def search_remote(self, query: Rect, min_count: int | None = None):
        """Worker-served SUPPORTED-SEARCH over the shared flat R-tree.

        ``None`` when no current compiled tree was registered or the pool
        is down; otherwise ``(rows, counts, nodes_visited)`` identical to
        the parent-side traversal.
        """
        if not self._has_tree or not self.available:
            return None
        try:
            return self.executor.search(_KEY_RTREE, query, min_count)
        except _PoolBroken:
            return None

    # -- cost-model handoff ------------------------------------------------

    def cost_profile(self) -> "ParallelCostProfile":
        from repro.core.costs import ParallelCostProfile

        return ParallelCostProfile(
            n_shards=self.n_shards,
            effective_workers=self.effective_workers,
        )

    def describe(self) -> dict[str, float]:
        """Fitted parameters, for reports and the parallel benchmark."""
        return {
            "n_shards": float(self.n_shards),
            "n_workers": float(self.executor.n_workers),
            "effective_workers": float(self.effective_workers),
            "dispatch_s": self.dispatch_s,
            "word_s": self.word_s,
            "break_even_words": self.break_even_words,
        }

    def snapshot(self) -> dict:
        """:meth:`describe` plus pool liveness — what the serving layer's
        stats endpoint reports so a degraded-to-serial service is visible."""
        out: dict = dict(self.describe())
        out["available"] = self.available
        return out
