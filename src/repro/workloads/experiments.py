"""The Section 5 experiment configurations, scaled for pure Python.

One :class:`ExperimentSpec` per benchmark dataset, mirroring the paper's
grids structurally — four focal-subset sizes (50/20/10/1% of ``|D|``),
three minsupp values, three minconf values, primary support fixed per
dataset — with record counts and thresholds scaled down so the whole
harness runs in minutes (see DESIGN.md's substitution notes; EXPERIMENTS.md
records the mapping against the paper's settings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataset.synthetic import chess_like, mushroom_like, pumsb_like
from repro.dataset.table import RelationalTable

__all__ = ["ExperimentSpec", "EXPERIMENTS", "FOCAL_FRACTIONS"]

#: The paper's four |D^Q| settings (Figures 9-11, charts (a)-(d)).
FOCAL_FRACTIONS: tuple[float, ...] = (0.50, 0.20, 0.10, 0.01)


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to regenerate one dataset's evaluation figures."""

    name: str
    make_table: Callable[[], RelationalTable]
    primary_support: float
    #: The primary-threshold sweep of Figure 8 (fractions, descending).
    fig8_thresholds: tuple[float, ...]
    #: The three minsupp values of the figure-9/10/11 grids.
    minsupps: tuple[float, ...]
    #: The three minconf values of Section 5.1 (85/90/95% in the paper).
    minconfs: tuple[float, ...]
    #: Paper counterpart settings, recorded for EXPERIMENTS.md.
    paper_primary: float
    paper_minsupps: tuple[float, ...]

    def queries_per_setting(self) -> int:
        return 3


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "chess": ExperimentSpec(
        name="chess",
        make_table=chess_like,
        primary_support=0.08,
        fig8_thresholds=(0.60, 0.40, 0.30, 0.20, 0.10, 0.05),
        minsupps=(0.30, 0.35, 0.40),
        minconfs=(0.85, 0.90, 0.95),
        paper_primary=0.60,
        paper_minsupps=(0.80, 0.85, 0.90),
    ),
    "mushroom": ExperimentSpec(
        name="mushroom",
        make_table=mushroom_like,
        primary_support=0.08,
        fig8_thresholds=(0.60, 0.40, 0.30, 0.20, 0.10, 0.05),
        minsupps=(0.25, 0.30, 0.35),
        minconfs=(0.85, 0.90, 0.95),
        paper_primary=0.05,
        paper_minsupps=(0.70, 0.75, 0.80),
    ),
    "pumsb": ExperimentSpec(
        name="pumsb",
        make_table=pumsb_like,
        primary_support=0.06,
        fig8_thresholds=(0.60, 0.40, 0.30, 0.20, 0.10, 0.05),
        minsupps=(0.25, 0.30, 0.35),
        minconfs=(0.85, 0.90, 0.95),
        paper_primary=0.80,
        paper_minsupps=(0.85, 0.88, 0.91),
    ),
}
