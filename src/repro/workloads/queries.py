"""Random localized-query workload generation.

The paper's evaluation (Section 5) submits, for every parameter setting,
several queries with a *fixed-size* focal subset placed over different
regions of the dataset.  :func:`random_focal_query` searches for range
selections whose focal subset hits a target fraction of the records;
:func:`focal_size_workload` builds the per-setting batches the benchmarks
average over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tidset as ts
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.errors import QueryError

__all__ = ["random_focal_query", "focal_size_workload", "WorkloadQuery"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query plus the focal size it actually achieved."""

    query: LocalizedQuery
    dq_size: int
    target_fraction: float


def random_focal_query(
    table: RelationalTable,
    target_fraction: float,
    minsupp: float,
    minconf: float,
    rng: np.random.Generator,
    item_attributes: frozenset[int] | None = None,
    max_range_attrs: int = 3,
    attempts: int = 60,
    tolerance: float = 0.6,
) -> WorkloadQuery:
    """A random query whose focal subset is ~``target_fraction`` of records.

    Randomly picks 1..``max_range_attrs`` range attributes with contiguous
    value runs, keeping the candidate whose subset size lands closest to
    the target; raises :class:`QueryError` only if every attempt produced
    an empty subset.  ``tolerance`` is the accepted relative deviation for
    early exit.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise QueryError(f"target_fraction must be in (0, 1], got {target_fraction}")
    m = table.n_records
    target = max(1, int(round(target_fraction * m)))
    best: tuple[int, dict[int, frozenset[int]]] | None = None

    for _ in range(attempts):
        n_attrs = int(rng.integers(1, max_range_attrs + 1))
        attrs = rng.choice(table.n_attributes, size=min(n_attrs, table.n_attributes),
                           replace=False)
        selections: dict[int, frozenset[int]] = {}
        for ai in attrs:
            card = table.schema.attributes[int(ai)].cardinality
            width = int(rng.integers(1, card + 1))
            start = int(rng.integers(0, card - width + 1))
            selections[int(ai)] = frozenset(range(start, start + width))
        dq_size = ts.count(table.tids_matching(selections))
        if dq_size == 0:
            continue
        if best is None or abs(dq_size - target) < abs(best[0] - target):
            best = (dq_size, selections)
        if abs(dq_size - target) <= tolerance * target:
            break

    if best is None:
        raise QueryError(
            f"could not generate a non-empty focal subset after {attempts} attempts"
        )
    dq_size, selections = best
    query = LocalizedQuery(
        range_selections=selections,
        minsupp=minsupp,
        minconf=minconf,
        item_attributes=item_attributes,
    )
    return WorkloadQuery(
        query=query, dq_size=dq_size, target_fraction=target_fraction
    )


def focal_size_workload(
    table: RelationalTable,
    fractions: tuple[float, ...],
    minsupps: tuple[float, ...],
    minconf: float,
    queries_per_setting: int = 3,
    seed: int = 0,
) -> dict[tuple[float, float], list[WorkloadQuery]]:
    """The Section 5 grid: per (fraction, minsupp), several random queries.

    Returns a mapping ``(fraction, minsupp) -> [WorkloadQuery, ...]``; each
    list holds ``queries_per_setting`` queries over different regions, as
    the paper averages over "several runs by submitting queries with fixed
    sized D^Q over different regions of the dataset".
    """
    rng = np.random.default_rng(seed)
    workload: dict[tuple[float, float], list[WorkloadQuery]] = {}
    for fraction in fractions:
        for minsupp in minsupps:
            batch = [
                random_focal_query(
                    table, fraction, minsupp, minconf, rng
                )
                for _ in range(queries_per_setting)
            ]
            workload[(fraction, minsupp)] = batch
    return workload
