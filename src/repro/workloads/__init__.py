"""Workload generators and the Section 5 experiment grids."""

from repro.workloads.experiments import EXPERIMENTS, FOCAL_FRACTIONS, ExperimentSpec
from repro.workloads.queries import (
    WorkloadQuery,
    focal_size_workload,
    random_focal_query,
)

__all__ = [
    "WorkloadQuery",
    "random_focal_query",
    "focal_size_workload",
    "ExperimentSpec",
    "EXPERIMENTS",
    "FOCAL_FRACTIONS",
]
