"""Budget-bound materialized rule caches (the space-time tradeoff tier).

Repeated-/overlapping-focal workloads — the workloads COLARM is built for
— re-mine the same hot regions over and over.  This module materializes,
per (focal subset, thresholds) key, the two reusable products of a plan
execution:

* the **rules tier** — the finished confidence-filtered rule list, served
  verbatim on an exact-key repeat (a *full hit*: probe plus one shallow
  list copy);
* the **lattice tier** — the subset-lattice count arrays from
  :meth:`repro.kernels.FocalKernel.count_subset_lattice` (PR 5's cheap,
  reusable intermediate).  A lattice hit replays rule extraction
  (:func:`repro.itemsets.rules.rules_from_subset_lattices`) at *any*
  ``minconf`` without SEARCH/ELIMINATE or any support counting — the
  counts are threshold-free above the entry's ``minsupp``.

The cache is a first-class plan alternative, not a transparent memo: the
optimizer probes it per query, prices a CACHE variant for every plan from
the fitted ``cache_probe``/``cache_load`` weights, and picks it only when
it beats the serial and sharded variants (:mod:`repro.core.optimizer`).

Policy: every entry is byte-accounted; inserts evict LRU-first under a
byte budget, except *landmark* entries (``hits >= landmark_hits``), which
are only evicted once no cold entry remains — a scan of one-off focal
regions cannot flush the hot set.  Correctness: every entry is stamped
with the index generation (the R-tree mutation counter) at insert; a
probe under any other generation drops the entry, so a mutated index can
never serve stale rules.  Rules from the from-scratch ARM plan are tagged
``family="arm"`` — in closed mode ARM returns rules over *locally* closed
itemsets, which may differ from the five (mutually identical) MIP plans —
so a cached entry only ever replays its own plan family.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.query import canonical_focal_key
from repro.itemsets.itemset import Itemset
from repro.itemsets.rules import Rule, rules_from_subset_lattices

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.core.mipindex import MIPIndex
    from repro.core.query import LocalizedQuery

__all__ = [
    "CachedLattice",
    "CacheProbe",
    "CacheStats",
    "RuleCache",
    "MIP_FAMILY",
    "ARM_FAMILY",
]

#: Plan families a rules entry can belong to.  The five MIP plans return
#: identical rule sets, so they share one family; ARM's locally-closed
#: rule set is its own.
MIP_FAMILY = "mip"
ARM_FAMILY = "arm"

#: Byte estimate per cached Rule beyond its item tuples (object headers,
#: the two floats, the count).  Deliberately a fixed formula — the budget
#: needs deterministic accounting, not sys.getsizeof's allocator trivia.
_RULE_BASE_BYTES = 96
_ITEM_BYTES = 16
#: Per-entry bookkeeping overhead (key tuple, OrderedDict slot, _Entry).
_ENTRY_BASE_BYTES = 256


@dataclass(frozen=True)
class CacheProbe:
    """Outcome of one cache probe, as the optimizer prices it.

    ``kind`` is ``"rules"`` (full hit), ``"lattice"`` (counts hit — rule
    extraction still due), or ``None`` (miss).  ``family`` says which plan
    family a rules hit replays; ``n_rules``/``lattice_cells`` size the
    ``cache_load`` term.
    """

    kind: str | None
    family: str = MIP_FAMILY
    n_rules: int = 0
    lattice_cells: int = 0


@dataclass
class CacheStats:
    """Running counters of the cache's behaviour (the hit/miss ledger)."""

    probes: int = 0
    rule_hits: int = 0
    lattice_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0        # entries larger than the whole budget
    stale_drops: int = 0     # entries dropped on a generation mismatch
    current_bytes: int = 0
    budget_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "probes": self.probes,
            "rule_hits": self.rule_hits,
            "lattice_hits": self.lattice_hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "stale_drops": self.stale_drops,
            "current_bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
        }


@dataclass(frozen=True)
class CachedLattice:
    """One focal region's width-grouped subset-lattice counts.

    ``groups`` pairs each same-width source batch with its ``(m, 2**n)``
    int64 count matrix — exactly the intermediate
    :func:`repro.core.operators._rules_from_qualified` builds before rule
    extraction.  ``extract`` replays the extraction deterministically, so
    a lattice hit is byte-identical to the fresh MIP-plan execution for
    any ``minconf``.  ``extract_min_count`` is the expanded-mode frequency
    floor (``None`` in closed mode, where the sources are already
    qualified closures).
    """

    groups: tuple[tuple[tuple[Itemset, ...], np.ndarray], ...]
    dq_size: int
    extract_min_count: int | None

    def extract(self, minconf: float) -> list[Rule]:
        """Replay rule extraction from the cached counts."""
        return rules_from_subset_lattices(
            [(list(itemsets), counts) for itemsets, counts in self.groups],
            self.dq_size,
            minconf,
            min_count=self.extract_min_count,
        )

    @property
    def n_cells(self) -> int:
        return sum(int(counts.size) for _, counts in self.groups)

    def nbytes(self) -> int:
        total = 0
        for itemsets, counts in self.groups:
            total += int(counts.nbytes)
            total += sum(
                _RULE_BASE_BYTES + _ITEM_BYTES * len(s) for s in itemsets
            )
        return total


def _rules_nbytes(rules: list[Rule]) -> int:
    return sum(
        _RULE_BASE_BYTES
        + _ITEM_BYTES * (len(r.antecedent) + len(r.consequent))
        for r in rules
    )


@dataclass
class _Entry:
    kind: str                   # "rules" | "lattice"
    payload: object             # list[Rule] | CachedLattice
    nbytes: int
    generation: int
    hits: int = 0


class RuleCache:
    """The budget-bound materialized-result tier for one MIP-index.

    Bound to its index so invalidation (the R-tree mutation counter) and
    key canonicalization (full-domain selections are dropped, so queries
    naming the same focal subset differently share entries) need no extra
    plumbing.  ``expand`` mirrors the owning engine's mode and is part of
    every key.
    """

    def __init__(
        self,
        index: "MIPIndex",
        budget_bytes: int = 64 << 20,
        landmark_hits: int = 4,
        expand: bool = False,
    ):
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        if landmark_hits < 1:
            raise ValueError(f"landmark_hits must be >= 1, got {landmark_hits}")
        self.index = index
        self.expand = expand
        self.landmark_hits = landmark_hits
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.stats = CacheStats(budget_bytes=budget_bytes)

    # -- keys and generations -------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        return self.stats.budget_bytes

    def generation(self) -> int:
        """The index's current mutation counter — the invalidation token."""
        return self.index.generation

    def focal_key(self, query: "LocalizedQuery") -> tuple:
        """Canonical focal-subset key: full-domain selections dropped.

        Two queries selecting the same records — one naming an attribute's
        entire domain explicitly, one omitting it — share every cache
        entry (and :mod:`repro.core.multiquery` counts them as one focal
        subset, :mod:`repro.serving` coalesces them onto one execution).
        """
        return canonical_focal_key(
            query.range_selections, self.index.cardinalities
        )

    def _aitem_key(self, query: "LocalizedQuery") -> tuple | None:
        if query.item_attributes is None:
            return None
        return tuple(sorted(query.item_attributes))

    def _rules_key(self, query: "LocalizedQuery", family: str) -> tuple:
        return (
            "rules",
            self.focal_key(query),
            self._aitem_key(query),
            self.expand,
            query.minsupp,
            query.minconf,
            family,
        )

    def _lattice_key(self, query: "LocalizedQuery") -> tuple:
        return (
            "lattice",
            self.focal_key(query),
            self._aitem_key(query),
            self.expand,
            query.minsupp,
        )

    # -- lookups ---------------------------------------------------------------

    def _live_entry(self, key: tuple) -> _Entry | None:
        """The entry at ``key`` if present *and* current-generation."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.generation != self.generation():
            del self._entries[key]
            self.stats.current_bytes -= entry.nbytes
            self.stats.stale_drops += 1
            return None
        return entry

    def probe(self, query: "LocalizedQuery") -> CacheProbe:
        """What (if anything) the cache can serve for this query.

        Preference order mirrors the replay cost: a full rules hit (MIP
        family first — it is what a fresh optimizer run of a repeated
        query would produce — then ARM), else a lattice-counts hit.
        Probing never bumps LRU position or hit counts; only
        :meth:`get_rules`/:meth:`get_lattice` (an actual serve) do.
        """
        self.stats.probes += 1
        for family in (MIP_FAMILY, ARM_FAMILY):
            entry = self._live_entry(self._rules_key(query, family))
            if entry is not None:
                return CacheProbe(
                    kind="rules",
                    family=family,
                    n_rules=len(entry.payload),
                )
        entry = self._live_entry(self._lattice_key(query))
        if entry is not None:
            return CacheProbe(
                kind="lattice",
                lattice_cells=entry.payload.n_cells,
            )
        self.stats.misses += 1
        return CacheProbe(kind=None)

    def get_rules(
        self, query: "LocalizedQuery", family: str = MIP_FAMILY
    ) -> list[Rule] | None:
        """Serve a full rules hit (a shallow copy — Rule is frozen)."""
        key = self._rules_key(query, family)
        entry = self._live_entry(key)
        if entry is None:
            return None
        entry.hits += 1
        self._entries.move_to_end(key)
        self.stats.rule_hits += 1
        return list(entry.payload)

    def get_lattice(self, query: "LocalizedQuery") -> CachedLattice | None:
        """Serve the focal region's lattice counts (shared, read-only)."""
        key = self._lattice_key(query)
        entry = self._live_entry(key)
        if entry is None:
            return None
        entry.hits += 1
        self._entries.move_to_end(key)
        self.stats.lattice_hits += 1
        return entry.payload

    # -- population ------------------------------------------------------------

    def put_rules(
        self,
        query: "LocalizedQuery",
        rules: list[Rule],
        family: str = MIP_FAMILY,
        generation: int | None = None,
    ) -> bool:
        """Insert one finished rule set.

        ``generation`` is the caller's pre-execution snapshot; if the
        index has mutated since (the rules were computed against a tree
        that no longer exists), the insert is refused — stale results
        never enter the cache.
        """
        if family not in (MIP_FAMILY, ARM_FAMILY):
            raise ValueError(f"unknown rule family {family!r}")
        nbytes = _ENTRY_BASE_BYTES + _rules_nbytes(rules)
        return self._insert(
            self._rules_key(query, family), "rules", list(rules),
            nbytes, generation,
        )

    def put_lattice(
        self,
        query: "LocalizedQuery",
        lattice: CachedLattice,
        generation: int | None = None,
    ) -> bool:
        """Insert one focal region's subset-lattice counts."""
        for _, counts in lattice.groups:
            counts.setflags(write=False)
        nbytes = _ENTRY_BASE_BYTES + lattice.nbytes()
        return self._insert(
            self._lattice_key(query), "lattice", lattice, nbytes, generation
        )

    def _insert(
        self,
        key: tuple,
        kind: str,
        payload: object,
        nbytes: int,
        generation: int | None,
    ) -> bool:
        current = self.generation()
        if generation is not None and generation != current:
            self.stats.stale_drops += 1
            return False
        if nbytes > self.stats.budget_bytes:
            self.stats.rejected += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.current_bytes -= old.nbytes
        self._entries[key] = _Entry(
            kind=kind, payload=payload, nbytes=nbytes, generation=current
        )
        self.stats.current_bytes += nbytes
        self.stats.insertions += 1
        self._evict_to_budget()
        return True

    def _evict_to_budget(self) -> None:
        """LRU eviction with landmark protection.

        Cold entries (fewer than ``landmark_hits`` serves) go first in LRU
        order; landmarks are only reclaimed when no cold entry remains —
        so a sweep of one-off regions evicts itself, not the hot set.
        """
        while self.stats.current_bytes > self.stats.budget_bytes:
            victim_key = None
            for key, entry in self._entries.items():
                if entry.hits < self.landmark_hits:
                    victim_key = key
                    break
            if victim_key is None:
                # All landmarks: reclaim in LRU order after all.
                victim_key = next(iter(self._entries))
            entry = self._entries.pop(victim_key)
            self.stats.current_bytes -= entry.nbytes
            self.stats.evictions += 1

    # -- maintenance -----------------------------------------------------------

    def invalidate(self) -> int:
        """Drop every entry (e.g. after a bulk index rebuild); returns count."""
        n = len(self._entries)
        self._entries.clear()
        self.stats.stale_drops += n
        self.stats.current_bytes = 0
        return n

    def rebind_index(self, index: "MIPIndex") -> None:
        """Point the cache at a recompacted replacement index.

        Every entry is dropped eagerly: the replacement's generation clock
        starts past the old index's, so all stamps are stale anyway —
        clearing now keeps the footprint honest instead of leaking dead
        payloads until probe-time drops find them.
        """
        self.index = index
        self.invalidate()

    def __len__(self) -> int:
        return len(self._entries)

    def entries_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {"rules": 0, "lattice": 0}
        for entry in self._entries.values():
            out[entry.kind] += 1
        return out

    # -- calibration probes ----------------------------------------------------

    def measure_probe_overhead(self, rounds: int = 200) -> float:
        """Median seconds per :meth:`probe` call (measured on a miss —
        the common shape: key construction plus the tier lookups)."""
        from repro.core.query import LocalizedQuery

        card = self.index.cardinalities[0]
        query = LocalizedQuery(
            range_selections={0: frozenset(range(max(1, card - 1)))},
            minsupp=0.5,
            minconf=0.5,
        )
        before = (self.stats.probes, self.stats.misses)
        samples = []
        for _ in range(max(rounds, 8)):
            start = time.perf_counter()
            self.probe(query)
            samples.append(time.perf_counter() - start)
        self.stats.probes, self.stats.misses = before
        samples.sort()
        return samples[len(samples) // 2]

    @staticmethod
    def measure_load_throughput(n_rules: int = 4096, rounds: int = 3) -> float:
        """Seconds per served element (the shallow-copy cost of a full
        hit; the lattice tier's per-cell gather is the same order)."""
        from repro.dataset.schema import Item

        rules = [
            Rule(
                antecedent=(Item(0, i % 3),),
                consequent=(Item(1, i % 5),),
                support_count=i,
                support=0.5,
                confidence=0.5,
            )
            for i in range(n_rules)
        ]
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            copied = list(rules)
            best = min(best, time.perf_counter() - start)
        del copied
        return best / n_rules
