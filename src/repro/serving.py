"""Concurrent query service with cost-model admission control.

The ROADMAP's north-star is COLARM as a *service*: heavy concurrent
traffic over one shared MIP-index.  This module is that serving layer —
an asyncio front door over :class:`repro.core.engine.Colarm` built from
three pieces:

* **Request coalescing** — in-flight requests are grouped by the same
  canonical key the cache and the batch executor already use
  (:func:`repro.core.query.canonical_focal_key` plus the item/threshold
  fields), so N concurrent identical requests cost one execution: the
  first arrival leads, later arrivals attach as waiters, and the finish
  fans the result out to everyone.  Warm cache hits short-circuit the
  queue entirely — the optimizer's CACHE pick is served inline without
  ever entering the scheduler.  ``use_cache=False`` requests bypass
  coalescing in *both* directions (they neither attach nor accept
  attachments): a bypass caller asked for a fresh execution, not another
  waiter's shared result.

* **Cost-aware admission and scheduling** — every request is priced by
  ``optimizer.choose()`` before it is queued, and the chosen variant's
  estimate (:attr:`~repro.core.optimizer.PlanChoice.chosen_estimate`)
  becomes its admission weight: requests costing more than
  ``cost_ceiling`` are shed (:class:`~repro.errors.ServiceOverloadError`)
  or parked on a deferred heap, and the ready queue is a priority heap
  ordered by ``estimated_cost - aging * time_waited`` — cheap MIP-plan
  and cache-serve requests run ahead of expensive ARM re-mines, while
  the aging term guarantees an expensive request's priority eventually
  beats any newcomer's (no starvation).  ``aging = inf`` degenerates to
  pure FIFO; ``aging = 0`` to pure cost order.

* **Off-loop execution** — the event loop never mines: pricing and plan
  execution run on a small thread pool, serialized by one lock (the
  engine's cache/optimizer state is not thread-safe), and the sharded
  :class:`repro.parallel.ParallelContext` composes *underneath* exactly
  as in direct ``engine.query`` calls — a broken worker pool degrades to
  serial, never to a wrong answer.

Correctness across mutations: every priced choice and every in-flight
group is stamped with :attr:`repro.core.mipindex.MIPIndex.generation`.
A request never attaches to a group priced against an older tree, and
``engine.query(choice=...)`` re-prices any stale handoff — so an index
mutation between enqueue and execute forces re-pricing and re-execution,
never a stale serve (the cache's own generation check backstops this).

Every response carries a :class:`RequestTrace` (queue wait, coalesce
fan-out, plan, cached/parallel/deferred flags) and the service keeps
running counters with p50/p99 latency and throughput
(:meth:`ServiceStats.snapshot`) — the observables the serving benchmark
and the CI ``serving-gate`` assert against.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.engine import Colarm, QueryOutcome
from repro.core.optimizer import PlanChoice
from repro.core.plans import PlanKind, plan_from_name
from repro.core.query import LocalizedQuery, canonical_focal_key
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from repro.itemsets.rules import Rule

__all__ = [
    "ServingConfig",
    "RequestTrace",
    "ServedQuery",
    "CostScheduler",
    "ServiceStats",
    "QueryService",
]


@dataclass(frozen=True)
class ServingConfig:
    """Admission-control and execution knobs of one :class:`QueryService`.

    ``max_pending`` bounds the scheduler queue (distinct in-flight
    executions; coalesced waiters ride for free).  ``cost_ceiling`` is
    the admission bar in estimated seconds; ``over_budget`` says what
    happens above it (``"shed"`` raises
    :class:`~repro.errors.ServiceOverloadError`, ``"defer"`` parks the
    request until the ready queue is empty).  ``aging`` is the priority
    credit per second waited, in estimated-cost seconds — ``inf`` means
    strict FIFO, ``0`` strict cost order.  ``workers`` sizes the
    execution thread pool; ``coalesce=False`` disables request sharing
    entirely (every request executes fresh).
    """

    max_pending: int = 64
    workers: int = 2
    cost_ceiling: float = float("inf")
    over_budget: str = "shed"
    aging: float = 1.0
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be positive, got {self.max_pending}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.cost_ceiling < 0:
            raise ValueError(
                f"cost_ceiling must be non-negative, got {self.cost_ceiling}"
            )
        if self.over_budget not in ("shed", "defer"):
            raise ValueError(
                f"over_budget must be 'shed' or 'defer', got "
                f"{self.over_budget!r}"
            )
        if self.aging < 0:
            raise ValueError(f"aging must be non-negative, got {self.aging}")


@dataclass
class RequestTrace:
    """What happened to one request inside the service."""

    estimated_cost: float = 0.0
    queue_wait_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    coalesced: int = 1          # requests served by this execution
    leader: bool = True         # False: attached to another's execution
    plan: PlanKind | None = None
    cached: bool = False
    parallel: bool = False
    deferred: bool = False
    generation: int = 0

    def as_dict(self) -> dict:
        return {
            "estimated_cost": self.estimated_cost,
            "queue_wait_s": self.queue_wait_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
            "coalesced": self.coalesced,
            "leader": self.leader,
            "plan": self.plan.value if self.plan is not None else None,
            "cached": self.cached,
            "parallel": self.parallel,
            "deferred": self.deferred,
            "generation": self.generation,
        }


@dataclass
class ServedQuery:
    """One served response: the engine outcome plus its service trace."""

    outcome: QueryOutcome
    trace: RequestTrace

    @property
    def rules(self) -> list[Rule]:
        return self.outcome.rules

    @property
    def plan(self) -> PlanKind:
        return self.outcome.plan

    @property
    def cached(self) -> bool:
        return self.outcome.cached


class CostScheduler:
    """Cost-priority queue with admission control and an aging term.

    Pure and synchronous — the service drives it from the event loop, the
    self-tests drive it directly.  The dynamic priority ``cost - aging *
    (now - enqueued)`` is realized as the *static* heap key ``cost +
    aging * enqueued`` (the ``aging * now`` term is common to every
    entry, so the order is identical and no re-heapify is ever needed);
    ties break by arrival order.  With ``aging = inf`` every key
    collapses to the arrival sequence — strict FIFO.

    Two heaps: the ready heap, and a deferred heap for over-ceiling
    requests under ``over_budget="defer"`` — popped only when the ready
    heap is empty, so deferred work runs in idle gaps instead of being
    dropped.
    """

    def __init__(
        self,
        cost_ceiling: float = float("inf"),
        over_budget: str = "shed",
        aging: float = 1.0,
    ):
        if over_budget not in ("shed", "defer"):
            raise ValueError(
                f"over_budget must be 'shed' or 'defer', got {over_budget!r}"
            )
        self.cost_ceiling = cost_ceiling
        self.over_budget = over_budget
        self.aging = aging
        self._ready: list[tuple[float, int, object]] = []
        self._deferred: list[tuple[float, int, object]] = []
        self._seq = itertools.count()

    def admit(self, cost: float) -> str:
        """Admission verdict for an estimated cost: run / defer / shed."""
        if cost <= self.cost_ceiling:
            return "run"
        return self.over_budget

    def _key(self, cost: float, enqueued: float) -> float:
        if self.aging == float("inf"):
            return 0.0  # sequence tie-break alone orders the heap: FIFO
        return cost + self.aging * enqueued

    def push(self, item: object, cost: float, enqueued: float,
             deferred: bool = False) -> None:
        heap = self._deferred if deferred else self._ready
        heapq.heappush(heap, (self._key(cost, enqueued), next(self._seq), item))

    def pop(self) -> object:
        """Cheapest-effective ready item; deferred only when ready is empty."""
        if self._ready:
            return heapq.heappop(self._ready)[2]
        if self._deferred:
            return heapq.heappop(self._deferred)[2]
        raise IndexError("pop from an empty scheduler")

    def drain(self) -> list[object]:
        """Remove and return every queued item (shutdown without drain)."""
        items = [entry[2] for entry in self._ready]
        items += [entry[2] for entry in self._deferred]
        self._ready.clear()
        self._deferred.clear()
        return items

    @property
    def n_deferred(self) -> int:
        return len(self._deferred)

    def __len__(self) -> int:
        return len(self._ready) + len(self._deferred)


@dataclass
class ServiceStats:
    """Running counters plus the latency reservoir of one service."""

    submitted: int = 0
    served: int = 0
    errors: int = 0
    executions: int = 0
    coalesced: int = 0           # requests that attached to another flight
    cache_short_circuits: int = 0
    shed_queue_full: int = 0
    shed_over_budget: int = 0
    deferred: int = 0
    latencies_s: list[float] = field(default_factory=list)
    first_serve_t: float | None = None
    last_serve_t: float | None = None

    def record_serve(self, latency_s: float, now: float) -> None:
        self.served += 1
        self.latencies_s.append(latency_s)
        if self.first_serve_t is None:
            self.first_serve_t = now
        self.last_serve_t = now

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_over_budget

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 1] (0.0 when nothing served)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]

    def snapshot(self) -> dict:
        """The service's observable state — the benchmark/gate payload."""
        span = 0.0
        if self.first_serve_t is not None and self.last_serve_t is not None:
            span = self.last_serve_t - self.first_serve_t
        return {
            "submitted": self.submitted,
            "served": self.served,
            "errors": self.errors,
            "executions": self.executions,
            "coalesced": self.coalesced,
            "cache_short_circuits": self.cache_short_circuits,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_over_budget": self.shed_over_budget,
            "deferred": self.deferred,
            "p50_s": self.percentile(0.50),
            "p99_s": self.percentile(0.99),
            "throughput_qps": (self.served / span) if span > 0 else 0.0,
        }


class _Flight:
    """One scheduled execution and everyone waiting on it."""

    __slots__ = (
        "query", "plan", "use_cache", "choice", "generation",
        "key", "deferred", "enqueued", "waiters", "started",
    )

    def __init__(self, query, plan, use_cache, choice, generation, key,
                 deferred, enqueued):
        self.query = query
        self.plan = plan
        self.use_cache = use_cache
        self.choice = choice
        self.generation = generation
        self.key = key              # None: not coalescible (cache bypass)
        self.deferred = deferred
        self.enqueued = enqueued
        #: (future, submit time, leader?) per request sharing this flight.
        self.waiters: list[tuple[asyncio.Future, float, bool]] = []
        self.started = False


class QueryService:
    """The asyncio query service over one :class:`Colarm` engine.

    Lifecycle: construct, ``await start()``, ``await submit(...)`` from
    any number of tasks, ``await stop()``.  ``async with`` does the
    start/stop pair.  Requests submitted before :meth:`start` queue up
    and run once the dispatcher starts — the deterministic mode the
    ordering tests use.
    """

    def __init__(
        self,
        engine: Colarm,
        config: ServingConfig | None = None,
        engine_lock: threading.Lock | None = None,
    ):
        self.engine = engine
        self.config = config or ServingConfig()
        self.scheduler = CostScheduler(
            cost_ceiling=self.config.cost_ceiling,
            over_budget=self.config.over_budget,
            aging=self.config.aging,
        )
        self.stats = ServiceStats()
        #: Serializes every touch of the engine (optimizer memo, cache
        #: LRU order, ledger counters — none of it is thread-safe).  When
        #: several services front the *same* engine in one process (the
        #: cluster's in-process fallback), they must share one lock —
        #: pass it here.
        self._engine_lock = engine_lock or threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="colarm-serve",
        )
        self._inflight: dict[tuple, _Flight] = {}
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.workers)
        self._dispatcher: asyncio.Task | None = None
        self._running: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "QueryService":
        if self._closed:
            raise ServiceClosedError("service already stopped")
        if self._dispatcher is None:
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` serves everything already queued or running before
        shutting down; ``drain=False`` fails queued requests with
        :class:`~repro.errors.ServiceClosedError` (executions already on
        a worker thread still complete and fan out — a thread mid-mine
        cannot be safely killed).
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            for flight in self.scheduler.drain():
                self._fail_flight(
                    flight, ServiceClosedError("service stopped")
                )
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def n_pending(self) -> int:
        return len(self.scheduler)

    def snapshot(self) -> dict:
        """Service stats plus the engine's parallel-pool state."""
        out = self.stats.snapshot()
        out["pending"] = self.n_pending
        out["inflight_groups"] = len(self._inflight)
        if self.engine.parallel is not None:
            out["parallel"] = self.engine.parallel.snapshot()
        if self.engine.maintenance is not None:
            m = self.engine.maintenance
            out["maintenance"] = {
                "generation": m.generation,
                "delta_records": m.n_delta_records,
                "main_live": m.n_main_live,
                "recompacting": m.recompacting,
            }
        return out

    # -- ingest-while-serving ----------------------------------------------

    async def ingest(self, records) -> int:
        """Append records through the engine's delta store.

        Runs on a worker thread *under the engine lock*, so a batch lands
        atomically between flights: every execution sees either none or
        all of it, and the generation bump invalidates priced choices and
        cache entries from before the append.  Returns the new index
        generation.  Requires ``engine.enable_maintenance()``.
        """
        if self._closed:
            raise ServiceClosedError("service is stopped")
        loop = asyncio.get_running_loop()

        def run() -> int:
            with self._engine_lock:
                return self.engine.append(records)

        return await loop.run_in_executor(self._executor, run)

    async def remove(self, tids) -> int:
        """Tombstone records by tid; same locking contract as :meth:`ingest`."""
        if self._closed:
            raise ServiceClosedError("service is stopped")
        loop = asyncio.get_running_loop()

        def run() -> int:
            with self._engine_lock:
                return self.engine.delete(tids)

        return await loop.run_in_executor(self._executor, run)

    # -- request intake ----------------------------------------------------

    async def submit(
        self,
        request: LocalizedQuery | str,
        plan: PlanKind | str | None = None,
        use_cache: bool = True,
    ) -> ServedQuery:
        """Serve one localized mining request through the service.

        Raises :class:`~repro.errors.ServiceOverloadError` when admission
        sheds the request and :class:`~repro.errors.ServiceClosedError`
        after :meth:`stop`.  ``use_cache=False`` additionally opts the
        request out of coalescing — it always gets a fresh execution.
        """
        if self._closed:
            raise ServiceClosedError("service is stopped")
        t_submit = time.monotonic()
        self.stats.submitted += 1
        q = (
            self.engine.parse(request)
            if isinstance(request, str)
            else request
        )
        if isinstance(plan, str):
            plan = plan_from_name(plan)

        loop = asyncio.get_running_loop()
        choice: PlanChoice | None = None
        cost = 0.0
        if plan is None:
            choice = await loop.run_in_executor(
                self._executor, self._price, q, use_cache
            )
            cost = choice.chosen_estimate
            if self._closed:
                raise ServiceClosedError("service is stopped")
            if choice.cached:
                # Warm cache hit: serve inline, never touching the queue.
                return await self._serve_short_circuit(
                    q, choice, use_cache, t_submit
                )

        coalescible = use_cache and self.config.coalesce
        key = self._request_key(q, plan) if coalescible else None
        generation = self.engine.index.generation
        if key is not None:
            flight = self._inflight.get(key)
            if flight is not None and flight.generation == generation:
                fut: asyncio.Future = loop.create_future()
                flight.waiters.append((fut, t_submit, False))
                self.stats.coalesced += 1
                return await fut

        if self.n_pending >= self.config.max_pending:
            self.stats.shed_queue_full += 1
            raise ServiceOverloadError(
                f"queue full ({self.config.max_pending} pending)"
            )
        verdict = self.scheduler.admit(cost)
        if verdict == "shed":
            self.stats.shed_over_budget += 1
            raise ServiceOverloadError(
                f"estimated cost {cost:.6f}s over ceiling "
                f"{self.config.cost_ceiling:.6f}s"
            )
        deferred = verdict == "defer"
        if deferred:
            self.stats.deferred += 1

        flight = _Flight(
            query=q, plan=plan, use_cache=use_cache, choice=choice,
            generation=generation, key=key, deferred=deferred,
            enqueued=t_submit,
        )
        fut = loop.create_future()
        flight.waiters.append((fut, t_submit, True))
        if key is not None:
            self._inflight[key] = flight
        self.scheduler.push(flight, cost, t_submit, deferred=deferred)
        self._wake.set()
        return await fut

    def _request_key(
        self, q: LocalizedQuery, plan: PlanKind | str | None
    ) -> tuple:
        """The coalescing identity of a request.

        The focal part is the same canonical key the cache and the batch
        executor group by; the rest pins everything else that changes the
        answer (item attributes, thresholds, engine mode, forced plan).
        """
        return (
            canonical_focal_key(
                q.range_selections, self.engine.index.cardinalities
            ),
            None
            if q.item_attributes is None
            else tuple(sorted(q.item_attributes)),
            self.engine.expand,
            q.minsupp,
            q.minconf,
            plan,
        )

    # -- engine access (worker threads only) --------------------------------

    def _price(self, q: LocalizedQuery, use_cache: bool) -> PlanChoice:
        with self._engine_lock:
            consult = use_cache and self.engine.cache is not None
            return self.engine.optimizer.choose(q, use_cache=consult)

    def _execute(self, flight: _Flight) -> QueryOutcome:
        with self._engine_lock:
            return self.engine.query(
                flight.query,
                plan=flight.plan,
                use_cache=flight.use_cache,
                choice=flight.choice,
            )

    async def _serve_short_circuit(
        self,
        q: LocalizedQuery,
        choice: PlanChoice,
        use_cache: bool,
        t_submit: float,
    ) -> ServedQuery:
        loop = asyncio.get_running_loop()
        t_exec = time.monotonic()
        outcome = await loop.run_in_executor(
            self._executor,
            lambda: self._execute(_Flight(
                query=q, plan=None, use_cache=use_cache, choice=choice,
                generation=choice.generation, key=None, deferred=False,
                enqueued=t_submit,
            )),
        )
        now = time.monotonic()
        self.stats.cache_short_circuits += 1
        self.stats.executions += 1
        trace = RequestTrace(
            estimated_cost=choice.chosen_estimate,
            queue_wait_s=t_exec - t_submit,
            execute_s=now - t_exec,
            total_s=now - t_submit,
            coalesced=1,
            leader=True,
            plan=outcome.plan,
            cached=outcome.cached,
            parallel=(
                outcome.choice.parallel
                if outcome.choice is not None
                else False
            ),
            generation=self.engine.index.generation,
        )
        self.stats.record_serve(trace.total_s, now)
        return ServedQuery(outcome=outcome, trace=trace)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            while not self._closed and len(self.scheduler) == 0:
                self._wake.clear()
                await self._wake.wait()
            if len(self.scheduler) == 0:  # closed and drained
                break
            await self._slots.acquire()
            if len(self.scheduler) == 0:  # drained while waiting for a slot
                self._slots.release()
                continue
            flight = self.scheduler.pop()
            task = asyncio.ensure_future(self._run_flight(flight))
            self._running.add(task)
            task.add_done_callback(self._running.discard)

    async def _run_flight(self, flight: _Flight) -> None:
        loop = asyncio.get_running_loop()
        try:
            flight.started = True
            t_exec = time.monotonic()
            try:
                outcome = await loop.run_in_executor(
                    self._executor, self._execute, flight
                )
            finally:
                # New arrivals must lead a fresh flight once execution is
                # done — un-register before fan-out, under the loop.
                if flight.key is not None:
                    if self._inflight.get(flight.key) is flight:
                        del self._inflight[flight.key]
            now = time.monotonic()
            self.stats.executions += 1
            fanout = len(flight.waiters)
            for fut, t_submit, leader in flight.waiters:
                if fut.done():  # the waiter cancelled; others still serve
                    continue
                trace = RequestTrace(
                    estimated_cost=(
                        flight.choice.chosen_estimate
                        if flight.choice is not None
                        else 0.0
                    ),
                    # A waiter that attached after execution started has
                    # waited zero queue time, not negative.
                    queue_wait_s=max(0.0, t_exec - t_submit),
                    execute_s=now - t_exec,
                    total_s=now - t_submit,
                    coalesced=fanout,
                    leader=leader,
                    plan=outcome.plan,
                    cached=outcome.cached,
                    parallel=(
                        outcome.choice.parallel
                        if outcome.choice is not None
                        else False
                    ),
                    deferred=flight.deferred,
                    generation=self.engine.index.generation,
                )
                self.stats.record_serve(trace.total_s, now)
                fut.set_result(ServedQuery(outcome=outcome, trace=trace))
        except Exception as exc:  # noqa: BLE001 — relayed to every waiter
            self._fail_flight(flight, exc)
        finally:
            self._slots.release()

    def _fail_flight(self, flight: _Flight, exc: BaseException) -> None:
        if flight.key is not None and self._inflight.get(flight.key) is flight:
            del self._inflight[flight.key]
        for fut, _t, _leader in flight.waiters:
            if not fut.done():
                self.stats.errors += 1
                fut.set_exception(exc)


async def serve_all(
    engine: Colarm,
    requests: list[LocalizedQuery | str],
    config: ServingConfig | None = None,
) -> tuple[list[ServedQuery | ServiceError], dict]:
    """Run a whole workload through a fresh service (the replay helper).

    Returns per-request results *in submission order* — a shed or failed
    request yields its :class:`~repro.errors.ServiceError` instead of a
    response — plus the final stats snapshot.
    """
    service = QueryService(engine, config)

    async def one(req):
        try:
            return await service.submit(req)
        except ServiceError as exc:
            return exc

    async with service:
        results = await asyncio.gather(*(one(r) for r in requests))
    return list(results), service.snapshot()
