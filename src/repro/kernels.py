"""Vectorized bitset kernels: batched tidset operations over uint64 matrices.

The semantic reference for tidsets is :mod:`repro.tidset` — arbitrary
precision Python ints, one bit per record.  Those are ideal for *single*
set operations (CPython's big-int AND runs at C speed), but the online
operators spend their time on *batches*: qualify hundreds of candidate
MIPs against one focal tidset, intersect one tidset against every other
member of a CHARM equivalence class, count every antecedent of a rule
family.  Looping those through one big-int op per element pays a Python
dispatch per pair.

This module packs tidsets into rows of a ``(k, ceil(n / 64))`` uint64
numpy matrix (word ``w`` of a row holds tids ``64*w .. 64*w+63``,
little-endian — bit ``b`` of word ``w`` is tid ``64*w + b``) and provides
the batched kernels the hot paths need:

* :func:`and_count` — one vectorized AND + popcount returning all ``k``
  intersection cardinalities at once (the ELIMINATE / CHARM kernel);
* :func:`intersect_many`, :func:`union_reduce`, :func:`and_reduce` —
  batched set algebra;
* :func:`subset_of` — per-row containment tests;
* :func:`popcount` / :func:`popcount_rows` — elementwise and per-row
  popcounts, via ``np.bitwise_count`` on numpy >= 2 and a 16-bit
  lookup table on older numpy;
* :func:`pack` / :func:`pack_many` / :func:`unpack` — cheap converters
  between Python-int tidsets and packed rows;
* :func:`project_rows` / :class:`FocalKernel` — the focal projection:
  repack rows into the dense ``|D^Q|``-bit universe of one focal tidset,
  so every subsequent support lookup ANDs ``|D^Q|/64`` words instead of
  ``n/64`` (the rule-generation hot path).

Everything here is an *optimization layer*: every kernel agrees exactly
with the pure-int reference (property-tested in
``tests/property/test_kernel_properties.py``), and callers keep int
tidsets at their boundaries.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "WORD_BITS",
    "HAS_BITWISE_COUNT",
    "n_words",
    "pack",
    "pack_many",
    "unpack",
    "full_row",
    "zero_row",
    "popcount",
    "popcount_rows",
    "and_count",
    "andnot_count",
    "intersect_many",
    "subset_of",
    "union_reduce",
    "and_reduce",
    "is_zero_rows",
    "project_rows",
    "set_bits",
    "FocalKernel",
    "CombinedFocalKernel",
]

#: Bits per matrix word.
WORD_BITS = 64

#: Whether this numpy has a native popcount ufunc (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Dispatch flag for the popcount implementation.  Tests flip this to
#: exercise the lookup-table fallback on modern numpy as well.
_use_bitwise_count = HAS_BITWISE_COUNT

#: Packed rows use explicit little-endian words so ``pack``/``unpack``
#: round-trip identically on any host byte order.
_WORD_DTYPE = np.dtype("<u8")

_POPCOUNT16: np.ndarray | None = None


def _popcount16_table() -> np.ndarray:
    """The 65536-entry per-uint16 popcount table (built once, ~64 KiB)."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        counts = np.arange(1 << 16, dtype=np.uint16)
        table = np.zeros(1 << 16, dtype=np.uint8)
        while counts.any():
            table += (counts & 1).astype(np.uint8)
            counts >>= 1
        _POPCOUNT16 = table
    return _POPCOUNT16


# ---------------------------------------------------------------------------
# Converters: Python-int tidsets <-> packed uint64 rows
# ---------------------------------------------------------------------------


def n_words(n_bits: int) -> int:
    """Words needed for a universe of ``n_bits`` tids (at least one)."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return max(1, -(-n_bits // WORD_BITS))


def pack(tidset: int, words: int) -> np.ndarray:
    """Pack one int tidset into a ``(words,)`` uint64 row.

    Raises ``OverflowError`` when the tidset does not fit in ``words``
    64-bit words — callers size rows from the universe, so this only
    fires on out-of-universe tids (a bug worth surfacing loudly).
    """
    if tidset < 0:
        raise ValueError("tidsets are non-negative")
    buf = tidset.to_bytes(words * 8, "little")
    return np.frombuffer(buf, dtype=_WORD_DTYPE).copy()


def pack_many(tidsets: Iterable[int] | Sequence[int], words: int) -> np.ndarray:
    """Pack many int tidsets into a ``(k, words)`` uint64 matrix."""
    chunks = [t.to_bytes(words * 8, "little") for t in tidsets]
    if not chunks:
        return np.zeros((0, words), dtype=_WORD_DTYPE)
    matrix = np.frombuffer(b"".join(chunks), dtype=_WORD_DTYPE)
    return matrix.reshape(len(chunks), words).copy()


def unpack(row: np.ndarray) -> int:
    """The int tidset of one packed row (inverse of :func:`pack`)."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype=_WORD_DTYPE).tobytes(), "little"
    )


def full_row(n_records: int, words: int) -> np.ndarray:
    """Packed row of ``tidset.full(n_records)`` (trailing bits clear)."""
    return pack((1 << n_records) - 1 if n_records else 0, words)


def zero_row(words: int) -> np.ndarray:
    """Packed row of the empty tidset."""
    return np.zeros(words, dtype=_WORD_DTYPE)


# ---------------------------------------------------------------------------
# Popcount kernels
# ---------------------------------------------------------------------------


def popcount(array: np.ndarray) -> np.ndarray:
    """Elementwise popcount of a uint64 array (same shape, uint8 counts)."""
    if _use_bitwise_count:
        return np.bitwise_count(array)
    table = _popcount16_table()
    halves = np.ascontiguousarray(array, dtype=_WORD_DTYPE).view("<u2")
    counts = table[halves]
    # Four uint16 halves per word: fold back to the word shape.
    return counts.reshape(*array.shape, 4).sum(axis=-1, dtype=np.uint8)


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(k, words)`` matrix — ``k`` int64 counts.

    Accumulates in int32 (a row would need > 2**31 set bits to overflow —
    universes this library cannot hold in memory) and widens once at the
    end, which measurably beats a direct int64 reduction.
    """
    if matrix.size == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    return popcount(matrix).sum(axis=-1, dtype=np.int32).astype(np.int64)


# ---------------------------------------------------------------------------
# Batched set algebra
# ---------------------------------------------------------------------------


def and_count(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|row_i & mask|`` for every row — the batched local-count kernel."""
    return popcount_rows(matrix & mask)


def andnot_count(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|row_i & ~mask|`` for every row (diffset arithmetic)."""
    return popcount_rows(matrix & ~mask)


def intersect_many(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``row_i & mask`` for every row, as a new matrix."""
    return matrix & mask


def subset_of(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Boolean per row: is ``row_i`` a subset of ``mask``?"""
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ~np.any(matrix & ~mask, axis=-1)


def union_reduce(matrix: np.ndarray) -> np.ndarray:
    """OR of all rows (the empty matrix reduces to the empty tidset)."""
    if matrix.shape[0] == 0:
        return zero_row(matrix.shape[1] if matrix.ndim == 2 else 1)
    return np.bitwise_or.reduce(matrix, axis=0)


def and_reduce(matrix: np.ndarray, initial: np.ndarray | None = None) -> np.ndarray:
    """AND of all rows, optionally seeded with ``initial``.

    The empty matrix reduces to ``initial`` (or all-ones when omitted —
    the identity of AND; callers wanting the *universe* should pass
    :func:`full_row` so trailing bits stay clear).
    """
    if matrix.shape[0] == 0:
        if initial is not None:
            return initial.copy()
        words = matrix.shape[1] if matrix.ndim == 2 else 1
        return np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=_WORD_DTYPE)
    out = np.bitwise_and.reduce(matrix, axis=0)
    if initial is not None:
        out = out & initial
    return out


def is_zero_rows(matrix: np.ndarray) -> np.ndarray:
    """Boolean per row: is the row the empty tidset?"""
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ~np.any(matrix, axis=-1)


# ---------------------------------------------------------------------------
# Focal projection: repacking rows into a dense |D^Q|-bit universe
# ---------------------------------------------------------------------------


def _unpack_bits(array: np.ndarray) -> np.ndarray:
    """Per-row boolean bit view of packed rows, tid order (little-endian)."""
    flat = np.ascontiguousarray(array, dtype=_WORD_DTYPE)
    bits = np.unpackbits(flat.view(np.uint8), bitorder="little")
    if array.ndim == 2:
        return bits.reshape(array.shape[0], array.shape[1] * WORD_BITS)
    return bits.reshape(array.shape[0] * WORD_BITS)


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_unpack_bits` for a ``(k, m)`` boolean matrix:
    pack each row's bits into ``ceil(m / 64)`` little-endian words."""
    k, m = bits.shape
    words = n_words(m)
    if m < words * WORD_BITS:
        padded = np.zeros((k, words * WORD_BITS), dtype=np.uint8)
        padded[:, :m] = bits
        bits = padded
    packed = np.packbits(bits, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(_WORD_DTYPE).reshape(k, words)


def project_rows(matrix: np.ndarray, mask_row: np.ndarray) -> np.ndarray:
    """Repack each row's bits *at the set positions of* ``mask_row`` into a
    dense ``popcount(mask_row)``-bit universe (the focal projection).

    Position ``p`` of an output row holds the bit the input row carried at
    the ``p``-th set tid of ``mask_row``, so for any rows ``a``, ``b``::

        popcount(project(a) & project(b)) == popcount(a & b & mask)

    This is the space-time trade behind the rule-generation kernels: one
    O(k x n) repack per query buys every subsequent support lookup an AND
    over ``|D^Q|/64`` words instead of ``n/64``.  The empty mask projects
    onto a single all-zero word (``n_words`` never returns 0).
    """
    sel = _unpack_bits(mask_row).astype(bool)
    bits = _unpack_bits(np.atleast_2d(matrix))
    return _pack_bits(bits[:, sel])


def set_bits(row: np.ndarray, positions: np.ndarray) -> None:
    """Set the given tid positions in one packed row, in place, vectorized.

    Duplicate positions are fine (OR is idempotent); positions must lie
    inside the row's universe.  This is the delta-store ingest primitive:
    appending a batch of records turns into one ``bitwise_or.at`` scatter
    per affected row instead of a per-record Python loop.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        return
    if positions.min() < 0 or positions.max() >= row.shape[-1] * WORD_BITS:
        raise ValueError("bit position outside the row's universe")
    words = (positions >> 6).astype(np.intp)
    bits = np.uint64(1) << (positions & 63).astype(_WORD_DTYPE)
    np.bitwise_or.at(row, words, bits)


class FocalKernel:
    """Batched support counting over one focal-projected universe.

    Built once per query (or shared across a multi-query batch) from the
    packed single-item tidset rows and the packed focal tidset: the item
    rows are gathered and repacked into the dense ``|D^Q|``-bit universe,
    after which the support of any itemset inside ``D^Q`` is just the
    popcount of the AND of its items' *projected* rows — no per-lookup
    intersection with the focal tidset, and ``|D^Q|/64``-word operands.

    Keys are arbitrary hashables (the callers use
    :class:`~repro.dataset.schema.Item`); an *itemset* is a tuple of keys.
    Keys absent from ``row_of`` count as empty tidsets (an item that
    occurs in no record supports nothing), matching the int-tidset
    reference semantics.
    """

    def __init__(
        self,
        item_matrix: np.ndarray,
        row_of: Mapping[Hashable, int],
        mask_row: np.ndarray,
        dq_size: int,
    ):
        self.dq_size = int(dq_size)
        self.words = n_words(self.dq_size)
        self._row_of = dict(row_of)
        self.matrix = project_rows(item_matrix, mask_row)
        if self.matrix.shape[1] != self.words:  # pragma: no cover - defensive
            raise ValueError(
                f"projected to {self.matrix.shape[1]} words for a "
                f"{self.dq_size}-bit universe ({self.words} words)"
            )
        self._zero = zero_row(self.words)
        #: itemset -> projected row (prefix-chain memo for scalar lookups)
        self._rows: dict[tuple, np.ndarray] = {}
        self._counts: dict[tuple, int] = {(): self.dq_size}
        #: support lookups answered by actual kernel evaluation (not cache)
        self.evaluations = 0

    def nbytes(self) -> int:
        """Footprint of the projected item matrix (the per-query cost)."""
        return int(self.matrix.nbytes)

    def _item_row(self, key: Hashable) -> np.ndarray:
        idx = self._row_of.get(key)
        return self._zero if idx is None else self.matrix[idx]

    def _itemset_row(self, itemset: tuple) -> np.ndarray:
        """Projected row of an itemset, via the memoized prefix chain."""
        row = self._rows.get(itemset)
        if row is not None:
            return row
        if len(itemset) == 1:
            row = self._item_row(itemset[0])
        else:
            row = self._itemset_row(itemset[:-1]) & self._item_row(itemset[-1])
        self._rows[itemset] = row
        return row

    def seed(self, itemset: tuple, count: int) -> None:
        """Pre-seed a known support count (e.g. ELIMINATE's exact locals).

        Seeded counts are served from the memo without evaluation; an
        already-known itemset keeps its existing count (they agree by the
        projection invariant, so first-write-wins is arbitrary but cheap).
        """
        self._counts.setdefault(itemset, int(count))

    def count(self, itemset: tuple) -> int:
        """``|t(itemset) ∩ D^Q|`` for one itemset (memoized)."""
        cached = self._counts.get(itemset)
        if cached is not None:
            return cached
        self.evaluations += 1
        count_ = int(popcount_rows(self._itemset_row(itemset)[None, :])[0])
        self._counts[itemset] = count_
        return count_

    def count_subset_lattice(self, itemsets: Sequence[tuple]) -> np.ndarray:
        """Support counts of *every* sub-itemset of each itemset, at once.

        ``itemsets`` must all share one length ``n``; the result is an
        ``(m, 2**n)`` int64 matrix where ``counts[j, mask]`` is the local
        support ``|t(S) ∩ D^Q|`` of the sub-itemset ``S`` selected by the
        bits of ``mask`` from ``itemsets[j]`` (``mask == 0`` is the empty
        itemset: ``|D^Q|``).

        This is the rule-generation kernel proper: the subset lattice of
        each source is filled by the standard mask recurrence
        ``row[mask] = row[mask & (mask - 1)] & item_row[lowbit(mask)]`` —
        ``2**n`` *vectorized* ANDs over ``(m, words)`` slabs, then one
        batched popcount — so no per-subset Python objects (tuples,
        hashes, memo probes) ever exist.  Redundant counts across sources
        that share sub-itemsets cost only word-ops, which the projection
        already made narrow; the tuple domain is what was expensive.

        Work is chunked so the lattice slab stays within a fixed memory
        budget regardless of ``m``.
        """
        m = len(itemsets)
        if m == 0:
            return np.zeros((0, 1), dtype=np.int64)
        n = len(itemsets[0])
        if any(len(s) != n for s in itemsets):
            raise ValueError("count_subset_lattice needs same-length itemsets")
        if n == 0:
            return np.full((m, 1), self.dq_size, dtype=np.int64)
        if n >= 60:  # pragma: no cover - astronomically wide itemsets
            raise ValueError(f"subset lattice of width {n} is not tractable")
        sentinel = self.matrix.shape[0]
        ext = np.vstack([self.matrix, self._zero[None, :]])
        idx = np.array(
            [[self._row_of.get(key, sentinel) for key in s] for s in itemsets],
            dtype=np.intp,
        )
        size = 1 << n
        universe = pack((1 << self.dq_size) - 1, self.words)
        counts = np.empty((m, size), dtype=np.int64)
        counts[:, 0] = self.dq_size
        # ~64 MiB lattice slab cap.
        chunk = max(1, (64 << 20) // (size * self.words * 8))
        lowbit = [(mask & -mask).bit_length() - 1 for mask in range(size)]
        for lo in range(0, m, chunk):
            hi = min(m, lo + chunk)
            rows = ext[idx[lo:hi]]  # (c, n, words)
            lattice = np.empty((hi - lo, size, self.words), dtype=_WORD_DTYPE)
            lattice[:, 0] = universe
            for mask in range(1, size):
                np.bitwise_and(
                    lattice[:, mask & (mask - 1)],
                    rows[:, lowbit[mask]],
                    out=lattice[:, mask],
                )
            counts[lo:hi] = popcount_rows(
                lattice.reshape(-1, self.words)
            ).reshape(hi - lo, size)
        self.evaluations += m * (size - 1)
        return counts

    def frequent_subsets(
        self,
        itemsets: Sequence[tuple],
        floor: int,
        min_width: int = 2,
    ) -> list[tuple]:
        """The *distinct* sub-itemsets of ``itemsets`` whose projected
        support reaches ``floor`` (at least 1) with at least ``min_width``
        items — the expanded-mode source discovery.

        Sub-itemsets shared by many overlapping closures are the norm, so
        deduplication happens in array space: each qualifying ``(itemset,
        mask)`` pair is encoded as a *set signature* — a bitmask over the
        kernel's global item rows, OR-reduced per word — and duplicate
        signatures collapse with one sort before a single Python tuple is
        built.  The encoding is canonical (a set of item rows has exactly
        one signature, regardless of which closure it was reached
        through), and items absent from the kernel's matrix can never
        qualify (their rows are empty, so any superset counts 0), so the
        sentinel id they encode to is never observed.
        """
        floor = max(int(floor), 1)
        groups: dict[int, list[tuple]] = {}
        for itemset in itemsets:
            groups.setdefault(len(itemset), []).append(itemset)
        widths = [n for n in groups if n >= min_width]
        if not widths:
            return []
        sentinel = self.matrix.shape[0]
        sig_words = (sentinel + 1 + WORD_BITS - 1) // WORD_BITS
        chunks: list[np.ndarray] = []
        for n in sorted(widths):
            group = groups[n]
            counts = self.count_subset_lattice(group)
            size = 1 << n
            mask_widths = popcount(
                np.arange(size, dtype=_WORD_DTYPE)
            ).astype(np.int64)
            qual = (counts >= floor) & (mask_widths >= min_width)[None, :]
            js, masks = np.nonzero(qual)
            if len(js) == 0:
                continue
            ids = np.array(
                [
                    [self._row_of.get(key, sentinel) for key in s]
                    for s in group
                ],
                dtype=np.int64,
            )
            id_word = ids >> 6  # (m, n)
            id_bit = np.uint64(1) << (ids & 63).astype(_WORD_DTYPE)
            bits = ((masks[:, None] >> np.arange(n)) & 1).astype(bool)
            sel_word = id_word[js]  # (K, n)
            sel_bit = np.where(bits, id_bit[js], np.uint64(0))
            sig = np.zeros((len(js), sig_words), dtype=_WORD_DTYPE)
            for w in range(sig_words):
                contrib = np.where(sel_word == w, sel_bit, np.uint64(0))
                sig[:, w] = np.bitwise_or.reduce(contrib, axis=1)
            chunks.append(sig)
        if not chunks:
            return []
        sigs = np.concatenate(chunks, axis=0)
        if sig_words == 1:
            uniq = np.unique(sigs[:, 0])[:, None]
        else:
            order = np.lexsort(sigs.T[::-1])
            ordered = sigs[order]
            keep = np.concatenate(
                [[True], np.any(ordered[1:] != ordered[:-1], axis=1)]
            )
            uniq = ordered[keep]
        key_of = {row: key for key, row in self._row_of.items()}
        out: list[tuple] = []
        for row in uniq.tolist():
            items = []
            for w, word in enumerate(row):
                base = w << 6
                while word:
                    low = word & -word
                    items.append(key_of[base + low.bit_length() - 1])
                    word ^= low
            out.append(tuple(sorted(items)))
        return out

    def count_family(self, family: Iterable[tuple]) -> dict[tuple, int]:
        """Supports of a whole itemset family, evaluated level by level.

        The family is closed under prefixes internally (the row of
        ``(a, b, c)`` is ``row((a, b)) & row(c)``), every level is one
        batched AND over the previous level's matrix, and all counts of a
        level come from a single :func:`popcount_rows` call — the batched
        replacement for one big-int AND chain per family member.  Returns
        counts for the requested family *and* any prefixes pulled in.
        """
        needed: set[tuple] = set()
        for itemset in family:
            for length in range(1, len(itemset) + 1):
                prefix = itemset[:length]
                if prefix not in self._counts:
                    needed.add(prefix)
        out: dict[tuple, int] = {}
        if not needed:
            return out
        by_len: dict[int, list[tuple]] = {}
        for itemset in needed:
            by_len.setdefault(len(itemset), []).append(itemset)
        self.evaluations += len(needed)
        for length in sorted(by_len):
            sets_l = sorted(by_len[length])
            if length == 1:
                level = np.vstack([self._item_row(s[0]) for s in sets_l])
            else:
                parents = np.vstack(
                    [self._itemset_row(s[:-1]) for s in sets_l]
                )
                items = np.vstack([self._item_row(s[-1]) for s in sets_l])
                level = parents & items
            counts = popcount_rows(level)
            for j, itemset in enumerate(sets_l):
                self._rows[itemset] = level[j]
                count_ = int(counts[j])
                self._counts[itemset] = count_
                out[itemset] = count_
        return out


class CombinedFocalKernel:
    """Two focal kernels — a main-index projection and a delta-store
    projection — presented as one: every count is the exact sum of the
    two universes' counts.

    This is how the delta store rides the rule-generation kernel without
    touching the operators: :class:`~repro.core.operators.QueryContext`
    hands VERIFY a combined kernel whenever a delta is attached, the mask
    recurrence runs once per universe (main rows are ``|D^Q_main|/64``
    words, delta rows a handful of words), and the two int64 lattices add
    elementwise — one vectorized partial, no per-record Python loops.

    ``seed`` is a deliberate no-op: qualified candidates arrive with
    *combined* local counts, which belong to neither underlying universe;
    seeding either kernel with them would corrupt its memo, and the seed
    is only ever a cache (``FocalKernel.seed`` documents first-write-wins
    semantics), so dropping it costs at most a few re-evaluations.
    """

    def __init__(self, main: FocalKernel, delta: FocalKernel):
        self.main = main
        self.delta = delta
        self.dq_size = main.dq_size + delta.dq_size

    @property
    def evaluations(self) -> int:
        return self.main.evaluations + self.delta.evaluations

    def nbytes(self) -> int:
        return self.main.nbytes() + self.delta.nbytes()

    def seed(self, itemset: tuple, count: int) -> None:
        """No-op (see class docstring): combined counts are not seedable."""

    def count(self, itemset: tuple) -> int:
        return self.main.count(itemset) + self.delta.count(itemset)

    def count_subset_lattice(self, itemsets: Sequence[tuple]) -> np.ndarray:
        return self.main.count_subset_lattice(
            itemsets
        ) + self.delta.count_subset_lattice(itemsets)

    def frequent_subsets(
        self,
        itemsets: Sequence[tuple],
        floor: int,
        min_width: int = 2,
    ) -> list[tuple]:
        """Distinct sub-itemsets whose *combined* support reaches ``floor``.

        A sub-itemset's delta contribution is at most ``|D^Q_delta|``, so
        every combined-frequent sub-itemset clears the main floor relaxed
        by that bound; discovery runs on the main kernel at the relaxed
        floor and the caller's exact combined-count filter (the lattice
        extraction's ``min_count``) discards any over-admitted subset.
        Under the coverage guarantee the relaxed floor stays >= 1, so
        itemsets absent from the main index can never qualify — exactly
        the guarantee's contract.
        """
        relaxed = max(int(floor) - self.delta.dq_size, 1)
        return self.main.frequent_subsets(itemsets, relaxed, min_width)

    def count_family(self, family: Iterable[tuple]) -> dict[tuple, int]:
        family = list(family)
        self.main.count_family(family)
        self.delta.count_family(family)
        return {itemset: self.count(itemset) for itemset in family}
