"""Vectorized bitset kernels: batched tidset operations over uint64 matrices.

The semantic reference for tidsets is :mod:`repro.tidset` — arbitrary
precision Python ints, one bit per record.  Those are ideal for *single*
set operations (CPython's big-int AND runs at C speed), but the online
operators spend their time on *batches*: qualify hundreds of candidate
MIPs against one focal tidset, intersect one tidset against every other
member of a CHARM equivalence class, count every antecedent of a rule
family.  Looping those through one big-int op per element pays a Python
dispatch per pair.

This module packs tidsets into rows of a ``(k, ceil(n / 64))`` uint64
numpy matrix (word ``w`` of a row holds tids ``64*w .. 64*w+63``,
little-endian — bit ``b`` of word ``w`` is tid ``64*w + b``) and provides
the batched kernels the hot paths need:

* :func:`and_count` — one vectorized AND + popcount returning all ``k``
  intersection cardinalities at once (the ELIMINATE / CHARM kernel);
* :func:`intersect_many`, :func:`union_reduce`, :func:`and_reduce` —
  batched set algebra;
* :func:`subset_of` — per-row containment tests;
* :func:`popcount` / :func:`popcount_rows` — elementwise and per-row
  popcounts, via ``np.bitwise_count`` on numpy >= 2 and a 16-bit
  lookup table on older numpy;
* :func:`pack` / :func:`pack_many` / :func:`unpack` — cheap converters
  between Python-int tidsets and packed rows.

Everything here is an *optimization layer*: every kernel agrees exactly
with the pure-int reference (property-tested in
``tests/property/test_kernel_properties.py``), and callers keep int
tidsets at their boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "WORD_BITS",
    "HAS_BITWISE_COUNT",
    "n_words",
    "pack",
    "pack_many",
    "unpack",
    "full_row",
    "zero_row",
    "popcount",
    "popcount_rows",
    "and_count",
    "andnot_count",
    "intersect_many",
    "subset_of",
    "union_reduce",
    "and_reduce",
    "is_zero_rows",
]

#: Bits per matrix word.
WORD_BITS = 64

#: Whether this numpy has a native popcount ufunc (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Dispatch flag for the popcount implementation.  Tests flip this to
#: exercise the lookup-table fallback on modern numpy as well.
_use_bitwise_count = HAS_BITWISE_COUNT

#: Packed rows use explicit little-endian words so ``pack``/``unpack``
#: round-trip identically on any host byte order.
_WORD_DTYPE = np.dtype("<u8")

_POPCOUNT16: np.ndarray | None = None


def _popcount16_table() -> np.ndarray:
    """The 65536-entry per-uint16 popcount table (built once, ~64 KiB)."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        counts = np.arange(1 << 16, dtype=np.uint16)
        table = np.zeros(1 << 16, dtype=np.uint8)
        while counts.any():
            table += (counts & 1).astype(np.uint8)
            counts >>= 1
        _POPCOUNT16 = table
    return _POPCOUNT16


# ---------------------------------------------------------------------------
# Converters: Python-int tidsets <-> packed uint64 rows
# ---------------------------------------------------------------------------


def n_words(n_bits: int) -> int:
    """Words needed for a universe of ``n_bits`` tids (at least one)."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return max(1, -(-n_bits // WORD_BITS))


def pack(tidset: int, words: int) -> np.ndarray:
    """Pack one int tidset into a ``(words,)`` uint64 row.

    Raises ``OverflowError`` when the tidset does not fit in ``words``
    64-bit words — callers size rows from the universe, so this only
    fires on out-of-universe tids (a bug worth surfacing loudly).
    """
    if tidset < 0:
        raise ValueError("tidsets are non-negative")
    buf = tidset.to_bytes(words * 8, "little")
    return np.frombuffer(buf, dtype=_WORD_DTYPE).copy()


def pack_many(tidsets: Iterable[int] | Sequence[int], words: int) -> np.ndarray:
    """Pack many int tidsets into a ``(k, words)`` uint64 matrix."""
    chunks = [t.to_bytes(words * 8, "little") for t in tidsets]
    if not chunks:
        return np.zeros((0, words), dtype=_WORD_DTYPE)
    matrix = np.frombuffer(b"".join(chunks), dtype=_WORD_DTYPE)
    return matrix.reshape(len(chunks), words).copy()


def unpack(row: np.ndarray) -> int:
    """The int tidset of one packed row (inverse of :func:`pack`)."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype=_WORD_DTYPE).tobytes(), "little"
    )


def full_row(n_records: int, words: int) -> np.ndarray:
    """Packed row of ``tidset.full(n_records)`` (trailing bits clear)."""
    return pack((1 << n_records) - 1 if n_records else 0, words)


def zero_row(words: int) -> np.ndarray:
    """Packed row of the empty tidset."""
    return np.zeros(words, dtype=_WORD_DTYPE)


# ---------------------------------------------------------------------------
# Popcount kernels
# ---------------------------------------------------------------------------


def popcount(array: np.ndarray) -> np.ndarray:
    """Elementwise popcount of a uint64 array (same shape, uint8 counts)."""
    if _use_bitwise_count:
        return np.bitwise_count(array)
    table = _popcount16_table()
    halves = np.ascontiguousarray(array, dtype=_WORD_DTYPE).view("<u2")
    counts = table[halves]
    # Four uint16 halves per word: fold back to the word shape.
    return counts.reshape(*array.shape, 4).sum(axis=-1, dtype=np.uint8)


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(k, words)`` matrix — ``k`` int64 counts.

    Accumulates in int32 (a row would need > 2**31 set bits to overflow —
    universes this library cannot hold in memory) and widens once at the
    end, which measurably beats a direct int64 reduction.
    """
    if matrix.size == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    return popcount(matrix).sum(axis=-1, dtype=np.int32).astype(np.int64)


# ---------------------------------------------------------------------------
# Batched set algebra
# ---------------------------------------------------------------------------


def and_count(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|row_i & mask|`` for every row — the batched local-count kernel."""
    return popcount_rows(matrix & mask)


def andnot_count(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``|row_i & ~mask|`` for every row (diffset arithmetic)."""
    return popcount_rows(matrix & ~mask)


def intersect_many(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``row_i & mask`` for every row, as a new matrix."""
    return matrix & mask


def subset_of(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Boolean per row: is ``row_i`` a subset of ``mask``?"""
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ~np.any(matrix & ~mask, axis=-1)


def union_reduce(matrix: np.ndarray) -> np.ndarray:
    """OR of all rows (the empty matrix reduces to the empty tidset)."""
    if matrix.shape[0] == 0:
        return zero_row(matrix.shape[1] if matrix.ndim == 2 else 1)
    return np.bitwise_or.reduce(matrix, axis=0)


def and_reduce(matrix: np.ndarray, initial: np.ndarray | None = None) -> np.ndarray:
    """AND of all rows, optionally seeded with ``initial``.

    The empty matrix reduces to ``initial`` (or all-ones when omitted —
    the identity of AND; callers wanting the *universe* should pass
    :func:`full_row` so trailing bits stay clear).
    """
    if matrix.shape[0] == 0:
        if initial is not None:
            return initial.copy()
        words = matrix.shape[1] if matrix.ndim == 2 else 1
        return np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=_WORD_DTYPE)
    out = np.bitwise_and.reduce(matrix, axis=0)
    if initial is not None:
        out = out & initial
    return out


def is_zero_rows(matrix: np.ndarray) -> np.ndarray:
    """Boolean per row: is the row the empty tidset?"""
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ~np.any(matrix, axis=-1)
