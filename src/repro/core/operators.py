"""The isolated online-mining operators (Section 4).

COLARM treats online mining not as a black box but as a pipeline of
operators with precise inputs and outputs:

* SELECT            — extract the focal subset's records (ARM plan);
* SEARCH            — R-tree window search for overlapping MIPs;
* SUPPORTED-SEARCH  — SEARCH with the supported R-tree filter (Lemma 4.4);
* ELIMINATE         — record-level ``Aitem`` + minsupp filtering;
* VERIFY            — rule generation + minconf checks via the IT-tree;
* SUPPORTED-VERIFY  — ELIMINATE and VERIFY interleaved (selection push-up);
* UNION             — merge contained and partially-overlapped candidates;
* ARM               — traditional from-scratch mining on the focal subset.

The MIP-plan pipeline is *array-native* end to end: SEARCH serves hits as
contiguous payload-row / global-count arrays straight from the compiled
flat R-tree (:class:`CandidateArray`), ELIMINATE qualifies them with one
batched kernel call into a :class:`QualifiedArray`, and VERIFY extracts
rules through a focal-projected kernel (:class:`repro.kernels.FocalKernel`)
that counts whole antecedent families level-by-level over ``|D^Q|``-bit
rows.  :class:`Rule` objects materialize only at the very end.  Both array
containers iterate as the classic ``(mip, Overlap)`` / ``(mip, count)``
tuples, so list-based callers (tests, analysis scripts, standalone MIPs)
keep working through the same operators.

Every operator call appends an :class:`OperatorTrace` (cardinalities,
record-level work, wall time) to the query's :class:`ExecutionTrace`; the
calibration module turns those traces into the cost-model unit weights.
VERIFY-family traces additionally split their wall time into mining
(``mining_s``) and rule generation (``rulegen_s``, with the kernel share
in ``kernel_s`` and the one-off projection build in ``projection_s``) so
the cost model can price the ``rulegen`` term separately.
"""

from __future__ import annotations

import time
from operator import attrgetter
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.parallel import ParallelContext

from repro import kernels, tidset as ts
from repro.core.mip import MIP
from repro.core.mipindex import MIPIndex
from repro.core.query import FocalRange, LocalizedQuery, Overlap
from repro.dataset.table import RelationalTable
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.charm import charm
from repro.itemsets.itemset import Itemset, make_itemset
from repro.itemsets.rules import (
    Rule,
    generate_rules,
    rules_from_counts,
    rules_from_itemsets,
    rules_from_subset_lattices,
)

__all__ = [
    "OperatorTrace",
    "ExecutionTrace",
    "QueryContext",
    "CandidateArray",
    "QualifiedArray",
    "make_context",
    "op_search",
    "op_supported_search",
    "op_eliminate",
    "op_verify",
    "op_supported_verify",
    "op_union",
    "op_select",
    "op_arm",
    "qualified_from_contained",
]

#: A candidate MIP tagged with its exact relation to the focal region.
Candidate = tuple[MIP, Overlap]
#: A candidate that passed the support check, with its exact local count.
Qualified = tuple[MIP, int]


@dataclass
class CandidateArray:
    """SEARCH output in array form: rows into the index, not MIP objects.

    ``rows`` are MIP ids (rows of the index's statistics and tidset
    matrices), ``global_counts`` the matching global support counts from
    the supported R-tree, ``contained`` the exact classification against
    the focal region.  Iterating yields the classic ``(mip, Overlap)``
    pairs, so array-unaware consumers see no difference.
    """

    index: MIPIndex
    rows: np.ndarray          # (k,) intp — MIP rows, search order
    global_counts: np.ndarray  # (k,) int64 — |D^G_I| per row
    contained: np.ndarray     # (k,) bool — CONTAINED vs PARTIAL

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Candidate]:
        mips = self.index.mips
        for row, is_contained in zip(self.rows, self.contained):
            yield (
                mips[int(row)],
                Overlap.CONTAINED if is_contained else Overlap.PARTIAL,
            )

    def split_overlap(self) -> "tuple[CandidateArray, CandidateArray]":
        """``(contained, partial)`` halves — the SS-E-U-V split, one mask."""
        c = self.contained
        return (
            CandidateArray(
                self.index, self.rows[c], self.global_counts[c], self.contained[c]
            ),
            CandidateArray(
                self.index, self.rows[~c], self.global_counts[~c], self.contained[~c]
            ),
        )


@dataclass
class QualifiedArray:
    """ELIMINATE output in array form: MIP rows plus exact local counts.

    Iterating yields ``(mip, local_count)`` pairs for array-unaware
    consumers; VERIFY reads the arrays directly.
    """

    index: MIPIndex
    rows: np.ndarray          # (k,) intp — MIP rows
    local_counts: np.ndarray  # (k,) int64 — |t(I) ∩ D^Q| per row

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Qualified]:
        mips = self.index.mips
        for row, local in zip(self.rows, self.local_counts):
            yield mips[int(row)], int(local)

    @classmethod
    def concat(cls, a: "QualifiedArray", b: "QualifiedArray") -> "QualifiedArray":
        return cls(
            a.index,
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.local_counts, b.local_counts]),
        )


@dataclass
class OperatorTrace:
    """Measurements of one operator invocation."""

    name: str
    input_size: int
    output_size: int
    elapsed: float
    detail: dict[str, float] = field(default_factory=dict)


@dataclass
class ExecutionTrace:
    """All operator traces of one plan execution, in pipeline order."""

    operators: list[OperatorTrace] = field(default_factory=list)

    def add(self, trace: OperatorTrace) -> None:
        self.operators.append(trace)

    def total_elapsed(self) -> float:
        return sum(op.elapsed for op in self.operators)

    def rulegen_elapsed(self) -> float:
        """Wall time spent generating rules (the VERIFY-family split)."""
        return sum(op.detail.get("rulegen_s", 0.0) for op in self.operators)

    def mining_elapsed(self) -> float:
        """Wall time spent on everything except rule generation."""
        return self.total_elapsed() - self.rulegen_elapsed()

    def by_name(self, name: str) -> OperatorTrace | None:
        for op in self.operators:
            if op.name == name:
                return op
        return None


@dataclass
class QueryContext:
    """Shared runtime state for one localized query execution."""

    index: MIPIndex
    query: LocalizedQuery
    focal: FocalRange
    dq: int            # focal-subset tidset (live main records only)
    dq_size: int       # |D^Q| (main live + delta live)
    min_count: int     # ceil(minsupp * |D^Q|)
    expand: bool       # expand candidates to all locally frequent itemsets
    #: ``|D^Q ∩ main_live|`` — the main-universe share of ``dq_size``
    #: (equal to ``dq_size`` whenever no delta store is attached; the
    #: ``-1`` default resolves to ``dq_size`` in ``__post_init__``).
    main_dq_size: int = -1
    #: Attached delta-store read view
    #: (:class:`repro.core.maintenance.DeltaView`; ``None`` = immutable
    #: index).  When present, ``dq`` is already masked to live main
    #: records and every operator adds the view's vectorized corrections.
    delta: "object | None" = field(default=None, repr=False)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    projection_s: float = 0.0  # one-off focal-projection build time
    #: Sharded-execution handle (None = serial).  Operators *try* it for
    #: their batched kernel calls and fall back to the in-process kernels
    #: whenever it declines (below break-even, pool broken) — identical
    #: counts either way, so correctness never depends on it.
    parallel: "ParallelContext | None" = field(default=None, repr=False)
    #: Kernel batches actually served by the shard pool so far (trace deltas
    #: report per-operator shares as ``sharded_calls``).
    sharded_calls: int = 0
    #: Per-width subset-lattice groups from the last VERIFY-family rule
    #: generation (``[(sources, (m, 2**n) counts), ...]``) — the reusable
    #: intermediate the materialized cache stores.  ``None`` when rule
    #: generation bypassed the lattice (wide fallback) or never ran.
    lattice_groups: "list[tuple[list[Itemset], np.ndarray]] | None" = field(
        default=None, repr=False
    )
    _dq_packed: np.ndarray | None = field(default=None, repr=False)
    _focal_kernel: "kernels.FocalKernel | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.main_dq_size < 0:
            self.main_dq_size = self.dq_size

    def packed_dq(self) -> np.ndarray:
        """The focal tidset as a packed kernel row (computed once)."""
        if self._dq_packed is None:
            self._dq_packed = kernels.pack(self.dq, self.index.tidset_words)
        return self._dq_packed

    def focal_kernel(self) -> "kernels.FocalKernel":
        """The focal-projected support kernel, built lazily once per query.

        Multi-query batches sharing a focal region pre-set the kernel on
        the context (:mod:`repro.core.multiquery`), in which case no build
        happens here and ``projection_s`` stays zero for this context.
        """
        if self._focal_kernel is None:
            start = time.perf_counter()
            matrix, row_of = self.index.table.item_matrix()
            main_kernel = kernels.FocalKernel(
                matrix, row_of, self.packed_dq(), self.main_dq_size
            )
            if self.delta is not None:
                # Delta-aware queries count through the combined kernel:
                # the main projection spans the live main focal subset,
                # the delta view's kernel spans the delta focal subset,
                # and every support is their exact elementwise sum.
                self._focal_kernel = kernels.CombinedFocalKernel(
                    main_kernel, self.delta.kernel()
                )
            else:
                self._focal_kernel = main_kernel
            self.projection_s += time.perf_counter() - start
        return self._focal_kernel

    def aitem_allows(self, itemset: Itemset) -> bool:
        """Whether every item of ``itemset`` lies in the query's Aitem."""
        aitem = self.query.item_attributes
        if aitem is None:
            return True
        return all(item.attribute in aitem for item in itemset)


def make_context(
    index: MIPIndex,
    query: LocalizedQuery,
    expand: bool = False,
    parallel: "ParallelContext | None" = None,
    delta: "object | None" = None,
) -> QueryContext:
    """Resolve the focal subset and thresholds (the shared query setup).

    Computing ``D^Q``'s tidset and size is needed by every plan (even the
    thresholds depend on ``|D^Q|``), so it is traced as a common ``FOCUS``
    step rather than attributed to any single plan's operators.

    ``delta`` optionally attaches a
    :class:`repro.core.maintenance.MaintainedIndex`: the main focal
    tidset is masked to live records (tombstones disappear from every
    packed-dq count for free) and the per-query delta view rides the
    context so the operators add their vectorized corrections.
    """
    query.validate_against(index.table.schema)
    start = time.perf_counter()
    focal = query.focal_range(index.cardinalities)
    dq = index.table.tids_matching(query.range_selections)
    view = None
    if delta is not None:
        view = delta.delta_view(query)
        if view is not None:
            dq &= ~delta.main_dead
    main_dq_size = ts.count(dq)
    dq_size = main_dq_size + (view.dq_size if view is not None else 0)
    if dq_size == 0:
        raise QueryError("focal subset is empty; nothing to mine")
    min_count = min_count_for(query.minsupp, dq_size)
    ctx = QueryContext(
        index=index,
        query=query,
        focal=focal,
        dq=dq,
        dq_size=dq_size,
        min_count=min_count,
        expand=expand,
        main_dq_size=main_dq_size,
        delta=view,
        parallel=parallel,
    )
    ctx.trace.add(
        OperatorTrace(
            name="FOCUS",
            input_size=index.table.n_records,
            output_size=dq_size,
            elapsed=time.perf_counter() - start,
        )
    )
    return ctx


# ---------------------------------------------------------------------------
# SEARCH and SUPPORTED-SEARCH
# ---------------------------------------------------------------------------


def op_search(ctx: QueryContext) -> CandidateArray:
    """SEARCH: MIPs overlapping the focal region, with exact classification.

    Probes the R-tree with the region's hull interval (no false negatives)
    and re-classifies each hit against the true per-attribute value sets;
    hull-only false positives are discarded here.
    """
    return _search(ctx, name="SEARCH", min_count=None)


def op_supported_search(ctx: QueryContext) -> CandidateArray:
    """SUPPORTED-SEARCH: SEARCH plus the global-count upper-bound filter.

    Entries (and whole subtrees) whose global count cannot reach
    ``minsupp * |D^Q|`` are pruned during the tree descent (Section 4.3).

    With a delta store attached the stored global counts no longer bound
    the combined local count — a candidate can gain up to the delta focal
    size — so the prune threshold relaxes by exactly that bound (deletes
    need no relaxation: they only shrink live counts, keeping stored
    counts valid upper bounds).
    """
    min_count = ctx.min_count
    if ctx.delta is not None and ctx.delta.dq_size:
        min_count = max(min_count - ctx.delta.dq_size, 1)
    return _search(ctx, name="SUPPORTED-SEARCH", min_count=min_count)


def _search(ctx: QueryContext, name: str, min_count: int | None) -> CandidateArray:
    start = time.perf_counter()
    hull = ctx.focal.hull()
    hits = ctx.index.rtree.search_arrays(hull, min_count=min_count)
    if hits is not None:
        # Array-native fast path: payload rows and global counts straight
        # from the compiled flat leaf level — no Entry objects anywhere.
        rows = hits.rows.astype(np.intp, copy=False)
        global_counts = hits.counts.astype(np.int64, copy=False)
        nodes_visited = hits.nodes_visited
        hull_hits = len(hits)
    else:
        # Pointer fallback (stale or missing compile): rebuild the arrays
        # from the entry list.  Same hit set and nodes_visited either way.
        result = (
            ctx.index.rtree.search(hull)
            if min_count is None
            else ctx.index.rtree.search_supported(hull, min_count)
        )
        entries = result.entries
        rows = np.fromiter(
            (entry.payload.row for entry in entries),
            dtype=np.intp,
            count=len(entries),
        )
        global_counts = np.fromiter(
            (entry.count for entry in entries),
            dtype=np.int64,
            count=len(entries),
        )
        nodes_visited = result.nodes_visited
        hull_hits = len(entries)
    # Exact classification of the hits in one vectorized pass (equivalent
    # to FocalRange.classify per box — asserted by the operator tests).
    # Only the hit rows' fixed values are gathered and classified: the
    # hull usually returns a handful of hits, so classifying all N MIPs
    # (as the first kernel cut did) wasted a full-index pass per query.
    if len(rows):
        overlaps, contained = ctx.focal.classify_all(
            ctx.index.stats.mip_fixed_values.take(rows, axis=0)
        )
        candidates = CandidateArray(
            ctx.index, rows[overlaps], global_counts[overlaps], contained[overlaps]
        )
    else:
        candidates = CandidateArray(
            ctx.index,
            rows,
            global_counts,
            np.zeros(0, dtype=bool),
        )
    ctx.trace.add(
        OperatorTrace(
            name=name,
            input_size=len(ctx.index.mips),
            output_size=len(candidates),
            elapsed=time.perf_counter() - start,
            detail={
                "nodes_visited": nodes_visited,
                "hull_hits": hull_hits,
            },
        )
    )
    return candidates


# ---------------------------------------------------------------------------
# ELIMINATE
# ---------------------------------------------------------------------------

#: Below this many candidates the batched kernel's fixed numpy overhead
#: outweighs the per-candidate Python dispatch it saves (list path only).
_QUALIFY_KERNEL_MIN = 4


def _aitem_mask(ctx: QueryContext, rows: np.ndarray) -> np.ndarray:
    """Vectorized Aitem filter: which MIP rows use only Aitem attributes.

    A MIP violates the filter iff it fixes a value in any attribute outside
    ``Aitem`` (``mip_fixed_values`` stores ``-1`` for free attributes), so
    one gather plus one ``any`` over the outside columns decides all rows.
    Expanded mode admits everything (the filter moves into VERIFY).
    """
    aitem = ctx.query.item_attributes
    if ctx.expand or aitem is None:
        return np.ones(len(rows), dtype=bool)
    fixed = ctx.index.stats.mip_fixed_values.take(rows, axis=0)
    outside = [a for a in range(fixed.shape[1]) if a not in aitem]
    if not outside:
        return np.ones(len(rows), dtype=bool)
    return ~(fixed[:, outside] >= 0).any(axis=1)


def _qualify_candidates(
    ctx: QueryContext, candidates: "CandidateArray | list[Candidate]"
) -> "tuple[QualifiedArray | list[Qualified], int]":
    """The record-level minsupp qualification shared by ELIMINATE and
    SUPPORTED-VERIFY (plus the Aitem filter).

    The array path never touches a MIP object: the Aitem filter is one
    vectorized mask over the gathered fixed-value rows, and qualification
    is *one* batched kernel call — the surviving rows of the index's
    packed MIP-tidset matrix are gathered, ANDed with the packed focal
    tidset, and popcounted together (:func:`repro.kernels.and_count`).
    List inputs (standalone MIPs, legacy callers) take the original
    per-candidate path; either path produces identical counts.

    Returns the qualified candidates (order preserved) and the number of
    record-level checks performed (the ELIMINATE cost-model feature).
    """
    if isinstance(candidates, CandidateArray):
        keep = _aitem_mask(ctx, candidates.rows)
        rows = candidates.rows[keep]
        if len(rows):
            counts = None
            if ctx.parallel is not None:
                # Sharded qualification: the workers AND word shards of the
                # shared MIP-tidset matrix against the focal row and the
                # int64 partial sums merge exactly; None means the context
                # declined (below break-even, pool broken) — run serial.
                counts = ctx.parallel.and_count_mips(rows, ctx.packed_dq())
                if counts is not None:
                    ctx.sharded_calls += 1
            if counts is None:
                counts = kernels.and_count(
                    ctx.index.mip_tidset_matrix.take(rows, axis=0),
                    ctx.packed_dq(),
                )
            if ctx.delta is not None:
                # Exact delta correction, one AND+popcount row-gather over
                # the delta store's per-MIP matrix (``packed_dq`` is
                # already masked to live main records, so the main share
                # needs no tombstone adjustment).
                counts = counts + ctx.delta.mip_counts(rows)
        else:
            counts = np.zeros(0, dtype=np.int64)
        qualifies = counts >= ctx.min_count
        return (
            QualifiedArray(
                ctx.index, rows[qualifies], counts[qualifies].astype(np.int64)
            ),
            int(len(rows)),
        )
    checked = [
        cand
        for cand in candidates
        if ctx.expand or ctx.aitem_allows(cand[0].itemset)
    ]
    matrix = ctx.index.mip_tidset_matrix
    n_rows = matrix.shape[0]
    use_kernel = len(checked) >= _QUALIFY_KERNEL_MIN and all(
        0 <= mip.row < n_rows for mip, _ in checked
    )
    qualified: list[Qualified] = []
    if use_kernel:
        rows = np.fromiter(
            (mip.row for mip, _ in checked), dtype=np.intp, count=len(checked)
        )
        counts = kernels.and_count(matrix[rows], ctx.packed_dq())
        if ctx.delta is not None:
            counts = counts + ctx.delta.mip_counts(rows)
        qualified = [
            (mip, int(local))
            for (mip, _), local in zip(checked, counts)
            if local >= ctx.min_count
        ]
    else:
        for mip, _overlap in checked:
            local = mip.local_count(ctx.dq)
            if ctx.delta is not None:
                local += ctx.delta.itemset_count(mip.itemset)
            if local >= ctx.min_count:
                qualified.append((mip, local))
    return qualified, len(checked)


def op_eliminate(
    ctx: QueryContext, candidates: "CandidateArray | list[Candidate]"
) -> "QualifiedArray | list[Qualified]":
    """ELIMINATE: record-level minsupp check (plus the Aitem filter).

    Every surviving candidate carries its exact local support count so
    VERIFY never recomputes it.  In expanded mode the Aitem filter moves to
    the expanded itemsets inside VERIFY (a candidate's closure may add
    attributes outside Aitem whose sub-itemsets still matter).
    """
    start = time.perf_counter()
    sharded_before = ctx.sharded_calls
    qualified, record_checks = _qualify_candidates(ctx, candidates)
    ctx.trace.add(
        OperatorTrace(
            name="ELIMINATE",
            input_size=len(candidates),
            output_size=len(qualified),
            elapsed=time.perf_counter() - start,
            detail={
                "record_checks": record_checks,
                "sharded_calls": ctx.sharded_calls - sharded_before,
            },
        )
    )
    return qualified


def qualified_from_contained(
    ctx: QueryContext, contained: "CandidateArray | list[Candidate]"
) -> "QualifiedArray | list[Qualified]":
    """Lemma 4.5 shortcut for fully contained candidates (SS-E-U-V).

    A contained MIP's local count *equals* its global count, and
    SUPPORTED-SEARCH already guaranteed the global count reaches
    ``min_count`` — so contained candidates become qualified without any
    record-level work (only the cheap Aitem filter applies outside
    expanded mode).  On the array path the global counts ride along from
    the supported R-tree's leaf level, so this is a masked copy.

    With a delta store attached the lemma still holds per universe —
    every record supporting a contained MIP's itemset lies inside the
    focal region, stored or appended — but the stored count must shed
    tombstoned records and gain the delta partial, and the relaxed
    SUPPORTED-SEARCH no longer guarantees the corrected count reaches
    ``min_count``, so the threshold is re-checked.  All three steps are
    batched kernel calls.
    """
    if isinstance(contained, CandidateArray):
        keep = _aitem_mask(ctx, contained.rows)
        rows = contained.rows[keep]
        counts = contained.global_counts[keep].astype(np.int64)
        if ctx.delta is not None:
            if ctx.delta.main_dead_packed is not None and len(rows):
                counts = counts - ctx.delta.dead_counts(
                    ctx.index.mip_tidset_matrix.take(rows, axis=0)
                )
            counts = counts + ctx.delta.mip_counts(rows)
            qualifies = counts >= ctx.min_count
            rows, counts = rows[qualifies], counts[qualifies]
        return QualifiedArray(ctx.index, rows, counts)
    if ctx.delta is not None:
        out: list[Qualified] = []
        for mip, _ in contained:
            if not (ctx.expand or ctx.aitem_allows(mip.itemset)):
                continue
            local = mip.local_count(ctx.dq) + ctx.delta.itemset_count(
                mip.itemset
            )
            if local >= ctx.min_count:
                out.append((mip, local))
        return out
    return [
        (mip, mip.global_count)
        for mip, _ in contained
        if ctx.expand or ctx.aitem_allows(mip.itemset)
    ]


# ---------------------------------------------------------------------------
# VERIFY and SUPPORTED-VERIFY
# ---------------------------------------------------------------------------


def op_verify(
    ctx: QueryContext, qualified: "QualifiedArray | list[Qualified]"
) -> list[Rule]:
    """VERIFY: rule generation and minconf checks over the IT-tree."""
    start = time.perf_counter()
    projection_before = ctx.projection_s
    sharded_before = ctx.sharded_calls
    rules, lookups, kernel_s = _rules_from_qualified(ctx, qualified)
    elapsed = time.perf_counter() - start
    ctx.trace.add(
        OperatorTrace(
            name="VERIFY",
            input_size=len(qualified),
            output_size=len(rules),
            elapsed=elapsed,
            detail={
                "support_lookups": lookups,
                "mining_s": 0.0,
                "rulegen_s": elapsed,
                "kernel_s": kernel_s,
                "projection_s": ctx.projection_s - projection_before,
                "sharded_calls": ctx.sharded_calls - sharded_before,
            },
        )
    )
    return rules


def op_supported_verify(
    ctx: QueryContext, candidates: "CandidateArray | list[Candidate]"
) -> list[Rule]:
    """SUPPORTED-VERIFY: selection pushed up into verification (Section 4.2).

    The minsupp check is interleaved with rule generation in a single pass,
    avoiding ELIMINATE's separate materialized intermediate when it would
    filter little.  The trace still splits the wall time: the embedded
    qualification is ``mining_s``, the rest is ``rulegen_s``.
    """
    start = time.perf_counter()
    projection_before = ctx.projection_s
    sharded_before = ctx.sharded_calls
    qualified, record_checks = _qualify_candidates(ctx, candidates)
    mining_s = time.perf_counter() - start
    rules, lookups, kernel_s = _rules_from_qualified(ctx, qualified)
    elapsed = time.perf_counter() - start
    ctx.trace.add(
        OperatorTrace(
            name="SUPPORTED-VERIFY",
            input_size=len(candidates),
            output_size=len(rules),
            elapsed=elapsed,
            detail={
                "record_checks": record_checks,
                "support_lookups": lookups,
                "mining_s": mining_s,
                "rulegen_s": elapsed - mining_s,
                "kernel_s": kernel_s,
                "projection_s": ctx.projection_s - projection_before,
                "sharded_calls": ctx.sharded_calls - sharded_before,
            },
        )
    )
    return rules


#: Sort key for the canonical rule order (C-speed, no lambda frames).
_RULE_ORDER = attrgetter("antecedent", "consequent")

#: Widest itemset the mask-indexed lattice path handles before falling back
#: to the tuple-keyed ``count_family`` path (``2**n`` lattice slots and, in
#: expanded mode, a ~``3**n``-entry split table).  Itemsets are bounded by
#: the schema's attribute count, so real workloads sit far below this.
_LATTICE_MAX_WIDTH = 16


def _rules_from_qualified(
    ctx: QueryContext, qualified: "QualifiedArray | list[Qualified]"
) -> tuple[list[Rule], int, float]:
    """Generate localized rules from support-qualified candidates, batched.

    All supports are served by the focal-projected kernel.  Sources are
    grouped by itemset width ``n`` and each group's *entire subset
    lattice* is evaluated at once — ``2**n`` vectorized ANDs over
    ``|D^Q|``-bit rows plus one batched popcount
    (:meth:`repro.kernels.FocalKernel.count_subset_lattice`) — after which
    every antecedent/consequent confidence is checked in one vectorized
    pass and tuples materialize only for rules that pass ``minconf``
    (:func:`repro.itemsets.rules.rules_from_subset_lattices`).  No
    per-subset Python object is ever built for splits that fail, and the
    canonical rule order is produced by a numeric ``lexsort`` over packed
    item ranks instead of a comparison sort over tuples.

    This supersedes the per-lookup big-int AND chain kept in
    :func:`_rules_from_qualified_reference` on both axes that sank the
    first batched attempt (see docs/performance.md): the projection makes
    each AND ``|D^Q|/64`` words instead of ``n/64``, and the mask-indexed
    lattice removes the tuple-domain bookkeeping (family sets, memo
    probes, per-subset hashing) that made eager enumeration lose to the
    reference's confidence pruning.  Pathologically wide itemsets
    (``> _LATTICE_MAX_WIDTH`` items) fall back to the tuple-keyed
    ``count_family`` + :func:`rules_from_counts` path, which has no
    exponential table.

    When a :class:`~repro.parallel.ParallelContext` is attached, each
    width group's lattice is offered to the shard pool first: the workers
    evaluate the same mask recurrence over *full-width* shards of the raw
    item matrix rooted at the focal row (no projection, no repack) and
    the int64 partials merge exactly.  In closed mode a query whose every
    group is served sharded never builds the focal projection at all —
    the serial path's one-off ``projection_s`` cost disappears; any group
    the context declines falls back to the projected kernel.

    Returns ``(rules, kernel_evaluations, kernel_seconds)``; the latter two
    feed the VERIFY trace detail.
    """
    pairs = [(mip.itemset, int(local)) for mip, local in qualified]
    kernel: "kernels.FocalKernel | None" = None
    evaluations_before = 0
    sharded_evaluations = 0
    kernel_s = 0.0

    def focal_kernel() -> "kernels.FocalKernel":
        # Built (and seeded) on first serial need only: a fully sharded
        # closed-mode pass skips the projection entirely.
        nonlocal kernel, evaluations_before
        if kernel is None:
            kernel = ctx.focal_kernel()
            evaluations_before = kernel.evaluations
            for itemset, local in pairs:
                kernel.seed(itemset, local)
        return kernel

    if not ctx.expand:
        # Closed mode: the qualified closures themselves are the sources.
        sources: list[Itemset] = []
        source_seen: set[Itemset] = set()
        for itemset, local in pairs:
            if len(itemset) >= 2 and local > 0 and itemset not in source_seen:
                source_seen.add(itemset)
                sources.append(itemset)
    else:
        # Expanded mode: every locally frequent sub-itemset (within Aitem)
        # of the qualified closures is a source; all six plans then return
        # the same rule set whenever the primary floor covers the query
        # (DESIGN.md).  Discovery — lattice counts over the deduped
        # Aitem-allowed closures, qualification against the focal floor,
        # and collapse of sub-itemsets shared by overlapping closures —
        # all happens in array space inside the kernel.
        allowed_seen: set[Itemset] = set()
        for itemset, _local in pairs:
            allowed = make_itemset(
                item
                for item in itemset
                if ctx.query.item_attributes is None
                or item.attribute in ctx.query.item_attributes
            )
            if len(allowed) >= 2:
                allowed_seen.add(allowed)
        narrow = [s for s in allowed_seen if len(s) <= _LATTICE_MAX_WIDTH]
        t0 = time.perf_counter()
        sources = focal_kernel().frequent_subsets(narrow, ctx.min_count)
        kernel_s += time.perf_counter() - t0
        if len(narrow) < len(allowed_seen):  # pragma: no cover - huge schema
            sources = _merge_wide_sources(
                ctx, focal_kernel(), allowed_seen, sources
            )

    by_width: dict[int, list[Itemset]] = {}
    for itemset in sources:
        by_width.setdefault(len(itemset), []).append(itemset)
    wide: list[Itemset] = []
    groups: list[tuple[list[Itemset], "np.ndarray"]] = []
    for n in sorted(by_width):
        group = by_width[n]
        if n > _LATTICE_MAX_WIDTH:
            wide.extend(group)
            continue
        t0 = time.perf_counter()
        counts = None
        if ctx.parallel is not None:
            # The shard pool counts over the *main* universe (its workers
            # hold the main item matrix), so it gets the main focal size;
            # the delta lattice — a handful of words per row — adds on
            # top as one vectorized elementwise sum.
            counts = ctx.parallel.count_subset_lattice(
                group, ctx.packed_dq(), ctx.main_dq_size
            )
            if counts is not None:
                if ctx.delta is not None:
                    counts = counts + ctx.delta.kernel().count_subset_lattice(
                        group
                    )
                ctx.sharded_calls += 1
                # Same accounting as the serial kernel: one evaluation per
                # non-empty sub-itemset of each source.
                sharded_evaluations += len(group) * ((1 << n) - 1)
        if counts is None:
            counts = focal_kernel().count_subset_lattice(group)
        kernel_s += time.perf_counter() - t0
        groups.append((group, counts))
    rules = rules_from_subset_lattices(
        groups,
        ctx.dq_size,
        ctx.query.minconf,
        min_count=ctx.min_count if ctx.expand else None,
    )
    # Expose the counted lattices for the materialized cache — only when
    # they cover *all* sources (the wide fallback's rules are not in them).
    ctx.lattice_groups = None if wide else groups
    if wide:  # pragma: no cover - beyond any schema in this repo
        family: set[Itemset] = set()
        for itemset in wide:
            n = len(itemset)
            for mask in range(1, (1 << n) - 1):
                family.add(
                    tuple(itemset[k] for k in range(n) if mask >> k & 1)
                )
        t0 = time.perf_counter()
        focal_kernel().count_family(family)
        kernel_s += time.perf_counter() - t0
        rules.extend(
            rules_from_counts(
                wide,
                focal_kernel().count,
                ctx.dq_size,
                ctx.query.minconf,
                min_count=ctx.min_count if ctx.expand else None,
            )
        )
        rules.sort(key=_RULE_ORDER)
    lookups = sharded_evaluations
    if kernel is not None:
        lookups += kernel.evaluations - evaluations_before
    return rules, lookups, kernel_s


def _merge_wide_sources(
    ctx: QueryContext,
    kernel: "kernels.FocalKernel",
    allowed_seen: "set[Itemset]",
    sources: list[Itemset],
) -> list[Itemset]:  # pragma: no cover - beyond any schema in this repo
    """Expanded-mode fallback for pathologically wide closures: enumerate
    their frequent sub-itemsets through the tuple-keyed family path and
    merge with the lattice-discovered ``sources``."""
    family: set[Itemset] = set()
    for allowed in allowed_seen:
        n = len(allowed)
        if n <= _LATTICE_MAX_WIDTH:
            continue
        for mask in range(1, 1 << n):
            family.add(
                tuple(allowed[i] for i in range(n) if mask >> i & 1)
            )
    kernel.count_family(family)
    floor = max(ctx.min_count, 1)
    merged = set(sources)
    for itemset in family:
        if len(itemset) >= 2 and kernel.count(itemset) >= floor:
            merged.add(itemset)
    return sorted(merged)


def _rules_from_qualified_reference(
    ctx: QueryContext, qualified: "QualifiedArray | list[Qualified]"
) -> tuple[list[Rule], int]:
    """The scalar reference path: memoized big-int AND chain per lookup.

    Kept verbatim as the parity oracle for the batched kernel path — the
    property suite and the rule-generation benchmark assert byte-identical
    rule sets between the two — and as the fallback semantics
    documentation: equivalent to the IT-tree closure lookup of
    ``ClosedITTree.local_support_count`` for every itemset above the
    primary floor, and exact below it too.
    """
    item_tidsets = ctx.index.table.item_tidsets()
    cache: dict[Itemset, int | None] = {}
    lookups = 0
    for mip, local in qualified:
        cache[mip.itemset] = local

    def local_count(items: Itemset) -> int | None:
        nonlocal lookups
        if items in cache:
            return cache[items]
        lookups += 1
        mask = ctx.dq
        for item in items:
            mask &= item_tidsets.get(item, 0)
            if not mask:
                break
        count_ = mask.bit_count()
        cache[items] = count_
        return count_

    if not ctx.expand:
        rules: list[Rule] = []
        for mip, _local in qualified:
            rules.extend(
                generate_rules(
                    mip.itemset, local_count, ctx.dq_size, ctx.query.minconf
                )
            )
        rules.sort(key=lambda r: (r.antecedent, r.consequent))
        return rules, lookups

    family: set[Itemset] = set()
    for mip, _local in qualified:
        allowed = make_itemset(
            item
            for item in mip.itemset
            if ctx.query.item_attributes is None
            or item.attribute in ctx.query.item_attributes
        )
        n = len(allowed)
        for mask in range(1, 1 << n):
            family.add(tuple(allowed[i] for i in range(n) if mask >> i & 1))
    rules = rules_from_itemsets(
        sorted(family),
        local_count,
        ctx.dq_size,
        ctx.query.minsupp,
        ctx.query.minconf,
    )
    return rules, lookups


# ---------------------------------------------------------------------------
# UNION
# ---------------------------------------------------------------------------


def op_union(
    ctx: QueryContext,
    contained: "QualifiedArray | list[Qualified]",
    partial: "QualifiedArray | list[Qualified]",
) -> "QualifiedArray | list[Qualified]":
    """UNION: merge the two mutually exclusive qualified lists (constant cost).

    Two array inputs concatenate without touching a MIP object; mixed or
    list inputs merge as plain lists.
    """
    start = time.perf_counter()
    merged: QualifiedArray | list[Qualified]
    if isinstance(contained, QualifiedArray) and isinstance(partial, QualifiedArray):
        merged = QualifiedArray.concat(contained, partial)
    else:
        merged = list(contained) + list(partial)
    ctx.trace.add(
        OperatorTrace(
            name="UNION",
            input_size=len(contained) + len(partial),
            output_size=len(merged),
            elapsed=time.perf_counter() - start,
        )
    )
    return merged


# ---------------------------------------------------------------------------
# SELECT and ARM (the traditional plan)
# ---------------------------------------------------------------------------


def op_select(ctx: QueryContext) -> RelationalTable:
    """SELECT: extract the focal subset's records into a new table.

    With a delta store attached, the matching live delta records stack
    under the main extraction — the ARM plan then mines the combined
    focal subset from scratch, denominators included, with no further
    delta awareness.
    """
    start = time.perf_counter()
    sub = ctx.index.table.subset(ctx.dq)
    if ctx.delta is not None:
        extra = ctx.delta.records()
        if len(extra):
            sub = RelationalTable(
                sub.schema, np.vstack([sub.data, extra])
            )
    ctx.trace.add(
        OperatorTrace(
            name="SELECT",
            input_size=ctx.index.table.n_records,
            output_size=sub.n_records,
            elapsed=time.perf_counter() - start,
        )
    )
    return sub


def op_arm(ctx: QueryContext, sub: RelationalTable) -> list[Rule]:
    """ARM: traditional two-step rule mining from scratch on the subset.

    Mines closed frequent itemsets with CHARM at the query's minsupp over
    the item attributes only, then generates rules with antecedent supports
    resolved through a throwaway IT-tree over the local closed sets.  In
    expanded mode all locally frequent sub-itemsets are enumerated, to
    mirror the expanded MIP-plans.
    """
    start = time.perf_counter()
    item_tidsets = {
        item: mask
        for item, mask in sub.item_tidsets().items()
        if ctx.query.item_attributes is None
        or item.attribute in ctx.query.item_attributes
    }
    closed = charm(item_tidsets, sub.n_records, ctx.query.minsupp)
    full = ts.full(sub.n_records)
    cache: dict[Itemset, int | None] = {
        cfi.items: cfi.support_count for cfi in closed
    }

    def local_count(items: Itemset) -> int | None:
        if items in cache:
            return cache[items]
        mask = full
        for item in items:
            mask &= item_tidsets.get(item, 0)
            if not mask:
                break
        count_ = mask.bit_count()
        cache[items] = count_
        return count_

    if not ctx.expand:
        itemsets = [cfi.items for cfi in closed]
    else:
        family: set[Itemset] = set()
        for cfi in closed:
            n = len(cfi.items)
            for mask in range(1, 1 << n):
                family.add(
                    tuple(cfi.items[i] for i in range(n) if mask >> i & 1)
                )
        itemsets = sorted(family)
    rules = rules_from_itemsets(
        itemsets, local_count, sub.n_records, ctx.query.minsupp, ctx.query.minconf
    )
    ctx.trace.add(
        OperatorTrace(
            name="ARM",
            input_size=sub.n_records,
            output_size=len(rules),
            elapsed=time.perf_counter() - start,
            detail={"local_closed_itemsets": len(closed)},
        )
    )
    return rules
