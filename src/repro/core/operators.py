"""The isolated online-mining operators (Section 4).

COLARM treats online mining not as a black box but as a pipeline of
operators with precise inputs and outputs:

* SELECT            — extract the focal subset's records (ARM plan);
* SEARCH            — R-tree window search for overlapping MIPs;
* SUPPORTED-SEARCH  — SEARCH with the supported R-tree filter (Lemma 4.4);
* ELIMINATE         — record-level ``Aitem`` + minsupp filtering;
* VERIFY            — rule generation + minconf checks via the IT-tree;
* SUPPORTED-VERIFY  — ELIMINATE and VERIFY interleaved (selection push-up);
* UNION             — merge contained and partially-overlapped candidates;
* ARM               — traditional from-scratch mining on the focal subset.

Every operator call appends an :class:`OperatorTrace` (cardinalities,
record-level work, wall time) to the query's :class:`ExecutionTrace`; the
calibration module turns those traces into the cost-model unit weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import kernels, tidset as ts
from repro.core.mip import MIP
from repro.core.mipindex import MIPIndex
from repro.core.query import FocalRange, LocalizedQuery, Overlap
from repro.dataset.table import RelationalTable
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.charm import charm
from repro.itemsets.itemset import Itemset, make_itemset
from repro.itemsets.rules import Rule, generate_rules, rules_from_itemsets

__all__ = [
    "OperatorTrace",
    "ExecutionTrace",
    "QueryContext",
    "make_context",
    "op_search",
    "op_supported_search",
    "op_eliminate",
    "op_verify",
    "op_supported_verify",
    "op_union",
    "op_select",
    "op_arm",
]

#: A candidate MIP tagged with its exact relation to the focal region.
Candidate = tuple[MIP, Overlap]
#: A candidate that passed the support check, with its exact local count.
Qualified = tuple[MIP, int]


@dataclass
class OperatorTrace:
    """Measurements of one operator invocation."""

    name: str
    input_size: int
    output_size: int
    elapsed: float
    detail: dict[str, float] = field(default_factory=dict)


@dataclass
class ExecutionTrace:
    """All operator traces of one plan execution, in pipeline order."""

    operators: list[OperatorTrace] = field(default_factory=list)

    def add(self, trace: OperatorTrace) -> None:
        self.operators.append(trace)

    def total_elapsed(self) -> float:
        return sum(op.elapsed for op in self.operators)

    def by_name(self, name: str) -> OperatorTrace | None:
        for op in self.operators:
            if op.name == name:
                return op
        return None


@dataclass
class QueryContext:
    """Shared runtime state for one localized query execution."""

    index: MIPIndex
    query: LocalizedQuery
    focal: FocalRange
    dq: int            # focal-subset tidset
    dq_size: int       # |D^Q|
    min_count: int     # ceil(minsupp * |D^Q|)
    expand: bool       # expand candidates to all locally frequent itemsets
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    _dq_packed: np.ndarray | None = field(default=None, repr=False)

    def packed_dq(self) -> np.ndarray:
        """The focal tidset as a packed kernel row (computed once)."""
        if self._dq_packed is None:
            self._dq_packed = kernels.pack(self.dq, self.index.tidset_words)
        return self._dq_packed

    def aitem_allows(self, itemset: Itemset) -> bool:
        """Whether every item of ``itemset`` lies in the query's Aitem."""
        aitem = self.query.item_attributes
        if aitem is None:
            return True
        return all(item.attribute in aitem for item in itemset)


def make_context(
    index: MIPIndex, query: LocalizedQuery, expand: bool = False
) -> QueryContext:
    """Resolve the focal subset and thresholds (the shared query setup).

    Computing ``D^Q``'s tidset and size is needed by every plan (even the
    thresholds depend on ``|D^Q|``), so it is traced as a common ``FOCUS``
    step rather than attributed to any single plan's operators.
    """
    query.validate_against(index.table.schema)
    start = time.perf_counter()
    focal = query.focal_range(index.cardinalities)
    dq = index.table.tids_matching(query.range_selections)
    dq_size = ts.count(dq)
    if dq_size == 0:
        raise QueryError("focal subset is empty; nothing to mine")
    min_count = min_count_for(query.minsupp, dq_size)
    ctx = QueryContext(
        index=index,
        query=query,
        focal=focal,
        dq=dq,
        dq_size=dq_size,
        min_count=min_count,
        expand=expand,
    )
    ctx.trace.add(
        OperatorTrace(
            name="FOCUS",
            input_size=index.table.n_records,
            output_size=dq_size,
            elapsed=time.perf_counter() - start,
        )
    )
    return ctx


# ---------------------------------------------------------------------------
# SEARCH and SUPPORTED-SEARCH
# ---------------------------------------------------------------------------


def op_search(ctx: QueryContext) -> list[Candidate]:
    """SEARCH: MIPs overlapping the focal region, with exact classification.

    Probes the R-tree with the region's hull interval (no false negatives)
    and re-classifies each hit against the true per-attribute value sets;
    hull-only false positives are discarded here.
    """
    return _search(ctx, name="SEARCH", min_count=None)


def op_supported_search(ctx: QueryContext) -> list[Candidate]:
    """SUPPORTED-SEARCH: SEARCH plus the global-count upper-bound filter.

    Entries (and whole subtrees) whose global count cannot reach
    ``minsupp * |D^Q|`` are pruned during the tree descent (Section 4.3).
    """
    return _search(ctx, name="SUPPORTED-SEARCH", min_count=ctx.min_count)


def _search(ctx: QueryContext, name: str, min_count: int | None) -> list[Candidate]:
    start = time.perf_counter()
    hull = ctx.focal.hull()
    if min_count is None:
        result = ctx.index.rtree.search(hull)
    else:
        result = ctx.index.rtree.search_supported(hull, min_count)
    # Exact classification of the hits in one vectorized pass (equivalent
    # to FocalRange.classify per box — asserted by the operator tests).
    # Only the hit rows' fixed values are gathered and classified: the
    # hull usually returns a handful of hits, so classifying all N MIPs
    # (as the first kernel cut did) wasted a full-index pass per query.
    candidates: list[Candidate] = []
    if result.entries:
        hit_mips: list[MIP] = [entry.payload for entry in result.entries]
        rows = np.fromiter(
            (mip.row for mip in hit_mips), dtype=np.intp, count=len(hit_mips)
        )
        overlaps, contained = ctx.focal.classify_all(
            ctx.index.stats.mip_fixed_values.take(rows, axis=0)
        )
        for mip, is_overlap, is_contained in zip(hit_mips, overlaps, contained):
            if not is_overlap:
                continue
            overlap = Overlap.CONTAINED if is_contained else Overlap.PARTIAL
            candidates.append((mip, overlap))
    ctx.trace.add(
        OperatorTrace(
            name=name,
            input_size=len(ctx.index.mips),
            output_size=len(candidates),
            elapsed=time.perf_counter() - start,
            detail={
                "nodes_visited": result.nodes_visited,
                "hull_hits": len(result.entries),
            },
        )
    )
    return candidates


# ---------------------------------------------------------------------------
# ELIMINATE
# ---------------------------------------------------------------------------

#: Below this many candidates the batched kernel's fixed numpy overhead
#: outweighs the per-candidate Python dispatch it saves.
_QUALIFY_KERNEL_MIN = 4


def _qualify_candidates(
    ctx: QueryContext, candidates: list[Candidate]
) -> tuple[list[Qualified], int]:
    """The record-level minsupp qualification shared by ELIMINATE and
    SUPPORTED-VERIFY (plus the Aitem filter).

    Candidates passing the Aitem filter are qualified in *one* batched
    kernel call: their rows of the index's packed MIP-tidset matrix are
    gathered, ANDed with the packed focal tidset, and popcounted together
    (:func:`repro.kernels.and_count`), instead of one Python big-int
    intersection per candidate.  Standalone MIPs (``row < 0``, only seen
    outside a built index) fall back to the scalar reference path; either
    path produces identical counts.

    Returns the qualified list (candidate order preserved) and the number
    of record-level checks performed (the ELIMINATE cost-model feature).
    """
    checked = [
        cand
        for cand in candidates
        if ctx.expand or ctx.aitem_allows(cand[0].itemset)
    ]
    matrix = ctx.index.mip_tidset_matrix
    n_rows = matrix.shape[0]
    use_kernel = len(checked) >= _QUALIFY_KERNEL_MIN and all(
        0 <= mip.row < n_rows for mip, _ in checked
    )
    qualified: list[Qualified] = []
    if use_kernel:
        rows = np.fromiter(
            (mip.row for mip, _ in checked), dtype=np.intp, count=len(checked)
        )
        counts = kernels.and_count(matrix[rows], ctx.packed_dq())
        qualified = [
            (mip, int(local))
            for (mip, _), local in zip(checked, counts)
            if local >= ctx.min_count
        ]
    else:
        for mip, _overlap in checked:
            local = mip.local_count(ctx.dq)
            if local >= ctx.min_count:
                qualified.append((mip, local))
    return qualified, len(checked)


def op_eliminate(ctx: QueryContext, candidates: list[Candidate]) -> list[Qualified]:
    """ELIMINATE: record-level minsupp check (plus the Aitem filter).

    Every surviving candidate carries its exact local support count so
    VERIFY never recomputes it.  In expanded mode the Aitem filter moves to
    the expanded itemsets inside VERIFY (a candidate's closure may add
    attributes outside Aitem whose sub-itemsets still matter).
    """
    start = time.perf_counter()
    qualified, record_checks = _qualify_candidates(ctx, candidates)
    ctx.trace.add(
        OperatorTrace(
            name="ELIMINATE",
            input_size=len(candidates),
            output_size=len(qualified),
            elapsed=time.perf_counter() - start,
            detail={"record_checks": record_checks},
        )
    )
    return qualified


# ---------------------------------------------------------------------------
# VERIFY and SUPPORTED-VERIFY
# ---------------------------------------------------------------------------


def op_verify(ctx: QueryContext, qualified: list[Qualified]) -> list[Rule]:
    """VERIFY: rule generation and minconf checks over the IT-tree."""
    start = time.perf_counter()
    rules, lookups = _rules_from_qualified(ctx, qualified)
    ctx.trace.add(
        OperatorTrace(
            name="VERIFY",
            input_size=len(qualified),
            output_size=len(rules),
            elapsed=time.perf_counter() - start,
            detail={"support_lookups": lookups},
        )
    )
    return rules


def op_supported_verify(ctx: QueryContext, candidates: list[Candidate]) -> list[Rule]:
    """SUPPORTED-VERIFY: selection pushed up into verification (Section 4.2).

    The minsupp check is interleaved with rule generation in a single pass,
    avoiding ELIMINATE's separate materialized intermediate when it would
    filter little.
    """
    start = time.perf_counter()
    qualified, record_checks = _qualify_candidates(ctx, candidates)
    rules, lookups = _rules_from_qualified(ctx, qualified)
    ctx.trace.add(
        OperatorTrace(
            name="SUPPORTED-VERIFY",
            input_size=len(candidates),
            output_size=len(rules),
            elapsed=time.perf_counter() - start,
            detail={"record_checks": record_checks, "support_lookups": lookups},
        )
    )
    return rules


def _rules_from_qualified(
    ctx: QueryContext, qualified: list[Qualified]
) -> tuple[list[Rule], int]:
    """Generate localized rules from support-qualified candidates.

    Support of antecedents (and, in expanded mode, of sub-itemsets) is the
    record-level count ``|t(X) ∩ D^Q|``, served by a memoized big-int AND
    chain per *distinct* itemset; the cache is pre-seeded with the exact
    counts the batched ELIMINATE kernel already produced for the qualified
    candidates themselves.  Eagerly batching the antecedent families
    through the packed kernels was tried and measured as a net loss here
    — see DESIGN.md's performance-architecture notes — because lookups
    are confidence-pruned, heavily shared across overlapping closures,
    and each scalar AND shrinks with the focal tidset, while a batch pays
    full-universe-width rows for counts that are mostly cache hits.
    (Equivalent to the IT-tree closure lookup of
    :meth:`ClosedITTree.local_support_count` for every itemset above the
    primary floor, and exact below it too; the bitmask path is what makes
    VERIFY's "record-level check" cheap.)
    """
    item_tidsets = ctx.index.table.item_tidsets()
    cache: dict[Itemset, int | None] = {}
    lookups = 0
    for mip, local in qualified:
        cache[mip.itemset] = local

    def local_count(items: Itemset) -> int | None:
        nonlocal lookups
        if items in cache:
            return cache[items]
        lookups += 1
        mask = ctx.dq
        for item in items:
            mask &= item_tidsets.get(item, 0)
            if not mask:
                break
        count_ = mask.bit_count()
        cache[items] = count_
        return count_

    if not ctx.expand:
        rules: list[Rule] = []
        for mip, _local in qualified:
            rules.extend(
                generate_rules(
                    mip.itemset, local_count, ctx.dq_size, ctx.query.minconf
                )
            )
        rules.sort(key=lambda r: (r.antecedent, r.consequent))
        return rules, lookups

    # Expanded mode: enumerate every locally frequent sub-itemset (within
    # Aitem) of the qualified candidates; all six plans then return the same
    # rule set whenever the primary floor covers the query (DESIGN.md).
    family: set[Itemset] = set()
    for mip, _local in qualified:
        allowed = make_itemset(
            item
            for item in mip.itemset
            if ctx.query.item_attributes is None
            or item.attribute in ctx.query.item_attributes
        )
        n = len(allowed)
        for mask in range(1, 1 << n):
            family.add(tuple(allowed[i] for i in range(n) if mask >> i & 1))
    rules = rules_from_itemsets(
        sorted(family),
        local_count,
        ctx.dq_size,
        ctx.query.minsupp,
        ctx.query.minconf,
    )
    return rules, lookups


# ---------------------------------------------------------------------------
# UNION
# ---------------------------------------------------------------------------


def op_union(
    ctx: QueryContext, contained: list[Qualified], partial: list[Qualified]
) -> list[Qualified]:
    """UNION: merge the two mutually exclusive qualified lists (constant cost)."""
    start = time.perf_counter()
    merged = contained + partial
    ctx.trace.add(
        OperatorTrace(
            name="UNION",
            input_size=len(contained) + len(partial),
            output_size=len(merged),
            elapsed=time.perf_counter() - start,
        )
    )
    return merged


# ---------------------------------------------------------------------------
# SELECT and ARM (the traditional plan)
# ---------------------------------------------------------------------------


def op_select(ctx: QueryContext) -> RelationalTable:
    """SELECT: extract the focal subset's records into a new table."""
    start = time.perf_counter()
    sub = ctx.index.table.subset(ctx.dq)
    ctx.trace.add(
        OperatorTrace(
            name="SELECT",
            input_size=ctx.index.table.n_records,
            output_size=sub.n_records,
            elapsed=time.perf_counter() - start,
        )
    )
    return sub


def op_arm(ctx: QueryContext, sub: RelationalTable) -> list[Rule]:
    """ARM: traditional two-step rule mining from scratch on the subset.

    Mines closed frequent itemsets with CHARM at the query's minsupp over
    the item attributes only, then generates rules with antecedent supports
    resolved through a throwaway IT-tree over the local closed sets.  In
    expanded mode all locally frequent sub-itemsets are enumerated, to
    mirror the expanded MIP-plans.
    """
    start = time.perf_counter()
    item_tidsets = {
        item: mask
        for item, mask in sub.item_tidsets().items()
        if ctx.query.item_attributes is None
        or item.attribute in ctx.query.item_attributes
    }
    closed = charm(item_tidsets, sub.n_records, ctx.query.minsupp)
    full = ts.full(sub.n_records)
    cache: dict[Itemset, int | None] = {
        cfi.items: cfi.support_count for cfi in closed
    }

    def local_count(items: Itemset) -> int | None:
        if items in cache:
            return cache[items]
        mask = full
        for item in items:
            mask &= item_tidsets.get(item, 0)
            if not mask:
                break
        count_ = mask.bit_count()
        cache[items] = count_
        return count_

    if not ctx.expand:
        itemsets = [cfi.items for cfi in closed]
    else:
        family: set[Itemset] = set()
        for cfi in closed:
            n = len(cfi.items)
            for mask in range(1, 1 << n):
                family.add(
                    tuple(cfi.items[i] for i in range(n) if mask >> i & 1)
                )
        itemsets = sorted(family)
    rules = rules_from_itemsets(
        itemsets, local_count, sub.n_records, ctx.query.minsupp, ctx.query.minconf
    )
    ctx.trace.add(
        OperatorTrace(
            name="ARM",
            input_size=sub.n_records,
            output_size=len(rules),
            elapsed=time.perf_counter() - start,
            detail={"local_closed_itemsets": len(closed)},
        )
    )
    return rules
