"""Multi-query optimization (the paper's future-work item (b)).

Analysts exploring local trends fire many related requests: the same focal
subset probed at several thresholds, or several subsets sharing range
attributes.  This extension executes a *batch* of localized queries while
sharing work across them:

* queries with identical range selections share the FOCUS step (focal
  tidset) and a single R-tree SEARCH — each query then applies its own
  thresholds to the shared candidate list;
* within a shared group, candidates are sorted once by local support so
  each query's ELIMINATE is a binary-search slice instead of a full pass.

``execute_batch`` reports per-query results plus the work actually shared,
and the tests compare its output against one-at-a-time execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import tidset as ts
from repro.core.mip import MIP
from repro.core.mipindex import MIPIndex
from repro.core.operators import QueryContext, _rules_from_qualified
from repro.core.query import LocalizedQuery, Overlap
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.rules import Rule

__all__ = ["BatchItem", "BatchReport", "execute_batch"]


@dataclass
class BatchItem:
    """Result of one query inside a batch."""

    query: LocalizedQuery
    rules: list[Rule]
    dq_size: int
    shared_group: int  # index of the focal-subset group this query joined


@dataclass
class BatchReport:
    """All batch results plus sharing diagnostics."""

    items: list[BatchItem]
    n_groups: int           # distinct focal subsets actually computed
    n_searches: int         # R-tree searches actually executed
    elapsed: float

    @property
    def n_queries(self) -> int:
        return len(self.items)


def execute_batch(
    index: MIPIndex,
    queries: list[LocalizedQuery],
    expand: bool = False,
) -> BatchReport:
    """Execute a batch of localized queries with shared focal subsets."""
    if not queries:
        raise QueryError("empty query batch")
    start = time.perf_counter()

    groups: dict[tuple, int] = {}
    group_data: list[dict] = []
    items: list[BatchItem | None] = [None] * len(queries)

    for qi, query in enumerate(queries):
        query.validate_against(index.table.schema)
        key = tuple(sorted(
            (ai, tuple(sorted(vs))) for ai, vs in query.range_selections.items()
        ))
        if key not in groups:
            focal = query.focal_range(index.cardinalities)
            dq = index.table.tids_matching(query.range_selections)
            dq_size = ts.count(dq)
            if dq_size == 0:
                raise QueryError(f"query {qi}: focal subset is empty")
            hull = focal.hull()
            result = index.rtree.search(hull)
            candidates: list[tuple[MIP, Overlap]] = []
            for entry in result.entries:
                overlap = focal.classify(entry.payload.box)
                if overlap is not Overlap.DISJOINT:
                    candidates.append((entry.payload, overlap))
            # One record-level pass: every candidate's exact local count,
            # shared by all queries of the group and pre-sorted descending.
            with_counts = sorted(
                ((mip, mip.local_count(dq)) for mip, _ in candidates),
                key=lambda mc: -mc[1],
            )
            groups[key] = len(group_data)
            group_data.append(
                {"focal": focal, "dq": dq, "dq_size": dq_size, "counts": with_counts}
            )
        gid = groups[key]
        data = group_data[gid]
        min_count = min_count_for(query.minsupp, data["dq_size"])
        qualified = []
        for mip, local in data["counts"]:
            if local < min_count:
                break  # sorted descending: the rest cannot qualify
            if expand or _aitem_allows(query, mip):
                qualified.append((mip, local))
        ctx = QueryContext(
            index=index,
            query=query,
            focal=data["focal"],
            dq=data["dq"],
            dq_size=data["dq_size"],
            min_count=min_count,
            expand=expand,
        )
        rules, _lookups = _rules_from_qualified(ctx, qualified)
        items[qi] = BatchItem(
            query=query, rules=rules, dq_size=data["dq_size"], shared_group=gid
        )

    return BatchReport(
        items=[item for item in items if item is not None],
        n_groups=len(group_data),
        n_searches=len(group_data),
        elapsed=time.perf_counter() - start,
    )


def _aitem_allows(query: LocalizedQuery, mip: MIP) -> bool:
    aitem = query.item_attributes
    if aitem is None:
        return True
    return all(item.attribute in aitem for item in mip.itemset)
