"""Multi-query optimization (the paper's future-work item (b)).

Analysts exploring local trends fire many related requests: the same focal
subset probed at several thresholds, or several subsets sharing range
attributes.  This extension executes a *batch* of localized queries while
sharing work across them:

* queries with identical range selections share the FOCUS step (focal
  tidset) and a single R-tree SEARCH — each query then applies its own
  thresholds to the shared candidate list;
* within a shared group, all candidates' exact local counts come from one
  batched kernel call and are sorted once descending, so each query's
  ELIMINATE is a prefix cut instead of a full pass;
* the *focal projection* (:class:`repro.kernels.FocalKernel` — the dense
  ``|D^Q|``-bit repack of the item tidsets) is built once per distinct
  focal subset and shared by every query in the group, so only the first
  query of a group pays the projection cost;
* in closed mode, the *subset-lattice counts* of each source itemset
  (:meth:`~repro.kernels.FocalKernel.count_subset_lattice` rows) are
  memoized per group — a later query at a different threshold recounts
  only sources the earlier queries did not qualify, and its rule
  extraction replays the memoized rows for the rest.

Focal-subset grouping is *canonical*: selections naming an attribute's
entire domain are dropped from the group key, so queries that select the
same records — one spelling the full domain out, one omitting it — share
one group (and ``n_groups`` counts distinct focal subsets, not distinct
spellings).

``execute_batch`` reports per-query results plus the work actually shared
(including the projection- and lattice-hit rates), and the tests compare
its output against one-at-a-time execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import kernels, tidset as ts
from repro.core.mipindex import MIPIndex
from repro.core.operators import (
    _LATTICE_MAX_WIDTH,
    QualifiedArray,
    QueryContext,
    _aitem_mask,
    _rules_from_qualified,
)
from repro.core.query import LocalizedQuery, canonical_focal_key
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.itemset import Itemset
from repro.itemsets.rules import Rule, rules_from_subset_lattices

__all__ = ["BatchItem", "BatchReport", "execute_batch"]


@dataclass
class BatchItem:
    """Result of one query inside a batch."""

    query: LocalizedQuery
    rules: list[Rule]
    dq_size: int
    shared_group: int  # index of the focal-subset group this query joined


@dataclass
class BatchReport:
    """All batch results plus sharing diagnostics."""

    items: list[BatchItem]
    n_groups: int           # distinct focal subsets actually computed
    n_searches: int         # R-tree searches actually executed
    elapsed: float
    n_projections: int = 0  # focal projections actually built
    projection_hits: int = 0  # queries served by an already-built projection
    lattice_hits: int = 0   # source lattices replayed from the group memo

    @property
    def n_queries(self) -> int:
        return len(self.items)


def execute_batch(
    index: MIPIndex,
    queries: list[LocalizedQuery],
    expand: bool = False,
) -> BatchReport:
    """Execute a batch of localized queries with shared focal subsets."""
    if not queries:
        raise QueryError("empty query batch")
    start = time.perf_counter()

    groups: dict[tuple, int] = {}
    group_data: list[dict] = []
    items: list[BatchItem | None] = [None] * len(queries)
    n_projections = 0
    projection_hits = 0
    lattice_hits = 0
    cards = index.cardinalities

    for qi, query in enumerate(queries):
        query.validate_against(index.table.schema)
        # Canonical focal key (shared with the cache and the serving
        # layer): a selection spanning an attribute's whole domain selects
        # nothing, so it is dropped — otherwise queries naming the same
        # focal subset differently (e.g. differing only in thresholds
        # after a full-domain spelling) split into separate groups and
        # n_groups overcounts distinct subsets.
        key = canonical_focal_key(query.range_selections, cards)
        if key not in groups:
            focal = query.focal_range(index.cardinalities)
            dq = index.table.tids_matching(query.range_selections)
            dq_size = ts.count(dq)
            if dq_size == 0:
                raise QueryError(f"query {qi}: focal subset is empty")
            packed_dq = kernels.pack(dq, index.tidset_words)
            rows = _group_candidate_rows(index, focal)
            # One batched record-level pass: every candidate's exact local
            # count, shared by all queries of the group and pre-sorted
            # descending so each query's threshold is a prefix cut.
            if len(rows):
                counts = kernels.and_count(
                    index.mip_tidset_matrix.take(rows, axis=0), packed_dq
                ).astype(np.int64)
                order = np.argsort(-counts, kind="stable")
                rows, counts = rows[order], counts[order]
            else:
                counts = np.zeros(0, dtype=np.int64)
            groups[key] = len(group_data)
            group_data.append({
                "focal": focal,
                "dq": dq,
                "dq_size": dq_size,
                "packed_dq": packed_dq,
                "rows": rows,
                "counts": counts,
                "kernel": None,  # focal projection, built on first use
                "lattice": {},   # Itemset -> its subset-lattice count row
            })
        gid = groups[key]
        data = group_data[gid]
        min_count = min_count_for(query.minsupp, data["dq_size"])
        # Counts are sorted descending: qualified candidates are a prefix.
        n_keep = int(np.searchsorted(-data["counts"], -min_count, side="right"))
        ctx = QueryContext(
            index=index,
            query=query,
            focal=data["focal"],
            dq=data["dq"],
            dq_size=data["dq_size"],
            min_count=min_count,
            expand=expand,
        )
        ctx._dq_packed = data["packed_dq"]
        if data["kernel"] is None:
            data["kernel"] = ctx.focal_kernel()  # builds + times the projection
            n_projections += 1
        else:
            ctx._focal_kernel = data["kernel"]
            projection_hits += 1
        rows_q = data["rows"][:n_keep]
        counts_q = data["counts"][:n_keep]
        keep = _aitem_mask(ctx, rows_q)
        qualified = QualifiedArray(index, rows_q[keep], counts_q[keep])
        shared = _rules_with_shared_lattice(ctx, qualified, data["lattice"])
        if shared is not None:
            rules, hits = shared
            lattice_hits += hits
        else:
            rules, _lookups, _kernel_s = _rules_from_qualified(ctx, qualified)
        items[qi] = BatchItem(
            query=query, rules=rules, dq_size=data["dq_size"], shared_group=gid
        )

    return BatchReport(
        items=[item for item in items if item is not None],
        n_groups=len(group_data),
        n_searches=len(group_data),
        elapsed=time.perf_counter() - start,
        n_projections=n_projections,
        projection_hits=projection_hits,
        lattice_hits=lattice_hits,
    )


def _rules_with_shared_lattice(
    ctx: QueryContext,
    qualified: QualifiedArray,
    memo: "dict[Itemset, np.ndarray]",
) -> tuple[list[Rule], int] | None:
    """Closed-mode rule generation replaying the group's lattice memo.

    Each qualified closure's subset-lattice count row is computed at most
    once per focal-subset group: rows already memoized by an earlier query
    of the group (at any threshold) are reused verbatim, only the missing
    sources hit the kernel, and extraction runs over the combined rows —
    the same :func:`rules_from_subset_lattices` call as the per-query
    path, so the rule sets are byte-identical (its canonical ordering is
    source-order independent).

    Returns ``(rules, n_memo_hits)``, or ``None`` to fall back to
    :func:`_rules_from_qualified` (expanded mode — sources depend on the
    query's own frequency floor, so rows are not reusable as-is — or a
    pathologically wide closure).
    """
    if ctx.expand:
        return None
    sources: list[Itemset] = []
    seen: set[Itemset] = set()
    for mip, local in qualified:
        itemset = mip.itemset
        if len(itemset) >= 2 and local > 0 and itemset not in seen:
            seen.add(itemset)
            sources.append(itemset)
    by_width: dict[int, list[Itemset]] = {}
    for itemset in sources:
        by_width.setdefault(len(itemset), []).append(itemset)
    if any(n > _LATTICE_MAX_WIDTH for n in by_width):
        return None  # pragma: no cover - beyond any schema in this repo
    hits = 0
    groups: list[tuple[list[Itemset], np.ndarray]] = []
    for n in sorted(by_width):
        group = by_width[n]
        missing = [s for s in group if s not in memo]
        if missing:
            counts_new = ctx.focal_kernel().count_subset_lattice(missing)
            for i, itemset in enumerate(missing):
                memo[itemset] = counts_new[i]
        hits += len(group) - len(missing)
        groups.append((group, np.stack([memo[s] for s in group])))
    rules = rules_from_subset_lattices(groups, ctx.dq_size, ctx.query.minconf)
    return rules, hits


def _group_candidate_rows(index: MIPIndex, focal) -> np.ndarray:
    """MIP rows overlapping ``focal``, array-native with pointer fallback.

    Mirrors the SEARCH operator: hull probe (flat arrays when the compile
    is current, Entry walk otherwise), then exact vectorized
    re-classification against the true per-attribute value sets.
    """
    hull = focal.hull()
    hits = index.rtree.search_arrays(hull)
    if hits is not None:
        rows = hits.rows.astype(np.intp, copy=False)
    else:
        entries = index.rtree.search(hull).entries
        rows = np.fromiter(
            (entry.payload.row for entry in entries),
            dtype=np.intp,
            count=len(entries),
        )
    if not len(rows):
        return rows
    overlaps, _contained = focal.classify_all(
        index.stats.mip_fixed_values.take(rows, axis=0)
    )
    return rows[overlaps]
