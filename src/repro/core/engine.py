"""The COLARM engine: the user-facing facade (Figure 2).

``Colarm`` wires the whole framework together: offline preprocessing
(MIP-index construction and optional cost calibration) at construction
time, then online query processing — optimizer-selected or forced-plan —
through :meth:`Colarm.query`.

    >>> from repro.dataset import salary_dataset
    >>> from repro.core.engine import Colarm
    >>> engine = Colarm(salary_dataset(), primary_support=0.15)
    >>> outcome = engine.query(
    ...     "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    ...     "WHERE RANGE Location = (Seattle) AND Gender = (F) "
    ...     "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    ... )
    >>> outcome.n_rules > 0
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import tidset as ts
from repro.cache import ARM_FAMILY, MIP_FAMILY, CachedLattice, RuleCache
from repro.core.calibration import (
    CalibrationReport,
    calibrate,
    calibrate_cache,
    calibrate_maintenance,
    calibrate_parallel,
    default_probe_queries,
)
from repro.core.costs import CostWeights
from repro.core.maintenance import MaintainedIndex
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.operators import ExecutionTrace
from repro.core.optimizer import ColarmOptimizer, PlanChoice
from repro.core.parser import parse_query
from repro.core.plans import PlanKind, PlanResult, execute_plan, plan_from_name
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.itemsets.apriori import min_count_for
from repro.itemsets.rules import Rule, rules_from_itemsets
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES

__all__ = ["QueryOutcome", "Colarm"]


@dataclass
class QueryOutcome:
    """Everything returned for one localized mining request."""

    rules: list[Rule]
    plan: PlanKind
    chosen_by: str                  # "optimizer" or "forced"
    choice: PlanChoice | None       # present when the optimizer ran
    result: PlanResult
    cached: bool = False            # served from the materialized cache

    @property
    def n_rules(self) -> int:
        return len(self.rules)

    @property
    def elapsed(self) -> float:
        return self.result.elapsed

    @property
    def dq_size(self) -> int:
        return self.result.dq_size


class Colarm:
    """Build once, query many: the localized rule mining engine."""

    def __init__(
        self,
        table: RelationalTable,
        primary_support: float,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        packing: str = "hilbert",
        weights: CostWeights | None = None,
        expand: bool = False,
    ):
        self.index: MIPIndex = build_mip_index(
            table, primary_support, max_entries=max_entries, packing=packing
        )
        self.expand = expand
        self.optimizer = ColarmOptimizer(self.index, weights)
        self.parallel = None
        self.cache: RuleCache | None = None
        self.maintenance: MaintainedIndex | None = None
        self._recompact_horizon = 100

    @classmethod
    def from_index(
        cls,
        index: MIPIndex,
        weights: CostWeights | None = None,
        expand: bool = False,
    ) -> "Colarm":
        """Wrap an already-built (e.g. loaded-from-disk) MIP-index."""
        engine = cls.__new__(cls)
        engine.index = index
        engine.expand = expand
        engine.optimizer = ColarmOptimizer(index, weights)
        engine.parallel = None
        engine.cache = None
        engine.maintenance = None
        engine._recompact_horizon = 100
        return engine

    # -- introspection ------------------------------------------------------

    @property
    def table(self) -> RelationalTable:
        return self.index.table

    @property
    def schema(self):
        return self.index.table.schema

    @property
    def n_mips(self) -> int:
        return self.index.n_mips

    # -- offline: calibration ------------------------------------------------

    def calibrate(
        self,
        probe_queries: list[LocalizedQuery] | None = None,
        n_probes: int = 8,
        seed: int = 0,
    ) -> CalibrationReport:
        """Fit the cost model's unit weights from a probe workload."""
        if probe_queries is None:
            probe_queries = default_probe_queries(
                self.index, n_queries=n_probes, seed=seed
            )
        report = calibrate(self.index, probe_queries, expand=self.expand)
        self.optimizer.set_weights(report.weights)
        return report

    # -- offline: sharded execution ------------------------------------------

    def configure(self, parallel=None) -> "Colarm":
        """Opt in to (or out of) sharded multi-process kernel execution.

        ``parallel`` accepts a :class:`repro.parallel.ParallelConfig`,
        ``True`` (defaults), or ``None``/``False`` to tear the pool down
        and return to serial execution.  Configuring:

        1. registers the index's kernel matrices and the compiled flat
           R-tree arrays in shared memory and starts the worker pool
           (:class:`repro.parallel.ParallelContext`);
        2. fits the ``par_dispatch``/``par_merge`` cost weights from the
           live pool (:func:`repro.core.calibration.calibrate_parallel`);
        3. installs the parallel cost profile in the optimizer, which
           from then on prices every plan both serial and sharded and
           chooses across all variants.

        Explicitly opt-in and idempotent; returns ``self`` for chaining.
        """
        from repro.parallel import ParallelConfig, ParallelContext

        if self.parallel is not None:
            self.parallel.close()
            self.parallel = None
            self.optimizer.set_parallel(None)
        if parallel is None or parallel is False:
            return self
        config = ParallelConfig() if parallel is True else parallel
        self.parallel = ParallelContext(self.index, config)
        self.optimizer.set_weights(
            calibrate_parallel(self.parallel, self.optimizer.weights)
        )
        self.optimizer.set_parallel(self.parallel.cost_profile())
        return self

    def close(self) -> None:
        """Release the shard pool and its shared segments (if configured)."""
        self.configure(parallel=None)

    # -- offline: materialized rule caches ------------------------------------

    def enable_cache(
        self,
        budget_bytes: int = 64 << 20,
        landmark_hits: int = 4,
        calibrate: bool = True,
        cache: RuleCache | None = None,
    ) -> "Colarm":
        """Attach a budget-bound materialized-result cache (:mod:`repro.cache`).

        Enabling:

        1. builds a :class:`~repro.cache.RuleCache` bound to this index
           (or adopts ``cache``, e.g. one warm-loaded from disk via
           :func:`repro.core.persistence.load_cache`);
        2. fits the ``cache_probe``/``cache_load`` cost weights from the
           live cache (:func:`repro.core.calibration.calibrate_cache`) —
           run *after* :meth:`calibrate`, which refits from plan traces
           and would reset them to defaults;
        3. installs the cache in the optimizer, which from then on probes
           it per query and prices a CACHE variant for every plan the
           cached entry can serve.

        Idempotent (replaces any previous cache); returns ``self``.
        """
        if cache is not None:
            if cache.expand != self.expand:
                raise ValueError(
                    f"cache expand={cache.expand} does not match "
                    f"engine expand={self.expand}"
                )
            self.cache = cache
        else:
            self.cache = RuleCache(
                self.index,
                budget_bytes=budget_bytes,
                landmark_hits=landmark_hits,
                expand=self.expand,
            )
        if calibrate:
            self.optimizer.set_weights(
                calibrate_cache(self.cache, self.optimizer.weights)
            )
        self.optimizer.set_cache(self.cache)
        return self

    def disable_cache(self) -> "Colarm":
        """Detach the materialized cache (queries mine fresh again)."""
        self.cache = None
        self.optimizer.set_cache(None)
        return self

    # -- offline: delta-store maintenance --------------------------------------

    def enable_maintenance(
        self,
        max_delta_fraction: float = 0.1,
        calibrate: bool = True,
        horizon: int = 100,
    ) -> "Colarm":
        """Make the engine ingest-while-serving (:mod:`repro.core.maintenance`).

        Enabling:

        1. wraps the index in a :class:`MaintainedIndex` whose array-native
           delta store every plan answers over (live main+delta, vectorized
           corrections) — the index object and its lineage are untouched;
        2. fits the ``delta_probe``/``delta_merge`` cost weights from the
           live delta store (:func:`repro.core.calibration.
           calibrate_maintenance`) — run *after* :meth:`calibrate`, which
           refits from plan traces and would reset them to defaults;
        3. installs the delta source in the optimizer, which from then on
           profiles the combined live focal subset and prices the delta
           toll into every MIP plan.

        Rebuild-vs-accumulate is then a *priced* decision: each optimized
        query compares the accumulated delta toll over ``horizon`` queries
        against the measured fold cost and starts a **background**
        recompaction when folding wins (the size backstop
        ``max_delta_fraction`` also triggers one).  The fold is installed
        on the serving thread at the next query or :meth:`poll_maintenance`
        call, rebinding the optimizer/cache/pool to the fresh index.

        Idempotent (re-enabling keeps the current delta store); returns
        ``self``.
        """
        if self.maintenance is None:
            self.maintenance = MaintainedIndex.from_index(
                self.index,
                max_delta_fraction=max_delta_fraction,
                auto_rebuild=False,
            )
        else:
            self.maintenance.max_delta_fraction = max_delta_fraction
        self._recompact_horizon = horizon
        if calibrate:
            self.optimizer.set_weights(
                calibrate_maintenance(self.maintenance, self.optimizer.weights)
            )
        self.optimizer.set_delta(self.maintenance)
        return self

    def disable_maintenance(self) -> "Colarm":
        """Fold any outstanding delta and return to an immutable index."""
        if self.maintenance is None:
            return self
        self.maintenance.poll_recompaction(wait=True)
        self._install_recompaction()
        if (
            self.maintenance.n_delta_records
            or self.maintenance.n_main_live != self.maintenance.n_main_records
        ):
            self.maintenance.rebuild()
            self._rebind_index(self.maintenance.index)
        self.maintenance = None
        self.optimizer.set_delta(None)
        return self

    def append(self, records) -> int:
        """Ingest new records; returns the index generation after the append.

        Requires :meth:`enable_maintenance`.  The append is a vectorized
        delta-store insert (no index rebuild on the hot path); if the live
        delta outgrows ``max_delta_fraction`` of the main data a
        *background* recompaction starts, folding the delta into a fresh
        index off the serving path.
        """
        self._require_maintenance().append(records)
        self._maybe_recompact()
        return self.index.generation

    def delete(self, tids) -> int:
        """Tombstone records by tid; returns the generation after."""
        self._require_maintenance().delete(tids)
        self._maybe_recompact()
        return self.index.generation

    def poll_maintenance(self, wait: bool = False) -> bool:
        """Install a finished background fold; True if one was installed."""
        if self.maintenance is None:
            return False
        self.maintenance.poll_recompaction(wait=wait)
        if self.maintenance.index is self.index:
            return False
        self._rebind_index(self.maintenance.index)
        return True

    def _require_maintenance(self) -> MaintainedIndex:
        if self.maintenance is None:
            raise ValueError(
                "maintenance is not enabled; call enable_maintenance() first"
            )
        return self.maintenance

    def _pending_mutations(self) -> int:
        m = self.maintenance
        return m.n_delta_records + (m.n_main_records - m.n_main_live)

    def _build_cost_estimate(self) -> float:
        """Fold cost in seconds: measured when available, sized otherwise."""
        if self.maintenance.last_build_s > 0.0:
            return self.maintenance.last_build_s
        return max(0.05, 2e-6 * self.index.table.n_records)

    def _maybe_recompact(self) -> None:
        """The size backstop: fold when the delta outgrows its fraction."""
        m = self.maintenance
        if m.recompacting:
            self.poll_maintenance()
            return
        if self._pending_mutations() > m.max_delta_fraction * max(
            m.n_main_records, 1
        ):
            m.begin_recompaction()

    def _advise_recompact(self, q: LocalizedQuery) -> None:
        """The priced trigger: fold when the accumulated delta toll over
        the recompaction horizon exceeds the fold cost."""
        m = self.maintenance
        if m.recompacting or self._pending_mutations() == 0:
            return
        advice = self.optimizer.recompaction_advice(
            q, self._build_cost_estimate(), horizon=self._recompact_horizon
        )
        if advice.recommended:
            m.begin_recompaction()

    def _install_recompaction(self) -> None:
        """Adopt a replacement index if one is ready (a finished background
        fold, or a fold someone installed on the maintenance object
        directly — identity, not the poll result, is the trigger)."""
        self.poll_maintenance()

    def _rebind_index(self, index: MIPIndex) -> None:
        """Swap in a replacement index across every attached component."""
        self.index = index
        self.optimizer.rebind_index(index)
        if self.cache is not None:
            self.cache.rebind_index(index)
        if self.parallel is not None:
            # The pool's shared segments hold the old index's matrices;
            # restart it against the replacement with the same config.
            config = self.parallel.config
            self.parallel.close()
            from repro.parallel import ParallelContext

            self.parallel = ParallelContext(index, config)
            self.optimizer.set_parallel(self.parallel.cost_profile())

    # -- online: queries -------------------------------------------------------

    def parse(self, text: str) -> LocalizedQuery:
        """Parse a textual ``REPORT LOCALIZED ASSOCIATION RULES`` query."""
        return parse_query(text, self.schema).query

    def query(
        self,
        request: LocalizedQuery | str,
        plan: PlanKind | str | None = None,
        use_cache: bool = True,
        choice: PlanChoice | None = None,
    ) -> QueryOutcome:
        """Answer one localized mining request.

        With ``plan=None`` the COLARM optimizer picks the strategy; passing
        a :class:`PlanKind` (or its paper name, e.g. ``"SS-E-U-V"``) forces
        a specific plan.

        When sharded execution is configured, the optimizer's choice also
        says whether to run the plan's sharded variant — the context is
        attached only then, so a serial pick costs nothing extra.  Forced
        plans always get the context (the per-call break-even gate still
        applies); either way the rules are identical to serial.

        When a materialized cache is enabled (and ``use_cache``), the
        optimizer's choice also says whether to *serve* the plan from the
        cache — byte-identical to executing it fresh — and every fresh
        execution populates the cache for the next repeat.  Forced plans
        consult only the exact-key rules tier of their own plan family.
        ``use_cache=False`` bypasses both consulting and populating.

        A caller that already priced the request (the serving layer's
        admission control) can pass its :class:`PlanChoice` back via
        ``choice`` to skip the second ``optimizer.choose``.  The choice is
        reused only while it is still valid — same index generation, and
        not a CACHE pick when this call does not consult the cache — and
        silently re-chosen otherwise, so a stale handoff can never force
        a stale serve.
        """
        q = self.parse(request) if isinstance(request, str) else request
        if self.maintenance is not None:
            self._install_recompaction()
        consult = use_cache and self.cache is not None
        if plan is None:
            if choice is not None and (
                choice.generation != self.index.generation
                or (choice.cached and not consult)
            ):
                choice = None
            if choice is None:
                choice = self.optimizer.choose(q, use_cache=consult)
            kind, chosen_by = choice.kind, "optimizer"
            parallel = self.parallel if choice.parallel else None
            if self.maintenance is not None:
                self._advise_recompact(q)
            if choice.cached:
                served = self._serve_cached(q, kind, choice)
                if served is not None:
                    return served
        else:
            choice = None
            kind = plan_from_name(plan) if isinstance(plan, str) else plan
            chosen_by = "forced"
            parallel = self.parallel
            if consult:
                served = self._serve_forced_cached(q, kind)
                if served is not None:
                    return served
        generation = self.cache.generation() if consult else None
        result = execute_plan(
            kind, self.index, q, expand=self.expand, parallel=parallel,
            delta=self.maintenance,
        )
        if consult:
            self._populate_cache(q, kind, result, generation)
        return QueryOutcome(
            rules=result.rules,
            plan=kind,
            chosen_by=chosen_by,
            choice=choice,
            result=result,
        )

    def _serve_cached(
        self, q: LocalizedQuery, kind: PlanKind, choice: PlanChoice
    ) -> QueryOutcome | None:
        """Serve the optimizer's CACHE pick; ``None`` falls back to fresh
        execution (the entry was evicted between probe and serve)."""
        probe = choice.cache_probe
        start = time.perf_counter()
        if probe.kind == "rules":
            rules = self.cache.get_rules(q, probe.family)
        else:
            lattice = self.cache.get_lattice(q)
            if lattice is None:
                return None
            rules = lattice.extract(q.minconf)
            # The extracted set upgrades to a full rules hit on the next
            # exact-key repeat (lattice hits only price MIP plans).
            self.cache.put_rules(
                q, rules, family=MIP_FAMILY,
                generation=self.cache.generation(),
            )
        if rules is None:
            return None
        elapsed = time.perf_counter() - start
        result = PlanResult(
            kind=kind,
            rules=rules,
            trace=ExecutionTrace(),
            elapsed=elapsed,
            dq_size=choice.profile.dq_size,
        )
        return QueryOutcome(
            rules=rules,
            plan=kind,
            chosen_by="optimizer",
            choice=choice,
            result=result,
            cached=True,
        )

    def _serve_forced_cached(
        self, q: LocalizedQuery, kind: PlanKind
    ) -> QueryOutcome | None:
        """Exact-key rules-tier lookup for a forced plan (its own family)."""
        q.validate_against(self.schema)
        family = ARM_FAMILY if kind is PlanKind.ARM else MIP_FAMILY
        start = time.perf_counter()
        rules = self.cache.get_rules(q, family)
        if rules is None:
            return None
        dq_size = ts.count(
            self.index.table.tids_matching(q.range_selections)
        )
        elapsed = time.perf_counter() - start
        result = PlanResult(
            kind=kind,
            rules=rules,
            trace=ExecutionTrace(),
            elapsed=elapsed,
            dq_size=dq_size,
        )
        return QueryOutcome(
            rules=rules,
            plan=kind,
            chosen_by="forced",
            choice=None,
            result=result,
            cached=True,
        )

    def _populate_cache(
        self,
        q: LocalizedQuery,
        kind: PlanKind,
        result: PlanResult,
        generation: int | None,
    ) -> None:
        """Insert a fresh execution's products under its pre-execution
        generation snapshot (refused if the index mutated mid-flight)."""
        if kind is PlanKind.ARM:
            self.cache.put_rules(
                q, result.rules, family=ARM_FAMILY, generation=generation
            )
            return
        self.cache.put_rules(
            q, result.rules, family=MIP_FAMILY, generation=generation
        )
        if result.lattice_groups is not None:
            lattice = CachedLattice(
                groups=tuple(
                    (tuple(group), counts)
                    for group, counts in result.lattice_groups
                ),
                dq_size=result.dq_size,
                extract_min_count=(
                    min_count_for(q.minsupp, result.dq_size)
                    if self.expand
                    else None
                ),
            )
            self.cache.put_lattice(q, lattice, generation=generation)

    def compare_plans(
        self, request: LocalizedQuery | str
    ) -> dict[PlanKind, PlanResult]:
        """Execute all six plans for one request (the evaluation harness)."""
        q = self.parse(request) if isinstance(request, str) else request
        return {
            kind: execute_plan(
                kind, self.index, q, expand=self.expand,
                delta=self.maintenance,
            )
            for kind in PlanKind
        }

    def choose_plan(self, request: LocalizedQuery | str) -> PlanChoice:
        """The optimizer's suggestion without executing anything."""
        q = self.parse(request) if isinstance(request, str) else request
        return self.optimizer.choose(q)

    # -- convenience: global rules ------------------------------------------------

    def global_rules(self, minsupp: float, minconf: float) -> list[Rule]:
        """Classic *global* rules straight from the stored closed itemsets.

        The baseline analysts start from; comparing these against localized
        query results is how Simpson's-paradox effects are surfaced
        (Section 5.3 / :mod:`repro.analysis.simpson`).
        """
        full = ts.full(self.table.n_records)

        def global_count(items):
            return self.index.ittree.local_support_count(items, full)

        return rules_from_itemsets(
            [mip.itemset for mip in self.index.mips],
            global_count,
            self.table.n_records,
            minsupp,
            minconf,
        )
