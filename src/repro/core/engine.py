"""The COLARM engine: the user-facing facade (Figure 2).

``Colarm`` wires the whole framework together: offline preprocessing
(MIP-index construction and optional cost calibration) at construction
time, then online query processing — optimizer-selected or forced-plan —
through :meth:`Colarm.query`.

    >>> from repro.dataset import salary_dataset
    >>> from repro.core.engine import Colarm
    >>> engine = Colarm(salary_dataset(), primary_support=0.15)
    >>> outcome = engine.query(
    ...     "REPORT LOCALIZED ASSOCIATION RULES FROM salary "
    ...     "WHERE RANGE Location = (Seattle) AND Gender = (F) "
    ...     "HAVING minsupport = 0.5 AND minconfidence = 0.8;"
    ... )
    >>> outcome.n_rules > 0
    True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import tidset as ts
from repro.core.calibration import (
    CalibrationReport,
    calibrate,
    calibrate_parallel,
    default_probe_queries,
)
from repro.core.costs import CostWeights
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.optimizer import ColarmOptimizer, PlanChoice
from repro.core.parser import parse_query
from repro.core.plans import PlanKind, PlanResult, execute_plan, plan_from_name
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.itemsets.rules import Rule, rules_from_itemsets
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES

__all__ = ["QueryOutcome", "Colarm"]


@dataclass
class QueryOutcome:
    """Everything returned for one localized mining request."""

    rules: list[Rule]
    plan: PlanKind
    chosen_by: str                  # "optimizer" or "forced"
    choice: PlanChoice | None       # present when the optimizer ran
    result: PlanResult

    @property
    def n_rules(self) -> int:
        return len(self.rules)

    @property
    def elapsed(self) -> float:
        return self.result.elapsed

    @property
    def dq_size(self) -> int:
        return self.result.dq_size


class Colarm:
    """Build once, query many: the localized rule mining engine."""

    def __init__(
        self,
        table: RelationalTable,
        primary_support: float,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        packing: str = "hilbert",
        weights: CostWeights | None = None,
        expand: bool = False,
    ):
        self.index: MIPIndex = build_mip_index(
            table, primary_support, max_entries=max_entries, packing=packing
        )
        self.expand = expand
        self.optimizer = ColarmOptimizer(self.index, weights)
        self.parallel = None

    @classmethod
    def from_index(
        cls,
        index: MIPIndex,
        weights: CostWeights | None = None,
        expand: bool = False,
    ) -> "Colarm":
        """Wrap an already-built (e.g. loaded-from-disk) MIP-index."""
        engine = cls.__new__(cls)
        engine.index = index
        engine.expand = expand
        engine.optimizer = ColarmOptimizer(index, weights)
        engine.parallel = None
        return engine

    # -- introspection ------------------------------------------------------

    @property
    def table(self) -> RelationalTable:
        return self.index.table

    @property
    def schema(self):
        return self.index.table.schema

    @property
    def n_mips(self) -> int:
        return self.index.n_mips

    # -- offline: calibration ------------------------------------------------

    def calibrate(
        self,
        probe_queries: list[LocalizedQuery] | None = None,
        n_probes: int = 8,
        seed: int = 0,
    ) -> CalibrationReport:
        """Fit the cost model's unit weights from a probe workload."""
        if probe_queries is None:
            probe_queries = default_probe_queries(
                self.index, n_queries=n_probes, seed=seed
            )
        report = calibrate(self.index, probe_queries, expand=self.expand)
        self.optimizer.set_weights(report.weights)
        return report

    # -- offline: sharded execution ------------------------------------------

    def configure(self, parallel=None) -> "Colarm":
        """Opt in to (or out of) sharded multi-process kernel execution.

        ``parallel`` accepts a :class:`repro.parallel.ParallelConfig`,
        ``True`` (defaults), or ``None``/``False`` to tear the pool down
        and return to serial execution.  Configuring:

        1. registers the index's kernel matrices and the compiled flat
           R-tree arrays in shared memory and starts the worker pool
           (:class:`repro.parallel.ParallelContext`);
        2. fits the ``par_dispatch``/``par_merge`` cost weights from the
           live pool (:func:`repro.core.calibration.calibrate_parallel`);
        3. installs the parallel cost profile in the optimizer, which
           from then on prices every plan both serial and sharded and
           chooses across all variants.

        Explicitly opt-in and idempotent; returns ``self`` for chaining.
        """
        from repro.parallel import ParallelConfig, ParallelContext

        if self.parallel is not None:
            self.parallel.close()
            self.parallel = None
            self.optimizer.set_parallel(None)
        if parallel is None or parallel is False:
            return self
        config = ParallelConfig() if parallel is True else parallel
        self.parallel = ParallelContext(self.index, config)
        self.optimizer.set_weights(
            calibrate_parallel(self.parallel, self.optimizer.weights)
        )
        self.optimizer.set_parallel(self.parallel.cost_profile())
        return self

    def close(self) -> None:
        """Release the shard pool and its shared segments (if configured)."""
        self.configure(parallel=None)

    # -- online: queries -------------------------------------------------------

    def parse(self, text: str) -> LocalizedQuery:
        """Parse a textual ``REPORT LOCALIZED ASSOCIATION RULES`` query."""
        return parse_query(text, self.schema).query

    def query(
        self,
        request: LocalizedQuery | str,
        plan: PlanKind | str | None = None,
    ) -> QueryOutcome:
        """Answer one localized mining request.

        With ``plan=None`` the COLARM optimizer picks the strategy; passing
        a :class:`PlanKind` (or its paper name, e.g. ``"SS-E-U-V"``) forces
        a specific plan.

        When sharded execution is configured, the optimizer's choice also
        says whether to run the plan's sharded variant — the context is
        attached only then, so a serial pick costs nothing extra.  Forced
        plans always get the context (the per-call break-even gate still
        applies); either way the rules are identical to serial.
        """
        q = self.parse(request) if isinstance(request, str) else request
        if plan is None:
            choice = self.optimizer.choose(q)
            kind, chosen_by = choice.kind, "optimizer"
            parallel = self.parallel if choice.parallel else None
        else:
            choice = None
            kind = plan_from_name(plan) if isinstance(plan, str) else plan
            chosen_by = "forced"
            parallel = self.parallel
        result = execute_plan(
            kind, self.index, q, expand=self.expand, parallel=parallel
        )
        return QueryOutcome(
            rules=result.rules,
            plan=kind,
            chosen_by=chosen_by,
            choice=choice,
            result=result,
        )

    def compare_plans(
        self, request: LocalizedQuery | str
    ) -> dict[PlanKind, PlanResult]:
        """Execute all six plans for one request (the evaluation harness)."""
        q = self.parse(request) if isinstance(request, str) else request
        return {
            kind: execute_plan(kind, self.index, q, expand=self.expand)
            for kind in PlanKind
        }

    def choose_plan(self, request: LocalizedQuery | str) -> PlanChoice:
        """The optimizer's suggestion without executing anything."""
        q = self.parse(request) if isinstance(request, str) else request
        return self.optimizer.choose(q)

    # -- convenience: global rules ------------------------------------------------

    def global_rules(self, minsupp: float, minconf: float) -> list[Rule]:
        """Classic *global* rules straight from the stored closed itemsets.

        The baseline analysts start from; comparing these against localized
        query results is how Simpson's-paradox effects are surfaced
        (Section 5.3 / :mod:`repro.analysis.simpson`).
        """
        full = ts.full(self.table.n_records)

        def global_count(items):
            return self.index.ittree.local_support_count(items, full)

        return rules_from_itemsets(
            [mip.itemset for mip in self.index.mips],
            global_count,
            self.table.n_records,
            minsupp,
            minconf,
        )
