"""Parser for the paper's textual query language (Section 2.2).

Accepts the ``REPORT LOCALIZED ASSOCIATION RULES`` syntax::

    REPORT LOCALIZED ASSOCIATION RULES
    FROM salary
    WHERE RANGE Location = (Seattle) AND Gender = (F)
    AND ITEM ATTRIBUTES Age, Salary
    HAVING minsupport = 0.5 AND minconfidence = 0.8;

Keywords are case-insensitive; value lists may use parentheses or braces;
attribute names and value labels may be double-quoted when they contain
spaces (e.g. ``"QA Lead"``).  The ``FROM`` clause names the dataset (kept
for API symmetry — the engine is already bound to one table) and the
``ITEM ATTRIBUTES`` clause is optional, defaulting to all attributes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.query import LocalizedQuery
from repro.dataset.schema import Schema
from repro.errors import ParseError

__all__ = ["ParsedQuery", "parse_query"]

_TOKEN_RE = re.compile(
    r"""
    "(?P<quoted>[^"]*)"      # double-quoted label
    | (?P<word>[^\s(){}=,;]+)  # bare word (labels like 20-30, 90K-120K, idents)
    | (?P<punct>[(){}=,;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "report", "localized", "association", "rules", "from", "where", "range",
    "and", "item", "attributes", "having", "minsupport", "minconfidence",
}


@dataclass(frozen=True)
class ParsedQuery:
    """Outcome of parsing: the dataset name and the structured query."""

    dataset: str
    query: LocalizedQuery


class _Tokens:
    def __init__(self, text: str):
        self._tokens: list[tuple[str, bool]] = []  # (text, was_quoted)
        pos = 0
        for match in _TOKEN_RE.finditer(text):
            if text[pos:match.start()].strip():
                raise ParseError(
                    f"unexpected characters {text[pos:match.start()]!r}"
                )
            pos = match.end()
            if match.group("quoted") is not None:
                self._tokens.append((match.group("quoted"), True))
            elif match.group("word") is not None:
                self._tokens.append((match.group("word"), False))
            else:
                self._tokens.append((match.group("punct"), False))
        if text[pos:].strip():
            raise ParseError(f"unexpected trailing characters {text[pos:]!r}")
        self._i = 0

    def peek(self) -> str | None:
        return self._tokens[self._i][0] if self._i < len(self._tokens) else None

    def peek_keyword(self) -> str | None:
        """Lower-cased next token if it is an unquoted keyword, else None."""
        if self._i >= len(self._tokens):
            return None
        text, quoted = self._tokens[self._i]
        lowered = text.lower()
        return lowered if not quoted and lowered in _KEYWORDS else None

    def next(self, expect_keyword: str | None = None) -> str:
        if self._i >= len(self._tokens):
            raise ParseError(
                f"unexpected end of query"
                + (f"; expected {expect_keyword!r}" if expect_keyword else "")
            )
        text, _quoted = self._tokens[self._i]
        self._i += 1
        if expect_keyword is not None and text.lower() != expect_keyword:
            raise ParseError(f"expected {expect_keyword!r}, got {text!r}")
        return text

    def accept(self, token: str) -> bool:
        if self.peek() is not None and self.peek().lower() == token:
            self._i += 1
            return True
        return False

    def at_end(self) -> bool:
        return self._i >= len(self._tokens)


def parse_query(text: str, schema: Schema) -> ParsedQuery:
    """Parse a textual localized mining query against a schema."""
    tokens = _Tokens(text)
    for keyword in ("report", "localized", "association", "rules", "from"):
        tokens.next(expect_keyword=keyword)
    dataset = tokens.next()
    tokens.next(expect_keyword="where")
    tokens.next(expect_keyword="range")

    ranges: dict[str, list[str]] = {}
    while True:
        name = tokens.next()
        if not tokens.accept("="):
            raise ParseError(f"expected '=' after range attribute {name!r}")
        values = _parse_value_list(tokens)
        if name in ranges:
            raise ParseError(f"range attribute {name!r} given twice")
        ranges[name] = values
        if tokens.accept(","):
            continue
        if tokens.peek_keyword() == "and" and _next_is_range_attr(tokens):
            tokens.next()  # consume AND, next attribute follows
            continue
        break

    item_attributes: list[str] | None = None
    tokens.accept("and")
    if tokens.peek_keyword() == "item":
        tokens.next(expect_keyword="item")
        tokens.next(expect_keyword="attributes")
        item_attributes = [tokens.next()]
        while tokens.accept(","):
            item_attributes.append(tokens.next())
        tokens.accept("and")

    tokens.next(expect_keyword="having")
    thresholds: dict[str, float] = {}
    for position in range(2):
        key = tokens.next().lower()
        if key not in ("minsupport", "minconfidence"):
            raise ParseError(
                f"expected minsupport/minconfidence in HAVING, got {key!r}"
            )
        if not tokens.accept("="):
            raise ParseError(f"expected '=' after {key}")
        raw = tokens.next()
        try:
            value = float(raw.rstrip("%")) / (100.0 if raw.endswith("%") else 1.0)
        except ValueError:
            raise ParseError(f"bad threshold value {raw!r} for {key}") from None
        if key in thresholds:
            raise ParseError(f"{key} given twice")
        thresholds[key] = value
        if position == 0:
            tokens.next(expect_keyword="and")
    tokens.accept(";")
    if not tokens.at_end():
        raise ParseError(f"unexpected token {tokens.peek()!r} after query end")

    query = LocalizedQuery.from_labels(
        schema,
        ranges={name: values for name, values in ranges.items()},
        minsupp=thresholds["minsupport"],
        minconf=thresholds["minconfidence"],
        item_attributes=item_attributes,
    )
    return ParsedQuery(dataset=dataset, query=query)


def _parse_value_list(tokens: _Tokens) -> list[str]:
    """Parse ``( v1, v2, ... )`` or ``{ v1, v2, ... }`` or a single value."""
    closer = None
    if tokens.accept("("):
        closer = ")"
    elif tokens.accept("{"):
        closer = "}"
    values = [tokens.next()]
    while tokens.accept(","):
        values.append(tokens.next())
    if closer is not None and not tokens.accept(closer):
        raise ParseError(f"expected {closer!r} to close value list")
    return values


def _next_is_range_attr(tokens: _Tokens) -> bool:
    """Lookahead: after AND, does another ``attr = (...)`` follow?

    Distinguishes ``AND Gender = (F)`` from ``AND ITEM ATTRIBUTES ...`` and
    ``AND HAVING ...`` continuations.
    """
    i = tokens._i
    if i + 2 >= len(tokens._tokens):
        return False
    nxt, nxt_quoted = tokens._tokens[i + 1]
    eq, _ = tokens._tokens[i + 2]
    if not nxt_quoted and nxt.lower() in ("item", "having"):
        return False
    return eq == "="
