"""The COLARM cost model (Equations 1-6, Table 4).

Each plan's cost is a weighted sum of *load features* — the operator-level
work estimates the paper's equations describe:

* ``search``    — expected R-tree node accesses (Eq. 1/3 COST(S)/COST(SS),
  via the Theodoridis-Sellis window-query model, with the supported
  filter's per-level pruning fractions for SS) plus the per-candidate
  exact classification;
* ``eliminate`` — record-level support checks, in tidset-word units
  (Eq. 1 COST(E) = |{I^Q_S}| x |D^Q|); SS-E-U-V pays only for partially
  overlapped candidates (Lemma 4.5);
* ``verify``    — support-counting work inside VERIFY: one focal
  projection of the item tidsets (all item rows times the full tidset
  width) plus the antecedent family's batched kernel evaluations at the
  *projected* ``|D^Q|``-word width (Eq. 1 COST(V));
* ``rulegen``   — rule extraction proper: the per-candidate antecedent /
  consequent enumeration and vectorized confidence pass, scaling with the
  qualified fan-out but independent of the tidset width;
* ``select``    — focal-subset extraction (Eq. 6 COST(sigma));
* ``arm``       — from-scratch mining work (Eq. 6 COST(eps_AR)), sized by
  an independence-model estimate of the *locally* frequent itemsets;
* ``const``     — fixed per-pipeline-stage overhead (what selection
  push-up saves).

The cardinality estimates behind the features implement Lemmas 4.1-4.5:
expected overlapping MIPs from Minkowski-sum extents, supported-filter
selectivity from the precomputed global-count distribution, and the
contained/partial split from per-attribute fixing probabilities.  The unit
weights are fitted by :mod:`repro.core.calibration`; evaluating all six
formulae is a constant-time computation, as Section 3.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import FocalRange, LocalizedQuery
from repro.core.stats import IndexStatistics
from repro.core.plans import PlanKind
from repro.rtree.costmodel import expected_leaf_matches, expected_node_accesses

__all__ = [
    "ArmModelStats",
    "CostWeights",
    "ParallelCostProfile",
    "QueryProfile",
    "CostModel",
    "DEFAULT_WEIGHTS",
]

#: Uncalibrated per-unit weights (seconds per load unit), rough orders of
#: magnitude for CPython; calibration replaces them with fitted values.
#: ``par_dispatch``/``par_merge`` price the sharded plan variants only
#: (per-shard-task pool round-trips and per-shard partial merges); they are
#: fitted from the live pool by ``calibration.calibrate_parallel`` and never
#: appear in a serial load vector.  ``cache_probe``/``cache_load`` price the
#: CACHE plan variants only (one materialized-tier probe per query, plus the
#: per-element serve cost — a rules hit copies ``n_rules`` references, a
#: lattice hit gathers ``lattice_cells`` counts before re-extracting); they
#: are fitted from the live cache by ``calibration.calibrate_cache`` and
#: never appear in a serial load vector either.
#: ``delta_probe``/``delta_merge`` price the delta-store corrections of a
#: maintained index (per-candidate AND+popcount over the delta MIP matrix,
#: and the delta lattice build+merge in rule generation); they are fitted
#: from the live delta store by ``calibration.calibrate_maintenance`` and
#: appear in a load vector only while un-folded delta records exist — the
#: optimizer's recompaction advice compares their accumulated toll against
#: the cost of folding (see ``ColarmOptimizer.recompaction_advice``).
DEFAULT_WEIGHTS: dict[str, float] = {
    "search": 3e-6,
    "eliminate": 3e-8,
    "verify": 4e-8,
    "rulegen": 5e-7,
    "select": 4e-7,
    "arm": 2e-7,
    "const": 5e-5,
    "par_dispatch": 2e-4,
    "par_merge": 1e-9,
    "cache_probe": 5e-6,
    "cache_load": 2e-8,
    "delta_probe": 3e-8,
    "delta_merge": 4e-8,
}


@dataclass(frozen=True)
class ParallelCostProfile:
    """Host and pool facts the parallel plan variants are priced against.

    ``n_shards`` sizes the dispatch and merge terms (one task and one
    partial per shard, regardless of core count); ``effective_workers``
    is the concurrency the host can actually deliver —
    ``min(n_workers, n_shards, available_cpus())`` — and divides the
    record-partitioned work terms.  On a single-core host it is 1, the
    work terms don't shrink, the dispatch term still costs, and the
    optimizer correctly prices every parallel variant above its serial
    twin.
    """

    n_shards: int
    effective_workers: int


@dataclass(frozen=True)
class CostWeights:
    """Per-feature unit costs used to price the load vectors."""

    weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def price(self, loads: dict[str, float]) -> float:
        return sum(self.weights.get(name, 0.0) * load for name, load in loads.items())


@dataclass(frozen=True)
class QueryProfile:
    """Query-derived quantities shared by all six cost formulae.

    The cardinalities (``n_cands*``, ``est_qualified*``) come from a
    vectorized pass over the precomputed per-MIP statistics
    (:class:`~repro.core.stats.IndexStatistics`): exact geometric overlap
    and containment counts, exact supported-filter selectivity, and a
    local-support *upper bound* per MIP (the minimum of its per-range-
    attribute projected counts) standing in for the record-level check.
    When the per-item profile is unavailable, the distribution-based
    Lemma 4.1/4.2 estimates take over.
    """

    hull_extents: tuple[int, ...]
    min_count: int           # ceil(minsupp * |D^Q|)
    global_floor: int        # ceil(minsupp * |D|): global count needed to pass
    dq_size: int
    aitem_fraction: float    # P(candidate itemset lies within Aitem)
    contained_fraction: float  # P(overlapping MIP is fully contained)
    n_cands: float             # MIPs geometrically overlapping the region
    n_cands_supported: float   # ... also passing the supported filter
    n_contained: float         # ... fully contained (of n_cands_supported)
    est_qualified: float       # expected ELIMINATE survivors (Aitem applied)
    est_qualified_partial: float  # survivors among partially overlapped MIPs
    qualified_fanout: float    # sum of 2**length over the expected survivors
    arm_itemsets: float        # model-based locally-frequent itemset count
    arm_fanout: float          # ... and its 2**length rule-generation mass
    #: Measured local structure behind the ARM estimate (None when the
    #: per-item tidsets were unavailable and stored-MIP survivors stood in).
    arm_stats: "ArmModelStats | None" = None
    #: Live delta-store records awaiting the next fold (0 = immutable
    #: index; the delta load terms then vanish from every plan).
    delta_records: int = 0
    #: Live delta records inside the focal subset (``|D^Q ∩ delta|``).
    delta_dq_size: int = 0
    #: Packed 64-bit words per delta-matrix row at profile time.
    delta_words: int = 0

    @classmethod
    def from_query(
        cls,
        query: LocalizedQuery,
        focal: FocalRange,
        stats: IndexStatistics,
        dq_size: int,
        min_count: int,
        item_local_tidsets: "dict[tuple[int, int], int] | None" = None,
        dq: int | None = None,
        delta_records: int = 0,
        delta_dq_size: int = 0,
        delta_words: int = 0,
    ) -> "QueryProfile":
        """Build the profile.

        ``item_local_tidsets`` maps each (attribute, value) item to its
        tidset and ``dq`` is the focal tidset; together they let the
        profile measure the *exact* locally frequent item and item-pair
        counts (a few hundred bitmask ANDs — microseconds).  These feed
        the clique-model estimate of ARM's from-scratch mining work, which
        must account for locally frequent itemsets *below* the index's
        primary floor; without them the stored-MIP survivors stand in.
        """
        exact = query.minsupp * stats.n_records
        global_floor = int(exact)
        if global_floor < exact:
            global_floor += 1
        global_floor = max(global_floor, 1)
        aitem_fraction = _aitem_fraction(query, stats)
        contained_fraction = _contained_fraction(query, focal, stats)
        cards = _vectorized_cardinalities(
            query, focal, stats, min_count, global_floor, aitem_fraction,
            contained_fraction,
        )
        arm_stats = None
        if item_local_tidsets is not None and dq is not None and dq_size > 0:
            arm_stats = _model_arm_counts(
                query, item_local_tidsets, dq, dq_size, min_count
            )
            arm_itemsets = arm_stats.est_itemsets
            arm_fanout = arm_stats.est_fanout
        else:
            arm_itemsets = cards["est_qualified"]
            arm_fanout = cards["qualified_fanout"]
        return cls(
            hull_extents=focal.hull_extents(),
            min_count=min_count,
            global_floor=global_floor,
            dq_size=dq_size,
            aitem_fraction=aitem_fraction,
            contained_fraction=contained_fraction,
            arm_itemsets=arm_itemsets,
            arm_fanout=arm_fanout,
            arm_stats=arm_stats,
            delta_records=delta_records,
            delta_dq_size=delta_dq_size,
            delta_words=delta_words,
            **cards,
        )


#: At most this many locally frequent items have their pairwise supports
#: measured exactly; beyond it the pair density is extrapolated.
_ARM_MODEL_MAX_ITEMS = 48
#: At most this many of the strongest items have their *triangles* (level-3
#: itemsets) measured exactly; C(32, 3) ≈ 5k masked ANDs worst case.
_ARM_MODEL_MAX_TRIANGLE_ITEMS = 32
#: Itemset-length cap for the clique-model series (2**k saturates anyway).
_ARM_MODEL_MAX_LENGTH = 16
#: Chain-length caps for the measured lower bound (2**L / 3**L saturate).
_ARM_CHAIN_COUNT_CAP = 16
_ARM_CHAIN_FANOUT_CAP = 13
#: Per-candidate constant overhead of the from-scratch miner, in tidset-word
#: units: candidate generation + support-dict lookup cost a few hundred
#: nanoseconds regardless of how narrow the focal tidset is.
_ARM_OP_OVERHEAD_WORDS = 8.0
#: Fixed setup cost of one batched rule-extraction pass, in fan-out units:
#: numpy dispatch over the lattice chunks, the packed-rank lexsort, and the
#: per-width group loop amount to roughly two thousand fan-out units of
#: vectorized work regardless of how many splits are actually checked.
_RULEGEN_OVERHEAD_UNITS = 2048.0


@dataclass(frozen=True)
class ArmModelStats:
    """Measured structure of the focal subset's frequent-item graph.

    Everything here comes from exact bitmask measurements over the focal
    tidset — the quantities the density-aware ARM estimate is conditioned
    on.  They are exposed (through :class:`QueryProfile`) so calibration
    can fit the ``arm`` weight against them and the accuracy bench can
    report estimate-vs-actual residuals alongside the structure that
    produced each estimate.
    """

    f1: int                 # exact locally frequent items
    sample_size: int        # items with exact pairwise measurements
    pairs_sampled: int      # pairs measured (C(sample_size, 2))
    f2_sampled: int         # exact locally frequent pairs in the sample
    density: float          # f2_sampled / pairs_sampled
    degree_mean: float      # mean frequent-pair degree over the sample
    degree_max: int         # max frequent-pair degree over the sample
    core_size: int          # densest degree-ordered prefix (top-clique core)
    core_density: float     # pair density inside that core
    triangle_items: int     # items with exact triangle measurements
    triangles_candidate: int  # pair-graph triangles examined (Apriori cands)
    f3_sampled: int         # exact locally frequent triples in the sample
    chain_length: int       # greedy max-support frequent chain length
    fit_size: float         # quasi-clique moment fit: effective item count
    fit_density: float      # quasi-clique moment fit: effective pair density
    est_itemsets: float     # the mining-mass estimate
    est_fanout: float       # the rule-generation (sum 2**k) estimate


def _clique_equivalent_size(f_k: float, k: int) -> float:
    """The real ``x`` with ``C(x, k) = f_k`` — the size of the clique whose
    level-``k`` itemset count matches the measurement.

    Anchoring the series on this *clique-equivalent size* is what makes
    the estimate density-aware: ``C(x, k)`` concentrates all measured mass
    in one dense core (the Kruskal-Katona extremal configuration), so a
    dense cluster inside an otherwise sparse focal subset is priced at
    its own density instead of being diluted by the global mean.
    """
    if f_k <= 0.0:
        return 0.0
    # C(x, k) is increasing in x for x >= k - 1; bisect on [k - 1, 64].
    lo, hi = float(k - 1), 64.0
    if _real_comb(hi, k) <= f_k:
        return hi
    for _ in range(50):
        mid = (lo + hi) / 2.0
        if _real_comb(mid, k) < f_k:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _real_comb(x: float, k: int) -> float:
    """``C(x, k)`` for real ``x`` (0 when ``x < k - 1``); monotone in x."""
    if x <= k - 1:
        return 0.0
    out = 1.0
    for i in range(k):
        out *= (x - i) / (k - i)
    return out


def _quasi_clique_size(f2: float, f3: float) -> float:
    """The real ``n`` solving ``C(n, 3) (f2 / C(n, 2))**3 = f3`` — the
    quasi-clique whose second and third moments match the measurements.

    A quasi-clique ``G(n, q)`` has ``C(n, 2) q`` expected frequent pairs
    and ``C(n, 3) q**3`` expected frequent triples; eliminating ``q``
    gives the equation above, whose left side decreases in ``n`` (``q``
    shrinks like ``1/n**2`` while ``C(n, 3)`` only grows like ``n**3``).
    Bisection therefore finds the unique matching size: a uniform pair
    graph fits ``n ~ F1`` at the mean density, while a clustered one
    (many triangles for its pair count) fits a small dense core.
    """
    if f2 <= 0.0 or f3 <= 0.0:
        return 0.0

    def h(n: float) -> float:
        c2 = _real_comb(n, 2)
        if c2 <= 0.0:
            return float("inf")
        return _real_comb(n, 3) * (f2 / c2) ** 3

    lo, hi = 3.0, 4096.0
    if h(lo) <= f3:
        return lo
    if h(hi) >= f3:
        return hi
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if h(mid) > f3:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _model_arm_counts(
    query: LocalizedQuery,
    item_tidsets: "dict[tuple[int, int], int]",
    dq: int,
    dq_size: int,
    min_count: int,
) -> ArmModelStats:
    """Density-aware estimate of ARM's from-scratch mining mass.

    ARM mines the focal subset from scratch, so its work scales with the
    number of *locally* frequent itemsets — including those below the
    index's primary floor, which no stored statistic covers.  The model
    measures, with a few thousand bitmask intersections:

    * ``F1`` — the exact number of locally frequent items;
    * ``F2`` — the exact number of locally frequent item *pairs* among the
      strongest ``_ARM_MODEL_MAX_ITEMS`` items (plus a pair-density
      extrapolation for any unsampled tail), together with the per-item
      degree sequence and the densest degree-ordered core of the
      frequent-pair graph;
    * ``F3`` — the exact number of locally frequent *triples* among the
      strongest ``_ARM_MODEL_MAX_TRIANGLE_ITEMS`` items, enumerated
      Apriori-style over the measured pair graph's triangles;
    * a greedy max-support chain: repeatedly extend a frequent itemset
      with the best remaining item until support dips below the floor.

    Levels ``k >= 4`` extrapolate by *moment-matching a quasi-clique* to
    the measured second and third levels: solving ``C(n, 2) q = F2`` and
    ``C(n, 3) q**3 = F3`` for ``(n, q)`` and pricing ``F_k = C(n, k)
    q^(k(k-1)/2)``.  A uniform pair graph fits the mean-field series
    (``n ~ F1`` at the mean density, with per-level geometric decay); a
    clustered graph — many triangles for its pair count, mushroom's
    cluster-pure focal subsets — fits a small core at ``q -> 1``, the
    Kruskal-Katona extremal configuration, so the core is priced at its
    own density instead of being diluted by the mean.  The series is
    truncated one level past the measured chain depth, which measures how
    deep the frequent lattice actually reaches.  All measured inputs
    (``f1``, ``f2_sampled``, ``f3_sampled``, the chain) shrink
    monotonically as ``min_count`` rises.
    """
    frequent: list[tuple[int, tuple[int, int], int]] = []
    for (attribute, value), mask in item_tidsets.items():
        if query.item_attributes is not None and \
                attribute not in query.item_attributes:
            continue
        local = mask & dq
        count_ = local.bit_count()
        if count_ >= min_count:
            frequent.append((count_, (attribute, value), local))

    f1 = len(frequent)
    if f1 == 0:
        return ArmModelStats(0, 0, 0, 0, 0.0, 0.0, 0, 0, 0.0, 0, 0, 0, 0,
                             0.0, 0.0, 0.0, 0.0)
    if f1 == 1:
        return ArmModelStats(1, 1, 0, 0, 0.0, 0.0, 0, 1, 0.0, 1, 0, 0, 1,
                             1.0, 0.0, 1.0, 2.0)

    # Deterministic strongest-first order: the sample at a higher floor is
    # always a prefix of the sample at a lower one, which keeps every
    # sampled measurement monotone in ``min_count``.
    frequent.sort(key=lambda cm: (-cm[0], cm[1]))
    sample = frequent[:_ARM_MODEL_MAX_ITEMS]
    m = len(sample)

    # -- F2: exact pairs + degree sequence over the sample -------------------
    adjacency: set[tuple[int, int]] = set()
    pair_masks: dict[tuple[int, int], int] = {}
    degrees = [0] * m
    t = min(m, _ARM_MODEL_MAX_TRIANGLE_ITEMS)
    for i in range(m):
        for j in range(i + 1, m):
            inter = sample[i][2] & sample[j][2]
            if inter.bit_count() >= min_count:
                adjacency.add((i, j))
                degrees[i] += 1
                degrees[j] += 1
                if j < t:
                    pair_masks[(i, j)] = inter
    pairs_sampled = m * (m - 1) // 2
    f2_sampled = len(adjacency)
    density = f2_sampled / pairs_sampled if pairs_sampled else 0.0
    tail_pairs = f1 * (f1 - 1) / 2.0 - pairs_sampled
    f2 = f2_sampled + density * max(tail_pairs, 0.0)

    # -- top-clique core: densest degree-ordered prefix ----------------------
    # (diagnostic + calibration feature: how concentrated the pair graph
    # is; the series itself is anchored on measured triangles below).
    order = sorted(range(m), key=lambda i: (-degrees[i], i))
    core_size, core_density = (2, 1.0) if f2_sampled else (0, 0.0)
    best_mass = 0.0
    edges_in_prefix = 0
    for idx, node in enumerate(order):
        for prev in order[:idx]:
            edge = (prev, node) if prev < node else (node, prev)
            if edge in adjacency:
                edges_in_prefix += 1
        p = idx + 1
        if p < 2:
            continue
        dens = edges_in_prefix / (p * (p - 1) / 2.0)
        mass = sum(
            _real_comb(float(p), k) * dens ** (k * (k - 1) // 2)
            for k in range(3, min(p, _ARM_MODEL_MAX_LENGTH) + 1)
        )
        if mass > best_mass:
            best_mass, core_size, core_density = mass, p, dens

    # -- F3: exact triangles over the strongest items ------------------------
    triangles_candidate = 0
    f3_sampled = 0
    for (i, j), mask_ij in pair_masks.items():
        for k in range(j + 1, t):
            if (i, k) in adjacency and (j, k) in adjacency:
                triangles_candidate += 1
                if (mask_ij & sample[k][2]).bit_count() >= min_count:
                    f3_sampled += 1
    tail_triples = _real_comb(float(f1), 3) - _real_comb(float(t), 3)
    f3 = f3_sampled + density ** 3 * max(tail_triples, 0.0)

    # -- measured depth: the greedy max-support chain -------------------------
    # Greedily extend a frequent itemset with the best remaining item (one
    # per attribute) until support dips below the floor: a frequent chain
    # of length L certifies 2**L locally frequent subsets (sum 3**L rule
    # candidates), and L *measures the lattice's frequent depth* — in
    # locally dense data the per-level survival decays geometrically with
    # itemset length, so levels are near-complete up to the depth the
    # chain reaches and near-empty beyond it.  The candidate pool is
    # *all* items (an item below the floor can never be accepted — its
    # extension count is bounded by its support — so the greedy path
    # depends only on the measured supports, never on ``min_count``,
    # which makes the chain length provably monotone in the floor).
    pool = [
        ((attribute, value), mask & dq)
        for (attribute, value), mask in sorted(item_tidsets.items())
        if query.item_attributes is None or
        attribute in query.item_attributes
    ]
    chain_mask = dq
    chain_length = 0
    used_attrs: set[int] = set()
    while pool:
        best_i = -1
        best_count = -1
        for idx, ((attribute, _v), mask) in enumerate(pool):
            if attribute in used_attrs:
                continue
            extended_count = (chain_mask & mask).bit_count()
            if extended_count > best_count:
                best_count = extended_count
                best_i = idx
        if best_i < 0 or best_count < min_count:
            break
        (attribute, _v), mask = pool.pop(best_i)
        chain_mask &= mask
        chain_length += 1
        used_attrs.add(attribute)

    # -- levels >= 4: depth-truncated two-moment quasi-clique series ---------
    # Fit a quasi-clique G(n, q) to the measured second and third levels
    # (C(n, 2) q = F2 and C(n, 3) q**3 = F3) and price F_k = C(n, k)
    # q**C(k, 2).  On a uniform pair graph (chess-like dense background)
    # the fit recovers the mean-field series — n ~ F1 at the mean density
    # — while a clustered graph (mushroom-like cluster-pure focal
    # subsets, many triangles for their pair count) fits a small core at
    # q -> 1, the Kruskal-Katona extremal configuration, instead of
    # diluting the core by the mean density.  n is clamped to
    # [max(3, x3), F1] and q re-anchored on the measured third level so
    # F_3 is reproduced by construction.  The series is truncated one
    # level past the measured chain depth: a core whose support decays
    # out at length 5 contributes levels <= 6, not 2**n.  (The ``+1``
    # level pays for Apriori's candidate generation one level past the
    # last frequent one.)
    count = float(f1) + f2 + f3
    fanout = 2.0 * f1 + 4.0 * f2 + 8.0 * f3
    n_eff = 0.0
    q_eff = 0.0
    if f3 > 0.0 and f2 > 0.0 and f1 >= 3:
        x3 = _clique_equivalent_size(f3, 3)
        n_eff = _quasi_clique_size(f2, f3)
        n_eff = min(max(n_eff, max(3.0, x3)), float(f1))
        denom = _real_comb(n_eff, 3)
        q_eff = min((f3 / denom) ** (1.0 / 3.0), 1.0) if denom > 0.0 else 0.0
        depth = min(max(chain_length + 1, 3), _ARM_MODEL_MAX_LENGTH)
        for k in range(4, depth + 1):
            f_k = _real_comb(n_eff, k) * q_eff ** (k * (k - 1) // 2)
            if f_k < 1e-9:
                break
            count += f_k
            fanout += f_k * 2.0 ** min(k, _ARM_MODEL_MAX_LENGTH)
    count = max(count, 2.0 ** min(chain_length, _ARM_CHAIN_COUNT_CAP))
    fanout = max(fanout, 3.0 ** min(chain_length, _ARM_CHAIN_FANOUT_CAP))

    n_deg = max(m, 1)
    return ArmModelStats(
        f1=f1,
        sample_size=m,
        pairs_sampled=pairs_sampled,
        f2_sampled=f2_sampled,
        density=density,
        degree_mean=sum(degrees) / n_deg,
        degree_max=max(degrees, default=0),
        core_size=core_size,
        core_density=core_density,
        triangle_items=t,
        triangles_candidate=triangles_candidate,
        f3_sampled=f3_sampled,
        chain_length=chain_length,
        fit_size=n_eff,
        fit_density=q_eff,
        est_itemsets=count,
        est_fanout=fanout,
    )


def _vectorized_cardinalities(
    query: LocalizedQuery,
    focal: FocalRange,
    stats: IndexStatistics,
    min_count: int,
    global_floor: int,
    aitem_fraction: float,
    contained_fraction: float,
) -> dict[str, float]:
    """Data-aware candidate/survivor counts from the per-MIP profiles."""
    n = stats.n_mips
    if n == 0:
        return {
            "n_cands": 0.0,
            "n_cands_supported": 0.0,
            "n_contained": 0.0,
            "est_qualified": 0.0,
            "est_qualified_partial": 0.0,
            "qualified_fanout": 0.0,
        }
    if stats.item_local_counts.shape[1] == 0:
        # No per-item profile: fall back to the distribution-based lemmas.
        upper = stats.fraction_with_count_at_least(min_count)
        uniform = stats.fraction_with_count_at_least(global_floor)
        pass_frac = (upper * uniform) ** 0.5
        n_cands = expected_leaf_matches(
            n, stats.avg_box_extents, focal.hull_extents(), stats.cardinalities
        )
        n_supported = n_cands * upper
        n_contained = n_supported * contained_fraction
        qualified = n_cands * aitem_fraction * pass_frac
        return {
            "n_cands": n_cands,
            "n_cands_supported": n_supported,
            "n_contained": n_contained,
            "est_qualified": qualified,
            "est_qualified_partial": max(
                qualified - n_contained * aitem_fraction, 0.0
            ),
            "qualified_fanout": qualified * max(stats.avg_pow2_length, 1.0),
        }

    fixed = stats.mip_fixed_values
    overlap = np.ones(n, dtype=bool)
    contained = np.ones(n, dtype=bool)
    local_upper = np.full(n, stats.n_records, dtype=np.int64)
    n_range_attrs = 0
    log_prod = np.zeros(n, dtype=float)
    for ai, values in query.range_selections.items():
        card = stats.cardinalities[ai]
        sel = np.zeros(card, dtype=bool)
        sel[list(values)] = True
        col = fixed[:, ai]
        fixes = col >= 0
        in_sel = np.zeros(n, dtype=bool)
        in_sel[fixes] = sel[col[fixes]]
        overlap &= ~fixes | in_sel
        if not sel.all():
            contained &= fixes & in_sel
        cols = [
            stats.item_columns[(ai, v)]
            for v in values
            if (ai, v) in stats.item_columns
        ]
        if cols:
            attr_counts = stats.item_local_counts[:, cols].sum(
                axis=1, dtype=np.int64
            )
        else:
            attr_counts = np.zeros(n, dtype=np.int64)
        local_upper = np.minimum(local_upper, attr_counts)
        n_range_attrs += 1
        with np.errstate(divide="ignore"):
            log_prod += np.log(attr_counts.astype(float))

    # Expected local count: the Frechet bound ``min_a |t(M) n D^Q_a|`` is
    # exact for single-attribute regions but overcounts multi-attribute
    # ones (the realized intersection of k attribute slices is far below
    # the loosest slice).  The independence estimate ``g * prod_a(c_a/g)``
    # errs the other way on correlated attributes, so — as with the
    # distribution-based fallback above — the model takes their geometric
    # mean.
    if n_range_attrs >= 2:
        g = stats.mip_global_counts.astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            log_expected = log_prod - (n_range_attrs - 1) * np.log(g)
        expected = np.where(g > 0, np.exp(log_expected), 0.0)
        est_local = np.sqrt(local_upper * np.minimum(expected, local_upper))
    else:
        est_local = local_upper.astype(float)

    if query.item_attributes is None:
        aitem_ok = np.ones(n, dtype=bool)
    else:
        outside = [
            a for a in range(stats.n_attributes) if a not in query.item_attributes
        ]
        aitem_ok = (
            ~(fixed[:, outside] >= 0).any(axis=1)
            if outside
            else np.ones(n, dtype=bool)
        )

    supported = stats.mip_global_counts >= min_count
    qualified_mask = overlap & aitem_ok & (est_local >= min_count)
    contained &= overlap
    lengths = (fixed >= 0).sum(axis=1)
    fanout = np.exp2(np.minimum(lengths, 16).astype(float))
    return {
        "n_cands": float(overlap.sum()),
        "n_cands_supported": float((overlap & supported).sum()),
        "n_contained": float((contained & supported).sum()),
        "est_qualified": float(qualified_mask.sum()),
        "est_qualified_partial": float((qualified_mask & ~contained).sum()),
        "qualified_fanout": float(fanout[qualified_mask].sum()),
    }


def _aitem_fraction(query: LocalizedQuery, stats: IndexStatistics) -> float:
    """P(a stored itemset uses only Aitem attributes), from the length histogram."""
    if query.item_attributes is None:
        return 1.0
    if stats.n_mips == 0:
        return 0.0
    p_attr = len(query.item_attributes) / stats.n_attributes
    total = sum(stats.length_histogram.values())
    return (
        sum(count * p_attr**length
            for length, count in stats.length_histogram.items())
        / total
    )


def _contained_fraction(
    query: LocalizedQuery, focal: FocalRange, stats: IndexStatistics
) -> float:
    """P(an overlapping MIP is fully contained in the focal region).

    A MIP is contained iff, on every attribute whose selection is partial,
    the MIP fixes that attribute (to an admitted value).  Estimated from
    per-attribute fixing probabilities and selection fractions.
    """
    prob = 1.0
    for dim, (card, mask) in enumerate(
        zip(focal.cardinalities, focal.value_masks)
    ):
        selected = mask.bit_count()
        if selected == card:
            continue  # full domain: any box is contained on this dimension
        fix = stats.attr_fix_prob[dim]
        # Conditioned on overlap, a fixed attribute already lands inside the
        # selection, so containment on this dimension simply needs the
        # attribute to be fixed at all.
        prob *= fix
    return prob


class CostModel:
    """Constant-time evaluation of the six plan cost formulae."""

    def __init__(self, stats: IndexStatistics, weights: CostWeights | None = None):
        self.stats = stats
        self.weights = weights if weights is not None else CostWeights()

    # -- cardinality estimates (Lemmas 4.1-4.5) ------------------------------

    def est_candidates_search(self, profile: QueryProfile) -> float:
        """Lemma 4.1: expected MIPs intersected by the focal hull."""
        return expected_leaf_matches(
            self.stats.n_mips,
            self.stats.avg_box_extents,
            profile.hull_extents,
            self.stats.cardinalities,
        )

    def supported_selectivity(self, profile: QueryProfile) -> float:
        """Fraction of MIPs passing the supported filter (Lemma 4.4)."""
        return self.stats.fraction_with_count_at_least(profile.min_count)

    def est_candidates_supported(self, profile: QueryProfile) -> float:
        return self.est_candidates_search(profile) * self.supported_selectivity(
            profile
        )

    def est_pass_eliminate(self, est_in: float, profile: QueryProfile,
                           after_supported: bool) -> float:
        """Lemma 4.2 analogue: expected candidates surviving the local
        support check.

        The true pass fraction lies between two computable bounds: the
        supported-filter fraction (local count can never exceed the global
        count, Lemma 4.4) and the locally-uniform-density fraction (local
        count ~ global count x |D^Q|/|D|).  Local patterns concentrate
        support inside focal subsets, so the uniform bound is pessimistic;
        the geometric mean of the two interpolates between them.
        """
        upper = self.stats.fraction_with_count_at_least(profile.min_count)
        uniform = self.stats.fraction_with_count_at_least(profile.global_floor)
        base = (upper * uniform) ** 0.5
        if after_supported:
            sigma = max(self.supported_selectivity(profile), 1e-12)
            base = min(1.0, base / sigma)
        return est_in * base

    def est_node_accesses(self, profile: QueryProfile,
                          supported: bool) -> float:
        """Eq. 1 COST(S) / Eq. 3 COST(SS): expected node accesses."""
        plain = expected_node_accesses(
            list(self.stats.level_stats),
            profile.hull_extents,
            self.stats.cardinalities,
        )
        if not supported:
            return plain
        # Per-level pruning fractions from the precomputed max-count profiles.
        total = 1.0
        root_level = max((s.level for s in self.stats.level_stats), default=0)
        by_level = {p.level: p for p in self.stats.level_counts}
        q_norm = [
            q / c for q, c in zip(profile.hull_extents, self.stats.cardinalities)
        ]
        for stat in self.stats.level_stats:
            if stat.level == root_level:
                continue
            prob = 1.0
            for dim, card in enumerate(self.stats.cardinalities):
                prob *= min(1.0, stat.avg_extents[dim] / card + q_norm[dim])
            surviving = by_level.get(stat.level)
            frac = (
                surviving.fraction_at_least(profile.min_count)
                if surviving is not None
                else 1.0
            )
            total += stat.n_nodes * prob * frac
        return total

    # -- per-operator loads ----------------------------------------------------

    def search_load(self, profile: QueryProfile, supported: bool) -> float:
        """Work of SEARCH / SUPPORTED-SEARCH: node visits plus the exact
        per-candidate classification against the focal value sets."""
        nodes = self.est_node_accesses(profile, supported=supported)
        cands = profile.n_cands_supported if supported else profile.n_cands
        return nodes + cands

    def eliminate_load(self, profile: QueryProfile, kind: PlanKind) -> float:
        """Eq. 1 COST(E): record-level checks in tidset-word units.

        SS-E-U-V only pays for the partially-overlapped candidates
        (Lemma 4.5 exempts contained MIPs from the record-level check).
        """
        supported = kind in (PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV)
        cands = profile.n_cands_supported if supported else profile.n_cands
        if kind is PlanKind.SSEUV:
            cands = max(cands - profile.n_contained, 0.0)
        return cands * profile.aitem_fraction * self.stats.tidset_words

    def verify_load(self, profile: QueryProfile) -> float:
        """Eq. 1 COST(V): support counting through the focal projection.

        The kernel path pays the projection once — every item row repacked
        at the full tidset width (``sum(cardinalities)`` rows, an upper
        bound on the item count, times ``tidset_words``) — after which the
        antecedent family's batched evaluations run at the *projected*
        ``|D^Q|``-word width.  This replaces the old
        ``fanout x tidset_words`` pricing, whose width term no longer
        reflects the work once lookups shrink with the focal subset.
        """
        dq_words = max(1, -(-profile.dq_size // 64))
        projection = float(sum(self.stats.cardinalities)) * self.stats.tidset_words
        return projection + profile.qualified_fanout * dq_words

    def rulegen_load(self, profile: QueryProfile) -> float:
        """Rule extraction proper: the mask-indexed confidence pass and
        canonical-order emit, per qualified fan-out unit.

        Width-independent by construction (the counts are already in hand
        when extraction runs), so it is priced separately from ``verify``
        and fitted against the trace's ``rulegen_s`` split.

        ``_RULEGEN_OVERHEAD_UNITS`` is the mirror image of
        ``_ARM_OP_OVERHEAD_WORDS``: the batched extraction pays a fixed
        setup cost (chunked numpy dispatch over the subset lattice, the
        packed-rank ``lexsort``, the per-width group loop) that dominates
        small fan-outs.  Without the constant, the per-unit weight fitted
        on small probe fan-outs *overprices* large queries by the same
        factor the vectorized pass amortizes — which tips the optimizer
        toward ARM on exactly the queries where the MIP plans win.
        """
        return profile.qualified_fanout + _RULEGEN_OVERHEAD_UNITS

    def select_load(self, profile: QueryProfile) -> float:
        """Eq. 6 COST(sigma): focal-subset record extraction."""
        return float(profile.dq_size * self.stats.n_attributes)

    def arm_load(self, profile: QueryProfile) -> float:
        """Eq. 6 COST(eps_AR): the subset scan (building the subset's item
        tidsets, ~|D^Q| x n), from-scratch mining sized by the local-
        itemset estimate, plus its rule-generation fan-out.

        Each candidate evaluation costs its tidset intersection (``dq``
        words) *plus* a constant — the per-operation interpreter overhead
        of generating the candidate and looking up its support, which
        dominates for small focal subsets where ``dq_words`` is 1-2.
        Without the constant, the per-word weight fitted on large subsets
        underprices small ones by the same factor.
        """
        dq_words = max(1, -(-profile.dq_size // 64))
        op_cost = dq_words + _ARM_OP_OVERHEAD_WORDS
        est_local = max(1.0, profile.arm_itemsets)
        return (
            float(profile.dq_size * self.stats.n_attributes)
            + est_local * max(self.stats.avg_length, 1.0) * op_cost
            + profile.arm_fanout * op_cost
        )

    def delta_loads(
        self, kind: PlanKind, profile: QueryProfile
    ) -> dict[str, float]:
        """Extra load terms a live delta store adds to one plan.

        Empty when the index is immutable (``delta_records == 0``) — the
        delta terms must *vanish* rather than appear with zero loads, so
        that pricing with ``delta_probe = inf`` (the recompaction
        forcing-function used by the CI gate) never multiplies
        ``inf * 0 = nan`` into a delta-free plan's cost.

        * ``delta_probe`` — every candidate's count correction is one
          AND+popcount of its delta-MIP row against the delta focal row
          (``cands x delta_words``), plus the focal-row build itself
          (one pass over the delta item rows);
        * ``delta_merge`` — rule generation re-projects the delta item
          rows (``sum(cardinalities) x delta_words``) and adds the delta
          subset-lattice counts at the projected ``|D^Q_delta|`` width
          (``qualified_fanout x delta_dq_words``).

        ARM has no delta-specific term: the delta records ride into the
        selected sub-table, and ``select``/``arm`` are already priced by
        the *combined* ``dq_size`` the optimizer profiles.
        """
        if profile.delta_records <= 0 or kind is PlanKind.ARM:
            return {}
        supported = kind in (PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV)
        cands = profile.n_cands_supported if supported else profile.n_cands
        words = max(1, profile.delta_words)
        ddq_words = max(1, -(-profile.delta_dq_size // 64))
        projection = float(sum(self.stats.cardinalities)) * words
        return {
            "delta_probe": (cands + 1.0) * words,
            "delta_merge": projection + profile.qualified_fanout * ddq_words,
        }

    # -- plan load vectors --------------------------------------------------------

    def loads(self, kind: PlanKind, profile: QueryProfile) -> dict[str, float]:
        """The load-feature vector of one plan for one query.

        ``const`` counts the plan's pipeline stages, pricing the fixed
        per-operator overhead — the intermediate-materialization cost that
        selection push-up (VS) saves.
        """
        if kind is PlanKind.ARM:
            return {
                "select": self.select_load(profile),
                "arm": self.arm_load(profile),
                "const": 2.0,
            }
        supported = kind in (PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV)
        loads = {
            "search": self.search_load(profile, supported=supported),
            "eliminate": self.eliminate_load(profile, kind),
            "verify": self.verify_load(profile),
            "rulegen": self.rulegen_load(profile),
        }
        if kind in (PlanKind.SEV, PlanKind.SSEV):
            loads["const"] = 3.0
        elif kind in (PlanKind.SVS, PlanKind.SSVS):
            loads["const"] = 2.0  # selection pushed up: one stage fewer
        else:  # SS-E-U-V: split + eliminate + union + verify
            loads["const"] = 4.0
        loads.update(self.delta_loads(kind, profile))
        return loads

    def parallel_loads(
        self,
        kind: PlanKind,
        profile: QueryProfile,
        par: ParallelCostProfile,
    ) -> dict[str, float] | None:
        """The load vector of one plan's *sharded* execution variant.

        Returns ``None`` for ARM: the from-scratch miner's Python-level
        candidate loop is not record-partitioned, so it has no parallel
        twin.  For the five MIP plans, the record-partitioned terms
        shrink by the deliverable concurrency:

        * ``eliminate`` — the AND+popcount qualification splits across
          shards, so the word work divides by ``effective_workers``;
        * ``verify`` — the sharded subset-lattice kernel works at the
          *full* tidset width (no focal projection, no per-query repack:
          the lattice is rooted at the focal row itself), split across
          workers — ``qualified_fanout x tidset_words / P_eff`` replaces
          the serial ``projection + fanout x dq_words``;
        * ``par_dispatch`` — one pool round-trip per shard task, two
          sharded dispatches per query (qualification + rule lattice);
        * ``par_merge`` — summing one int64 partial per shard for every
          output element (candidate counts + lattice cells).

        ``search``, ``rulegen``, ``select``, and ``const`` are untouched:
        the traversal and the confidence pass stay in-process.
        """
        if kind is PlanKind.ARM:
            return None
        p_eff = float(max(1, par.effective_workers))
        loads = self.loads(kind, profile)
        loads["eliminate"] = loads["eliminate"] / p_eff
        loads["verify"] = (
            profile.qualified_fanout * self.stats.tidset_words / p_eff
        )
        loads["par_dispatch"] = 2.0 * par.n_shards
        loads["par_merge"] = par.n_shards * (
            profile.n_cands + profile.qualified_fanout
        )
        return loads

    def cached_loads(
        self,
        kind: PlanKind,
        profile: QueryProfile,
        probe,
    ) -> dict[str, float] | None:
        """The load vector of one plan's CACHE variant, given a live probe.

        ``probe`` is a :class:`repro.cache.CacheProbe` (typed loosely to
        keep this module cache-agnostic).  Returns ``None`` when nothing
        is cached for the query, or when the cached entry belongs to the
        other plan family — an ``"arm"`` rules entry only prices ARM's
        cached variant, a MIP-family entry only the five MIP plans'
        (cached results replay their own family, never stand in for the
        other one: in closed mode ARM's locally-closed rule set can
        differ from the MIP plans').

        * full rules hit — one probe plus the per-rule serve copy: the
          whole pipeline collapses to ``cache_probe + n_rules x
          cache_load``;
        * lattice hit — SEARCH/ELIMINATE and all support counting are
          skipped, but extraction is still due: the gather of
          ``lattice_cells`` counts (``cache_load``) plus the confidence
          pass priced by the fitted ``rulegen`` weight on the *known*
          cell count (tighter than the profile's estimated fan-out —
          the cache knows exactly how much lattice it stored).
        """
        if probe is None or probe.kind is None:
            return None
        if (probe.family == "arm") != (kind is PlanKind.ARM):
            return None
        if probe.kind == "rules":
            return {
                "cache_probe": 1.0,
                "cache_load": float(probe.n_rules),
            }
        return {
            "cache_probe": 1.0,
            "cache_load": float(probe.lattice_cells),
            "rulegen": float(probe.lattice_cells) + _RULEGEN_OVERHEAD_UNITS,
        }

    # -- costs ------------------------------------------------------------------

    def estimate(self, kind: PlanKind, profile: QueryProfile) -> float:
        """Estimated execution cost (seconds) of one plan."""
        return self.weights.price(self.loads(kind, profile))

    def estimate_all(self, profile: QueryProfile) -> dict[PlanKind, float]:
        """All six formulae — the optimizer's constant-time computation."""
        return {kind: self.estimate(kind, profile) for kind in PlanKind}

    def estimate_parallel(
        self,
        kind: PlanKind,
        profile: QueryProfile,
        par: ParallelCostProfile,
    ) -> float | None:
        """Estimated cost of one plan's sharded variant (None for ARM)."""
        loads = self.parallel_loads(kind, profile, par)
        return None if loads is None else self.weights.price(loads)

    def estimate_all_parallel(
        self, profile: QueryProfile, par: ParallelCostProfile
    ) -> dict[PlanKind, float]:
        """Sharded-variant costs for every plan that has one."""
        out: dict[PlanKind, float] = {}
        for kind in PlanKind:
            est = self.estimate_parallel(kind, profile, par)
            if est is not None:
                out[kind] = est
        return out

    def estimate_all_cached(
        self, profile: QueryProfile, probe
    ) -> dict[PlanKind, float]:
        """CACHE-variant costs for every plan the probe's entry can serve."""
        out: dict[PlanKind, float] = {}
        for kind in PlanKind:
            loads = self.cached_loads(kind, profile, probe)
            if loads is not None:
                out[kind] = self.weights.price(loads)
        return out
