"""The COLARM cost model (Equations 1-6, Table 4).

Each plan's cost is a weighted sum of *load features* — the operator-level
work estimates the paper's equations describe:

* ``search``    — expected R-tree node accesses (Eq. 1/3 COST(S)/COST(SS),
  via the Theodoridis-Sellis window-query model, with the supported
  filter's per-level pruning fractions for SS) plus the per-candidate
  exact classification;
* ``eliminate`` — record-level support checks, in tidset-word units
  (Eq. 1 COST(E) = |{I^Q_S}| x |D^Q|); SS-E-U-V pays only for partially
  overlapped candidates (Lemma 4.5);
* ``verify``    — rule-generation work: qualified itemsets times their
  exponential antecedent fan-out times the word cost of each support
  lookup (Eq. 1 COST(V));
* ``select``    — focal-subset extraction (Eq. 6 COST(sigma));
* ``arm``       — from-scratch mining work (Eq. 6 COST(eps_AR)), sized by
  an independence-model estimate of the *locally* frequent itemsets;
* ``const``     — fixed per-pipeline-stage overhead (what selection
  push-up saves).

The cardinality estimates behind the features implement Lemmas 4.1-4.5:
expected overlapping MIPs from Minkowski-sum extents, supported-filter
selectivity from the precomputed global-count distribution, and the
contained/partial split from per-attribute fixing probabilities.  The unit
weights are fitted by :mod:`repro.core.calibration`; evaluating all six
formulae is a constant-time computation, as Section 3.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import FocalRange, LocalizedQuery
from repro.core.stats import IndexStatistics
from repro.core.plans import PlanKind
from repro.rtree.costmodel import expected_leaf_matches, expected_node_accesses

__all__ = ["CostWeights", "QueryProfile", "CostModel", "DEFAULT_WEIGHTS"]

#: Uncalibrated per-unit weights (seconds per load unit), rough orders of
#: magnitude for CPython; calibration replaces them with fitted values.
DEFAULT_WEIGHTS: dict[str, float] = {
    "search": 3e-6,
    "eliminate": 3e-8,
    "verify": 4e-8,
    "select": 4e-7,
    "arm": 2e-7,
    "const": 5e-5,
}


@dataclass(frozen=True)
class CostWeights:
    """Per-feature unit costs used to price the load vectors."""

    weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def price(self, loads: dict[str, float]) -> float:
        return sum(self.weights.get(name, 0.0) * load for name, load in loads.items())


@dataclass(frozen=True)
class QueryProfile:
    """Query-derived quantities shared by all six cost formulae.

    The cardinalities (``n_cands*``, ``est_qualified*``) come from a
    vectorized pass over the precomputed per-MIP statistics
    (:class:`~repro.core.stats.IndexStatistics`): exact geometric overlap
    and containment counts, exact supported-filter selectivity, and a
    local-support *upper bound* per MIP (the minimum of its per-range-
    attribute projected counts) standing in for the record-level check.
    When the per-item profile is unavailable, the distribution-based
    Lemma 4.1/4.2 estimates take over.
    """

    hull_extents: tuple[int, ...]
    min_count: int           # ceil(minsupp * |D^Q|)
    global_floor: int        # ceil(minsupp * |D|): global count needed to pass
    dq_size: int
    aitem_fraction: float    # P(candidate itemset lies within Aitem)
    contained_fraction: float  # P(overlapping MIP is fully contained)
    n_cands: float             # MIPs geometrically overlapping the region
    n_cands_supported: float   # ... also passing the supported filter
    n_contained: float         # ... fully contained (of n_cands_supported)
    est_qualified: float       # expected ELIMINATE survivors (Aitem applied)
    est_qualified_partial: float  # survivors among partially overlapped MIPs
    qualified_fanout: float    # sum of 2**length over the expected survivors
    arm_itemsets: float        # model-based locally-frequent itemset count
    arm_fanout: float          # ... and its 2**length rule-generation mass

    @classmethod
    def from_query(
        cls,
        query: LocalizedQuery,
        focal: FocalRange,
        stats: IndexStatistics,
        dq_size: int,
        min_count: int,
        item_local_tidsets: "dict[tuple[int, int], int] | None" = None,
        dq: int | None = None,
    ) -> "QueryProfile":
        """Build the profile.

        ``item_local_tidsets`` maps each (attribute, value) item to its
        tidset and ``dq`` is the focal tidset; together they let the
        profile measure the *exact* locally frequent item and item-pair
        counts (a few hundred bitmask ANDs — microseconds).  These feed
        the clique-model estimate of ARM's from-scratch mining work, which
        must account for locally frequent itemsets *below* the index's
        primary floor; without them the stored-MIP survivors stand in.
        """
        exact = query.minsupp * stats.n_records
        global_floor = int(exact)
        if global_floor < exact:
            global_floor += 1
        global_floor = max(global_floor, 1)
        aitem_fraction = _aitem_fraction(query, stats)
        contained_fraction = _contained_fraction(query, focal, stats)
        cards = _vectorized_cardinalities(
            query, focal, stats, min_count, global_floor, aitem_fraction,
            contained_fraction,
        )
        if item_local_tidsets is not None and dq is not None and dq_size > 0:
            arm_itemsets, arm_fanout = _model_arm_counts(
                query, item_local_tidsets, dq, dq_size, min_count
            )
        else:
            arm_itemsets = cards["est_qualified"]
            arm_fanout = cards["qualified_fanout"]
        return cls(
            hull_extents=focal.hull_extents(),
            min_count=min_count,
            global_floor=global_floor,
            dq_size=dq_size,
            aitem_fraction=aitem_fraction,
            contained_fraction=contained_fraction,
            arm_itemsets=arm_itemsets,
            arm_fanout=arm_fanout,
            **cards,
        )


#: At most this many locally frequent items have their pairwise supports
#: measured exactly; beyond it the pair density is extrapolated.
_ARM_MODEL_MAX_ITEMS = 48
#: Itemset-length cap for the clique-model series (2**k saturates anyway).
_ARM_MODEL_MAX_LENGTH = 16


def _model_arm_counts(
    query: LocalizedQuery,
    item_tidsets: "dict[tuple[int, int], int]",
    dq: int,
    dq_size: int,
    min_count: int,
) -> tuple[float, float]:
    """Estimated locally frequent itemsets from exact F1/F2 measurements.

    ARM mines the focal subset from scratch, so its work scales with the
    number of *locally* frequent itemsets — including those below the
    index's primary floor, which no stored statistic covers.  The profile
    therefore measures, with a few hundred bitmask intersections:

    * ``F1`` — the exact number of locally frequent items, and
    * ``F2`` — the exact number of locally frequent item *pairs* (among
      the strongest ``_ARM_MODEL_MAX_ITEMS`` items; the remainder is
      extrapolated from the observed pair density),

    and extrapolates level counts with the clique-count series
    ``F_k = C(F1, k) * d^(k(k-1)/2)`` where ``d`` is the pair density —
    the expected number of k-cliques in the frequent-pair graph, which is
    exactly the Apriori candidate space at level k.  Unlike an
    independence model this uses the *measured* co-occurrence, so
    correlated attributes (the expensive ARM cases) are priced correctly.

    Returns ``(itemset_count, sum of 2**length)`` — the mining and
    rule-generation work masses.
    """
    frequent: list[tuple[int, int]] = []  # (local_count, tidset & dq)
    for (attribute, _value), mask in item_tidsets.items():
        if query.item_attributes is not None and \
                attribute not in query.item_attributes:
            continue
        local = mask & dq
        count_ = local.bit_count()
        if count_ >= min_count:
            frequent.append((count_, local))
    f1 = len(frequent)
    if f1 == 0:
        return 0.0, 0.0
    if f1 == 1:
        return 1.0, 2.0

    frequent.sort(key=lambda cm: -cm[0])
    sample = frequent[:_ARM_MODEL_MAX_ITEMS]
    pairs_sampled = 0
    pairs_frequent = 0
    for i in range(len(sample)):
        for j in range(i + 1, len(sample)):
            pairs_sampled += 1
            if (sample[i][1] & sample[j][1]).bit_count() >= min_count:
                pairs_frequent += 1
    density = pairs_frequent / pairs_sampled if pairs_sampled else 0.0
    total_pairs = f1 * (f1 - 1) / 2.0
    f2 = density * total_pairs

    count = float(f1) + f2
    fanout = 2.0 * f1 + 4.0 * f2
    f_k = f2
    for k in range(3, _ARM_MODEL_MAX_LENGTH + 1):
        if f1 < k or f_k < 1e-3:
            break
        # F_k / F_{k-1} for the clique series C(F1,k) d^{k(k-1)/2}:
        f_k *= (f1 - k + 1) / k * density ** (k - 1)
        count += f_k
        fanout += f_k * 2.0 ** min(k, _ARM_MODEL_MAX_LENGTH)

    # Exact lower bound from a greedily grown frequent itemset: if a chain
    # of L items stays frequent, all of its 2**L subsets are locally
    # frequent and each of length k contributes 2**k rule candidates
    # (sum 3**L).  This is *measured*, so a cluster-pure focal subset —
    # where the clique average dilutes a dense core — still prices ARM's
    # explosion correctly.
    chain_mask = dq
    chain_length = 0
    used_attrs: set[int] = set()
    for (attribute, _value), mask in sorted(
        item_tidsets.items(),
        key=lambda kv: -(kv[1] & dq).bit_count(),
    ):
        if attribute in used_attrs:
            continue
        if query.item_attributes is not None and \
                attribute not in query.item_attributes:
            continue
        extended = chain_mask & mask
        if extended.bit_count() >= min_count:
            chain_mask = extended
            chain_length += 1
            used_attrs.add(attribute)
    count = max(count, 2.0 ** min(chain_length, 16))
    fanout = max(fanout, 3.0 ** min(chain_length, 13))
    return count, fanout


def _vectorized_cardinalities(
    query: LocalizedQuery,
    focal: FocalRange,
    stats: IndexStatistics,
    min_count: int,
    global_floor: int,
    aitem_fraction: float,
    contained_fraction: float,
) -> dict[str, float]:
    """Data-aware candidate/survivor counts from the per-MIP profiles."""
    n = stats.n_mips
    if n == 0:
        return {
            "n_cands": 0.0,
            "n_cands_supported": 0.0,
            "n_contained": 0.0,
            "est_qualified": 0.0,
            "est_qualified_partial": 0.0,
            "qualified_fanout": 0.0,
        }
    if stats.item_local_counts.shape[1] == 0:
        # No per-item profile: fall back to the distribution-based lemmas.
        upper = stats.fraction_with_count_at_least(min_count)
        uniform = stats.fraction_with_count_at_least(global_floor)
        pass_frac = (upper * uniform) ** 0.5
        n_cands = expected_leaf_matches(
            n, stats.avg_box_extents, focal.hull_extents(), stats.cardinalities
        )
        n_supported = n_cands * upper
        n_contained = n_supported * contained_fraction
        qualified = n_cands * aitem_fraction * pass_frac
        return {
            "n_cands": n_cands,
            "n_cands_supported": n_supported,
            "n_contained": n_contained,
            "est_qualified": qualified,
            "est_qualified_partial": max(
                qualified - n_contained * aitem_fraction, 0.0
            ),
            "qualified_fanout": qualified * max(stats.avg_pow2_length, 1.0),
        }

    fixed = stats.mip_fixed_values
    overlap = np.ones(n, dtype=bool)
    contained = np.ones(n, dtype=bool)
    local_upper = np.full(n, stats.n_records, dtype=np.int64)
    for ai, values in query.range_selections.items():
        card = stats.cardinalities[ai]
        sel = np.zeros(card, dtype=bool)
        sel[list(values)] = True
        col = fixed[:, ai]
        fixes = col >= 0
        in_sel = np.zeros(n, dtype=bool)
        in_sel[fixes] = sel[col[fixes]]
        overlap &= ~fixes | in_sel
        if not sel.all():
            contained &= fixes & in_sel
        cols = [
            stats.item_columns[(ai, v)]
            for v in values
            if (ai, v) in stats.item_columns
        ]
        if cols:
            attr_counts = stats.item_local_counts[:, cols].sum(
                axis=1, dtype=np.int64
            )
        else:
            attr_counts = np.zeros(n, dtype=np.int64)
        local_upper = np.minimum(local_upper, attr_counts)

    if query.item_attributes is None:
        aitem_ok = np.ones(n, dtype=bool)
    else:
        outside = [
            a for a in range(stats.n_attributes) if a not in query.item_attributes
        ]
        aitem_ok = (
            ~(fixed[:, outside] >= 0).any(axis=1)
            if outside
            else np.ones(n, dtype=bool)
        )

    supported = stats.mip_global_counts >= min_count
    qualified_mask = overlap & aitem_ok & (local_upper >= min_count)
    contained &= overlap
    lengths = (fixed >= 0).sum(axis=1)
    fanout = np.exp2(np.minimum(lengths, 16).astype(float))
    return {
        "n_cands": float(overlap.sum()),
        "n_cands_supported": float((overlap & supported).sum()),
        "n_contained": float((contained & supported).sum()),
        "est_qualified": float(qualified_mask.sum()),
        "est_qualified_partial": float((qualified_mask & ~contained).sum()),
        "qualified_fanout": float(fanout[qualified_mask].sum()),
    }


def _aitem_fraction(query: LocalizedQuery, stats: IndexStatistics) -> float:
    """P(a stored itemset uses only Aitem attributes), from the length histogram."""
    if query.item_attributes is None:
        return 1.0
    if stats.n_mips == 0:
        return 0.0
    p_attr = len(query.item_attributes) / stats.n_attributes
    total = sum(stats.length_histogram.values())
    return (
        sum(count * p_attr**length
            for length, count in stats.length_histogram.items())
        / total
    )


def _contained_fraction(
    query: LocalizedQuery, focal: FocalRange, stats: IndexStatistics
) -> float:
    """P(an overlapping MIP is fully contained in the focal region).

    A MIP is contained iff, on every attribute whose selection is partial,
    the MIP fixes that attribute (to an admitted value).  Estimated from
    per-attribute fixing probabilities and selection fractions.
    """
    prob = 1.0
    for dim, (card, mask) in enumerate(
        zip(focal.cardinalities, focal.value_masks)
    ):
        selected = mask.bit_count()
        if selected == card:
            continue  # full domain: any box is contained on this dimension
        fix = stats.attr_fix_prob[dim]
        # Conditioned on overlap, a fixed attribute already lands inside the
        # selection, so containment on this dimension simply needs the
        # attribute to be fixed at all.
        prob *= fix
    return prob


class CostModel:
    """Constant-time evaluation of the six plan cost formulae."""

    def __init__(self, stats: IndexStatistics, weights: CostWeights | None = None):
        self.stats = stats
        self.weights = weights if weights is not None else CostWeights()

    # -- cardinality estimates (Lemmas 4.1-4.5) ------------------------------

    def est_candidates_search(self, profile: QueryProfile) -> float:
        """Lemma 4.1: expected MIPs intersected by the focal hull."""
        return expected_leaf_matches(
            self.stats.n_mips,
            self.stats.avg_box_extents,
            profile.hull_extents,
            self.stats.cardinalities,
        )

    def supported_selectivity(self, profile: QueryProfile) -> float:
        """Fraction of MIPs passing the supported filter (Lemma 4.4)."""
        return self.stats.fraction_with_count_at_least(profile.min_count)

    def est_candidates_supported(self, profile: QueryProfile) -> float:
        return self.est_candidates_search(profile) * self.supported_selectivity(
            profile
        )

    def est_pass_eliminate(self, est_in: float, profile: QueryProfile,
                           after_supported: bool) -> float:
        """Lemma 4.2 analogue: expected candidates surviving the local
        support check.

        The true pass fraction lies between two computable bounds: the
        supported-filter fraction (local count can never exceed the global
        count, Lemma 4.4) and the locally-uniform-density fraction (local
        count ~ global count x |D^Q|/|D|).  Local patterns concentrate
        support inside focal subsets, so the uniform bound is pessimistic;
        the geometric mean of the two interpolates between them.
        """
        upper = self.stats.fraction_with_count_at_least(profile.min_count)
        uniform = self.stats.fraction_with_count_at_least(profile.global_floor)
        base = (upper * uniform) ** 0.5
        if after_supported:
            sigma = max(self.supported_selectivity(profile), 1e-12)
            base = min(1.0, base / sigma)
        return est_in * base

    def est_node_accesses(self, profile: QueryProfile,
                          supported: bool) -> float:
        """Eq. 1 COST(S) / Eq. 3 COST(SS): expected node accesses."""
        plain = expected_node_accesses(
            list(self.stats.level_stats),
            profile.hull_extents,
            self.stats.cardinalities,
        )
        if not supported:
            return plain
        # Per-level pruning fractions from the precomputed max-count profiles.
        total = 1.0
        root_level = max((s.level for s in self.stats.level_stats), default=0)
        by_level = {p.level: p for p in self.stats.level_counts}
        q_norm = [
            q / c for q, c in zip(profile.hull_extents, self.stats.cardinalities)
        ]
        for stat in self.stats.level_stats:
            if stat.level == root_level:
                continue
            prob = 1.0
            for dim, card in enumerate(self.stats.cardinalities):
                prob *= min(1.0, stat.avg_extents[dim] / card + q_norm[dim])
            surviving = by_level.get(stat.level)
            frac = (
                surviving.fraction_at_least(profile.min_count)
                if surviving is not None
                else 1.0
            )
            total += stat.n_nodes * prob * frac
        return total

    # -- per-operator loads ----------------------------------------------------

    def search_load(self, profile: QueryProfile, supported: bool) -> float:
        """Work of SEARCH / SUPPORTED-SEARCH: node visits plus the exact
        per-candidate classification against the focal value sets."""
        nodes = self.est_node_accesses(profile, supported=supported)
        cands = profile.n_cands_supported if supported else profile.n_cands
        return nodes + cands

    def eliminate_load(self, profile: QueryProfile, kind: PlanKind) -> float:
        """Eq. 1 COST(E): record-level checks in tidset-word units.

        SS-E-U-V only pays for the partially-overlapped candidates
        (Lemma 4.5 exempts contained MIPs from the record-level check).
        """
        supported = kind in (PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV)
        cands = profile.n_cands_supported if supported else profile.n_cands
        if kind is PlanKind.SSEUV:
            cands = max(cands - profile.n_contained, 0.0)
        return cands * profile.aitem_fraction * self.stats.tidset_words

    def verify_load(self, profile: QueryProfile) -> float:
        """Eq. 1 COST(V): exponential antecedent fan-out times word cost."""
        return profile.qualified_fanout * self.stats.tidset_words

    def select_load(self, profile: QueryProfile) -> float:
        """Eq. 6 COST(sigma): focal-subset record extraction."""
        return float(profile.dq_size * self.stats.n_attributes)

    def arm_load(self, profile: QueryProfile) -> float:
        """Eq. 6 COST(eps_AR): the subset scan (building the subset's item
        tidsets, ~|D^Q| x n), from-scratch mining sized by the local-
        itemset estimate, plus its rule-generation fan-out."""
        dq_words = max(1, -(-profile.dq_size // 64))
        est_local = max(1.0, profile.arm_itemsets)
        return (
            float(profile.dq_size * self.stats.n_attributes)
            + est_local * max(self.stats.avg_length, 1.0) * dq_words
            + profile.arm_fanout * dq_words
        )

    # -- plan load vectors --------------------------------------------------------

    def loads(self, kind: PlanKind, profile: QueryProfile) -> dict[str, float]:
        """The load-feature vector of one plan for one query.

        ``const`` counts the plan's pipeline stages, pricing the fixed
        per-operator overhead — the intermediate-materialization cost that
        selection push-up (VS) saves.
        """
        if kind is PlanKind.ARM:
            return {
                "select": self.select_load(profile),
                "arm": self.arm_load(profile),
                "const": 2.0,
            }
        supported = kind in (PlanKind.SSEV, PlanKind.SSVS, PlanKind.SSEUV)
        loads = {
            "search": self.search_load(profile, supported=supported),
            "eliminate": self.eliminate_load(profile, kind),
            "verify": self.verify_load(profile),
        }
        if kind in (PlanKind.SEV, PlanKind.SSEV):
            loads["const"] = 3.0
        elif kind in (PlanKind.SVS, PlanKind.SSVS):
            loads["const"] = 2.0  # selection pushed up: one stage fewer
        else:  # SS-E-U-V: split + eliminate + union + verify
            loads["const"] = 4.0
        return loads

    # -- costs ------------------------------------------------------------------

    def estimate(self, kind: PlanKind, profile: QueryProfile) -> float:
        """Estimated execution cost (seconds) of one plan."""
        return self.weights.price(self.loads(kind, profile))

    def estimate_all(self, profile: QueryProfile) -> dict[PlanKind, float]:
        """All six formulae — the optimizer's constant-time computation."""
        return {kind: self.estimate(kind, profile) for kind in PlanKind}
