"""The COLARM cost-based optimizer (Sections 3.1 and 5.1).

Given a localized mining request, the optimizer evaluates the six cost
formulae — a constant-time computation over the precomputed index
statistics — and suggests the plan with the lowest estimated cost.  The
paper reports >93% plan-selection accuracy and at most ~5% regret when the
choice is wrong; ``benchmarks/bench_optimizer_accuracy.py`` measures both
for this implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import tidset as ts
from repro.core.costs import (
    CostModel,
    CostWeights,
    ParallelCostProfile,
    QueryProfile,
)
from repro.core.mipindex import MIPIndex
from repro.core.plans import PlanKind
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for

__all__ = ["EstimateResidual", "PlanChoice", "ColarmOptimizer"]


#: Estimate-tie preference: supported before unsupported, fused before
#: split.  See :meth:`ColarmOptimizer.choose` for the dominance argument.
_TIE_PREFERENCE: dict[PlanKind, int] = {
    PlanKind.SSVS: 0,
    PlanKind.SSEUV: 1,
    PlanKind.SSEV: 2,
    PlanKind.SVS: 3,
    PlanKind.SEV: 4,
    PlanKind.ARM: 5,
}


@dataclass(frozen=True)
class EstimateResidual:
    """One estimate-vs-actual observation for one plan of one query.

    The accuracy bench feeds measured plan times back through
    :meth:`ColarmOptimizer.record_measurement`; the accumulated residuals
    say *which* cost formula drifts (and by how much) when the optimizer
    mispicks — the per-plan diagnostic behind the ACC report.
    """

    kind: PlanKind
    estimated_s: float
    measured_s: float
    dq_size: int = 0
    arm_f1: int = 0          # measured local structure behind the ARM price
    arm_chain: int = 0
    parallel: bool = False   # sharded execution variant of the plan

    @property
    def log_ratio(self) -> float:
        """log(estimated / measured); 0 = perfect, >0 = overestimate."""
        return math.log(max(self.estimated_s, 1e-12) /
                        max(self.measured_s, 1e-12))


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's suggestion plus everything behind it.

    When a parallel cost profile is installed, ``parallel_estimates``
    holds the sharded-variant prices (no ARM entry: the from-scratch
    miner has no parallel twin) and ``parallel`` says whether the chosen
    plan should execute sharded.
    """

    kind: PlanKind
    estimates: dict[PlanKind, float]
    profile: QueryProfile
    parallel: bool = False
    parallel_estimates: dict[PlanKind, float] = field(default_factory=dict)

    def explain(self) -> str:
        """Human-readable ranking of the plan variants."""
        lines = [
            f"focal subset: {self.profile.dq_size} records, "
            f"min_count={self.profile.min_count}"
        ]
        ranked = [
            (cost, kind, False) for kind, cost in self.estimates.items()
        ] + [
            (cost, kind, True)
            for kind, cost in self.parallel_estimates.items()
        ]
        for cost, kind, is_par in sorted(ranked, key=lambda kv: kv[0]):
            label = kind.value + ("+P" if is_par else "")
            chosen = kind is self.kind and is_par == self.parallel
            marker = " <== chosen" if chosen else ""
            lines.append(f"  {label:<11} est {cost:.6f}s{marker}")
        return "\n".join(lines)


class ColarmOptimizer:
    """Constant-time plan selection over a built MIP-index.

    ``arm_risk_factor`` applies risk aversion to the ARM plan: its cost
    comes from a *model* of the focal subset's itemset lattice, while the
    MIP-plan costs come from near-exact index statistics.  ARM is chosen
    only when its estimate beats the best MIP plan by that factor.  The
    density-aware ARM model (measured F1/F2/F3 + quasi-clique moment fit)
    removed the old systematic underestimate, but the *miss costs* stay
    asymmetric: a wrong ARM pick re-mines the whole focal lattice (we
    measure up to ~1.7x regret), while a wrong MIP pick lands within a
    few percent of the oracle because the MIP plans share most of their
    work.  The default of 1.15 breaks near-ties toward MIP without
    overriding clear ARM wins (correct ARM picks carry >1.2x margins on
    the reference workload); set 1.0 to rank on raw estimates.
    """

    def __init__(
        self,
        index: MIPIndex,
        weights: CostWeights | None = None,
        arm_risk_factor: float = 1.15,
    ):
        self.index = index
        self.cost_model = CostModel(index.stats, weights)
        self.arm_risk_factor = arm_risk_factor
        #: Sharded-execution facts (None = no pool configured); installed
        #: by ``Colarm.configure(parallel=...)``.  While set, every plan
        #: is priced both serial and sharded and :meth:`choose` picks
        #: across all variants.
        self.parallel_profile: ParallelCostProfile | None = None
        #: estimate-vs-actual observations fed back by the caller
        #: (:meth:`record_measurement`); unbounded only if the caller
        #: keeps feeding it — benches clear it per run.
        self.residuals: list[EstimateResidual] = []

    @property
    def weights(self) -> CostWeights:
        return self.cost_model.weights

    def set_weights(self, weights: CostWeights) -> None:
        self.cost_model = CostModel(self.index.stats, weights)

    def set_parallel(self, profile: ParallelCostProfile | None) -> None:
        """Install (or clear) the sharded-execution cost profile."""
        self.parallel_profile = profile

    def profile_for(self, query: LocalizedQuery) -> QueryProfile:
        """Resolve the focal subset and build the query's cost profile."""
        query.validate_against(self.index.table.schema)
        focal = query.focal_range(self.index.cardinalities)
        dq = self.index.table.tids_matching(query.range_selections)
        dq_size = ts.count(dq)
        if dq_size == 0:
            raise QueryError("focal subset is empty; nothing to optimize")
        min_count = min_count_for(query.minsupp, dq_size)
        item_tidsets = {
            (item.attribute, item.value): mask
            for item, mask in self.index.table.item_tidsets().items()
        }
        return QueryProfile.from_query(
            query,
            focal,
            self.index.stats,
            dq_size,
            min_count,
            item_local_tidsets=item_tidsets,
            dq=dq,
        )

    def choose(self, query: LocalizedQuery) -> PlanChoice:
        """Suggest the cheapest plan for this request.

        Estimate ties break by :data:`_TIE_PREFERENCE`, not enum order:
        when the model cannot separate two plans, the supported variant
        dominates — SUPPORTED-SEARCH prunes only candidates whose global
        count already fails the focal floor, so it can never qualify
        fewer itemsets than plain SEARCH and its count-pruned traversal
        touches at most the same leaves.  (Exact ties are common: below
        the primary floor the supported filter's *estimated* pass
        fraction is 1, which collapses the S-* and SS-* load vectors.)

        With a parallel profile installed, the candidate set doubles:
        every MIP plan is also priced as its sharded variant, and the
        cheapest variant overall wins.  A serial variant beats a sharded
        one at equal cost (the dispatch risk buys nothing) — it sorts
        first in the tie key.
        """
        profile = self.profile_for(query)
        estimates = self.cost_model.estimate_all(profile)
        parallel_estimates: dict[PlanKind, float] = {}
        if self.parallel_profile is not None:
            parallel_estimates = self.cost_model.estimate_all_parallel(
                profile, self.parallel_profile
            )

        def adjust(kind: PlanKind, cost: float) -> float:
            return cost * (
                self.arm_risk_factor if kind is PlanKind.ARM else 1.0
            )

        candidates = [
            (adjust(kind, cost), 0, _TIE_PREFERENCE[kind], kind, False)
            for kind, cost in estimates.items()
        ] + [
            (adjust(kind, cost), 1, _TIE_PREFERENCE[kind], kind, True)
            for kind, cost in parallel_estimates.items()
        ]
        _, _, _, best, best_parallel = min(candidates)
        return PlanChoice(
            kind=best,
            estimates=estimates,
            profile=profile,
            parallel=best_parallel,
            parallel_estimates=parallel_estimates,
        )

    # -- estimate-vs-actual feedback ----------------------------------------

    def record_measurement(
        self,
        choice: PlanChoice,
        kind: PlanKind,
        measured_s: float,
        parallel: bool = False,
    ) -> EstimateResidual:
        """Log one measured plan execution against its estimate.

        ``parallel=True`` scores the measurement against the plan's
        sharded-variant estimate (it must exist in the choice).
        """
        arm = choice.profile.arm_stats
        estimated = (
            choice.parallel_estimates[kind]
            if parallel
            else choice.estimates[kind]
        )
        residual = EstimateResidual(
            kind=kind,
            estimated_s=estimated,
            measured_s=measured_s,
            dq_size=choice.profile.dq_size,
            arm_f1=arm.f1 if arm is not None else 0,
            arm_chain=arm.chain_length if arm is not None else 0,
            parallel=parallel,
        )
        self.residuals.append(residual)
        return residual

    def residual_summary(self) -> dict[PlanKind, dict[str, float]]:
        """Per-plan bias/spread of log(estimated / measured)."""
        out: dict[PlanKind, dict[str, float]] = {}
        for kind in PlanKind:
            ratios = sorted(
                r.log_ratio for r in self.residuals if r.kind is kind
            )
            if not ratios:
                continue
            n = len(ratios)
            median = ratios[n // 2] if n % 2 else (
                (ratios[n // 2 - 1] + ratios[n // 2]) / 2.0
            )
            out[kind] = {
                "n": float(n),
                "median_log_ratio": median,
                "mean_abs_log_ratio": sum(abs(r) for r in ratios) / n,
            }
        return out
