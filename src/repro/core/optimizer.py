"""The COLARM cost-based optimizer (Sections 3.1 and 5.1).

Given a localized mining request, the optimizer evaluates the six cost
formulae — a constant-time computation over the precomputed index
statistics — and suggests the plan with the lowest estimated cost.  The
paper reports >93% plan-selection accuracy and at most ~5% regret when the
choice is wrong; ``benchmarks/bench_optimizer_accuracy.py`` measures both
for this implementation.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import tidset as ts
from repro.core.costs import (
    CostModel,
    CostWeights,
    ParallelCostProfile,
    QueryProfile,
)
from repro.core.mipindex import MIPIndex
from repro.core.plans import PlanKind
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for

__all__ = [
    "EstimateResidual",
    "PlanChoice",
    "RecompactionAdvice",
    "ColarmOptimizer",
]


#: Estimate-tie preference: supported before unsupported, fused before
#: split.  See :meth:`ColarmOptimizer.choose` for the dominance argument.
_TIE_PREFERENCE: dict[PlanKind, int] = {
    PlanKind.SSVS: 0,
    PlanKind.SSEUV: 1,
    PlanKind.SSEV: 2,
    PlanKind.SVS: 3,
    PlanKind.SEV: 4,
    PlanKind.ARM: 5,
}

#: Bound on the per-optimizer profile memo (see
#: :meth:`ColarmOptimizer.profile_for`): enough for any realistic hot
#: query set, small enough that stale-generation leftovers never matter.
_PROFILE_MEMO_MAX = 256


@dataclass(frozen=True)
class EstimateResidual:
    """One estimate-vs-actual observation for one plan of one query.

    The accuracy bench feeds measured plan times back through
    :meth:`ColarmOptimizer.record_measurement`; the accumulated residuals
    say *which* cost formula drifts (and by how much) when the optimizer
    mispicks — the per-plan diagnostic behind the ACC report.
    """

    kind: PlanKind
    estimated_s: float
    measured_s: float
    dq_size: int = 0
    arm_f1: int = 0          # measured local structure behind the ARM price
    arm_chain: int = 0
    parallel: bool = False   # sharded execution variant of the plan
    cached: bool = False     # materialized-cache variant of the plan

    @property
    def log_ratio(self) -> float:
        """log(estimated / measured); 0 = perfect, >0 = overestimate."""
        return math.log(max(self.estimated_s, 1e-12) /
                        max(self.measured_s, 1e-12))


@dataclass(frozen=True)
class RecompactionAdvice:
    """Priced answer to "should the maintained index fold its delta now?".

    ``toll_s`` is the per-query overhead the live delta adds to the
    query's cheapest delta-free MIP plan (the ``delta_probe`` /
    ``delta_merge`` terms at the fitted weights); folding pays off once
    that toll, accumulated over the expected ``horizon`` of queries
    before the next fold, exceeds the build cost.
    """

    recommended: bool
    toll_s: float            # per-query delta overhead at the fitted weights
    build_cost_s: float      # estimated cost of one recompaction
    horizon: int             # queries expected before the next fold

    @property
    def amortized_build_s(self) -> float:
        return self.build_cost_s / max(self.horizon, 1)


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's suggestion plus everything behind it.

    When a parallel cost profile is installed, ``parallel_estimates``
    holds the sharded-variant prices (no ARM entry: the from-scratch
    miner has no parallel twin) and ``parallel`` says whether the chosen
    plan should execute sharded.  When a materialized cache is installed
    and its probe hit, ``cached_estimates`` holds the CACHE-variant
    prices (one per plan the cached entry can serve), ``cached`` says
    whether the chosen plan should be served from the cache, and
    ``cache_probe`` carries the live probe the prices were built from
    (``kind``/``family``/sizes — what the engine needs to actually serve
    the hit).
    """

    kind: PlanKind
    estimates: dict[PlanKind, float]
    profile: QueryProfile
    parallel: bool = False
    parallel_estimates: dict[PlanKind, float] = field(default_factory=dict)
    cached: bool = False
    cached_estimates: dict[PlanKind, float] = field(default_factory=dict)
    cache_probe: object | None = None   # repro.cache.CacheProbe when probed
    #: Index generation the choice was priced against.  A choice is only
    #: reusable (``Colarm.query(choice=...)``, the serving layer's
    #: admission weights) while this matches ``index.generation`` —
    #: cached-variant prices and the memoized profile are both stale
    #: after a mutation.
    generation: int = 0

    @property
    def chosen_estimate(self) -> float:
        """The estimated cost of the chosen variant, in seconds.

        This is the scalar the serving layer uses as the admission /
        priority weight: the cached-variant price when the choice is a
        cache serve, the sharded price when it is a parallel execution,
        the serial price otherwise.
        """
        if self.cached:
            return self.cached_estimates[self.kind]
        if self.parallel:
            return self.parallel_estimates[self.kind]
        return self.estimates[self.kind]

    def explain(self) -> str:
        """Human-readable ranking of the plan variants."""
        lines = [
            f"focal subset: {self.profile.dq_size} records, "
            f"min_count={self.profile.min_count}"
        ]
        ranked = [
            (cost, kind, "") for kind, cost in self.estimates.items()
        ] + [
            (cost, kind, "+P")
            for kind, cost in self.parallel_estimates.items()
        ] + [
            (cost, kind, "+C")
            for kind, cost in self.cached_estimates.items()
        ]
        for cost, kind, tag in sorted(ranked, key=lambda kv: kv[0]):
            label = kind.value + tag
            chosen = (
                kind is self.kind
                and (tag == "+P") == self.parallel
                and (tag == "+C") == self.cached
            )
            marker = " <== chosen" if chosen else ""
            lines.append(f"  {label:<11} est {cost:.6f}s{marker}")
        return "\n".join(lines)


class ColarmOptimizer:
    """Constant-time plan selection over a built MIP-index.

    ``arm_risk_factor`` applies risk aversion to the ARM plan: its cost
    comes from a *model* of the focal subset's itemset lattice, while the
    MIP-plan costs come from near-exact index statistics.  ARM is chosen
    only when its estimate beats the best MIP plan by that factor.  The
    density-aware ARM model (measured F1/F2/F3 + quasi-clique moment fit)
    removed the old systematic underestimate, but the *miss costs* stay
    asymmetric: a wrong ARM pick re-mines the whole focal lattice (we
    measure up to ~1.7x regret), while a wrong MIP pick lands within a
    few percent of the oracle because the MIP plans share most of their
    work.  The default of 1.15 breaks near-ties toward MIP without
    overriding clear ARM wins (correct ARM picks carry >1.2x margins on
    the reference workload); set 1.0 to rank on raw estimates.
    """

    def __init__(
        self,
        index: MIPIndex,
        weights: CostWeights | None = None,
        arm_risk_factor: float = 1.15,
    ):
        self.index = index
        self.cost_model = CostModel(index.stats, weights)
        self.arm_risk_factor = arm_risk_factor
        #: Sharded-execution facts (None = no pool configured); installed
        #: by ``Colarm.configure(parallel=...)``.  While set, every plan
        #: is priced both serial and sharded and :meth:`choose` picks
        #: across all variants.
        self.parallel_profile: ParallelCostProfile | None = None
        #: Materialized-result cache (None = none installed); installed by
        #: ``Colarm.enable_cache``.  While set, :meth:`choose` probes it
        #: per query, prices a CACHE variant for every plan the cached
        #: entry can serve, and logs the probe outcome in
        #: :attr:`cache_ledger`.
        self.cache = None
        #: Delta-store source (a :class:`repro.core.maintenance.
        #: MaintainedIndex`, None = immutable index); installed by
        #: ``Colarm.enable_maintenance``.  While set, :meth:`profile_for`
        #: prices the combined live main+delta focal subset and attaches
        #: the delta load-term inputs to the profile.
        self.delta_source = None
        #: Hit/miss/pick outcomes of every cache probe made by
        #: :meth:`choose` — the measurement ledger's cache section.
        self.cache_ledger: dict[str, int] = {
            "probes": 0,
            "rule_hits": 0,
            "lattice_hits": 0,
            "misses": 0,
            "cached_picks": 0,
        }
        #: estimate-vs-actual observations fed back by the caller
        #: (:meth:`record_measurement`); unbounded only if the caller
        #: keeps feeding it — benches clear it per run.
        self.residuals: list[EstimateResidual] = []
        #: (query, index generation) -> QueryProfile LRU memo; see
        #: :meth:`profile_for`.
        self._profile_memo: "OrderedDict[tuple, QueryProfile]" = OrderedDict()

    @property
    def weights(self) -> CostWeights:
        return self.cost_model.weights

    def set_weights(self, weights: CostWeights) -> None:
        self.cost_model = CostModel(self.index.stats, weights)

    def set_parallel(self, profile: ParallelCostProfile | None) -> None:
        """Install (or clear) the sharded-execution cost profile."""
        self.parallel_profile = profile

    def set_cache(self, cache) -> None:
        """Install (or clear) the materialized-result cache to price."""
        self.cache = cache

    def set_delta(self, source) -> None:
        """Install (or clear) the maintained-index delta source.

        While set, profiles are built over the *live* main+delta focal
        subset and carry the delta sizes the cost model's
        ``delta_probe``/``delta_merge`` terms are computed from.  No memo
        flush is needed: delta mutations bump the index generation, which
        is part of the memo key.
        """
        self.delta_source = source

    def rebind_index(self, index: MIPIndex) -> None:
        """Point the optimizer at a freshly recompacted (or rebuilt) index.

        Rebuilds the cost model on the new index statistics and drops the
        profile memo; weights, risk factor, and the installed parallel /
        cache / delta companions are kept.
        """
        self.index = index
        self.cost_model = CostModel(index.stats, self.cost_model.weights)
        self._profile_memo.clear()

    def profile_for(self, query: LocalizedQuery) -> QueryProfile:
        """Resolve the focal subset and build the query's cost profile.

        The profile is a pure function of the (frozen, hashable) query
        and the index state, so it is memoized per (query, index
        generation) under a small LRU bound: the density-aware ARM model
        *measures* the focal subset's frequent-item structure, which
        costs milliseconds — on the repeated-query workloads the
        materialized cache serves, re-measuring an unchanged subset per
        repeat would dwarf the cache hit itself.  Any index mutation
        changes the generation key, so a stale profile is never reused.
        """
        memo_key = (query, self.index.generation)
        cached = self._profile_memo.get(memo_key)
        if cached is not None:
            self._profile_memo.move_to_end(memo_key)
            return cached
        query.validate_against(self.index.table.schema)
        focal = query.focal_range(self.index.cardinalities)
        dq = self.index.table.tids_matching(query.range_selections)
        delta_view = (
            self.delta_source.delta_view(query)
            if self.delta_source is not None
            else None
        )
        delta_records = delta_dq = delta_words = 0
        if delta_view is not None:
            # Mask tombstoned main records and extend the focal subset by
            # the live delta rows — the combined |D^Q| every plan answers
            # over, so min_count and all cardinality estimates line up
            # with the maintained execution.
            source = self.delta_source
            dq &= ~source.main_dead
            delta_dq = delta_view.dq_size
            delta_words = delta_view.buffer.words
            delta_records = (
                source.n_delta_records
                + source.n_main_records
                - source.n_main_live
            )
        dq_size = ts.count(dq) + delta_dq
        if dq_size == 0:
            raise QueryError("focal subset is empty; nothing to optimize")
        min_count = min_count_for(query.minsupp, dq_size)
        item_tidsets = {
            (item.attribute, item.value): mask
            for item, mask in self.index.table.item_tidsets().items()
        }
        profile = QueryProfile.from_query(
            query,
            focal,
            self.index.stats,
            dq_size,
            min_count,
            item_local_tidsets=item_tidsets,
            dq=dq,
            delta_records=delta_records,
            delta_dq_size=delta_dq,
            delta_words=delta_words,
        )
        self._profile_memo[memo_key] = profile
        if len(self._profile_memo) > _PROFILE_MEMO_MAX:
            self._profile_memo.popitem(last=False)
        return profile

    def choose(
        self, query: LocalizedQuery, use_cache: bool = True
    ) -> PlanChoice:
        """Suggest the cheapest plan for this request.

        Estimate ties break by :data:`_TIE_PREFERENCE`, not enum order:
        when the model cannot separate two plans, the supported variant
        dominates — SUPPORTED-SEARCH prunes only candidates whose global
        count already fails the focal floor, so it can never qualify
        fewer itemsets than plain SEARCH and its count-pruned traversal
        touches at most the same leaves.  (Exact ties are common: below
        the primary floor the supported filter's *estimated* pass
        fraction is 1, which collapses the S-* and SS-* load vectors.)

        With a parallel profile installed, the candidate set doubles:
        every MIP plan is also priced as its sharded variant, and the
        cheapest variant overall wins.  With a materialized cache
        installed (and ``use_cache``), the cache is probed and — on a hit
        — every plan the entry can serve gets a CACHE variant too.  The
        variant rank breaks exact ties: cached beats serial (a hit is
        strictly less work and byte-identical to its plan family's fresh
        execution) and serial beats sharded (the dispatch risk buys
        nothing at equal cost).
        """
        profile = self.profile_for(query)
        estimates = self.cost_model.estimate_all(profile)
        parallel_estimates: dict[PlanKind, float] = {}
        if self.parallel_profile is not None:
            parallel_estimates = self.cost_model.estimate_all_parallel(
                profile, self.parallel_profile
            )
        cache_probe = None
        cached_estimates: dict[PlanKind, float] = {}
        if self.cache is not None and use_cache:
            cache_probe = self.cache.probe(query)
            self.cache_ledger["probes"] += 1
            if cache_probe.kind == "rules":
                self.cache_ledger["rule_hits"] += 1
            elif cache_probe.kind == "lattice":
                self.cache_ledger["lattice_hits"] += 1
            else:
                self.cache_ledger["misses"] += 1
            cached_estimates = self.cost_model.estimate_all_cached(
                profile, cache_probe
            )

        def adjust(kind: PlanKind, cost: float) -> float:
            return cost * (
                self.arm_risk_factor if kind is PlanKind.ARM else 1.0
            )

        candidates = [
            (adjust(kind, cost), 1, _TIE_PREFERENCE[kind], kind, False, False)
            for kind, cost in estimates.items()
        ] + [
            (adjust(kind, cost), 2, _TIE_PREFERENCE[kind], kind, True, False)
            for kind, cost in parallel_estimates.items()
        ] + [
            (adjust(kind, cost), 0, _TIE_PREFERENCE[kind], kind, False, True)
            for kind, cost in cached_estimates.items()
        ]
        _, _, _, best, best_parallel, best_cached = min(candidates)
        if best_cached:
            self.cache_ledger["cached_picks"] += 1
        return PlanChoice(
            kind=best,
            estimates=estimates,
            profile=profile,
            parallel=best_parallel,
            parallel_estimates=parallel_estimates,
            cached=best_cached,
            cached_estimates=cached_estimates,
            cache_probe=cache_probe,
            generation=self.index.generation,
        )

    def recompaction_advice(
        self,
        query: LocalizedQuery,
        build_cost_s: float,
        horizon: int = 100,
    ) -> RecompactionAdvice:
        """Price rebuild-vs-accumulate for the maintained index.

        The per-query *toll* is the price of the delta load terms
        (``delta_probe``/``delta_merge``) on the query's cheapest
        **delta-free** MIP plan — the plan the workload would run on a
        freshly folded index.  Folding is recommended once the toll,
        accumulated over ``horizon`` queries, exceeds ``build_cost_s``
        (use the maintained index's measured ``last_build_s``, or a
        calibration estimate, for the latter).

        Ranking on the delta-free prices is deliberate: with
        ``delta_probe = inf`` (the CI gate's forcing function) every
        delta-laden MIP variant prices to infinity, and ranking on the
        laden prices would dodge the toll by "choosing" ARM — the stripped
        ranking keeps the toll attached to the plan actually at stake, so
        an infinite probe weight always recommends folding while a live
        delta exists.
        """
        profile = self.profile_for(query)
        if profile.delta_records <= 0:
            return RecompactionAdvice(
                recommended=False,
                toll_s=0.0,
                build_cost_s=build_cost_s,
                horizon=horizon,
            )
        base_prices = {}
        for kind in PlanKind:
            if kind is PlanKind.ARM:
                continue
            loads = self.cost_model.loads(kind, profile)
            loads.pop("delta_probe", None)
            loads.pop("delta_merge", None)
            base_prices[kind] = self.weights.price(loads)
        kind = min(
            base_prices, key=lambda k: (base_prices[k], _TIE_PREFERENCE[k])
        )
        toll = self.weights.price(
            self.cost_model.delta_loads(kind, profile)
        )
        return RecompactionAdvice(
            recommended=toll * horizon > build_cost_s,
            toll_s=toll,
            build_cost_s=build_cost_s,
            horizon=horizon,
        )

    # -- estimate-vs-actual feedback ----------------------------------------

    def record_measurement(
        self,
        choice: PlanChoice,
        kind: PlanKind,
        measured_s: float,
        parallel: bool = False,
        cached: bool = False,
    ) -> EstimateResidual:
        """Log one measured plan execution against its estimate.

        ``parallel=True`` scores the measurement against the plan's
        sharded-variant estimate (it must exist in the choice);
        ``cached=True`` against its CACHE-variant estimate.
        """
        arm = choice.profile.arm_stats
        if cached:
            estimated = choice.cached_estimates[kind]
        elif parallel:
            estimated = choice.parallel_estimates[kind]
        else:
            estimated = choice.estimates[kind]
        residual = EstimateResidual(
            kind=kind,
            estimated_s=estimated,
            measured_s=measured_s,
            dq_size=choice.profile.dq_size,
            arm_f1=arm.f1 if arm is not None else 0,
            arm_chain=arm.chain_length if arm is not None else 0,
            parallel=parallel,
            cached=cached,
        )
        self.residuals.append(residual)
        return residual

    def residual_summary(self) -> dict[PlanKind, dict[str, float]]:
        """Per-plan bias/spread of log(estimated / measured)."""
        out: dict[PlanKind, dict[str, float]] = {}
        for kind in PlanKind:
            ratios = sorted(
                r.log_ratio for r in self.residuals if r.kind is kind
            )
            if not ratios:
                continue
            n = len(ratios)
            median = ratios[n // 2] if n % 2 else (
                (ratios[n // 2 - 1] + ratios[n // 2]) / 2.0
            )
            out[kind] = {
                "n": float(n),
                "median_log_ratio": median,
                "mean_abs_log_ratio": sum(abs(r) for r in ratios) / n,
            }
        return out
