"""The COLARM cost-based optimizer (Sections 3.1 and 5.1).

Given a localized mining request, the optimizer evaluates the six cost
formulae — a constant-time computation over the precomputed index
statistics — and suggests the plan with the lowest estimated cost.  The
paper reports >93% plan-selection accuracy and at most ~5% regret when the
choice is wrong; ``benchmarks/bench_optimizer_accuracy.py`` measures both
for this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import tidset as ts
from repro.core.costs import CostModel, CostWeights, QueryProfile
from repro.core.mipindex import MIPIndex
from repro.core.plans import PlanKind
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for

__all__ = ["PlanChoice", "ColarmOptimizer"]


@dataclass(frozen=True)
class PlanChoice:
    """The optimizer's suggestion plus everything behind it."""

    kind: PlanKind
    estimates: dict[PlanKind, float]
    profile: QueryProfile

    def explain(self) -> str:
        """Human-readable ranking of all six plans."""
        lines = [
            f"focal subset: {self.profile.dq_size} records, "
            f"min_count={self.profile.min_count}"
        ]
        for kind, cost in sorted(self.estimates.items(), key=lambda kv: kv[1]):
            marker = " <== chosen" if kind is self.kind else ""
            lines.append(f"  {kind.value:<9} est {cost:.6f}s{marker}")
        return "\n".join(lines)


class ColarmOptimizer:
    """Constant-time plan selection over a built MIP-index.

    ``arm_risk_factor`` applies risk aversion to the ARM plan: its cost
    comes from a *model* of the focal subset's itemset lattice (high
    variance, unbounded downside when a dense region explodes), while the
    MIP-plan costs come from near-exact index statistics.  ARM is chosen
    only when its estimate beats the best MIP plan by that factor.
    """

    def __init__(
        self,
        index: MIPIndex,
        weights: CostWeights | None = None,
        arm_risk_factor: float = 1.2,
    ):
        self.index = index
        self.cost_model = CostModel(index.stats, weights)
        self.arm_risk_factor = arm_risk_factor

    @property
    def weights(self) -> CostWeights:
        return self.cost_model.weights

    def set_weights(self, weights: CostWeights) -> None:
        self.cost_model = CostModel(self.index.stats, weights)

    def profile_for(self, query: LocalizedQuery) -> QueryProfile:
        """Resolve the focal subset and build the query's cost profile."""
        query.validate_against(self.index.table.schema)
        focal = query.focal_range(self.index.cardinalities)
        dq = self.index.table.tids_matching(query.range_selections)
        dq_size = ts.count(dq)
        if dq_size == 0:
            raise QueryError("focal subset is empty; nothing to optimize")
        min_count = min_count_for(query.minsupp, dq_size)
        item_tidsets = {
            (item.attribute, item.value): mask
            for item, mask in self.index.table.item_tidsets().items()
        }
        return QueryProfile.from_query(
            query,
            focal,
            self.index.stats,
            dq_size,
            min_count,
            item_local_tidsets=item_tidsets,
            dq=dq,
        )

    def choose(self, query: LocalizedQuery) -> PlanChoice:
        """Suggest the cheapest plan for this request."""
        profile = self.profile_for(query)
        estimates = self.cost_model.estimate_all(profile)
        adjusted = {
            kind: cost * (self.arm_risk_factor if kind is PlanKind.ARM else 1.0)
            for kind, cost in estimates.items()
        }
        best = min(adjusted, key=lambda k: (adjusted[k], k.value))
        return PlanChoice(kind=best, estimates=estimates, profile=profile)
