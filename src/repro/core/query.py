"""The localized mining query and focal-subset geometry.

A :class:`LocalizedQuery` carries the four online parameters of Section 2.2:
the range selections (``Arange``, defining the focal subset ``D^Q``), the
optional item attributes (``Aitem``), and the ``minsupp``/``minconf``
thresholds.

Range selections are per-attribute *value sets*.  The R-tree is probed with
their per-attribute hull interval — a superset of the true region, so the
search never loses candidates — and :class:`FocalRange` then re-classifies
every candidate box exactly as contained / partially overlapped / disjoint
(Section 3.4's three mutually exclusive groups).
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.dataset.schema import Schema
from repro.errors import QueryError
from repro.rtree.geometry import Rect

__all__ = [
    "Overlap",
    "FocalRange",
    "LocalizedQuery",
    "canonical_focal_key",
]


def canonical_focal_key(
    range_selections: Mapping[int, frozenset[int]],
    cardinalities: Sequence[int],
) -> tuple:
    """Canonical key of the focal subset a selection set names.

    A selection spanning an attribute's whole domain selects nothing, so
    it is dropped: two queries selecting the same records — one spelling
    the full domain out, one omitting the attribute — map to the same
    key.  This is the grouping shared by :mod:`repro.core.multiquery`
    (work sharing within a batch), :mod:`repro.cache` (entry keys), and
    :mod:`repro.serving` (in-flight request coalescing); keeping it in
    one place keeps the three layers agreeing on what "the same focal
    subset" means.
    """
    return tuple(sorted(
        (ai, tuple(sorted(vs)))
        for ai, vs in range_selections.items()
        if len(vs) < cardinalities[ai]
    ))


class Overlap(enum.Enum):
    """Relation of a MIP bounding box to the focal region (Section 3.4)."""

    CONTAINED = "contained"
    PARTIAL = "partial"
    DISJOINT = "disjoint"


@dataclass(frozen=True)
class FocalRange:
    """The focal region as per-dimension admitted-value bitmasks."""

    cardinalities: tuple[int, ...]
    value_masks: tuple[int, ...]  # bit v set <=> value v admitted, per dim

    @classmethod
    def from_selections(
        cls,
        selections: Mapping[int, frozenset[int]],
        cardinalities: Sequence[int],
    ) -> "FocalRange":
        cardinalities = tuple(cardinalities)
        masks = []
        for dim, card in enumerate(cardinalities):
            if dim in selections:
                values = selections[dim]
                if not values:
                    raise QueryError(f"empty selection for attribute {dim}")
                mask = 0
                for v in values:
                    if not 0 <= v < card:
                        raise QueryError(
                            f"value index {v} out of range for attribute {dim} "
                            f"(cardinality {card})"
                        )
                    mask |= 1 << v
            else:
                mask = (1 << card) - 1
            masks.append(mask)
        return cls(cardinalities, tuple(masks))

    def hull(self) -> Rect:
        """Per-dimension [min, max] interval around the admitted values.

        A superset of the true region — the box the R-tree is probed with.
        """
        lows, highs = [], []
        for mask in self.value_masks:
            lows.append((mask & -mask).bit_length() - 1)
            highs.append(mask.bit_length() - 1)
        return Rect(tuple(lows), tuple(highs))

    def hull_extents(self) -> tuple[int, ...]:
        """Cell extents of the hull per dimension (the cost model's D^Q_i)."""
        return self.hull().extents()

    def classify(self, box: Rect) -> Overlap:
        """Exact relation of a box to the region (product of value sets)."""
        contained = True
        for dim, sel_mask in enumerate(self.value_masks):
            lo, hi = box.lows[dim], box.highs[dim]
            interval_mask = ((1 << (hi + 1)) - 1) ^ ((1 << lo) - 1)
            inside = interval_mask & sel_mask
            if inside == 0:
                return Overlap.DISJOINT
            if inside != interval_mask:
                contained = False
        return Overlap.CONTAINED if contained else Overlap.PARTIAL

    def selectivity(self) -> float:
        """Fraction of grid cells admitted (product over dimensions)."""
        fraction = 1.0
        for card, mask in zip(self.cardinalities, self.value_masks):
            fraction *= mask.bit_count() / card
        return fraction

    def classify_all(self, fixed_values) -> "tuple[object, object]":
        """Vectorized classification of MIP boxes given their fixed values.

        ``fixed_values`` is the (N, n) int matrix of
        :class:`~repro.core.stats.IndexStatistics` — the value each MIP
        fixes per attribute, ``-1`` when free.  Returns boolean arrays
        ``(overlaps, contained)`` equivalent to calling :meth:`classify`
        on each MIP's box (asserted equivalent in the tests); used by
        SEARCH to classify thousands of candidates in one numpy pass.
        """
        import numpy as np

        n = fixed_values.shape[0]
        overlaps = np.ones(n, dtype=bool)
        contained = np.ones(n, dtype=bool)
        for dim, (card, mask) in enumerate(
            zip(self.cardinalities, self.value_masks)
        ):
            full = (1 << card) - 1
            if mask == full:
                continue  # full domain: every box overlaps and is contained
            selected = np.zeros(card, dtype=bool)
            for v in range(card):
                selected[v] = bool((mask >> v) & 1)
            col = fixed_values[:, dim]
            fixes = col >= 0
            in_sel = np.zeros(n, dtype=bool)
            in_sel[fixes] = selected[col[fixes]]
            overlaps &= ~fixes | in_sel
            contained &= fixes & in_sel
        return overlaps, contained


@dataclass(frozen=True)
class LocalizedQuery:
    """An online localized rule mining request (the paper's query ``Q``).

    ``range_selections`` maps attribute index to the admitted value indices
    (attributes absent admit their full domain); ``item_attributes`` is the
    optional ``Aitem`` restriction (``None`` = all attributes);
    ``minsupp``/``minconf`` are relative thresholds over the focal subset.
    """

    range_selections: Mapping[int, frozenset[int]]
    minsupp: float
    minconf: float
    item_attributes: frozenset[int] | None = None
    _frozen_selections: tuple[tuple[int, frozenset[int]], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.minsupp <= 1.0:
            raise QueryError(f"minsupp must be in (0, 1], got {self.minsupp}")
        if not 0.0 <= self.minconf <= 1.0:
            raise QueryError(f"minconf must be in [0, 1], got {self.minconf}")
        normalized = tuple(
            sorted((int(k), frozenset(v)) for k, v in dict(self.range_selections).items())
        )
        object.__setattr__(self, "_frozen_selections", normalized)
        object.__setattr__(self, "range_selections", dict(normalized))

    def __hash__(self) -> int:
        return hash(
            (self._frozen_selections, self.minsupp, self.minconf, self.item_attributes)
        )

    @classmethod
    def from_labels(
        cls,
        schema: Schema,
        ranges: Mapping[str, Sequence[str]],
        minsupp: float,
        minconf: float,
        item_attributes: Sequence[str] | None = None,
    ) -> "LocalizedQuery":
        """Build a query from attribute/value *labels* (the user-facing form).

        ``ranges={"Location": ["Seattle"], "Gender": ["F"]}`` selects the
        paper's "female employees in Seattle" focal subset.
        """
        selections: dict[int, frozenset[int]] = {}
        for name, labels in ranges.items():
            ai = schema.attribute_index(name)
            attr = schema.attributes[ai]
            if not labels:
                raise QueryError(f"empty value list for range attribute {name!r}")
            selections[ai] = frozenset(attr.value_index(lbl) for lbl in labels)
        items = None
        if item_attributes is not None:
            items = frozenset(schema.attribute_index(n) for n in item_attributes)
            if not items:
                raise QueryError("item_attributes must not be empty when given")
        return cls(
            range_selections=selections,
            minsupp=minsupp,
            minconf=minconf,
            item_attributes=items,
        )

    def focal_range(self, cardinalities: Sequence[int]) -> FocalRange:
        return FocalRange.from_selections(self.range_selections, cardinalities)

    def validate_against(self, schema: Schema) -> None:
        """Check all referenced attributes/values exist in the schema."""
        for ai, values in self.range_selections.items():
            if not 0 <= ai < schema.n_attributes:
                raise QueryError(f"range attribute index {ai} out of range")
            card = schema.attributes[ai].cardinality
            for v in values:
                if not 0 <= v < card:
                    raise QueryError(
                        f"value {v} out of range for attribute "
                        f"{schema.attributes[ai].name!r}"
                    )
        if self.item_attributes is not None:
            for ai in self.item_attributes:
                if not 0 <= ai < schema.n_attributes:
                    raise QueryError(f"item attribute index {ai} out of range")

    def describe(self, schema: Schema) -> str:
        """Human-readable one-liner for logs and plan explanations."""
        parts = []
        for ai, values in sorted(self.range_selections.items()):
            attr = schema.attributes[ai]
            labels = ", ".join(attr.values[v] for v in sorted(values))
            parts.append(f"{attr.name} in ({labels})")
        where = " AND ".join(parts) if parts else "<full dataset>"
        items = (
            "all attributes"
            if self.item_attributes is None
            else ", ".join(
                schema.attributes[ai].name for ai in sorted(self.item_attributes)
            )
        )
        return (
            f"RANGE {where} | ITEM {items} | "
            f"minsupp={self.minsupp:.2f} minconf={self.minconf:.2f}"
        )
