"""COLARM core: MIP-index, query model, operators, plans, optimizer, engine."""

from repro.core.calibration import CalibrationReport, calibrate, default_probe_queries
from repro.core.costs import CostModel, CostWeights, QueryProfile
from repro.core.engine import Colarm, QueryOutcome
from repro.core.maintenance import MaintainedIndex
from repro.core.mip import MIP, mip_bounding_box
from repro.core.multiquery import BatchReport, execute_batch
from repro.core.persistence import load_index, save_index
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.operators import ExecutionTrace, OperatorTrace, make_context
from repro.core.optimizer import ColarmOptimizer, PlanChoice
from repro.core.parser import ParsedQuery, parse_query
from repro.core.plans import PlanKind, PlanResult, execute_plan, plan_from_name
from repro.core.query import FocalRange, LocalizedQuery, Overlap
from repro.core.stats import IndexStatistics

__all__ = [
    "MIP",
    "mip_bounding_box",
    "MIPIndex",
    "build_mip_index",
    "IndexStatistics",
    "LocalizedQuery",
    "FocalRange",
    "Overlap",
    "ParsedQuery",
    "parse_query",
    "ExecutionTrace",
    "OperatorTrace",
    "make_context",
    "PlanKind",
    "PlanResult",
    "execute_plan",
    "plan_from_name",
    "CostModel",
    "CostWeights",
    "QueryProfile",
    "ColarmOptimizer",
    "PlanChoice",
    "CalibrationReport",
    "calibrate",
    "default_probe_queries",
    "Colarm",
    "QueryOutcome",
    "MaintainedIndex",
    "BatchReport",
    "execute_batch",
    "save_index",
    "load_index",
]
