"""The two-level MIP-index (Section 3.3, Figure 3).

Offline preprocessing in one call: run CHARM at the primary support
threshold, turn every closed frequent itemset into a
:class:`~repro.core.mip.MIP`, pack the boxes (with their global counts)
into a :class:`~repro.rtree.supported.SupportedRTree`, store the itemsets
in a :class:`~repro.itemsets.ittree.ClosedITTree`, and gather the index
statistics the optimizer consumes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro import kernels
from repro.core.mip import MIP
from repro.core.stats import IndexStatistics, gather_statistics
from repro.dataset.table import RelationalTable
from repro.errors import DataError
from repro.itemsets.charm import ClosedItemset, charm
from repro.itemsets.ittree import ClosedITTree
from repro.rtree.rtree import DEFAULT_MAX_ENTRIES
from repro.rtree.supported import SupportedRTree

__all__ = ["GenerationClock", "MIPIndex", "build_mip_index"]


class GenerationClock:
    """Mutable generation state carried by an (otherwise frozen) index.

    ``base`` seats the index in a monotone lineage: a recompacted index
    starts at the predecessor's final generation plus one, so stamps
    issued against any earlier index of the lineage can never collide
    with the new one's.  ``ticks`` counts logical mutations that do not
    touch the R-tree — delta-store appends and tombstone deletes — which
    must invalidate caches, memoized profiles, and serving coalesce
    windows exactly like structural tree mutations, *without* flipping
    the flat-compile currency check (that compares the tree's own
    mutation counter, which delta ticks deliberately leave alone).
    """

    __slots__ = ("base", "ticks")

    def __init__(self, base: int = 0, ticks: int = 0):
        self.base = base
        self.ticks = ticks


@dataclass(frozen=True)
class MIPIndex:
    """The offline artifact of the COLARM framework."""

    table: RelationalTable
    primary_support: float
    mips: tuple[MIP, ...]
    rtree: SupportedRTree
    ittree: ClosedITTree
    stats: IndexStatistics
    clock: GenerationClock = field(
        default_factory=GenerationClock, repr=False, compare=False
    )

    @property
    def n_mips(self) -> int:
        return len(self.mips)

    @property
    def flat_rtree(self):
        """The compiled flat SoA traversal form (``None`` until compiled).

        Built eagerly by :func:`build_mip_index` right after packing and
        re-attached from stored arrays by :mod:`repro.core.persistence`;
        the SEARCH / SUPPORTED-SEARCH operators use it transparently via
        :class:`~repro.rtree.supported.SupportedRTree` whenever it is
        current, falling back to the pointer tree after any direct
        insert/delete on ``rtree.tree`` until :meth:`recompile_flat`.
        """
        return self.rtree.flat

    def recompile_flat(self):
        """Recompile the flat form after pointer-tree mutations."""
        return self.rtree.compile_flat()

    @property
    def cardinalities(self) -> tuple[int, ...]:
        return self.table.schema.cardinalities()

    @property
    def generation(self) -> int:
        """The index's invalidation token.

        The sum of the lineage base, the logical mutation ticks (delta
        appends/deletes, bumped via :meth:`bump_generation`), and the
        R-tree's structural mutation counter.  Every mutation of any kind
        bumps it; the cache, the optimizer's plan choices, and the
        serving layer's coalescing all stamp their products with it so
        nothing computed against an older state is ever served against a
        newer one.
        """
        return self.clock.base + self.clock.ticks + self.rtree.tree.mutations

    def bump_generation(self) -> int:
        """Record one logical (non-structural) mutation; returns the new
        generation.  Used by the delta store: query-visible state changed
        but the R-tree did not, so the flat compile stays current while
        every generation-stamped product goes stale."""
        self.clock.ticks += 1
        return self.generation

    @property
    def tidset_words(self) -> int:
        """64-bit words per packed tidset row for this index's universe."""
        return kernels.n_words(self.table.n_records)

    @cached_property
    def mip_tidset_matrix(self) -> np.ndarray:
        """Packed ``(n_mips, words)`` matrix of every MIP's tidset.

        Row ``i`` is ``kernels.pack(mips[i].tidset)``; the ELIMINATE /
        SUPPORTED-VERIFY qualification batches ``|t(I) ∩ D^Q|`` for all
        candidates with one :func:`repro.kernels.and_count` call over a
        row-gather of this matrix.  ``cached_property`` stores the matrix
        in the instance ``__dict__`` (bypassing the frozen dataclass), so
        indexes rebuilt by :mod:`repro.core.persistence` regain it lazily.
        """
        matrix = kernels.pack_many(
            [mip.tidset for mip in self.mips], self.tidset_words
        )
        matrix.setflags(write=False)
        return matrix


def build_mip_index(
    table: RelationalTable,
    primary_support: float,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    packing: str = "hilbert",
    compile_flat: bool = True,
    closed: Sequence[ClosedItemset] | None = None,
) -> MIPIndex:
    """Run the offline preprocessing phase and return the MIP-index.

    ``primary_support`` is the domain-specific floor of footnote 2: queries
    are answered exactly for any ``minsupp * |D^Q| >= primary_support * |D|``;
    itemsets below the floor are only reachable through the ARM plan.

    ``closed`` supplies precomputed closed frequent itemsets (in row
    order) instead of mining them — the persistence layer's fast load
    path reconstructs them from a trusted snapshot, where re-running the
    miner would only rediscover what the file already states.
    """
    if table.n_records == 0:
        raise DataError("cannot build a MIP-index over an empty table")
    if not 0.0 < primary_support <= 1.0:
        raise DataError(
            f"primary_support must be in (0, 1], got {primary_support}"
        )
    if closed is None:
        closed = charm(table.item_tidsets(), table.n_records, primary_support)
    cardinalities = table.schema.cardinalities()
    mips = tuple(
        MIP.from_closed(cfi, cardinalities, row=i)
        for i, cfi in enumerate(closed)
    )
    rtree = SupportedRTree.build(
        n_dims=table.n_attributes,
        items=[(mip.box, mip, mip.global_count) for mip in mips],
        max_entries=max_entries,
        method=packing,
        # The flat SoA traversal form is part of the offline artifact so
        # the first online SEARCH does not pay the compile; persistence
        # passes False and attaches the stored compile instead.
        compile_flat=compile_flat,
    )
    ittree = ClosedITTree(closed)
    stats = gather_statistics(
        mips,
        rtree.tree,
        cardinalities,
        table.n_records,
        primary_support,
        item_tidsets=table.item_tidsets(),
    )
    index = MIPIndex(
        table=table,
        primary_support=primary_support,
        mips=mips,
        rtree=rtree,
        ittree=ittree,
        stats=stats,
    )
    # Materialize the packed MIP-tidset matrix during the offline phase so
    # the first online query does not pay the packing cost.
    index.mip_tidset_matrix  # noqa: B018 — intentional cache warm-up
    return index
