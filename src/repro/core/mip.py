"""Multidimensional Itemset Partitions (MIPs).

A MIP (Section 3.2) is the pairing of a closed frequent itemset with its
bounding box in the discretized cell grid: the box spans the single cell
``[v, v]`` on every attribute the itemset fixes and the full domain on
every attribute it leaves free.  The symbols ``D^P_k`` (box) and ``I^P_k``
(itemset) of the paper are the two faces of one :class:`MIP` object.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import tidset as ts
from repro.itemsets.charm import ClosedItemset
from repro.itemsets.itemset import Itemset, attributes_of
from repro.rtree.geometry import Rect

__all__ = ["MIP", "mip_bounding_box"]


def mip_bounding_box(itemset: Itemset, cardinalities: Sequence[int]) -> Rect:
    """Bounding box of an itemset in the cell grid.

    Fixed attributes collapse to their cell; free attributes span their
    whole domain — exactly the construction of Figure 1 in the paper.
    """
    lows = [0] * len(cardinalities)
    highs = [c - 1 for c in cardinalities]
    for item in itemset:
        lows[item.attribute] = item.value
        highs[item.attribute] = item.value
    return Rect(tuple(lows), tuple(highs))


@dataclass(frozen=True)
class MIP:
    """One multidimensional itemset partition of the MIP-index.

    ``row`` is the MIP's position in the index's MIP tuple — the key into
    the vectorized per-MIP statistics (``-1`` for standalone MIPs).
    """

    itemset: Itemset
    box: Rect
    tidset: int
    global_count: int
    row: int = -1

    @classmethod
    def from_closed(
        cls,
        cfi: ClosedItemset,
        cardinalities: Sequence[int],
        row: int = -1,
    ) -> "MIP":
        return cls(
            itemset=cfi.items,
            box=mip_bounding_box(cfi.items, cardinalities),
            tidset=cfi.tidset,
            global_count=cfi.support_count,
            row=row,
        )

    @property
    def length(self) -> int:
        """Number of singleton items (the paper's ``C_I``)."""
        return len(self.itemset)

    @property
    def fixed_attributes(self) -> frozenset[int]:
        return attributes_of(self.itemset)

    def local_count(self, dq: int) -> int:
        """``|D^Q_I|`` — records supporting the itemset inside a focal tidset."""
        return ts.count(self.tidset & dq)
