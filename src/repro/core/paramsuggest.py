"""Data-driven parameter suggestion (the paper's future-work item (a)).

The conclusion of the paper proposes "mining the range, support and
confidence parameters from the data in an automatic and efficient way".
This extension offers exactly that, using only the precomputed MIP-index:

* :func:`suggest_minsupp` — a support threshold at a chosen quantile of the
  stored itemsets' global supports (so a requested share of the index
  qualifies);
* :func:`suggest_minconf` — a confidence threshold from a sample of rules
  generated off the stored itemsets;
* :func:`suggest_ranges` — single-attribute focal subsets ranked by how
  many *fresh local* itemsets they surface (locally frequent itemsets that
  a global query at the same threshold would miss) — candidate starting
  points for Simpson's-paradox exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tidset as ts
from repro.core.mipindex import MIPIndex
from repro.dataset.schema import Item
from repro.errors import QueryError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.rules import generate_rules

__all__ = ["RangeSuggestion", "suggest_minsupp", "suggest_minconf", "suggest_ranges"]


@dataclass(frozen=True)
class RangeSuggestion:
    """A candidate focal subset and how promising it looks."""

    attribute: int
    values: frozenset[int]
    dq_size: int
    fresh_local_itemsets: int   # locally frequent but globally below minsupp
    repeated_global_itemsets: int

    def describe(self, schema) -> str:
        attr = schema.attributes[self.attribute]
        labels = ", ".join(attr.values[v] for v in sorted(self.values))
        return (
            f"{attr.name} in ({labels}): |D^Q|={self.dq_size}, "
            f"{self.fresh_local_itemsets} fresh local itemsets "
            f"({self.repeated_global_itemsets} already global)"
        )


def suggest_minsupp(index: MIPIndex, qualify_fraction: float = 0.25) -> float:
    """A minsupp so that ~``qualify_fraction`` of stored itemsets qualify.

    Computed as a quantile of the global support distribution; clamped to
    stay at or above the primary threshold (below it the index is blind).
    """
    if not 0.0 < qualify_fraction <= 1.0:
        raise QueryError("qualify_fraction must be in (0, 1]")
    counts = index.stats.sorted_global_counts
    if len(counts) == 0:
        return index.primary_support
    quantile = float(np.quantile(counts, 1.0 - qualify_fraction))
    return max(quantile / index.table.n_records, index.primary_support)


def suggest_minconf(index: MIPIndex, target_fraction: float = 0.25,
                    sample: int = 200) -> float:
    """A minconf passing ~``target_fraction`` of rules off stored itemsets."""
    if not 0.0 < target_fraction <= 1.0:
        raise QueryError("target_fraction must be in (0, 1]")
    full = ts.full(index.table.n_records)

    def global_count(items):
        return index.ittree.local_support_count(items, full)

    confidences: list[float] = []
    for mip in index.mips[:sample]:
        for rule in generate_rules(
            mip.itemset, global_count, index.table.n_records, 0.0
        ):
            confidences.append(rule.confidence)
    if not confidences:
        return 0.5
    return float(np.quantile(np.asarray(confidences), 1.0 - target_fraction))


def suggest_ranges(
    index: MIPIndex,
    minsupp: float,
    top_k: int = 5,
    min_subset_fraction: float = 0.02,
) -> list[RangeSuggestion]:
    """Rank single-value focal subsets by fresh local itemsets surfaced.

    For every item ``(attribute = value)`` whose subset is large enough,
    count stored itemsets that are locally frequent at ``minsupp`` inside
    the subset, split into *fresh* (globally below ``minsupp``) and
    *repeated* (already globally frequent) — the Figure 13 quantities —
    and return the ``top_k`` subsets with the most fresh itemsets.
    """
    if index.table.n_records == 0:
        return []
    global_floor = min_count_for(minsupp, index.table.n_records)
    suggestions: list[RangeSuggestion] = []
    for item, mask in index.table.item_tidsets().items():
        dq_size = ts.count(mask)
        if dq_size < min_subset_fraction * index.table.n_records:
            continue
        local_floor = min_count_for(minsupp, dq_size)
        fresh = repeated = 0
        for mip in index.mips:
            # Skip trivial hits: itemsets that *contain* the selector item
            # are frequent in its subset by construction of the subset.
            if Item(item.attribute, item.value) in mip.itemset:
                continue
            local = mip.local_count(mask)
            if local >= local_floor:
                if mip.global_count >= global_floor:
                    repeated += 1
                else:
                    fresh += 1
        suggestions.append(
            RangeSuggestion(
                attribute=item.attribute,
                values=frozenset({item.value}),
                dq_size=dq_size,
                fresh_local_itemsets=fresh,
                repeated_global_itemsets=repeated,
            )
        )
    suggestions.sort(key=lambda s: (-s.fresh_local_itemsets, s.attribute))
    return suggestions[:top_k]
