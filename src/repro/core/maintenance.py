"""Array-native incremental maintenance of the MIP-index (delta store).

POQM's weak spot is data change: the offline phase is expensive, so
rebuilding on every appended record defeats the point.  This module keeps
the classic main+delta split:

* the **main** part is the immutable MIP-index built at the last fold;
* the **delta** store holds records appended since then, plus tombstone
  masks for deleted records (main deletes never touch the index — they
  only mask tids out of every focal subset).

Unlike the first cut (per-record Python loops over a ``list[np.ndarray]``
buffer), the delta store is *array-native* and rides the same kernel
stack as the main index: records live in a growable 2-D matrix, every
single-item delta tidset and every MIP's delta tidset is one row of a
packed uint64 matrix (:mod:`repro.kernels` layout), and a query's delta
focal subset is one packed row.  The online operators then answer
``|t(I) ∩ D^Q|`` as ``stored ∩ D^Q_main`` (flat R-tree + batched
AND+popcount, exactly as before) **plus** one vectorized AND+popcount
over the delta rows — no per-record work anywhere on the read path.

Exactness and coverage
----------------------

Localized queries stay *exact*: every emitted rule's support and
confidence are computed over the live main+delta data.  The one caveat
is coverage: an itemset absent from the main index (global support below
the primary floor at build time) can have gained at most ``|delta|``
live records since, so the result set is provably complete whenever ::

    minsupp * |D^Q| >= primary_support * |D_main| + |delta_live|

(:meth:`MaintainedIndex.coverage_guaranteed`; deletes only shrink both
sides' counts, so stored global counts stay valid upper bounds).  Under
that guarantee the *expanded* query mode is byte-identical to a full
rebuild for all six plans (property-tested); closed mode matches up to
closure representation (combined data can grow new closed sets).

Folding the delta back in
-------------------------

Two ways: :meth:`MaintainedIndex.rebuild` folds synchronously (the
legacy ``max_delta_fraction`` auto policy still drives it), and
:meth:`MaintainedIndex.begin_recompaction` builds the fresh index — a
full offline artifact, flat-compiled and format-v2 ready — on a
background thread while reads keep serving the old generation;
:meth:`poll_recompaction` installs the result and replays whatever
appends/deletes landed mid-build through an op log with old→new tid
translation.  The engine prices *when* to fold via the cost model's
``delta_probe``/``delta_merge`` weights (see
:meth:`repro.core.optimizer.ColarmOptimizer.recompaction_advice`).

Every mutation is a first-class generation event
(:meth:`repro.core.mipindex.MIPIndex.bump_generation`), so cached rules,
memoized plan choices, and serving-layer coalescing can never serve
pre-append state; an installed fold re-bases the lineage at the old
generation plus one.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping, Sequence

import numpy as np

from repro import kernels, tidset as ts
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery, Overlap
from repro.dataset.table import RelationalTable
from repro.errors import DataError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.itemset import Itemset, make_itemset
from repro.itemsets.rules import Rule, rules_from_itemsets

__all__ = ["DeltaBuffer", "DeltaView", "MaintainedIndex"]

_WORD_DTYPE = np.dtype("<u8")

#: Records per chunk of the append-time MIP fixed-value match (bounds the
#: transient ``chunk x n_mips`` boolean at ~256 * N bytes).
_MATCH_CHUNK = 256


class DeltaBuffer:
    """Packed-matrix store of appended records, sharing the kernel layout.

    Three synchronized representations are maintained incrementally per
    append batch, each with *capacity*-bit packed rows (little-endian
    uint64 words, the :mod:`repro.kernels` layout, local tid = position
    in the buffer):

    * ``data``  — the raw ``(capacity, n_attrs)`` int32 record matrix
      (rebuilds and the ARM plan's SELECT read live rows from it);
    * ``items`` — one packed delta tidset per schema item, attr-major
      (row ``bases[a] + v`` is item ``(a, v)``), so a whole batch lands
      with a single ``bitwise_or.at`` scatter;
    * ``mips``  — one packed delta tidset per main-index MIP, kept by a
      vectorized fixed-value match against ``stats.mip_fixed_values``,
      so ELIMINATE's delta correction is one AND+popcount row-gather.

    Deletes clear the record's bit in ``live`` only (O(1)); dead bits
    stay set in ``items``/``mips`` and are masked out because every
    focal row is ANDed with ``live`` first.
    """

    def __init__(self, schema, mip_fixed_values: np.ndarray, capacity: int = 64):
        self.schema = schema
        self.n_attrs = schema.n_attributes
        self.cards = np.asarray(schema.cardinalities(), dtype=np.int64)
        bases = np.zeros(self.n_attrs, dtype=np.int64)
        np.cumsum(self.cards[:-1], out=bases[1:])
        self.bases = bases
        self.total_items = int(self.cards.sum())
        #: Item -> row of ``items``; covers *every* schema item (also ones
        #: absent from the main table), so delta-only items still count.
        self.row_of = {
            schema.item(a, v): int(bases[a]) + v
            for a in range(self.n_attrs)
            for v in range(int(self.cards[a]))
        }
        self.mip_fixed = np.asarray(mip_fixed_values, dtype=np.int64)
        self.capacity = 0
        self.words = 1
        self.n_rows = 0
        self.data = np.zeros((0, self.n_attrs), dtype=np.int32)
        self.live = kernels.zero_row(1)
        self.items = np.zeros((self.total_items, 1), dtype=_WORD_DTYPE)
        self.mips = np.zeros((len(self.mip_fixed), 1), dtype=_WORD_DTYPE)
        self._reserve(max(int(capacity), 1))

    # -- storage ---------------------------------------------------------------

    def _reserve(self, n_rows: int) -> None:
        """Grow to hold ``n_rows`` records (amortized doubling)."""
        if n_rows <= self.capacity:
            return
        new_words = kernels.n_words(max(64, self.capacity * 2, n_rows))
        new_cap = new_words * kernels.WORD_BITS
        grown = np.zeros((new_cap, self.n_attrs), dtype=np.int32)
        grown[: self.n_rows] = self.data[: self.n_rows]
        self.data = grown
        if new_words != self.words:
            def widen(matrix: np.ndarray) -> np.ndarray:
                out = np.zeros((matrix.shape[0], new_words), dtype=_WORD_DTYPE)
                out[:, : matrix.shape[1]] = matrix
                return out

            self.items = widen(self.items)
            self.mips = widen(self.mips)
            live = kernels.zero_row(new_words)
            live[: self.words] = self.live
            self.live = live
            self.words = new_words
        self.capacity = new_cap

    @property
    def n_live(self) -> int:
        """Live (appended minus tombstoned) record count."""
        return int(kernels.popcount_rows(self.live[None, :])[0])

    def live_bool(self) -> np.ndarray:
        """Boolean live mask over the ``n_rows`` appended records."""
        bits = np.unpackbits(self.live.view(np.uint8), bitorder="little")
        return bits[: self.n_rows].astype(bool)

    # -- mutation --------------------------------------------------------------

    def append(self, batch: np.ndarray) -> None:
        """Ingest one *validated* ``(b, n_attrs)`` batch, fully vectorized.

        One scatter into ``items`` (all ``b * n_attrs`` item bits at
        once), one :func:`repro.kernels.set_bits` into ``live``, and a
        chunked fixed-value broadcast match updating ``mips``.
        """
        b = len(batch)
        if b == 0:
            return
        start = self.n_rows
        self._reserve(start + b)
        positions = np.arange(start, start + b, dtype=np.int64)
        self.data[start : start + b] = batch
        kernels.set_bits(self.live, positions)
        words = (positions >> 6).astype(np.intp)
        bits = np.uint64(1) << (positions & 63).astype(_WORD_DTYPE)
        flat = (self.bases[None, :] + batch).astype(np.intp)
        np.bitwise_or.at(
            self.items,
            (flat.ravel(), np.repeat(words, self.n_attrs)),
            np.repeat(bits, self.n_attrs),
        )
        if len(self.mip_fixed):
            fixed = self.mip_fixed
            for lo in range(0, b, _MATCH_CHUNK):
                hi = min(b, lo + _MATCH_CHUNK)
                chunk = batch[lo:hi]
                # A record supports a MIP iff it matches every fixed value
                # (free attributes, stored as -1, match anything).
                match = (
                    (fixed[None, :, :] == chunk[:, None, :])
                    | (fixed[None, :, :] < 0)
                ).all(axis=2)
                ri, mi = np.nonzero(match)
                if len(ri):
                    np.bitwise_or.at(
                        self.mips, (mi, words[lo + ri]), bits[lo + ri]
                    )
        self.n_rows += b

    def delete_local(self, local_ids: np.ndarray) -> None:
        """Tombstone records by local id: clear their ``live`` bits."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        if local_ids.size == 0:
            return
        words = (local_ids >> 6).astype(np.intp)
        bits = np.uint64(1) << (local_ids & 63).astype(_WORD_DTYPE)
        np.bitwise_and.at(self.live, words, ~bits)

    # -- reads -----------------------------------------------------------------

    def focal_row(self, range_selections: Mapping[int, frozenset]) -> np.ndarray:
        """Packed tidset of live delta records inside the focal region."""
        row = self.live.copy()
        for ai, values in range_selections.items():
            base = int(self.bases[ai])
            selected = kernels.zero_row(self.words)
            for v in values:
                selected |= self.items[base + int(v)]
            row &= selected
        return row

    def matching_records(self, row: np.ndarray) -> np.ndarray:
        """The raw records at the set positions of a packed row."""
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        mask = bits[: self.n_rows].astype(bool)
        return self.data[: self.n_rows][mask]

    def nbytes(self) -> int:
        """Footprint of the packed matrices plus the record store."""
        return int(
            self.data.nbytes + self.items.nbytes + self.mips.nbytes
            + self.live.nbytes
        )


class DeltaView:
    """One query's read view of the delta store (plus main tombstones).

    Built by :meth:`MaintainedIndex.delta_view` and attached to the
    :class:`~repro.core.operators.QueryContext`; the operators pull their
    vectorized delta corrections from here:

    * :meth:`mip_counts` — ELIMINATE's per-candidate delta partial, one
      AND+popcount over a row-gather of the buffer's MIP matrix;
    * :meth:`kernel` — a delta-universe
      :class:`~repro.kernels.FocalKernel` that VERIFY combines with the
      main projection (:class:`~repro.kernels.CombinedFocalKernel`);
    * ``main_dead_packed`` — the packed main tombstone mask, for the
      contained-candidate correction (Lemma 4.5 counts must drop dead
      records the stored global counts still include).
    """

    __slots__ = (
        "buffer", "focal_row", "dq_size", "main_dead_packed",
        "main_dead_count", "_kernel",
    )

    def __init__(
        self,
        buffer: DeltaBuffer,
        focal_row: np.ndarray,
        main_dead_packed: np.ndarray | None,
        main_dead_count: int,
    ):
        self.buffer = buffer
        self.focal_row = focal_row
        self.dq_size = int(kernels.popcount_rows(focal_row[None, :])[0])
        self.main_dead_packed = main_dead_packed
        self.main_dead_count = main_dead_count
        self._kernel: kernels.FocalKernel | None = None

    def kernel(self) -> "kernels.FocalKernel":
        """The delta-universe focal kernel (lazy; tiny projection)."""
        if self._kernel is None:
            self._kernel = kernels.FocalKernel(
                self.buffer.items,
                self.buffer.row_of,
                self.focal_row,
                self.dq_size,
            )
        return self._kernel

    def mip_counts(self, rows: np.ndarray) -> np.ndarray:
        """``|delta(I) ∩ D^Q_delta|`` for the given MIP rows, batched."""
        if self.dq_size == 0 or len(rows) == 0:
            return np.zeros(len(rows), dtype=np.int64)
        return kernels.and_count(
            self.buffer.mips.take(rows, axis=0), self.focal_row
        )

    def itemset_count(self, itemset: Itemset) -> int:
        """Delta-local support of one itemset (list-path correction)."""
        if self.dq_size == 0:
            return 0
        return self.kernel().count(tuple(itemset))

    def dead_counts(self, matrix: np.ndarray) -> np.ndarray:
        """``|row_i ∩ dead_main|`` per packed main-universe row."""
        if self.main_dead_packed is None:
            return np.zeros(len(matrix), dtype=np.int64)
        return kernels.and_count(matrix, self.main_dead_packed)

    def records(self) -> np.ndarray:
        """Matching live delta records (the ARM plan's SELECT extension)."""
        if self.dq_size == 0:
            return self.buffer.data[:0]
        return self.buffer.matching_records(self.focal_row)


class _Recompaction:
    """State of one in-flight background fold."""

    __slots__ = (
        "thread", "result", "error", "log", "main_live", "delta_live",
        "build_s",
    )

    def __init__(self, main_live: np.ndarray, delta_live: np.ndarray):
        self.thread: threading.Thread | None = None
        self.result: MIPIndex | None = None
        self.error: Exception | None = None
        #: Ordered op log of mutations that land while the build runs:
        #: ("append", batch) / ("delete", tids in pre-install addressing).
        self.log: list[tuple[str, np.ndarray]] = []
        self.main_live = main_live
        self.delta_live = delta_live
        self.build_s = 0.0


class MaintainedIndex:
    """A MIP-index plus an array-native delta store of appended records.

    ``max_delta_fraction`` bounds the live delta relative to the main
    table; :meth:`append` triggers an automatic synchronous rebuild
    beyond it (disable with ``auto_rebuild=False`` and fold manually via
    :meth:`rebuild` or the background
    :meth:`begin_recompaction`/:meth:`poll_recompaction` pair — the
    engine's priced policy uses the latter).
    """

    def __init__(
        self,
        table: RelationalTable,
        primary_support: float,
        max_delta_fraction: float = 0.1,
        auto_rebuild: bool = True,
    ):
        if not 0.0 < max_delta_fraction < 1.0:
            raise DataError("max_delta_fraction must be in (0, 1)")
        self.primary_support = primary_support
        self.max_delta_fraction = max_delta_fraction
        self.auto_rebuild = auto_rebuild
        self.n_rebuilds = 0
        self.n_recompactions = 0
        self.last_build_s = 0.0
        self._recomp: _Recompaction | None = None
        start = time.perf_counter()
        self._adopt(build_mip_index(table, primary_support))
        self.last_build_s = time.perf_counter() - start

    @classmethod
    def from_index(
        cls,
        index: MIPIndex,
        max_delta_fraction: float = 0.1,
        auto_rebuild: bool = False,
    ) -> "MaintainedIndex":
        """Wrap an existing (possibly persisted) index for maintenance.

        The index keeps its identity — same object, same generation
        lineage — so engines can adopt maintenance without invalidating
        caches or plan choices stamped against the current generation.
        """
        if not 0.0 < max_delta_fraction < 1.0:
            raise DataError("max_delta_fraction must be in (0, 1)")
        self = cls.__new__(cls)
        self.primary_support = index.primary_support
        self.max_delta_fraction = max_delta_fraction
        self.auto_rebuild = auto_rebuild
        self.n_rebuilds = 0
        self.n_recompactions = 0
        self.last_build_s = 0.0
        self._recomp = None
        self._adopt(index)
        return self

    def _adopt(self, index: MIPIndex) -> None:
        """Install an index and reset the delta store around it."""
        self.index = index
        self._buffer = DeltaBuffer(
            index.table.schema, index.stats.mip_fixed_values
        )
        self._main_dead = ts.EMPTY
        self._main_dead_count = 0
        self._main_dead_packed: np.ndarray | None = None

    # -- state ----------------------------------------------------------------

    @property
    def n_main_records(self) -> int:
        return self.index.table.n_records

    @property
    def n_main_live(self) -> int:
        return self.n_main_records - self._main_dead_count

    @property
    def n_delta_records(self) -> int:
        """Live delta records (appended minus tombstoned)."""
        return self._buffer.n_live

    @property
    def n_records(self) -> int:
        """Live records overall (main minus tombstones, plus live delta)."""
        return self.n_main_live + self.n_delta_records

    @property
    def schema(self):
        return self.index.table.schema

    @property
    def generation(self) -> int:
        return self.index.generation

    @property
    def main_dead(self) -> int:
        """Tidset of tombstoned main records (masked out of every query)."""
        return self._main_dead

    @property
    def recompacting(self) -> bool:
        """Whether a background fold is currently in flight."""
        return self._recomp is not None

    @property
    def flat_rtree_current(self) -> bool:
        """Whether the main index's compiled flat traversal form is current.

        Delta mutations deliberately do *not* flip this: they bump the
        generation through the index's logical clock, leaving the R-tree's
        own mutation counter (which the flat compile is checked against)
        untouched — ingest never knocks queries off the flat fast path.
        """
        return self.index.rtree.flat_is_current()

    @property
    def delta_words(self) -> int:
        """Packed 64-bit words per delta-matrix row (the cost model's
        ``delta_words`` profile input)."""
        return self._buffer.words

    def delta_nbytes(self) -> int:
        """Footprint of the delta store's matrices."""
        return self._buffer.nbytes()

    def delta_data(self) -> np.ndarray:
        """The live delta records as an ``(n, n_attrs)`` int32 array (in
        tid order — the persistence sidecar's replay payload)."""
        return self._buffer.data[: self._buffer.n_rows][self._buffer.live_bool()]

    def coverage_guaranteed(self, query: LocalizedQuery, dq_size: int) -> bool:
        """Whether results for this query are provably complete.

        An itemset absent from the main index had global support below
        ``primary_support * |D_main|`` at build time (an upper bound that
        deletes only tighten) and can have gained at most the live delta
        since — so nothing reachable is missed whenever the focal minimum
        count clears that sum.
        """
        floor = self.primary_support * self.n_main_records
        return query.minsupp * dq_size >= floor + self.n_delta_records

    # -- mutation --------------------------------------------------------------

    def _validated(self, records: Sequence[Sequence[int]]) -> np.ndarray:
        """One batched shape/domain check over the whole append."""
        try:
            batch = np.asarray(records, dtype=np.int32)
        except (TypeError, ValueError) as exc:
            raise DataError(
                f"records must form a rectangular integer array: {exc}"
            ) from None
        n_attrs = self.schema.n_attributes
        if batch.size == 0:
            return batch.reshape(0, n_attrs)
        if batch.ndim != 2 or batch.shape[1] != n_attrs:
            shape = batch.shape[1:] if batch.ndim == 2 else batch.shape
            raise DataError(
                f"record has shape {tuple(shape)}, expected ({n_attrs},)"
            )
        cards = np.asarray(self.schema.cardinalities(), dtype=np.int64)
        if int(batch.min()) < 0 or bool((batch >= cards[None, :]).any()):
            raise DataError("record value outside its attribute domain")
        return batch

    def append(self, records: Sequence[Sequence[int]]) -> None:
        """Append records (rows of value indices) to the delta store.

        Validation is one batched ndarray check; ingest is the
        vectorized :meth:`DeltaBuffer.append`.  A first-class generation
        event: caches, memoized plan choices, and serving coalescing all
        go stale atomically with the data change.
        """
        batch = self._validated(records)
        if len(batch) == 0:
            return
        self._buffer.append(batch)
        if self._recomp is not None:
            self._recomp.log.append(("append", batch.copy()))
        self.index.bump_generation()
        if (
            self.auto_rebuild
            and self._recomp is None
            and self.n_delta_records
            > self.max_delta_fraction * self.n_main_records
        ):
            self.rebuild()

    def delete(self, tids: Sequence[int]) -> None:
        """Tombstone live records by global tid.

        Main tids (``< n_main_records``) are masked out of every focal
        subset; delta tids clear their ``live`` bit.  Idempotent per tid;
        out-of-range tids raise :class:`~repro.errors.DataError`.
        """
        tids = np.asarray(tids, dtype=np.int64).ravel()
        if tids.size == 0:
            return
        total = self.n_main_records + self._buffer.n_rows
        if int(tids.min()) < 0 or int(tids.max()) >= total:
            raise DataError(f"tid outside the record universe [0, {total})")
        self._apply_delete(tids)
        if self._recomp is not None:
            self._recomp.log.append(("delete", tids.copy()))
        self.index.bump_generation()

    def _apply_delete(self, tids: np.ndarray) -> None:
        n_main = self.n_main_records
        main_ids = tids[tids < n_main]
        delta_ids = tids[tids >= n_main] - n_main
        if len(main_ids):
            self._main_dead |= ts.from_array(main_ids)
            self._main_dead_count = ts.count(self._main_dead)
            self._main_dead_packed = None
        if len(delta_ids):
            self._buffer.delete_local(delta_ids)

    # -- folding ---------------------------------------------------------------

    def _live_data(self) -> np.ndarray:
        main = self.index.table.data
        if self._main_dead_count:
            main = main[self._main_live_mask()]
        delta = self._buffer.data[: self._buffer.n_rows][self._buffer.live_bool()]
        return np.vstack([main, delta]) if len(delta) else np.ascontiguousarray(main)

    def _main_live_mask(self) -> np.ndarray:
        mask = np.ones(self.n_main_records, dtype=bool)
        if self._main_dead_count:
            dead = np.fromiter(
                ts.iter_tids(self._main_dead),
                dtype=np.int64,
                count=self._main_dead_count,
            )
            mask[dead] = False
        return mask

    def rebuild(self) -> None:
        """Fold the live delta and tombstones into a fresh index, now.

        The new index re-bases its generation lineage one past the old
        one's, so every stamp issued against any prior state stays stale.
        """
        if self._buffer.n_rows == 0 and not self._main_dead_count:
            return
        if self._recomp is not None:
            raise DataError("cannot rebuild while a recompaction is in flight")
        data = self._live_data()
        old_generation = self.index.generation
        start = time.perf_counter()
        index = build_mip_index(
            RelationalTable(self.schema, data), self.primary_support
        )
        self.last_build_s = time.perf_counter() - start
        index.clock.base = old_generation + 1
        self._adopt(index)
        self.n_rebuilds += 1

    def begin_recompaction(self) -> bool:
        """Start folding the live data into a fresh index off the hot path.

        Snapshots the live main+delta rows, then builds the replacement
        index — flat-compiled, i.e. format-v2 ready — on a daemon thread
        while reads keep serving the current generation.  Mutations that
        land mid-build accumulate normally *and* are recorded in an op
        log for replay at install time.  Returns ``True`` if a build was
        started (``False``: nothing to fold, or one is already running).
        """
        if self._recomp is not None:
            return False
        if self._buffer.n_rows == 0 and not self._main_dead_count:
            return False
        state = _Recompaction(self._main_live_mask(), self._buffer.live_bool())
        data = np.vstack([
            self.index.table.data[state.main_live],
            self._buffer.data[: self._buffer.n_rows][state.delta_live],
        ])
        schema, primary = self.schema, self.primary_support

        def build() -> None:
            start = time.perf_counter()
            try:
                state.result = build_mip_index(
                    RelationalTable(schema, data), primary
                )
            except Exception as exc:  # surfaced by poll_recompaction
                state.error = exc
            state.build_s = time.perf_counter() - start

        state.thread = threading.Thread(
            target=build, name="colarm-recompact", daemon=True
        )
        self._recomp = state
        state.thread.start()
        return True

    def poll_recompaction(self, wait: bool = False) -> int | None:
        """Install a finished background fold; ``None`` while it runs.

        On install: the fresh index takes over with its lineage re-based
        past the old generation, a fresh delta store is created, and the
        op log of mid-build mutations is replayed with old→new tid
        translation (records dead at snapshot time are simply gone).
        Returns the new generation.  A failed build raises its error
        (the old state stays fully serviceable).
        """
        state = self._recomp
        if state is None:
            return None
        if wait:
            state.thread.join()
        if state.thread.is_alive():
            return None
        self._recomp = None
        if state.error is not None:
            raise state.error
        old_generation = self.index.generation
        old_n_main = self.n_main_records
        snap_rows = len(state.delta_live)
        # Old→new tid maps over the snapshot's live records: position in
        # the compacted table is the live-rank (cumsum) of the old tid.
        main_map = np.cumsum(state.main_live) - 1
        n_from_main = int(state.main_live.sum())
        delta_map = (np.cumsum(state.delta_live) - 1) + n_from_main
        index = state.result
        index.clock.base = old_generation + 1
        self.last_build_s = state.build_s
        self._adopt(index)
        self.n_recompactions += 1
        for op, payload in state.log:
            if op == "append":
                self._buffer.append(payload)
                continue
            translated: list[int] = []
            for tid in payload.tolist():
                if tid < old_n_main:
                    if state.main_live[tid]:
                        translated.append(int(main_map[tid]))
                elif tid - old_n_main < snap_rows:
                    j = tid - old_n_main
                    if state.delta_live[j]:
                        translated.append(int(delta_map[j]))
                else:
                    # Appended mid-build: replayed into the new delta
                    # store in log order, so its local position is its
                    # old position minus the snapshot's row count.
                    translated.append(
                        self.n_main_records + (tid - old_n_main - snap_rows)
                    )
            if translated:
                self._apply_delete(np.asarray(translated, dtype=np.int64))
        return self.index.generation

    def recompact(self) -> int | None:
        """Synchronous fold through the background machinery (begin, wait,
        install); returns the new generation or ``None`` if nothing to do."""
        if not self.begin_recompaction():
            return None
        return self.poll_recompaction(wait=True)

    # -- queries ---------------------------------------------------------------

    def delta_view(self, query: LocalizedQuery) -> DeltaView | None:
        """Per-query delta read view, or ``None`` when the index is
        pristine (no delta rows, no tombstones) — the pure main path."""
        if self._buffer.n_rows == 0 and not self._main_dead_count:
            return None
        view = DeltaView(
            self._buffer,
            self._buffer.focal_row(query.range_selections),
            self._packed_dead(),
            self._main_dead_count,
        )
        if view.dq_size == 0 and view.main_dead_packed is None:
            return None
        return view

    def _packed_dead(self) -> np.ndarray | None:
        if not self._main_dead_count:
            return None
        if self._main_dead_packed is None:
            self._main_dead_packed = kernels.pack(
                self._main_dead, self.index.tidset_words
            )
        return self._main_dead_packed

    def query(
        self,
        query: LocalizedQuery,
        plan: PlanKind = PlanKind.SEV,
        expand: bool = False,
        parallel=None,
    ) -> list[Rule]:
        """Answer a localized query over live main+delta on the kernel path.

        Runs the requested plan through the ordinary operator pipeline
        with this delta store attached: stored counts come off the flat
        R-tree and the batched AND+popcount kernels exactly as for an
        immutable index, and the delta corrections are vectorized
        partials.  An empty focal subset answers ``[]``.
        """
        query.validate_against(self.schema)
        if self._focal_empty(query):
            return []
        return execute_plan(
            plan, self.index, query, expand=expand, parallel=parallel,
            delta=self,
        ).rules

    def _focal_empty(self, query: LocalizedQuery) -> bool:
        dq = self.index.table.tids_matching(query.range_selections)
        if ts.count(dq & ~self._main_dead):
            return False
        if self._buffer.n_rows:
            row = self._buffer.focal_row(query.range_selections)
            return int(kernels.popcount_rows(row[None, :])[0]) == 0
        return True

    def query_scalar(
        self, query: LocalizedQuery, expand: bool = False
    ) -> list[Rule]:
        """The pre-kernel scalar main+delta path, kept as the oracle and
        benchmark baseline.

        Candidate itemsets come from the main index's pointer R-tree;
        every support count is a per-item big-int AND over the live main
        focal tidset **plus a per-record Python loop** over the matching
        delta records — the cliff the array-native path removes.  Rule
        *statistics* are exact; output agrees with :meth:`query` under
        the coverage guarantee.
        """
        query.validate_against(self.schema)
        focal = query.focal_range(self.index.cardinalities)
        dq_main = (
            self.index.table.tids_matching(query.range_selections)
            & ~self._main_dead
        )
        live = self._buffer.live_bool()
        delta_rows = [
            row
            for row, alive in zip(self._buffer.data[: self._buffer.n_rows], live)
            if alive
            and all(
                int(row[ai]) in values
                for ai, values in query.range_selections.items()
            )
        ]
        dq_size = ts.count(dq_main) + len(delta_rows)
        if dq_size == 0:
            return []
        min_count = min_count_for(query.minsupp, dq_size)
        item_tidsets = self.index.table.item_tidsets()

        def delta_count(items: Itemset) -> int:
            return sum(
                1
                for row in delta_rows
                if all(row[item.attribute] == item.value for item in items)
            )

        cache: dict[Itemset, int] = {}

        def local_count(items: Itemset) -> int:
            if items not in cache:
                mask = dq_main
                for item in items:
                    mask &= item_tidsets.get(item, 0)
                    if not mask:
                        break
                cache[items] = ts.count(mask) + delta_count(items)
            return cache[items]

        hull = focal.hull()
        candidates: list[Itemset] = []
        for entry in self.index.rtree.search(hull).entries:
            mip = entry.payload
            if focal.classify(mip.box) is Overlap.DISJOINT:
                continue
            if not expand and query.item_attributes is not None and not all(
                item.attribute in query.item_attributes
                for item in mip.itemset
            ):
                continue
            if local_count(mip.itemset) >= min_count:
                candidates.append(mip.itemset)
        if not expand:
            sources: list[Itemset] = candidates
        else:
            family: set[Itemset] = set()
            for itemset in candidates:
                allowed = make_itemset(
                    item
                    for item in itemset
                    if query.item_attributes is None
                    or item.attribute in query.item_attributes
                )
                n = len(allowed)
                for mask in range(1, 1 << n):
                    family.add(
                        tuple(allowed[i] for i in range(n) if mask >> i & 1)
                    )
            sources = sorted(family)
        return rules_from_itemsets(
            sources, local_count, dq_size, query.minsupp, query.minconf
        )
