"""Incremental maintenance of the MIP-index (delta-store pattern).

POQM's weak spot is data change: the offline phase is expensive, so
rebuilding on every appended record defeats the point.  This module keeps
the classic main+delta split:

* the **main** part is the immutable MIP-index built at the last rebuild;
* the **delta** buffer holds records appended since then.

Localized queries stay *exact*: every support count is the stored tidset
count within the focal subset **plus** a brute-force count over the (few)
matching delta records.  The one caveat is coverage: an itemset absent
from the main index (global support below the primary floor at rebuild
time) can have gained at most ``|delta|`` records since, so results are
guaranteed complete whenever

    minsupp * |D^Q| >= primary_support * |D_main| + |delta|

(`MaintainedIndex.coverage_guaranteed` checks it, and `auto_rebuild`
triggers a rebuild once the delta exceeds its budget).

Rule *statistics* (supports, confidences) are always exact over
main + delta; the emitted rule set matches a full rebuild's up to closure
representation (candidates are the main index's closed itemsets, whose
closures can shift slightly once the delta records are folded in).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import tidset as ts
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.query import LocalizedQuery
from repro.dataset.table import RelationalTable
from repro.errors import DataError
from repro.itemsets.apriori import min_count_for
from repro.itemsets.itemset import Itemset
from repro.itemsets.rules import Rule, rules_from_itemsets

__all__ = ["MaintainedIndex"]


class MaintainedIndex:
    """A MIP-index plus a delta buffer of appended records.

    ``max_delta_fraction`` bounds the buffer relative to the main table;
    :meth:`append` triggers an automatic rebuild beyond it (disable with
    ``auto_rebuild=False`` and call :meth:`rebuild` manually).
    """

    def __init__(
        self,
        table: RelationalTable,
        primary_support: float,
        max_delta_fraction: float = 0.1,
        auto_rebuild: bool = True,
    ):
        if not 0.0 < max_delta_fraction < 1.0:
            raise DataError("max_delta_fraction must be in (0, 1)")
        self.primary_support = primary_support
        self.max_delta_fraction = max_delta_fraction
        self.auto_rebuild = auto_rebuild
        self.index: MIPIndex = build_mip_index(table, primary_support)
        self._delta_rows: list[np.ndarray] = []
        self.n_rebuilds = 0

    # -- state ----------------------------------------------------------------

    @property
    def n_main_records(self) -> int:
        return self.index.table.n_records

    @property
    def n_delta_records(self) -> int:
        return len(self._delta_rows)

    @property
    def n_records(self) -> int:
        return self.n_main_records + self.n_delta_records

    @property
    def schema(self):
        return self.index.table.schema

    @property
    def flat_rtree_current(self) -> bool:
        """Whether the main index's compiled flat traversal form is current.

        The hull searches of :meth:`query` run on the flat SoA form while
        it matches the pointer tree's mutation counter; any direct
        insert/delete on ``index.rtree.tree`` flips this to ``False`` and
        searches fall back to the pointer tree (never stale hits) until
        :meth:`repro.core.mipindex.MIPIndex.recompile_flat` or the next
        :meth:`rebuild` (whose fresh index compiles its own flat form).
        """
        return self.index.rtree.flat_is_current()

    def coverage_guaranteed(self, query: LocalizedQuery, dq_size: int) -> bool:
        """Whether results for this query are provably complete."""
        floor = self.primary_support * self.n_main_records
        return query.minsupp * dq_size >= floor + self.n_delta_records

    # -- mutation --------------------------------------------------------------

    def append(self, records: Sequence[Sequence[int]]) -> None:
        """Append records (rows of value indices) to the delta buffer."""
        cards = self.schema.cardinalities()
        for record in records:
            row = np.asarray(record, dtype=np.int32)
            if row.shape != (self.schema.n_attributes,):
                raise DataError(
                    f"record has shape {row.shape}, expected "
                    f"({self.schema.n_attributes},)"
                )
            if row.min() < 0 or np.any(row >= np.asarray(cards)):
                raise DataError("record value outside its attribute domain")
            self._delta_rows.append(row)
        if (
            self.auto_rebuild
            and self.n_delta_records > self.max_delta_fraction * self.n_main_records
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Fold the delta into the main table and rebuild the index."""
        if not self._delta_rows:
            return
        data = np.vstack([self.index.table.data, np.vstack(self._delta_rows)])
        self.index = build_mip_index(
            RelationalTable(self.schema, data), self.primary_support
        )
        self._delta_rows = []
        self.n_rebuilds += 1

    # -- queries ------------------------------------------------------------------

    def query(self, query: LocalizedQuery) -> list[Rule]:
        """Answer a localized query over main + delta, exactly.

        Candidate itemsets come from the main index (SEARCH + ELIMINATE
        with delta-corrected counts); every support count is
        ``stored ∩ D^Q`` plus a scan of the matching delta records.
        """
        query.validate_against(self.schema)
        focal = query.focal_range(self.index.cardinalities)
        dq_main = self.index.table.tids_matching(query.range_selections)
        delta_rows = self._matching_delta(query)
        dq_size = ts.count(dq_main) + len(delta_rows)
        if dq_size == 0:
            return []
        min_count = min_count_for(query.minsupp, dq_size)

        def delta_count(items: Itemset) -> int:
            return sum(
                1
                for row in delta_rows
                if all(row[item.attribute] == item.value for item in items)
            )

        cache: dict[Itemset, int | None] = {}

        def local_count(items: Itemset) -> int | None:
            if items not in cache:
                stored = self.index.ittree.local_support_count(items, dq_main)
                cache[items] = (
                    None if stored is None else stored + delta_count(items)
                )
            return cache[items]

        from repro.core.query import Overlap

        hull = focal.hull()
        candidates = []
        for entry in self.index.rtree.search(hull).entries:
            mip = entry.payload
            if focal.classify(mip.box) is Overlap.DISJOINT:
                continue
            if query.item_attributes is not None and not all(
                item.attribute in query.item_attributes
                for item in mip.itemset
            ):
                continue
            total = ts.count(mip.tidset & dq_main) + delta_count(mip.itemset)
            if total >= min_count:
                cache[mip.itemset] = total
                candidates.append(mip.itemset)
        return rules_from_itemsets(
            candidates, local_count, dq_size, query.minsupp, query.minconf
        )

    def _matching_delta(self, query: LocalizedQuery) -> list[np.ndarray]:
        out = []
        for row in self._delta_rows:
            if all(
                int(row[ai]) in values
                for ai, values in query.range_selections.items()
            ):
                out.append(row)
        return out
