"""The six mining plans of Table 4 and their executor.

Every plan is a pipeline of the operators in
:mod:`repro.core.operators`:

========  ==========================================================
S-E-V     SEARCH -> ELIMINATE -> VERIFY (the basic plan)
S-VS      SEARCH -> SUPPORTED-VERIFY (selection push-up)
SS-E-V    SUPPORTED-SEARCH -> ELIMINATE -> VERIFY
SS-VS     SUPPORTED-SEARCH -> SUPPORTED-VERIFY
SS-E-U-V  SUPPORTED-SEARCH -> split contained/partial -> ELIMINATE on
          partial only -> UNION -> VERIFY (differential treatment,
          Lemma 4.5: contained MIPs skip the record-level check)
ARM       SELECT -> traditional mining from scratch
========  ==========================================================

All five MIP-index plans return identical rule sets (they differ only in
how much work they spend); the ARM plan returns rules over *locally closed*
itemsets, which coincide with the others under expansion (see DESIGN.md).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

from repro.core.mipindex import MIPIndex
from repro.core.operators import (
    ExecutionTrace,
    QueryContext,
    make_context,
    op_arm,
    op_eliminate,
    op_search,
    op_select,
    op_supported_search,
    op_supported_verify,
    op_union,
    op_verify,
    qualified_from_contained,
)
from repro.core.query import LocalizedQuery
from repro.errors import QueryError
from repro.itemsets.rules import Rule

__all__ = ["PlanKind", "PlanResult", "execute_plan", "plan_from_name"]


class PlanKind(enum.Enum):
    """The six alternative execution strategies (Table 4)."""

    SEV = "S-E-V"
    SVS = "S-VS"
    SSEV = "SS-E-V"
    SSVS = "SS-VS"
    SSEUV = "SS-E-U-V"
    ARM = "ARM"


@dataclass
class PlanResult:
    """Outcome of executing one plan for one query."""

    kind: PlanKind
    rules: list[Rule]
    trace: ExecutionTrace
    elapsed: float
    dq_size: int
    #: Subset-lattice count groups from VERIFY-family rule generation
    #: (``None`` for the ARM plan or when the wide fallback fired) —
    #: the cache-worthy intermediate picked up by ``engine.query``.
    lattice_groups: list | None = None

    @property
    def n_rules(self) -> int:
        return len(self.rules)


def execute_plan(
    kind: PlanKind,
    index: MIPIndex,
    query: LocalizedQuery,
    expand: bool = False,
    parallel=None,
    delta=None,
) -> PlanResult:
    """Run one plan end to end and return its rules plus instrumentation.

    ``parallel`` optionally attaches a :class:`repro.parallel.
    ParallelContext`; the MIP plans' batched kernel calls then shard
    across its worker pool when the work clears the break-even point
    (identical rules either way — the shard merges are exact and every
    sharded call has a serial fallback).

    ``delta`` optionally attaches a
    :class:`repro.core.maintenance.MaintainedIndex`; all six plans then
    answer over live main+delta with vectorized delta corrections (see
    :func:`repro.core.operators.make_context`).
    """
    start = time.perf_counter()
    ctx = make_context(index, query, expand=expand, parallel=parallel,
                       delta=delta)
    rules = _PLAN_BODIES[kind](ctx)
    elapsed = time.perf_counter() - start
    return PlanResult(
        kind=kind,
        rules=rules,
        trace=ctx.trace,
        elapsed=elapsed,
        dq_size=ctx.dq_size,
        lattice_groups=ctx.lattice_groups,
    )


def _run_sev(ctx: QueryContext) -> list[Rule]:
    candidates = op_search(ctx)
    qualified = op_eliminate(ctx, candidates)
    return op_verify(ctx, qualified)


def _run_svs(ctx: QueryContext) -> list[Rule]:
    candidates = op_search(ctx)
    return op_supported_verify(ctx, candidates)


def _run_ssev(ctx: QueryContext) -> list[Rule]:
    candidates = op_supported_search(ctx)
    qualified = op_eliminate(ctx, candidates)
    return op_verify(ctx, qualified)


def _run_ssvs(ctx: QueryContext) -> list[Rule]:
    candidates = op_supported_search(ctx)
    return op_supported_verify(ctx, candidates)


def _run_sseuv(ctx: QueryContext) -> list[Rule]:
    candidates = op_supported_search(ctx)
    contained, partial = candidates.split_overlap()
    # Lemma 4.5: a contained MIP's local count equals its global count, and
    # SUPPORTED-SEARCH already guaranteed global count >= min_count — so
    # contained MIPs skip the record-level ELIMINATE entirely (only the
    # cheap Aitem filter applies outside expanded mode); the counts ride
    # along as arrays from the supported R-tree's leaf level.
    contained_qualified = qualified_from_contained(ctx, contained)
    partial_qualified = op_eliminate(ctx, partial)
    merged = op_union(ctx, contained_qualified, partial_qualified)
    return op_verify(ctx, merged)


def _run_arm(ctx: QueryContext) -> list[Rule]:
    sub = op_select(ctx)
    return op_arm(ctx, sub)


_PLAN_BODIES = {
    PlanKind.SEV: _run_sev,
    PlanKind.SVS: _run_svs,
    PlanKind.SSEV: _run_ssev,
    PlanKind.SSVS: _run_ssvs,
    PlanKind.SSEUV: _run_sseuv,
    PlanKind.ARM: _run_arm,
}


def plan_from_name(name: str) -> PlanKind:
    """Resolve a plan by its paper name (``'SS-E-U-V'``) or enum name."""
    normalized = name.replace("-", "").replace("_", "").upper()
    for kind in PlanKind:
        if kind.name == normalized or kind.value.replace("-", "") == normalized:
            return kind
    raise QueryError(f"unknown plan {name!r}; expected one of "
                     f"{[k.value for k in PlanKind]}")
