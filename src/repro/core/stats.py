"""Precomputed index statistics (the cost model's inputs).

The offline preprocessing phase stores, next to the MIP-index itself, the
aggregate statistics the COLARM optimizer needs to evaluate the six cost
formulae in constant time at query time (Section 3.1): R-tree level
profiles, the distribution of global support counts, the distribution of
itemset lengths, and per-attribute fixing probabilities.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.mip import MIP
from repro.rtree.node import Node
from repro.rtree.rtree import LevelStat, RTree

__all__ = ["LevelCountProfile", "IndexStatistics"]

#: Rule-generation work per itemset is exponential in its length; the cost
#: model caps the 2**length factor so one pathological itemset cannot swamp
#: the estimate.
_MAX_POW2_LENGTH = 16


@dataclass(frozen=True)
class LevelCountProfile:
    """Sorted max-subtree-counts of one R-tree level.

    Lets the optimizer compute, by binary search, the exact fraction of
    level-``j`` nodes that survive the supported filter at any threshold.
    """

    level: int
    sorted_max_counts: np.ndarray

    def fraction_at_least(self, min_count: int) -> float:
        n = len(self.sorted_max_counts)
        if n == 0:
            return 0.0
        idx = int(np.searchsorted(self.sorted_max_counts, min_count, side="left"))
        return (n - idx) / n


@dataclass(frozen=True)
class IndexStatistics:
    """Aggregates describing the dataset, the MIPs and the R-tree.

    Beyond the scalar aggregates the paper's formulae use, three vectorized
    profiles are precomputed so the optimizer's cardinality estimates can
    be *data-aware* (a numpy pass over N MIPs, microseconds at query time):

    * ``mip_global_counts[i]``  — global support count of MIP ``i``;
    * ``mip_fixed_values[i, a]`` — the value MIP ``i`` fixes attribute ``a``
      to, or ``-1`` when the attribute is free;
    * ``item_local_counts[i, j]`` — ``|t(I_i) ∩ t(item_j)|``, the MIP's
      support inside each single-item subset (columns indexed by
      ``item_columns``) — the basis of the local-support upper bound used
      to estimate ELIMINATE's output.
    """

    n_records: int
    n_attributes: int
    cardinalities: tuple[int, ...]
    n_mips: int
    avg_box_extents: tuple[float, ...]      # avg MIP box extent per dim, cells
    level_stats: tuple[LevelStat, ...]       # R-tree level profile
    level_counts: tuple[LevelCountProfile, ...]
    sorted_global_counts: np.ndarray         # of all MIPs
    length_histogram: dict[int, int]         # itemset length -> # MIPs
    attr_fix_prob: tuple[float, ...]         # P(MIP fixes attribute d)
    primary_support: float
    mip_global_counts: np.ndarray            # (N,) int64, MIP order
    mip_fixed_values: np.ndarray             # (N, n) int32, -1 = free
    item_columns: dict[tuple[int, int], int]  # (attribute, value) -> column
    item_local_counts: np.ndarray            # (N, n_items) int32
    #: Whole-table analogues of the per-query ARM-model measurements
    #: (:class:`~repro.core.costs.ArmModelStats`), computed once at build
    #: time: how many items are frequent at the primary support, and the
    #: frequent-pair density among the strongest of them.  They are the
    #: dataset-level prior behind the per-query measurements — a dense
    #: global pair graph predicts dense focal subsets — and a calibration/
    #: diagnostics feature that costs ~1k bitmask ANDs offline.
    global_f1: int = 0
    global_pair_density: float = 0.0

    # -- derived scalars ----------------------------------------------------

    @property
    def avg_length(self) -> float:
        total = sum(self.length_histogram.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in self.length_histogram.items()) / total

    @property
    def max_length(self) -> int:
        return max(self.length_histogram, default=0)

    @property
    def avg_pow2_length(self) -> float:
        """Average ``2**length`` over MIPs (rule-generation work factor)."""
        total = sum(self.length_histogram.values())
        if not total:
            return 0.0
        return (
            sum((1 << min(k, _MAX_POW2_LENGTH)) * v
                for k, v in self.length_histogram.items())
            / total
        )

    @property
    def tidset_words(self) -> int:
        """64-bit words per tidset — the unit of one record-level AND."""
        return max(1, -(-self.n_records // 64))

    def fraction_with_count_at_least(self, min_count: int) -> float:
        """Fraction of MIPs whose *global* count reaches ``min_count``."""
        n = len(self.sorted_global_counts)
        if n == 0:
            return 0.0
        idx = int(np.searchsorted(self.sorted_global_counts, min_count, side="left"))
        return (n - idx) / n


def gather_statistics(
    mips: Sequence[MIP],
    tree: RTree,
    cardinalities: Sequence[int],
    n_records: int,
    primary_support: float,
    item_tidsets: "dict | None" = None,
) -> IndexStatistics:
    """Collect all statistics in one offline pass over index and MIPs.

    ``item_tidsets`` (item -> tidset, from the source table) enables the
    per-item local-count profile; when omitted, that profile is empty and
    the optimizer falls back to the distribution-based estimates.
    """
    cardinalities = tuple(cardinalities)
    n_dims = len(cardinalities)

    if mips:
        sums = [0.0] * n_dims
        fixes = [0] * n_dims
        for mip in mips:
            for d, extent in enumerate(mip.box.extents()):
                sums[d] += extent
            for d in mip.fixed_attributes:
                fixes[d] += 1
        avg_extents = tuple(s / len(mips) for s in sums)
        fix_prob = tuple(f / len(mips) for f in fixes)
    else:
        avg_extents = tuple(float(c) for c in cardinalities)
        fix_prob = tuple(0.0 for _ in cardinalities)

    histogram: dict[int, int] = {}
    for mip in mips:
        histogram[mip.length] = histogram.get(mip.length, 0) + 1

    fixed_values = np.full((len(mips), n_dims), -1, dtype=np.int32)
    for i, mip in enumerate(mips):
        for item in mip.itemset:
            fixed_values[i, item.attribute] = item.value

    item_columns: dict[tuple[int, int], int] = {}
    if item_tidsets:
        for j, item in enumerate(sorted(item_tidsets)):
            item_columns[(item[0], item[1])] = j
        local_counts = np.zeros((len(mips), len(item_columns)), dtype=np.int32)
        for i, mip in enumerate(mips):
            for item, mask in item_tidsets.items():
                j = item_columns[(item[0], item[1])]
                local_counts[i, j] = (mip.tidset & mask).bit_count()
    else:
        local_counts = np.zeros((len(mips), 0), dtype=np.int32)

    global_f1 = 0
    global_pair_density = 0.0
    if item_tidsets:
        exact = primary_support * n_records
        floor = max(int(exact) + (1 if int(exact) < exact else 0), 1)
        strong = sorted(
            (mask for mask in item_tidsets.values()
             if mask.bit_count() >= floor),
            key=lambda m: -m.bit_count(),
        )
        global_f1 = len(strong)
        strong = strong[:48]
        pairs = frequent_pairs = 0
        for i, mi in enumerate(strong):
            for mj in strong[i + 1:]:
                pairs += 1
                if (mi & mj).bit_count() >= floor:
                    frequent_pairs += 1
        if pairs:
            global_pair_density = frequent_pairs / pairs

    return IndexStatistics(
        n_records=n_records,
        n_attributes=n_dims,
        cardinalities=cardinalities,
        n_mips=len(mips),
        avg_box_extents=avg_extents,
        level_stats=tuple(tree.level_stats()),
        level_counts=tuple(_level_count_profiles(tree)),
        sorted_global_counts=np.sort(
            np.asarray([m.global_count for m in mips], dtype=np.int64)
        ),
        length_histogram=histogram,
        attr_fix_prob=fix_prob,
        primary_support=primary_support,
        mip_global_counts=np.asarray(
            [m.global_count for m in mips], dtype=np.int64
        ),
        mip_fixed_values=fixed_values,
        item_columns=item_columns,
        item_local_counts=local_counts,
        global_f1=global_f1,
        global_pair_density=global_pair_density,
    )


def _level_count_profiles(tree: RTree) -> list[LevelCountProfile]:
    per_level: dict[int, list[int]] = {}
    stack: list[Node] = [tree.root]
    while stack:
        node = stack.pop()
        per_level.setdefault(node.level, []).append(node.max_count())
        if not node.is_leaf:
            stack.extend(e.child for e in node.entries)  # type: ignore[misc]
    return [
        LevelCountProfile(level, np.sort(np.asarray(counts, dtype=np.int64)))
        for level, counts in sorted(per_level.items())
    ]
