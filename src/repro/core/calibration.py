"""Calibration of the cost model's unit weights.

The cost formulae express each plan's work in abstract load units (node
accesses, tidset-word operations, rule-generation fan-out, ...).  What one
unit costs in wall-clock seconds depends on the machine and the Python
runtime, so at index-build time a small *probe workload* is executed with
all six plans and the per-feature weights are fitted by non-negative least
squares on (load vector, measured time) pairs.

The probe time excludes the shared FOCUS step (identical across plans, so
irrelevant to plan *selection*).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.costs import CostModel, CostWeights, DEFAULT_WEIGHTS, QueryProfile
from repro.core.mipindex import MIPIndex
from repro.core.plans import PlanKind, execute_plan
from repro.core.query import LocalizedQuery
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.cache import RuleCache
    from repro.core.maintenance import MaintainedIndex
    from repro.parallel import ParallelContext

__all__ = [
    "CalibrationReport",
    "calibrate",
    "calibrate_cache",
    "calibrate_maintenance",
    "calibrate_parallel",
    "default_probe_queries",
]


@dataclass(frozen=True)
class CalibrationReport:
    """Fitted weights plus fit diagnostics."""

    weights: CostWeights
    n_runs: int
    residual: float  # RMS of (predicted - measured) over the probe runs
    #: rows per feature in which that feature was the only active one —
    #: the sample size behind each robust median fit.
    solo_rows: dict[str, int] = field(default_factory=dict)
    #: dispersion of the solo ARM time/load ratios, (p75 - p25) / median:
    #: how much the measured per-unit ARM cost still varies across probe
    #: subsets after the density-aware load model has explained what it
    #: can.  Large values mean the fitted ``arm`` weight is a compromise
    #: and the optimizer's ARM estimates carry that variance.
    arm_spread: float = 0.0


def default_probe_queries(
    index: MIPIndex,
    n_queries: int = 8,
    seed: int = 0,
    minsupp_range: tuple[float, float] = (0.3, 0.8),
    minconf: float = 0.7,
) -> list[LocalizedQuery]:
    """A spread of random focal subsets for probing.

    Picks random range attributes and contiguous value runs of varying
    width so the probes cover small and large focal subsets, which keeps
    the least-squares system well conditioned.
    """
    from repro import tidset as ts

    rng = np.random.default_rng(seed)
    schema = index.table.schema
    candidates: list[tuple[int, dict[int, frozenset[int]]]] = []
    for _ in range(max(n_queries * 8, 32)):
        n_range = int(rng.integers(1, max(2, schema.n_attributes // 3) + 1))
        attrs = rng.choice(schema.n_attributes, size=n_range, replace=False)
        selections: dict[int, frozenset[int]] = {}
        for ai in attrs:
            card = schema.attributes[int(ai)].cardinality
            width = int(rng.integers(1, card + 1))
            start = int(rng.integers(0, card - width + 1))
            selections[int(ai)] = frozenset(range(start, start + width))
        dq_size = ts.count(index.table.tids_matching(selections))
        if dq_size > 0:
            candidates.append((dq_size, selections))
    if not candidates:
        raise QueryError("could not generate any non-empty probe query")
    # Spread the probes across focal-subset sizes so every plan's expensive
    # regime (ARM at small/low-support subsets, record-level checks at
    # large ones) is represented in the fit.
    candidates.sort(key=lambda c: c[0])
    step = max(1, len(candidates) // n_queries)
    picked = candidates[::step][:n_queries] or candidates[:n_queries]
    lo, hi = minsupp_range
    return [
        LocalizedQuery(
            range_selections=selections,
            minsupp=lo + (hi - lo) * (i % 3) / 2.0,
            minconf=minconf,
        )
        for i, (_size, selections) in enumerate(picked)
    ]


#: Which cost features each instrumented operator exercises.  Used as the
#: joint-attribution fallback when an operator trace carries no internal
#: time split; VERIFY-family traces normally report ``mining_s`` /
#: ``rulegen_s`` / ``kernel_s`` / ``projection_s`` details, from which
#: :func:`calibrate` builds *solo* rows per feature instead (support
#: counting -> ``verify``, extraction -> ``rulegen``, embedded
#: qualification -> ``eliminate``).
_OPERATOR_FEATURES: dict[str, tuple[str, ...]] = {
    "SEARCH": ("search",),
    "SUPPORTED-SEARCH": ("search",),
    "ELIMINATE": ("eliminate",),
    "VERIFY": ("verify", "rulegen"),
    "SUPPORTED-VERIFY": ("eliminate", "verify", "rulegen"),
    "SELECT": ("select",),
    "ARM": ("arm",),
}


def calibrate(
    index: MIPIndex,
    probe_queries: list[LocalizedQuery] | None = None,
    expand: bool = False,
) -> CalibrationReport:
    """Fit per-feature unit weights from measured probe executions.

    Every *operator* invocation in the probe runs contributes one row —
    its load estimate against its measured elapsed time — so each weight
    is identified by the operator that actually exercises it, instead of
    being confounded inside per-plan totals.
    """
    from repro import tidset as ts
    from repro.itemsets.apriori import min_count_for

    if probe_queries is None:
        probe_queries = default_probe_queries(index)
    base_model = CostModel(index.stats)

    feature_names = [n for n in sorted(DEFAULT_WEIGHTS) if n != "const"]
    column = {name: j for j, name in enumerate(feature_names)}
    rows: list[list[float]] = []
    times: list[float] = []
    n_runs = 0
    for query in probe_queries:
        focal = query.focal_range(index.cardinalities)
        dq = index.table.tids_matching(query.range_selections)
        dq_size = ts.count(dq)
        if dq_size == 0:
            continue
        item_tidsets = {
            (item.attribute, item.value): mask
            for item, mask in index.table.item_tidsets().items()
        }
        profile = QueryProfile.from_query(
            query,
            focal,
            index.stats,
            dq_size,
            min_count_for(query.minsupp, dq_size),
            item_local_tidsets=item_tidsets,
            dq=dq,
        )
        for kind in PlanKind:
            # Probe timings feed the weight fit directly; a collector
            # pause mid-probe (rule extraction allocates Rule objects in
            # bulk) would be priced into the weights.  Collect first,
            # pause, measure — matching how the accuracy harness times
            # the plans.
            gc.collect()
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                result = execute_plan(kind, index, query, expand=expand)
            finally:
                if was_enabled:
                    gc.enable()
            n_runs += 1
            loads = base_model.loads(kind, profile)
            supported = kind.name.startswith("SS")
            per_feature = {
                "search": base_model.search_load(profile, supported=supported),
                "eliminate": base_model.eliminate_load(profile, kind),
                "verify": base_model.verify_load(profile),
                "rulegen": base_model.rulegen_load(profile),
                "select": base_model.select_load(profile),
                "arm": base_model.arm_load(profile),
            }
            del loads  # per-operator attribution below covers everything

            def add_solo_row(feature: str, elapsed: float) -> None:
                row = [0.0] * len(feature_names)
                row[column[feature]] = per_feature[feature]
                rows.append(row)
                times.append(max(elapsed, 0.0))

            for op in result.trace.operators:
                if op.name in ("VERIFY", "SUPPORTED-VERIFY") and \
                        "rulegen_s" in op.detail:
                    # The trace's internal split yields one *solo* row per
                    # feature — support counting (projection build + kernel
                    # evaluations) identifies ``verify``, the extraction
                    # remainder identifies ``rulegen``, and SUPPORTED-
                    # VERIFY's embedded qualification identifies
                    # ``eliminate`` — instead of leaving the least-squares
                    # fit to disentangle them from joint rows.
                    counting_s = (
                        op.detail.get("kernel_s", 0.0)
                        + op.detail.get("projection_s", 0.0)
                    )
                    mining_s = op.detail.get("mining_s", 0.0)
                    add_solo_row("verify", counting_s)
                    add_solo_row(
                        "rulegen", op.elapsed - mining_s - counting_s
                    )
                    if op.name == "SUPPORTED-VERIFY":
                        add_solo_row("eliminate", mining_s)
                    continue
                features = _OPERATOR_FEATURES.get(op.name)
                if not features:
                    continue  # FOCUS / UNION: constant overhead
                row = [0.0] * len(feature_names)
                for feature in features:
                    row[column[feature]] = per_feature[feature]
                rows.append(row)
                times.append(max(op.elapsed, 0.0))

    if not rows:
        raise QueryError("no probe runs executed; cannot calibrate")
    matrix = np.asarray(rows, dtype=float)
    target = np.asarray(times, dtype=float)

    weights = dict(DEFAULT_WEIGHTS)
    fitted = _nnls(matrix, target)
    solo_rows: dict[str, int] = {}
    arm_spread = 0.0
    for j, name in enumerate(feature_names):
        # Robust per-feature fit: the median of elapsed/load over the rows
        # where this feature is the only active one.  A single degenerate
        # probe (e.g. a two-record focal subset whose rule fan-out
        # explodes) would otherwise dominate the least-squares fit and
        # poison every other weight.
        solo = [
            times[i] / matrix[i, j]
            for i in range(len(times))
            if matrix[i, j] > 0
            and all(matrix[i, k] == 0 for k in range(matrix.shape[1]) if k != j)
        ]
        solo_rows[name] = len(solo)
        if solo:
            weights[name] = float(np.median(solo))
            if name == "arm" and len(solo) >= 2:
                p25, med, p75 = np.percentile(solo, (25, 50, 75))
                arm_spread = float((p75 - p25) / med) if med > 0 else 0.0
        elif matrix[:, j].max() > 0 and fitted[j] > 0:
            weights[name] = float(fitted[j])
    predicted = matrix @ np.asarray(
        [weights[name] for name in feature_names], dtype=float
    )
    residual = float(np.sqrt(np.mean((predicted - target) ** 2)))
    return CalibrationReport(
        weights=CostWeights(weights),
        n_runs=n_runs,
        residual=residual,
        solo_rows=solo_rows,
        arm_spread=arm_spread,
    )


def calibrate_parallel(
    parallel: "ParallelContext", weights: CostWeights
) -> CostWeights:
    """Fit the sharded-execution weights from the live worker pool.

    The two parallel cost terms are measured, not guessed, exactly like
    ``arm``/``rulegen`` were:

    * ``par_dispatch`` — seconds per shard *task*: the pool's median
      empty round-trip (submit, pickle a no-op payload, wake a worker,
      return), measured at :class:`~repro.parallel.ParallelContext`
      construction on the warmed pool;
    * ``par_merge`` — seconds per merged output element: one int64
      partial per shard summed in the parent, timed here over a
      representative merge.

    The record-partitioned work terms reuse the fitted serial
    ``eliminate``/``verify`` weights (same kernels, same words — just
    divided across workers), so only these two weights are new.  Returns
    a new :class:`CostWeights`; every serial weight is untouched.
    """
    fitted = dict(weights.weights)
    fitted["par_dispatch"] = max(parallel.dispatch_s, 1e-7)
    fitted["par_merge"] = max(
        _measure_merge_throughput(parallel.n_shards), 1e-12
    )
    return CostWeights(fitted)


def calibrate_cache(cache: "RuleCache", weights: CostWeights) -> CostWeights:
    """Fit the materialized-cache weights from the live cache.

    Mirrors :func:`calibrate_parallel`: the two cache cost terms are
    measured, not guessed —

    * ``cache_probe`` — seconds per :meth:`~repro.cache.RuleCache.probe`
      call (key construction plus the tier lookups), the fixed price every
      CACHE variant pays;
    * ``cache_load`` — seconds per served element (a rules hit's shallow
      copy per rule; a lattice hit's extraction scales with its count
      cells through the same term plus the serial ``rulegen`` weight).

    Every other weight is untouched; note that rerunning
    :func:`calibrate` afterwards resets these two to their defaults (the
    probe traces never exercise them), so fit the cache last.
    """
    fitted = dict(weights.weights)
    fitted["cache_probe"] = max(cache.measure_probe_overhead(), 1e-8)
    fitted["cache_load"] = max(cache.measure_load_throughput(), 1e-12)
    return CostWeights(fitted)


def calibrate_maintenance(
    maintained: "MaintainedIndex", weights: CostWeights
) -> CostWeights:
    """Fit the delta-store weights from the live maintained index.

    Mirrors :func:`calibrate_parallel` / :func:`calibrate_cache`: the two
    delta cost terms are measured, not guessed —

    * ``delta_probe`` — seconds per candidate-word of the delta count
      correction (one AND+popcount of a delta-MIP row against the delta
      focal row), measured over a matrix shaped like the live delta
      store so the per-call numpy overhead is amortized exactly as the
      query path amortizes it;
    * ``delta_merge`` — seconds per word of the delta lattice merge
      (the projected subset-lattice AND+popcount plus the elementwise
      int64 add into the main counts).

    Every other weight is untouched; like the cache fit, rerunning
    :func:`calibrate` afterwards resets these two to their defaults (the
    probe traces never exercise them), so fit the maintenance weights
    last.
    """
    words = max(1, maintained.delta_words)
    fitted = dict(weights.weights)
    fitted["delta_probe"] = max(_measure_delta_probe(words), 1e-10)
    fitted["delta_merge"] = max(_measure_delta_merge(words), 1e-12)
    return CostWeights(fitted)


def _measure_delta_probe(
    words: int, n_rows: int = 2048, rounds: int = 3
) -> float:
    """Seconds per row-word of the batched delta AND+popcount."""
    from repro import kernels

    rng = np.random.default_rng(7)
    matrix = rng.integers(
        0, np.iinfo(np.uint64).max, size=(n_rows, words), dtype=np.uint64
    ).astype(np.dtype("<u8"))
    row = matrix[0].copy()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        kernels.and_count(matrix, row)
        best = min(best, time.perf_counter() - start)
    return best / (n_rows * words)


def _measure_delta_merge(
    words: int, n_groups: int = 512, rounds: int = 3
) -> float:
    """Seconds per word of the delta lattice count-and-add."""
    from repro import kernels

    rng = np.random.default_rng(11)
    matrix = rng.integers(
        0, np.iinfo(np.uint64).max, size=(n_groups, words), dtype=np.uint64
    ).astype(np.dtype("<u8"))
    row = matrix[0].copy()
    main = np.ones(n_groups, dtype=np.int64)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        counts = kernels.and_count(matrix, row).astype(np.int64)
        _ = main + counts
        best = min(best, time.perf_counter() - start)
    return best / (n_groups * words)


def _measure_merge_throughput(
    n_shards: int, n_elements: int = 65536, rounds: int = 3
) -> float:
    """Seconds per element of summing one int64 partial per shard."""
    parts = [np.ones(n_elements, dtype=np.int64) for _ in range(n_shards)]
    best = float("inf")
    for _ in range(rounds):
        total = np.zeros(n_elements, dtype=np.int64)
        start = time.perf_counter()
        for part in parts:
            total += part
        best = min(best, time.perf_counter() - start)
    return best / (n_shards * n_elements)


def _nnls(matrix: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Non-negative least squares, preferring scipy's solver."""
    try:
        from scipy.optimize import nnls

        solution, _ = nnls(matrix, target)
        return solution
    except ImportError:
        solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
        return np.clip(solution, 0.0, None)
