"""Persistence of the offline artifacts: MIP-index and cost weights.

POQM only pays off if the offline phase is done *once* — across process
restarts, not just within one session.  This module serializes everything
the online phase needs into a single ``.npz`` file:

* the relational table (schema labels + the cell-index matrix),
* the closed frequent itemsets (flattened (attribute, value) pairs),
* the index construction parameters (primary support, fanout, packing),
* the compiled flat R-tree arrays (format v2 — per-level SoA layout of
  :mod:`repro.rtree.flat`, plus the leaf-slot -> MIP-row payload map),
* optionally the calibrated cost weights.

Tidsets, the pointer R-tree and the statistics are *derived* state: they
are recomputed deterministically on load (packing and statistics gathering
are pure functions of the stored inputs), which keeps the file small and
the format trivially forward-compatible.  The flat traversal arrays are
stored so a reloaded index skips the SoA recompilation; v1 files (without
them) still load and simply recompile.
"""

from __future__ import annotations

import json
import struct
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import tidset as ts
from repro.cache import ARM_FAMILY, MIP_FAMILY, CachedLattice, RuleCache
from repro.core.costs import CostWeights
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.query import LocalizedQuery
from repro.dataset.schema import Attribute, Item, Schema
from repro.dataset.table import RelationalTable
from repro.errors import DataError, IndexError_
from repro.itemsets.apriori import min_count_for
from repro.itemsets.charm import ClosedItemset
from repro.itemsets.itemset import make_itemset
from repro.itemsets.rules import Rule
from repro.rtree.flat import FlatRTree

__all__ = [
    "save_index",
    "load_index",
    "save_cache",
    "load_cache",
    "save_maintained",
    "load_maintained",
    "delta_sidecar_path",
    "LoadReport",
    "MmapFallbackWarning",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_FLAT_PREFIX = "flat_"
_KERNEL_MIPS = "kernel_mip_tidsets"
_KERNEL_ITEMS = "kernel_item_matrix"
_CACHE_FORMAT_VERSION = 1
_MAINT_FORMAT_VERSION = 1


class MmapFallbackWarning(RuntimeWarning):
    """A ``load_index(mmap_mode=...)`` member could not be memory-mapped.

    Raised as a *warning*, not an error: the load still succeeds with an
    eager heap copy, but the pages are private to the process — a cluster
    worker loading such a file pays full RSS instead of sharing the box's
    page cache.  The usual cause is an archive written with
    ``save_index(compress=True)`` (deflated members cannot be mapped in
    place); rewrite it with ``compress=False``.
    """


@dataclass(frozen=True)
class LoadReport:
    """What a ``load_index(mmap_mode=...)`` call actually mapped.

    ``mapped`` lists the members served as zero-copy memory maps into the
    archive; ``fallbacks`` lists the members that were *requested* for
    mapping but silently degraded to eager heap copies (compressed,
    object-dtype, or unrecognized).  Attached to the loaded index as
    ``index.load_report``; an eager load (``mmap_mode=None``) records
    every candidate member as a fallback with ``requested=False``.
    """

    requested: bool
    mapped: tuple[str, ...]
    fallbacks: tuple[str, ...]

    @property
    def fully_mapped(self) -> bool:
        return self.requested and not self.fallbacks

    def as_dict(self) -> dict:
        return {
            "requested": self.requested,
            "mapped": list(self.mapped),
            "fallbacks": list(self.fallbacks),
            "fully_mapped": self.fully_mapped,
        }


def save_index(
    index: MIPIndex,
    path: str | Path,
    weights: CostWeights | None = None,
    compress: bool = True,
) -> None:
    """Write a MIP-index (and optional calibrated weights) to ``path``.

    The file is a numpy ``.npz`` archive; ``path`` conventionally ends in
    ``.colarm.npz`` but any name works.  ``compress=False`` stores the
    members raw (ZIP_STORED), which makes the flat R-tree arrays eligible
    for zero-copy ``load_index(..., mmap_mode="r")`` loading at the price
    of a larger file.
    """
    path = Path(path)
    schema = index.table.schema
    meta = {
        "format_version": _FORMAT_VERSION,
        "primary_support": index.primary_support,
        "max_entries": index.rtree.tree.max_entries,
        "attributes": [
            {"name": attr.name, "values": list(attr.values)}
            for attr in schema.attributes
        ],
        "weights": dict(weights.weights) if weights is not None else None,
    }
    flat_items: list[int] = []
    offsets = [0]
    for mip in index.mips:
        for item in mip.itemset:
            flat_items.extend((item.attribute, item.value))
        offsets.append(len(flat_items) // 2)
    arrays: dict[str, np.ndarray] = {}
    flat = None
    if index.rtree.tree.mutations == 0:
        # Only a flat form of the *pristine packed* tree is stored: the
        # loader re-packs the pointer tree deterministically from the
        # table, so a compile taken after direct inserts/deletes would
        # disagree with the reloaded tree.  Mutated indexes simply store
        # no flat arrays and the loader recompiles.
        flat = (
            index.rtree.flat
            if index.rtree.flat_is_current()
            else index.rtree.compile_flat()
        )
    if flat is not None:
        for key, arr in flat.to_arrays().items():
            arrays[_FLAT_PREFIX + key] = arr
        # The cached per-slot row vector — no Entry materialization on save,
        # matching the Entry-free load path below.
        arrays[_FLAT_PREFIX + "payload_rows"] = np.asarray(
            flat.payload_rows, dtype=np.int64
        )
        # The packed kernel matrices are derived state, but storing them
        # moves the hot-path bulk of a worker's working set into the
        # archive itself: an mmap load shares these pages across every
        # process on the box instead of rebuilding a private copy each.
        # They are verified bit-for-bit against the rebuild on load, so a
        # corrupt file cannot smuggle in wrong counts.  Stored only for
        # pristine trees, same as the flat arrays (one coherent format-v2
        # payload).
        arrays[_KERNEL_MIPS] = index.mip_tidset_matrix
        arrays[_KERNEL_ITEMS] = index.table.item_matrix()[0]
    path.parent.mkdir(parents=True, exist_ok=True)
    savez = np.savez_compressed if compress else np.savez
    savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        data=index.table.data,
        itemset_items=np.asarray(flat_items, dtype=np.int32).reshape(-1, 2),
        itemset_offsets=np.asarray(offsets, dtype=np.int64),
        **arrays,
    )


def load_index(
    path: str | Path,
    mmap_mode: str | None = None,
    verify: str = "mine",
) -> tuple[MIPIndex, CostWeights | None]:
    """Load a MIP-index saved by :func:`save_index`.

    Returns the index plus the calibrated weights (``None`` when the file
    was saved without them).  Derived structures (tidsets, packed R-tree,
    statistics) are rebuilt; with ``verify="mine"`` (the default) the
    stored closed itemsets are verified to match a fresh CHARM run so a
    stale or corrupted file cannot silently produce wrong answers.
    Format-v2 files additionally carry the flat SoA traversal arrays,
    which are attached directly (validated structurally) so the reloaded
    index skips the SoA recompilation; v1 files recompile on load.

    ``verify="stored"`` skips the re-mine: MIP tidsets are reconstructed
    by intersecting the item tidsets of each *stored* itemset, and then
    cross-checked bit-for-bit against the archive's packed kernel
    matrices (required to be present).  A tampered itemset or tidset
    still fails the load, but the closure/completeness of the stored
    list is taken on trust — use it for snapshots your own process
    published (cluster workers), not for files of unknown origin.  The
    payoff is worker cold-start: no CHARM run means no mining-time heap
    watermark, which is what keeps a serving process's unique RSS a
    small fraction of the mmap-shared archive.

    ``mmap_mode="r"`` (or ``"c"``, copy-on-write) opens the big members —
    the table's cell matrix, the flat SoA traversal arrays, and the
    packed kernel matrices — as read-only memory maps into the archive
    itself instead of decompressing each into a fresh heap copy: a mapped
    load is zero-copy, pages in on demand, and N processes mapping the
    same file share one page-cache copy of those arrays.  Mapping
    requires the member to be stored uncompressed (:func:`save_index`
    with ``compress=False``); members that cannot be mapped fall back to
    the eager copy, emit a :class:`MmapFallbackWarning`, and are listed
    in the :class:`LoadReport` attached to the returned index as
    ``index.load_report``.
    """
    path = Path(path)
    if mmap_mode not in (None, "r", "c"):
        raise DataError(
            f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r} — the "
            "archive is shared state; writable maps would corrupt it"
        )
    if verify not in ("mine", "stored"):
        raise DataError(
            f"verify must be 'mine' or 'stored', got {verify!r}"
        )
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read index file {path}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        items = archive["itemset_items"]
        offsets = archive["itemset_offsets"]
    except KeyError as exc:
        raise DataError(f"{path}: missing field {exc} — not a COLARM index")
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise DataError(
            f"{path}: unsupported format version {meta.get('format_version')}"
        )
    mapped_names: list[str] = []
    fallback_names: list[str] = []
    zf = zipfile.ZipFile(path) if mmap_mode is not None else None

    def member(name: str) -> np.ndarray:
        """One mappable member: zero-copy when possible, recorded either way."""
        if zf is not None:
            mapped = _mmap_npz_member(path, zf, name + ".npy", mmap_mode)
            if mapped is not None:
                mapped_names.append(name)
                return mapped
        fallback_names.append(name)
        return archive[name]

    try:
        if "data" not in archive.files:
            raise DataError(f"{path}: missing field 'data' — not a COLARM index")
        data = member("data")
        schema = Schema(
            tuple(
                Attribute(spec["name"], tuple(spec["values"]))
                for spec in meta["attributes"]
            )
        )
        table = RelationalTable(schema, data)
        flat_keys = [k for k in archive.files if k.startswith(_FLAT_PREFIX)]
        flat_arrays = {
            key[len(_FLAT_PREFIX):]: member(key) for key in flat_keys
        }
        closed = None
        if verify == "stored":
            if not (_KERNEL_MIPS in archive.files
                    and _KERNEL_ITEMS in archive.files):
                raise DataError(
                    f"{path}: verify='stored' needs the packed kernel "
                    "matrices for its bit-for-bit tidset cross-check, "
                    "but the archive carries none — load with "
                    "verify='mine' instead"
                )
            closed = _reconstruct_closed(
                table, items, offsets, float(meta["primary_support"]), path
            )
        index = build_mip_index(
            table,
            primary_support=float(meta["primary_support"]),
            max_entries=int(meta["max_entries"]),
            compile_flat=not flat_arrays,
            closed=closed,
        )
        if verify == "mine":
            _verify_itemsets(index, items, offsets, path)
        if flat_arrays:
            _attach_flat(index, flat_arrays, path)
        _attach_kernels(index, archive, member, path)
    finally:
        if zf is not None:
            zf.close()
    report = LoadReport(
        requested=mmap_mode is not None,
        mapped=tuple(mapped_names),
        fallbacks=tuple(fallback_names),
    )
    object.__setattr__(index, "load_report", report)
    if report.requested and report.fallbacks:
        warnings.warn(
            f"{path}: {len(report.fallbacks)} member(s) could not be "
            f"memory-mapped and fell back to private heap copies "
            f"({', '.join(report.fallbacks)}); save with compress=False "
            "for a fully shareable archive",
            MmapFallbackWarning,
            stacklevel=2,
        )
    weights = (
        CostWeights(dict(meta["weights"])) if meta.get("weights") else None
    )
    return index, weights


def _attach_kernels(index: MIPIndex, archive, member, path: Path) -> None:
    """Verify stored kernel matrices against the rebuild, then adopt them.

    The packed MIP-tidset and item-tidset matrices are deterministic
    functions of the (already verified) table, so equality with the
    rebuilt copies is both a correctness check on the file and the
    license to swap the heap copies for the archive-backed ones — after
    the swap the transient rebuilds are garbage and the hot kernels read
    file-backed pages every process on the box shares.
    """
    if _KERNEL_MIPS in archive.files:
        stored = member(_KERNEL_MIPS)
        built = index.mip_tidset_matrix
        if (
            stored.dtype != built.dtype
            or stored.shape != built.shape
            or not np.array_equal(stored, built)
        ):
            raise DataError(
                f"{path}: stored MIP kernel matrix disagrees with the "
                "rebuilt index — the file does not match its own data"
            )
        stored.setflags(write=False)
        index.__dict__["mip_tidset_matrix"] = stored
    if _KERNEL_ITEMS in archive.files:
        stored = member(_KERNEL_ITEMS)
        built, rows = index.table.item_matrix()
        if (
            stored.dtype != built.dtype
            or stored.shape != built.shape
            or not np.array_equal(stored, built)
        ):
            raise DataError(
                f"{path}: stored item kernel matrix disagrees with the "
                "rebuilt table — the file does not match its own data"
            )
        stored.setflags(write=False)
        index.table._item_matrix = (stored, rows)


def _mmap_npz_member(
    path: Path, zf: zipfile.ZipFile, name: str, mmap_mode: str
) -> np.ndarray | None:
    """Memory-map one ``.npy`` member of an ``.npz`` archive in place.

    ``np.load`` ignores ``mmap_mode`` for zip archives (members go
    through the zipfile reader, which always copies), so this locates the
    member's raw bytes inside the archive by hand: the zip *local* header
    at ``header_offset`` gives the data start (its name/extra lengths can
    differ from the central directory's), and the ``.npy`` header behind
    it gives dtype/shape/order.  Returns ``None`` — caller falls back to
    the eager copy — for compressed, object-dtype, or unrecognized
    members; the map itself is read-only (``"r"``) or copy-on-write
    (``"c"``), never write-through.
    """
    try:
        info = zf.getinfo(name)
    except KeyError:
        return None
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with open(path, "rb") as f:
        f.seek(info.header_offset)
        local = f.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        f.seek(info.header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(f)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        data_offset = f.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _attach_flat(
    index: MIPIndex, arrays: dict[str, np.ndarray], path: Path
) -> None:
    """Rebuild the stored flat traversal form against the reloaded MIPs.

    The stored ``payload_rows`` map each leaf slot to a MIP row; since the
    packed pointer tree and the MIP enumeration are deterministic functions
    of the (verified) table, attaching the stored compile is equivalent to
    recompiling — without walking the object graph again.  The attached
    tree is *payload-first*: no leaf :class:`~repro.rtree.node.Entry`
    objects are rebuilt here (``search_hits`` serves straight from the
    arrays; entries materialize lazily only for the legacy per-entry
    search).
    """
    try:
        rows = np.asarray(arrays.pop("payload_rows"), dtype=np.int64)
    except KeyError:
        raise DataError(f"{path}: flat arrays lack their payload map")
    n_mips = index.n_mips
    if (
        len(rows) != n_mips
        or (n_mips and (rows.min() < 0 or rows.max() >= n_mips))
        or len(np.unique(rows)) != len(rows)
    ):
        raise DataError(
            f"{path}: flat payload map is not a bijection onto the "
            f"{n_mips} rebuilt MIPs"
        )
    try:
        index.rtree.flat = FlatRTree.from_arrays(
            arrays, [index.mips[int(r)] for r in rows]
        )
    except IndexError_ as exc:
        raise DataError(f"{path}: corrupt flat R-tree arrays: {exc}") from exc


def delta_sidecar_path(path: str | Path) -> Path:
    """The delta sidecar conventionally stored next to the index file
    (``x.colarm.npz`` -> ``x.colarm.delta.npz``)."""
    path = Path(path)
    if path.suffix == ".npz":
        return path.with_suffix(".delta.npz")
    return Path(str(path) + ".delta.npz")


def save_maintained(
    maintained,
    path: str | Path,
    weights: CostWeights | None = None,
    compress: bool = True,
) -> None:
    """Write a maintained index: the main index ``.npz`` plus a delta
    sidecar at :func:`delta_sidecar_path`.

    The main file is a plain :func:`save_index` archive — loadable on its
    own by a reader that does not care about the un-folded mutations.  The
    sidecar stores only the *logical* delta state (live delta records,
    tombstoned main tids, the generation), not the packed matrices:
    :func:`load_maintained` replays it through the vectorized append /
    delete path, which rebuilds the matrices deterministically.  Refuses
    to save while a background recompaction is in flight (poll it first —
    the op log is thread state, not data).
    """
    from repro import tidset as ts

    if maintained.recompacting:
        raise DataError(
            "cannot save while a recompaction is in flight; "
            "poll_recompaction(wait=True) first"
        )
    path = Path(path)
    save_index(maintained.index, path, weights=weights, compress=compress)
    meta = {
        "maintenance_format_version": _MAINT_FORMAT_VERSION,
        "generation": maintained.generation,
        "max_delta_fraction": maintained.max_delta_fraction,
        "auto_rebuild": maintained.auto_rebuild,
        "n_main_records": maintained.n_main_records,
    }
    sidecar = delta_sidecar_path(path)
    sidecar.parent.mkdir(parents=True, exist_ok=True)
    savez = np.savez_compressed if compress else np.savez
    savez(
        sidecar,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        delta_records=maintained.delta_data(),
        main_dead=np.asarray(ts.to_list(maintained.main_dead), dtype=np.int64),
    )


def load_maintained(path: str | Path):
    """Load a maintained index saved by :func:`save_maintained`.

    Returns ``(maintained, weights)``.  The main index loads through the
    verified :func:`load_index` path; the sidecar's tombstones and delta
    records then replay through the maintained mutation path (one
    vectorized batch each), and the generation clock is advanced to the
    saved generation so cross-restart stamps (e.g. a priced
    :class:`~repro.core.optimizer.PlanChoice`) can never falsely validate.
    A missing sidecar is an error — load the main file with
    :func:`load_index` when the delta state is intentionally dropped.
    """
    from repro.core.maintenance import MaintainedIndex

    path = Path(path)
    sidecar = delta_sidecar_path(path)
    try:
        archive = np.load(sidecar)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read delta sidecar {sidecar}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        delta_records = archive["delta_records"]
        main_dead = archive["main_dead"]
    except KeyError as exc:
        raise DataError(f"{sidecar}: missing field {exc} — not a delta sidecar")
    if meta.get("maintenance_format_version") != _MAINT_FORMAT_VERSION:
        raise DataError(
            f"{sidecar}: unsupported maintenance format version "
            f"{meta.get('maintenance_format_version')}"
        )
    index, weights = load_index(path)
    if index.table.n_records != int(meta["n_main_records"]):
        raise DataError(
            f"{sidecar}: sidecar was taken over {meta['n_main_records']} "
            f"main records but the index file holds "
            f"{index.table.n_records} — the files do not belong together"
        )
    maintained = MaintainedIndex.from_index(
        index,
        max_delta_fraction=float(meta["max_delta_fraction"]),
        auto_rebuild=False,  # the replay batches must land verbatim
    )
    if len(main_dead):
        maintained.delete([int(t) for t in main_dead])
    if len(delta_records):
        maintained.append(delta_records)
    maintained.auto_rebuild = bool(meta["auto_rebuild"])
    saved_generation = int(meta["generation"])
    if maintained.generation < saved_generation:
        index.clock.base += saved_generation - maintained.generation
    return maintained, weights


def save_cache(
    cache: RuleCache, path: str | Path, compress: bool = True
) -> None:
    """Write a materialized rule cache to a sidecar ``.npz`` at ``path``.

    Conventionally stored next to the index file (``*.cache.npz``) so a
    restarted worker loads both and starts warm.  Entries are stored in
    LRU -> MRU order with their hit counts, so the reloaded cache has the
    same eviction order and landmark set.  ``compress=False`` stores the
    members raw, which makes the lattice count matrices (the bulk of a
    warm cache) eligible for zero-copy ``load_cache(..., mmap_mode="r")``
    — the same tradeoff as :func:`save_index`.
    """
    path = Path(path)
    index = cache.index
    entries_meta: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for i, (key, entry) in enumerate(cache._entries.items()):
        focal, aitem = key[1], key[2]
        record: dict = {
            "kind": entry.kind,
            "selections": [[ai, list(vs)] for ai, vs in focal],
            "aitem": list(aitem) if aitem is not None else None,
            "minsupp": key[4],
            "hits": entry.hits,
        }
        if entry.kind == "rules":
            record["minconf"] = key[5]
            record["family"] = key[6]
            rules: list[Rule] = entry.payload
            items: list[tuple[int, int]] = []
            splits = np.zeros((len(rules), 2), dtype=np.int64)
            counts = np.zeros(len(rules), dtype=np.int64)
            fracs = np.zeros((len(rules), 2), dtype=np.float64)
            for j, rule in enumerate(rules):
                items.extend((it.attribute, it.value) for it in rule.antecedent)
                items.extend((it.attribute, it.value) for it in rule.consequent)
                splits[j] = (len(rule.antecedent), len(rule.consequent))
                counts[j] = rule.support_count
                fracs[j] = (rule.support, rule.confidence)
            arrays[f"e{i}_items"] = np.asarray(
                items, dtype=np.int32
            ).reshape(-1, 2)
            arrays[f"e{i}_splits"] = splits
            arrays[f"e{i}_counts"] = counts
            arrays[f"e{i}_fracs"] = fracs
        else:
            lattice: CachedLattice = entry.payload
            record["dq_size"] = lattice.dq_size
            record["extract_min_count"] = lattice.extract_min_count
            record["n_groups"] = len(lattice.groups)
            for j, (itemsets, group_counts) in enumerate(lattice.groups):
                arrays[f"e{i}_g{j}_items"] = np.asarray(
                    [
                        [(it.attribute, it.value) for it in itemset]
                        for itemset in itemsets
                    ],
                    dtype=np.int32,
                )
                arrays[f"e{i}_g{j}_counts"] = group_counts
        entries_meta.append(record)
    meta = {
        "cache_format_version": _CACHE_FORMAT_VERSION,
        "generation": cache.generation(),
        "expand": cache.expand,
        "budget_bytes": cache.budget_bytes,
        "landmark_hits": cache.landmark_hits,
        "cardinalities": [int(c) for c in index.cardinalities],
        "entries": entries_meta,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    savez = np.savez_compressed if compress else np.savez
    savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **arrays,
    )


def load_cache(
    path: str | Path,
    index: MIPIndex,
    mmap_mode: str | None = None,
) -> RuleCache:
    """Load a cache saved by :func:`save_cache` and bind it to ``index``.

    Strict invalidation survives the restart: the file records the
    generation (R-tree mutation counter) its entries were computed at,
    and loading refuses any file whose generation — or schema shape —
    disagrees with the live index.  A warm-loaded cache can therefore
    never serve rules mined against a different tree.

    ``mmap_mode="r"``/``"c"`` maps the lattice count matrices straight
    out of the archive (members must be stored uncompressed, i.e.
    :func:`save_cache` with ``compress=False``; compressed members fall
    back to the eager copy) — pairing with ``load_index(mmap_mode=...)``
    gives a warm restart whose big arrays all page in on demand.
    """
    path = Path(path)
    if mmap_mode not in (None, "r", "c"):
        raise DataError(
            f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r}"
        )
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read cache file {path}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
    except KeyError as exc:
        raise DataError(f"{path}: missing field {exc} — not a COLARM cache")
    if meta.get("cache_format_version") != _CACHE_FORMAT_VERSION:
        raise DataError(
            f"{path}: unsupported cache format version "
            f"{meta.get('cache_format_version')}"
        )
    cards = [int(c) for c in index.cardinalities]
    if meta["cardinalities"] != cards:
        raise DataError(
            f"{path}: cache schema {meta['cardinalities']} does not match "
            f"the index schema {cards}"
        )
    generation = int(meta["generation"])
    if generation != index.generation:
        raise DataError(
            f"{path}: cache generation {generation} does not match the "
            f"index generation {index.generation} — the index "
            "mutated since the cache was saved; mine fresh instead"
        )
    cache = RuleCache(
        index,
        budget_bytes=int(meta["budget_bytes"]),
        landmark_hits=int(meta["landmark_hits"]),
        expand=bool(meta["expand"]),
    )

    def member(name: str) -> np.ndarray:
        if name not in archive.files:
            raise DataError(f"{path}: missing cache member {name}")
        return archive[name]

    zf = zipfile.ZipFile(path) if mmap_mode is not None else None
    try:
        for i, record in enumerate(meta["entries"]):
            selections = {}
            for ai, vs in record["selections"]:
                ai = int(ai)
                if not 0 <= ai < len(cards) or any(
                    not 0 <= int(v) < cards[ai] for v in vs
                ):
                    raise DataError(
                        f"{path}: entry {i} selects outside the schema"
                    )
                selections[ai] = frozenset(int(v) for v in vs)
            query = LocalizedQuery(
                range_selections=selections,
                minsupp=float(record["minsupp"]),
                minconf=float(record.get("minconf", 0.5)),
                item_attributes=(
                    frozenset(int(a) for a in record["aitem"])
                    if record["aitem"] is not None
                    else None
                ),
            )
            if record["kind"] == "rules":
                family = record["family"]
                if family not in (MIP_FAMILY, ARM_FAMILY):
                    raise DataError(
                        f"{path}: entry {i} has unknown family {family!r}"
                    )
                items = member(f"e{i}_items")
                splits = member(f"e{i}_splits")
                counts = member(f"e{i}_counts")
                fracs = member(f"e{i}_fracs")
                rules = []
                pos = 0
                for j in range(len(splits)):
                    n_ant, n_con = int(splits[j, 0]), int(splits[j, 1])
                    ant = tuple(
                        Item(int(a), int(v))
                        for a, v in items[pos:pos + n_ant]
                    )
                    con = tuple(
                        Item(int(a), int(v))
                        for a, v in items[pos + n_ant:pos + n_ant + n_con]
                    )
                    pos += n_ant + n_con
                    rules.append(
                        Rule(
                            antecedent=ant,
                            consequent=con,
                            support_count=int(counts[j]),
                            support=float(fracs[j, 0]),
                            confidence=float(fracs[j, 1]),
                        )
                    )
                cache.put_rules(query, rules, family=family)
                key = cache._rules_key(query, family)
            else:
                groups = []
                for j in range(int(record["n_groups"])):
                    g_items = member(f"e{i}_g{j}_items")
                    counts_name = f"e{i}_g{j}_counts"
                    g_counts = None
                    if zf is not None:
                        g_counts = _mmap_npz_member(
                            path, zf, counts_name + ".npy", mmap_mode
                        )
                    if g_counts is None:
                        g_counts = member(counts_name)
                    itemsets = tuple(
                        tuple(Item(int(a), int(v)) for a, v in row)
                        for row in g_items
                    )
                    groups.append((itemsets, g_counts))
                lattice = CachedLattice(
                    groups=tuple(groups),
                    dq_size=int(record["dq_size"]),
                    extract_min_count=(
                        int(record["extract_min_count"])
                        if record["extract_min_count"] is not None
                        else None
                    ),
                )
                cache.put_lattice(query, lattice)
                key = cache._lattice_key(query)
            entry = cache._entries.get(key)
            if entry is not None:
                # Restore the landmark state; insertion order already
                # restored the LRU order (entries were saved LRU -> MRU).
                entry.hits = int(record["hits"])
    finally:
        if zf is not None:
            zf.close()
    return cache


def _reconstruct_closed(
    table: RelationalTable,
    items: np.ndarray,
    offsets: np.ndarray,
    primary_support: float,
    path: Path,
) -> list[ClosedItemset]:
    """Rebuild the closed-itemset list from the archive, miner-free.

    Each stored itemset's tidset is the intersection of its items'
    tidsets — a deterministic function of the (already loaded) table, so
    any inconsistency between the stored list and the data surfaces
    either here (unknown item, infrequent result, duplicate) or in the
    bit-for-bit kernel-matrix cross-check that follows in
    :func:`_attach_kernels`.
    """
    item_tidsets = table.item_tidsets()
    floor = min_count_for(primary_support, table.n_records)
    closed: list[ClosedItemset] = []
    seen: set[tuple] = set()
    for i in range(len(offsets) - 1):
        pairs = [tuple(map(int, pair)) for pair in
                 items[offsets[i]:offsets[i + 1]]]
        key = tuple(sorted(pairs))
        if key in seen:
            raise DataError(
                f"{path}: duplicate stored itemset {key} — the file does "
                "not match its own data"
            )
        seen.add(key)
        itemset = make_itemset(Item(a, v) for a, v in pairs)
        tid: int | None = None
        for item in itemset:
            if item not in item_tidsets:
                raise DataError(
                    f"{path}: stored itemset {key} names item {item} "
                    "that occurs in no record — the file does not match "
                    "its own data"
                )
            tid = item_tidsets[item] if tid is None \
                else tid & item_tidsets[item]
        if tid is None or ts.count(tid) < floor:
            raise DataError(
                f"{path}: stored itemset {key} is not frequent at the "
                f"primary support floor — the file does not match its "
                "own data"
            )
        closed.append(ClosedItemset(items=itemset, tidset=tid))
    return closed


def _verify_itemsets(
    index: MIPIndex, items: np.ndarray, offsets: np.ndarray, path: Path
) -> None:
    """Cross-check stored itemsets against the rebuilt index."""
    stored = {
        tuple(map(tuple, items[offsets[i]:offsets[i + 1]]))
        for i in range(len(offsets) - 1)
    }
    rebuilt = {
        tuple((it.attribute, it.value) for it in mip.itemset)
        for mip in index.mips
    }
    if stored != rebuilt:
        raise DataError(
            f"{path}: stored itemsets disagree with the rebuilt index "
            f"({len(stored)} stored vs {len(rebuilt)} rebuilt) — the file "
            "does not match its own data"
        )
