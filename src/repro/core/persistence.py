"""Persistence of the offline artifacts: MIP-index and cost weights.

POQM only pays off if the offline phase is done *once* — across process
restarts, not just within one session.  This module serializes everything
the online phase needs into a single ``.npz`` file:

* the relational table (schema labels + the cell-index matrix),
* the closed frequent itemsets (flattened (attribute, value) pairs),
* the index construction parameters (primary support, fanout, packing),
* optionally the calibrated cost weights.

Tidsets, the R-tree and the statistics are *derived* state: they are
recomputed deterministically on load (packing and statistics gathering are
pure functions of the stored inputs), which keeps the file small and the
format trivially forward-compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.costs import CostWeights
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable
from repro.errors import DataError

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(
    index: MIPIndex,
    path: str | Path,
    weights: CostWeights | None = None,
) -> None:
    """Write a MIP-index (and optional calibrated weights) to ``path``.

    The file is a numpy ``.npz`` archive; ``path`` conventionally ends in
    ``.colarm.npz`` but any name works.
    """
    path = Path(path)
    schema = index.table.schema
    meta = {
        "format_version": _FORMAT_VERSION,
        "primary_support": index.primary_support,
        "max_entries": index.rtree.tree.max_entries,
        "attributes": [
            {"name": attr.name, "values": list(attr.values)}
            for attr in schema.attributes
        ],
        "weights": dict(weights.weights) if weights is not None else None,
    }
    flat_items: list[int] = []
    offsets = [0]
    for mip in index.mips:
        for item in mip.itemset:
            flat_items.extend((item.attribute, item.value))
        offsets.append(len(flat_items) // 2)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        data=index.table.data,
        itemset_items=np.asarray(flat_items, dtype=np.int32).reshape(-1, 2),
        itemset_offsets=np.asarray(offsets, dtype=np.int64),
    )


def load_index(path: str | Path) -> tuple[MIPIndex, CostWeights | None]:
    """Load a MIP-index saved by :func:`save_index`.

    Returns the index plus the calibrated weights (``None`` when the file
    was saved without them).  Derived structures (tidsets, packed R-tree,
    statistics) are rebuilt; the stored closed itemsets are verified to
    match a fresh CHARM run so a stale or corrupted file cannot silently
    produce wrong answers.
    """
    path = Path(path)
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read index file {path}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        data = archive["data"]
        items = archive["itemset_items"]
        offsets = archive["itemset_offsets"]
    except KeyError as exc:
        raise DataError(f"{path}: missing field {exc} — not a COLARM index")
    if meta.get("format_version") != _FORMAT_VERSION:
        raise DataError(
            f"{path}: unsupported format version {meta.get('format_version')}"
        )
    schema = Schema(
        tuple(
            Attribute(spec["name"], tuple(spec["values"]))
            for spec in meta["attributes"]
        )
    )
    table = RelationalTable(schema, data)
    index = build_mip_index(
        table,
        primary_support=float(meta["primary_support"]),
        max_entries=int(meta["max_entries"]),
    )
    _verify_itemsets(index, items, offsets, path)
    weights = (
        CostWeights(dict(meta["weights"])) if meta.get("weights") else None
    )
    return index, weights


def _verify_itemsets(
    index: MIPIndex, items: np.ndarray, offsets: np.ndarray, path: Path
) -> None:
    """Cross-check stored itemsets against the rebuilt index."""
    stored = {
        tuple(map(tuple, items[offsets[i]:offsets[i + 1]]))
        for i in range(len(offsets) - 1)
    }
    rebuilt = {
        tuple((it.attribute, it.value) for it in mip.itemset)
        for mip in index.mips
    }
    if stored != rebuilt:
        raise DataError(
            f"{path}: stored itemsets disagree with the rebuilt index "
            f"({len(stored)} stored vs {len(rebuilt)} rebuilt) — the file "
            "does not match its own data"
        )
