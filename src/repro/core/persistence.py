"""Persistence of the offline artifacts: MIP-index and cost weights.

POQM only pays off if the offline phase is done *once* — across process
restarts, not just within one session.  This module serializes everything
the online phase needs into a single ``.npz`` file:

* the relational table (schema labels + the cell-index matrix),
* the closed frequent itemsets (flattened (attribute, value) pairs),
* the index construction parameters (primary support, fanout, packing),
* the compiled flat R-tree arrays (format v2 — per-level SoA layout of
  :mod:`repro.rtree.flat`, plus the leaf-slot -> MIP-row payload map),
* optionally the calibrated cost weights.

Tidsets, the pointer R-tree and the statistics are *derived* state: they
are recomputed deterministically on load (packing and statistics gathering
are pure functions of the stored inputs), which keeps the file small and
the format trivially forward-compatible.  The flat traversal arrays are
stored so a reloaded index skips the SoA recompilation; v1 files (without
them) still load and simply recompile.
"""

from __future__ import annotations

import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.core.costs import CostWeights
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import RelationalTable
from repro.errors import DataError, IndexError_
from repro.rtree.flat import FlatRTree

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_FLAT_PREFIX = "flat_"


def save_index(
    index: MIPIndex,
    path: str | Path,
    weights: CostWeights | None = None,
    compress: bool = True,
) -> None:
    """Write a MIP-index (and optional calibrated weights) to ``path``.

    The file is a numpy ``.npz`` archive; ``path`` conventionally ends in
    ``.colarm.npz`` but any name works.  ``compress=False`` stores the
    members raw (ZIP_STORED), which makes the flat R-tree arrays eligible
    for zero-copy ``load_index(..., mmap_mode="r")`` loading at the price
    of a larger file.
    """
    path = Path(path)
    schema = index.table.schema
    meta = {
        "format_version": _FORMAT_VERSION,
        "primary_support": index.primary_support,
        "max_entries": index.rtree.tree.max_entries,
        "attributes": [
            {"name": attr.name, "values": list(attr.values)}
            for attr in schema.attributes
        ],
        "weights": dict(weights.weights) if weights is not None else None,
    }
    flat_items: list[int] = []
    offsets = [0]
    for mip in index.mips:
        for item in mip.itemset:
            flat_items.extend((item.attribute, item.value))
        offsets.append(len(flat_items) // 2)
    arrays: dict[str, np.ndarray] = {}
    flat = None
    if index.rtree.tree.mutations == 0:
        # Only a flat form of the *pristine packed* tree is stored: the
        # loader re-packs the pointer tree deterministically from the
        # table, so a compile taken after direct inserts/deletes would
        # disagree with the reloaded tree.  Mutated indexes simply store
        # no flat arrays and the loader recompiles.
        flat = (
            index.rtree.flat
            if index.rtree.flat_is_current()
            else index.rtree.compile_flat()
        )
    if flat is not None:
        for key, arr in flat.to_arrays().items():
            arrays[_FLAT_PREFIX + key] = arr
        # The cached per-slot row vector — no Entry materialization on save,
        # matching the Entry-free load path below.
        arrays[_FLAT_PREFIX + "payload_rows"] = np.asarray(
            flat.payload_rows, dtype=np.int64
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    savez = np.savez_compressed if compress else np.savez
    savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        data=index.table.data,
        itemset_items=np.asarray(flat_items, dtype=np.int32).reshape(-1, 2),
        itemset_offsets=np.asarray(offsets, dtype=np.int64),
        **arrays,
    )


def load_index(
    path: str | Path, mmap_mode: str | None = None
) -> tuple[MIPIndex, CostWeights | None]:
    """Load a MIP-index saved by :func:`save_index`.

    Returns the index plus the calibrated weights (``None`` when the file
    was saved without them).  Derived structures (tidsets, packed R-tree,
    statistics) are rebuilt; the stored closed itemsets are verified to
    match a fresh CHARM run so a stale or corrupted file cannot silently
    produce wrong answers.  Format-v2 files additionally carry the flat
    SoA traversal arrays, which are attached directly (validated
    structurally) so the reloaded index skips the SoA recompilation; v1
    files recompile on load.

    ``mmap_mode="r"`` (or ``"c"``, copy-on-write) opens the flat SoA
    arrays as read-only memory maps into the archive itself instead of
    decompressing each member into a fresh heap copy — the traversal
    arrays are the bulk of a v2 file and the flat tree only ever reads
    them, so a mapped load is zero-copy and pages in on demand.  Mapping
    requires the member to be stored uncompressed
    (:func:`save_index` with ``compress=False``); compressed members
    silently fall back to the eager copy.
    """
    path = Path(path)
    if mmap_mode not in (None, "r", "c"):
        raise DataError(
            f"mmap_mode must be None, 'r' or 'c', got {mmap_mode!r} — the "
            "archive is shared state; writable maps would corrupt it"
        )
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read index file {path}: {exc}") from exc
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        data = archive["data"]
        items = archive["itemset_items"]
        offsets = archive["itemset_offsets"]
    except KeyError as exc:
        raise DataError(f"{path}: missing field {exc} — not a COLARM index")
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise DataError(
            f"{path}: unsupported format version {meta.get('format_version')}"
        )
    schema = Schema(
        tuple(
            Attribute(spec["name"], tuple(spec["values"]))
            for spec in meta["attributes"]
        )
    )
    table = RelationalTable(schema, data)
    flat_keys = [k for k in archive.files if k.startswith(_FLAT_PREFIX)]
    flat_arrays: dict[str, np.ndarray] = {}
    if flat_keys and mmap_mode is not None:
        with zipfile.ZipFile(path) as zf:
            for key in flat_keys:
                mapped = _mmap_npz_member(path, zf, key + ".npy", mmap_mode)
                flat_arrays[key[len(_FLAT_PREFIX):]] = (
                    mapped if mapped is not None else archive[key]
                )
    else:
        flat_arrays = {
            key[len(_FLAT_PREFIX):]: archive[key] for key in flat_keys
        }
    index = build_mip_index(
        table,
        primary_support=float(meta["primary_support"]),
        max_entries=int(meta["max_entries"]),
        compile_flat=not flat_arrays,
    )
    _verify_itemsets(index, items, offsets, path)
    if flat_arrays:
        _attach_flat(index, flat_arrays, path)
    weights = (
        CostWeights(dict(meta["weights"])) if meta.get("weights") else None
    )
    return index, weights


def _mmap_npz_member(
    path: Path, zf: zipfile.ZipFile, name: str, mmap_mode: str
) -> np.ndarray | None:
    """Memory-map one ``.npy`` member of an ``.npz`` archive in place.

    ``np.load`` ignores ``mmap_mode`` for zip archives (members go
    through the zipfile reader, which always copies), so this locates the
    member's raw bytes inside the archive by hand: the zip *local* header
    at ``header_offset`` gives the data start (its name/extra lengths can
    differ from the central directory's), and the ``.npy`` header behind
    it gives dtype/shape/order.  Returns ``None`` — caller falls back to
    the eager copy — for compressed, object-dtype, or unrecognized
    members; the map itself is read-only (``"r"``) or copy-on-write
    (``"c"``), never write-through.
    """
    try:
        info = zf.getinfo(name)
    except KeyError:
        return None
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with open(path, "rb") as f:
        f.seek(info.header_offset)
        local = f.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        f.seek(info.header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(f)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        data_offset = f.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _attach_flat(
    index: MIPIndex, arrays: dict[str, np.ndarray], path: Path
) -> None:
    """Rebuild the stored flat traversal form against the reloaded MIPs.

    The stored ``payload_rows`` map each leaf slot to a MIP row; since the
    packed pointer tree and the MIP enumeration are deterministic functions
    of the (verified) table, attaching the stored compile is equivalent to
    recompiling — without walking the object graph again.  The attached
    tree is *payload-first*: no leaf :class:`~repro.rtree.node.Entry`
    objects are rebuilt here (``search_hits`` serves straight from the
    arrays; entries materialize lazily only for the legacy per-entry
    search).
    """
    try:
        rows = np.asarray(arrays.pop("payload_rows"), dtype=np.int64)
    except KeyError:
        raise DataError(f"{path}: flat arrays lack their payload map")
    n_mips = index.n_mips
    if (
        len(rows) != n_mips
        or (n_mips and (rows.min() < 0 or rows.max() >= n_mips))
        or len(np.unique(rows)) != len(rows)
    ):
        raise DataError(
            f"{path}: flat payload map is not a bijection onto the "
            f"{n_mips} rebuilt MIPs"
        )
    try:
        index.rtree.flat = FlatRTree.from_arrays(
            arrays, [index.mips[int(r)] for r in rows]
        )
    except IndexError_ as exc:
        raise DataError(f"{path}: corrupt flat R-tree arrays: {exc}") from exc


def _verify_itemsets(
    index: MIPIndex, items: np.ndarray, offsets: np.ndarray, path: Path
) -> None:
    """Cross-check stored itemsets against the rebuilt index."""
    stored = {
        tuple(map(tuple, items[offsets[i]:offsets[i + 1]]))
        for i in range(len(offsets) - 1)
    }
    rebuilt = {
        tuple((it.attribute, it.value) for it in mip.itemset)
        for mip in index.mips
    }
    if stored != rebuilt:
        raise DataError(
            f"{path}: stored itemsets disagree with the rebuilt index "
            f"({len(stored)} stored vs {len(rebuilt)} rebuilt) — the file "
            "does not match its own data"
        )
