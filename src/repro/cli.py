"""The ``colarm`` command-line interface.

Wraps the offline and online phases for shell use::

    colarm build data.csv index.npz --primary-support 0.1 --calibrate 6
    colarm info index.npz
    colarm query index.npz "REPORT LOCALIZED ASSOCIATION RULES FROM d \
        WHERE RANGE region = (r1) HAVING minsupport = 0.4 AND minconfidence = 0.8;"
    colarm plans index.npz "<same query>"     # run all six plans
    colarm explain index.npz "<same query>"   # cost-model ranking only
    colarm suggest index.npz                  # thresholds + focal subsets

Exit status is 0 on success, 2 on usage/data errors (with a message on
stderr).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.reporting import format_table
from repro.core.calibration import calibrate, default_probe_queries
from repro.core.engine import Colarm
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.parser import parse_query
from repro.core.paramsuggest import suggest_minconf, suggest_minsupp, suggest_ranges
from repro.core.persistence import load_index, save_index
from repro.core.plans import PlanKind, execute_plan, plan_from_name
from repro.dataset.loaders import load_csv
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="colarm",
        description="COLARM: online localized association rule mining",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="offline phase: CSV -> MIP-index file")
    build.add_argument("csv", help="input CSV of value labels (with header)")
    build.add_argument("index", help="output index file (.npz)")
    build.add_argument("--primary-support", type=float, default=0.1,
                       help="the POQM primary support floor (default 0.1)")
    build.add_argument("--max-entries", type=int, default=8,
                       help="R-tree fanout (default 8)")
    build.add_argument("--calibrate", type=int, default=0, metavar="N",
                       help="fit cost weights from N probe queries")

    info = sub.add_parser("info", help="summarize an index file")
    info.add_argument("index")

    query = sub.add_parser("query", help="answer one localized mining query")
    query.add_argument("index")
    query.add_argument("text", help="REPORT LOCALIZED ASSOCIATION RULES ...")
    query.add_argument("--plan", default=None,
                       help="force a plan (S-E-V, S-VS, SS-E-V, SS-VS, "
                            "SS-E-U-V, ARM) instead of the optimizer")
    query.add_argument("--expand", action="store_true",
                       help="expand to all locally frequent itemsets")
    query.add_argument("--limit", type=int, default=50,
                       help="max rules to print (default 50)")

    plans = sub.add_parser("plans", help="execute all six plans and compare")
    plans.add_argument("index")
    plans.add_argument("text")

    explain = sub.add_parser("explain", help="cost-model ranking for a query")
    explain.add_argument("index")
    explain.add_argument("text")

    suggest = sub.add_parser("suggest",
                             help="suggest thresholds and focal subsets")
    suggest.add_argument("index")
    suggest.add_argument("--qualify-fraction", type=float, default=0.25)
    suggest.add_argument("--top-k", type=int, default=5)

    simpson = sub.add_parser(
        "simpson", help="rules that flip between global and local context"
    )
    simpson.add_argument("index")
    simpson.add_argument("text", help="the localized query defining D^Q")
    simpson.add_argument("--margin", type=float, default=0.05,
                         help="min confidence gap to report (default 0.05)")
    simpson.add_argument("--limit", type=int, default=10)

    rank = sub.add_parser(
        "rank", help="answer a query and rank its rules by a measure"
    )
    rank.add_argument("index")
    rank.add_argument("text")
    rank.add_argument("--measure", default="kulczynski",
                      help="lift, cosine, kulczynski, jaccard, ... "
                           "(default kulczynski)")
    rank.add_argument("--top-k", type=int, default=10)

    def add_serving_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="worker service processes; > 1 spawns the "
                            "mmap-shared cluster with consistent-hash "
                            "focal routing (default 1: single in-process "
                            "service)")
        p.add_argument("--threads", type=int, default=2,
                       help="execution threads per service (default 2)")
        p.add_argument("--in-process", action="store_true",
                       help="with --workers N: route across N services "
                            "in this process instead of spawning worker "
                            "processes")
        p.add_argument("--cluster-dir", default=None,
                       help="snapshot directory for the cluster's epoch "
                            "publishes (default: a temporary directory)")
        p.add_argument("--max-pending", type=int, default=64,
                       help="scheduler queue bound (default 64)")
        p.add_argument("--cost-ceiling", type=float, default=float("inf"),
                       help="admission ceiling in estimated seconds "
                            "(default: unlimited)")
        p.add_argument("--over-budget", choices=("shed", "defer"),
                       default="shed",
                       help="what happens above the ceiling (default shed)")
        p.add_argument("--aging", type=float, default=1.0,
                       help="priority credit per second waited; "
                            "inf = FIFO, 0 = pure cost order (default 1.0)")
        p.add_argument("--no-cache", action="store_true",
                       help="serve without the materialized rule cache")

    serve = sub.add_parser(
        "serve",
        help="line-oriented query service: one query per stdin line, "
             "one JSON response per stdout line",
    )
    serve.add_argument("index")
    add_serving_args(serve)

    replay = sub.add_parser(
        "replay",
        help="run a workload file (one query per line) through the "
             "service concurrently and report latency/throughput",
    )
    replay.add_argument("index")
    replay.add_argument("workload", help="file of queries, one per line "
                                         "('-' for stdin)")
    replay.add_argument("--limit", type=int, default=5,
                        help="max rules to print per response (default 5)")
    add_serving_args(replay)

    ingest = sub.add_parser(
        "ingest",
        help="append records to an index through the array-native delta "
             "store (no rebuild on the hot path; background recompaction "
             "folds the delta when it outgrows its bound)",
    )
    ingest.add_argument("index", help="index file (.npz) to ingest into")
    ingest.add_argument("records",
                        help="file of records, one per line of comma-"
                             "separated value labels in schema order "
                             "('-' for stdin)")
    ingest.add_argument("--batch-size", type=int, default=256,
                        help="records per vectorized append (default 256)")
    ingest.add_argument("--max-delta-fraction", type=float, default=0.1,
                        help="delta size bound triggering a background "
                             "recompaction (default 0.1)")
    ingest.add_argument("--out", default=None,
                        help="write the maintained state here instead of "
                             "updating the input file in place")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"colarm: error: {exc}", file=sys.stderr)
        return 2


def _cmd_build(args: argparse.Namespace) -> int:
    table = load_csv(args.csv)
    index = build_mip_index(
        table, primary_support=args.primary_support,
        max_entries=args.max_entries,
    )
    weights = None
    if args.calibrate > 0:
        probes = default_probe_queries(index, n_queries=args.calibrate)
        report = calibrate(index, probes)
        weights = report.weights
        print(f"calibrated on {report.n_runs} probe runs "
              f"(RMS residual {report.residual * 1000:.2f} ms)")
    save_index(index, args.index, weights=weights)
    print(
        f"indexed {table.n_records} records x {table.n_attributes} attributes: "
        f"{index.n_mips} closed frequent itemsets at primary support "
        f"{args.primary_support:.0%} -> {args.index}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index, weights = load_index(args.index)
    stats = index.stats
    print(f"records:            {stats.n_records}")
    print(f"attributes:         {stats.n_attributes}")
    print(f"primary support:    {index.primary_support:.2%}")
    print(f"closed itemsets:    {index.n_mips}")
    print(f"R-tree height:      {index.rtree.height}")
    print(f"itemset lengths:    {dict(sorted(stats.length_histogram.items()))}")
    print(f"calibrated weights: {'yes' if weights else 'no'}")
    for attr in index.table.schema.attributes:
        print(f"  {attr.name}: {list(attr.values)}")
    return 0


def _load_engine(index_path: str) -> Colarm:
    index, weights = load_index(index_path)
    return Colarm.from_index(index, weights=weights)


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    engine.expand = bool(args.expand)
    plan = plan_from_name(args.plan) if args.plan else None
    outcome = engine.query(args.text, plan=plan)
    print(
        f"focal subset: {outcome.dq_size} records; plan {outcome.plan.value} "
        f"({outcome.chosen_by}); {outcome.n_rules} rules in "
        f"{outcome.elapsed * 1000:.1f} ms"
    )
    for rule in outcome.rules[: args.limit]:
        print("  " + rule.render(engine.schema))
    if outcome.n_rules > args.limit:
        print(f"  ... and {outcome.n_rules - args.limit} more")
    return 0


def _cmd_plans(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    parsed = parse_query(args.text, engine.schema)
    choice = engine.choose_plan(parsed.query)
    rows = []
    for kind in PlanKind:
        result = execute_plan(kind, engine.index, parsed.query)
        rows.append(
            [
                kind.value,
                f"{result.elapsed * 1000:.1f}",
                f"{choice.estimates[kind] * 1000:.1f}",
                result.n_rules,
                "<-- optimizer" if kind is choice.kind else "",
            ]
        )
    print(format_table(
        ["plan", "measured ms", "estimated ms", "rules", ""], rows
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    print(engine.choose_plan(args.text).explain())
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    index, _ = load_index(args.index)
    minsupp = suggest_minsupp(index, qualify_fraction=args.qualify_fraction)
    minconf = suggest_minconf(index, target_fraction=args.qualify_fraction)
    print(f"suggested minsupport  = {minsupp:.3f}")
    print(f"suggested minconfidence = {minconf:.3f}")
    print("promising focal subsets:")
    for suggestion in suggest_ranges(index, minsupp=minsupp, top_k=args.top_k):
        print("  " + suggestion.describe(index.table.schema))
    return 0


def _cmd_simpson(args: argparse.Namespace) -> int:
    from repro import tidset as ts
    from repro.analysis.simpson import find_rule_flips, find_vanishing_rules

    engine = _load_engine(args.index)
    query = parse_query(args.text, engine.schema).query
    emerging = find_rule_flips(engine.index, query, margin=args.margin)
    vanishing = find_vanishing_rules(
        engine.index, query, global_minsupp=query.minsupp, margin=args.margin
    )
    dq = engine.index.table.tids_matching(query.range_selections)
    print(f"focal subset: {ts.count(dq)} records — "
          f"{len(emerging)} emerging, {len(vanishing)} vanishing rules "
          f"(margin {args.margin:.2f})")
    for title, flips in (("EMERGING", emerging), ("VANISHING", vanishing)):
        print(f"\n{title}:")
        for flip in flips[: args.limit]:
            print(
                f"  {flip.rule.render(engine.schema)}  "
                f"[global conf {flip.global_confidence:.2f} -> "
                f"local {flip.local_confidence:.2f}]"
            )
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    from repro import tidset as ts
    from repro.analysis.ranking import rank_rules

    engine = _load_engine(args.index)
    query = parse_query(args.text, engine.schema).query
    outcome = engine.query(query)
    dq = engine.index.table.tids_matching(query.range_selections)
    ranked = rank_rules(engine.index, outcome.rules, dq,
                        measure=args.measure, top_k=args.top_k)
    print(f"{outcome.n_rules} rules; top {len(ranked)} by {args.measure}:")
    for rule, score in ranked:
        print(f"  {score:8.3f}  {rule.render(engine.schema)}")
    return 0


def _serving_config(args: argparse.Namespace):
    from repro.serving import ServingConfig

    return ServingConfig(
        max_pending=args.max_pending,
        workers=args.threads,
        cost_ceiling=args.cost_ceiling,
        over_budget=args.over_budget,
        aging=args.aging,
    )


def _cluster_config(args: argparse.Namespace):
    from repro.cluster import ClusterConfig

    return ClusterConfig(
        workers=args.workers,
        serving=_serving_config(args),
        use_cache=not args.no_cache,
    )


def _make_cluster(engine: Colarm, args: argparse.Namespace):
    """The cluster behind ``--workers N`` plus the context keeping its
    snapshot directory alive (a no-op context for an explicit dir)."""
    import contextlib
    import tempfile

    from repro.cluster import ClusterService, InProcessCluster

    config = _cluster_config(args)
    if args.in_process:
        return InProcessCluster(engine, config), contextlib.nullcontext()
    if args.cluster_dir is not None:
        return ClusterService(engine, args.cluster_dir, config), \
            contextlib.nullcontext()
    tmp = tempfile.TemporaryDirectory(prefix="colarm-cluster-")
    return ClusterService(engine, tmp.name, config), tmp


def _print_cluster_stats(cluster, worker_stats: list[dict]) -> None:
    """Per-worker p50/p99 + routing distribution, on stderr."""
    import json

    snapshot = cluster.snapshot()
    routed = max(snapshot.get("routed", 0), 1)
    for stats in worker_stats:
        wid = stats["worker"]
        share = snapshot["routing"].get(str(wid), 0) / routed
        print(
            f"worker {wid}: {stats.get('served', 0)} served, "
            f"p50 {stats.get('p50_s', 0.0) * 1000:.1f} ms, "
            f"p99 {stats.get('p99_s', 0.0) * 1000:.1f} ms, "
            f"{share:.0%} of routed requests",
            file=sys.stderr,
        )
    print(json.dumps(snapshot), file=sys.stderr)


def _serving_engine(args: argparse.Namespace) -> Colarm:
    engine = _load_engine(args.index)
    if not args.no_cache:
        engine.enable_cache()
    return engine


def _response_json(served, engine: Colarm, limit: int | None = None) -> str:
    import json

    rules = served.rules if limit is None else served.rules[:limit]
    trace = served.trace
    return json.dumps({
        "ok": True,
        "plan": served.plan.value,
        "n_rules": len(served.rules),
        "rules": [rule.render(engine.schema) for rule in rules],
        "trace": trace if isinstance(trace, dict) else trace.as_dict(),
    })


def _cmd_serve(args: argparse.Namespace) -> int:
    """Line-oriented service loop: stdin queries -> stdout JSON responses.

    Requests are read and submitted as they arrive and answered in
    completion order (each response carries its request line number), so
    coalescing and cost-priority scheduling are observable from a shell
    pipe.  EOF drains in-flight requests and prints the stats snapshot
    to stderr.
    """
    import asyncio
    import json

    from repro.errors import ServiceError
    from repro.serving import QueryService

    engine = _serving_engine(args)

    async def run() -> int:
        loop = asyncio.get_running_loop()
        cluster_mode = args.workers > 1
        if cluster_mode:
            service, directory = _make_cluster(engine, args)
        else:
            service, directory = (
                QueryService(engine, _serving_config(args)), None
            )
        pending: set[asyncio.Task] = set()

        async def one(line_no: int, text: str) -> None:
            try:
                served = await service.submit(text)
                payload = json.loads(_response_json(served, engine))
                payload["line"] = line_no
                if cluster_mode:
                    payload["worker"] = served.worker
                    payload["epoch"] = served.epoch
                print(json.dumps(payload), flush=True)
            except ServiceError as exc:
                print(json.dumps({
                    "ok": False, "line": line_no,
                    "error": type(exc).__name__, "message": str(exc),
                }), flush=True)

        async with service:
            line_no = 0
            while True:
                line = await loop.run_in_executor(None, sys.stdin.readline)
                if not line:
                    break
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                line_no += 1
                task = asyncio.ensure_future(one(line_no, text))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending)
            if cluster_mode:
                _print_cluster_stats(service, await service.worker_stats())
        if not cluster_mode:
            print(json.dumps(service.snapshot()), file=sys.stderr)
        if directory is not None:
            with directory:
                pass  # drop the temporary snapshot directory
        return 0

    return asyncio.run(run())


def _cmd_replay(args: argparse.Namespace) -> int:
    """Submit a whole workload file concurrently; print responses + stats."""
    import asyncio
    import json

    from repro.errors import ServiceError
    from repro.serving import serve_all

    if args.workload == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.workload, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    requests = [
        line.strip() for line in lines
        if line.strip() and not line.strip().startswith("#")
    ]
    if not requests:
        print("colarm: error: empty workload", file=sys.stderr)
        return 2

    engine = _serving_engine(args)
    if args.workers > 1:
        from repro.cluster import replay_cluster

        async def run_cluster():
            cluster, directory = _make_cluster(engine, args)
            async with cluster:
                results, snapshot = await replay_cluster(cluster, requests)
                stats = await cluster.worker_stats()
            if directory is not None:
                with directory:
                    pass
            return results, snapshot, stats, cluster

        results, snapshot, worker_stats, cluster = asyncio.run(run_cluster())
        n_failed = 0
        for i, res in enumerate(results, start=1):
            if isinstance(res, ServiceError):
                n_failed += 1
                print(f"[{i}] {type(res).__name__}: {res}")
            else:
                print(
                    f"[{i}] worker {res.worker} plan {res.plan.value} "
                    f"{'cached ' if res.cached else ''}"
                    f"{res.trace['total_s'] * 1000:.1f} ms, "
                    f"{len(res.rules)} rules"
                )
                for rule in res.rules[: args.limit]:
                    print("      " + rule.render(engine.schema))
        _print_cluster_stats(cluster, worker_stats)
        print(json.dumps(snapshot, indent=2))
        return 1 if n_failed == len(results) else 0

    results, snapshot = asyncio.run(
        serve_all(engine, requests, _serving_config(args))
    )
    n_failed = 0
    for i, res in enumerate(results, start=1):
        if isinstance(res, ServiceError):
            n_failed += 1
            print(f"[{i}] {type(res).__name__}: {res}")
        else:
            trace = res.trace
            print(
                f"[{i}] plan {res.plan.value} "
                f"{'cached ' if res.cached else ''}"
                f"{'coalesced ' if not trace.leader else ''}"
                f"{res.trace.total_s * 1000:.1f} ms, "
                f"{len(res.rules)} rules"
            )
            for rule in res.rules[: args.limit]:
                print("      " + rule.render(engine.schema))
    print(json.dumps(snapshot, indent=2))
    return 1 if n_failed == len(results) else 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream records into an index through the maintained delta store."""
    from repro.core.maintenance import MaintainedIndex
    from repro.core.persistence import (
        delta_sidecar_path,
        load_maintained,
        save_maintained,
    )
    from repro.errors import DataError

    if delta_sidecar_path(args.index).exists():
        maintained, weights = load_maintained(args.index)
        maintained.max_delta_fraction = args.max_delta_fraction
    else:
        index, weights = load_index(args.index)
        maintained = MaintainedIndex.from_index(
            index, max_delta_fraction=args.max_delta_fraction
        )
    maintained.auto_rebuild = False  # folds run in the background instead
    schema = maintained.schema
    encoders = [
        {label: code for code, label in enumerate(attr.values)}
        for attr in schema.attributes
    ]

    def encode(line_no: int, line: str) -> list[int]:
        fields = [f.strip() for f in line.split(",")]
        if len(fields) != schema.n_attributes:
            raise DataError(
                f"line {line_no}: {len(fields)} fields, expected "
                f"{schema.n_attributes}"
            )
        row = []
        for ai, field in enumerate(fields):
            code = encoders[ai].get(field)
            if code is None:
                raise DataError(
                    f"line {line_no}: unknown value {field!r} for attribute "
                    f"{schema.attributes[ai].name}"
                )
            row.append(code)
        return row

    if args.records == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.records, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    header = ",".join(attr.name for attr in schema.attributes)
    if lines and "".join(lines[0].split()) == "".join(header.split()):
        lines = lines[1:]  # tolerate the CSV header `colarm build` takes
    rows = [
        encode(i, line.strip())
        for i, line in enumerate(lines, start=1)
        if line.strip() and not line.strip().startswith("#")
    ]
    if not rows:
        print("colarm: error: no records to ingest", file=sys.stderr)
        return 2

    n_folds = 0
    for lo in range(0, len(rows), max(args.batch_size, 1)):
        batch = rows[lo:lo + max(args.batch_size, 1)]
        maintained.append(batch)
        print(
            f"appended {len(batch)} records -> generation "
            f"{maintained.generation} ({maintained.n_delta_records} in delta)"
        )
        pending = maintained.n_delta_records + (
            maintained.n_main_records - maintained.n_main_live
        )
        if (
            not maintained.recompacting
            and pending
            > maintained.max_delta_fraction * max(maintained.n_main_records, 1)
        ):
            maintained.begin_recompaction()
            print(f"recompaction started (delta held {pending} mutations)")
        if maintained.recompacting:
            generation = maintained.poll_recompaction()
            if generation is not None:
                n_folds += 1
                print(
                    f"recompaction installed -> generation {generation}, "
                    f"{maintained.n_main_records} main records "
                    f"({maintained.last_build_s * 1000:.0f} ms in background)"
                )
    if maintained.recompacting:
        generation = maintained.poll_recompaction(wait=True)
        n_folds += 1
        print(
            f"recompaction installed -> generation {generation}, "
            f"{maintained.n_main_records} main records "
            f"({maintained.last_build_s * 1000:.0f} ms in background)"
        )
    out = args.out or args.index
    save_maintained(maintained, out, weights=weights)
    print(
        f"ingested {len(rows)} records: generation {maintained.generation}, "
        f"{maintained.n_main_records} main + {maintained.n_delta_records} "
        f"delta records, {n_folds} recompaction(s) -> {out}"
    )
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "info": _cmd_info,
    "simpson": _cmd_simpson,
    "rank": _cmd_rank,
    "query": _cmd_query,
    "plans": _cmd_plans,
    "explain": _cmd_explain,
    "suggest": _cmd_suggest,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
    "ingest": _cmd_ingest,
}


if __name__ == "__main__":
    sys.exit(main())
