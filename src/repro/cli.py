"""The ``colarm`` command-line interface.

Wraps the offline and online phases for shell use::

    colarm build data.csv index.npz --primary-support 0.1 --calibrate 6
    colarm info index.npz
    colarm query index.npz "REPORT LOCALIZED ASSOCIATION RULES FROM d \
        WHERE RANGE region = (r1) HAVING minsupport = 0.4 AND minconfidence = 0.8;"
    colarm plans index.npz "<same query>"     # run all six plans
    colarm explain index.npz "<same query>"   # cost-model ranking only
    colarm suggest index.npz                  # thresholds + focal subsets

Exit status is 0 on success, 2 on usage/data errors (with a message on
stderr).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.reporting import format_table
from repro.core.calibration import calibrate, default_probe_queries
from repro.core.engine import Colarm
from repro.core.mipindex import MIPIndex, build_mip_index
from repro.core.parser import parse_query
from repro.core.paramsuggest import suggest_minconf, suggest_minsupp, suggest_ranges
from repro.core.persistence import load_index, save_index
from repro.core.plans import PlanKind, execute_plan, plan_from_name
from repro.dataset.loaders import load_csv
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="colarm",
        description="COLARM: online localized association rule mining",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="offline phase: CSV -> MIP-index file")
    build.add_argument("csv", help="input CSV of value labels (with header)")
    build.add_argument("index", help="output index file (.npz)")
    build.add_argument("--primary-support", type=float, default=0.1,
                       help="the POQM primary support floor (default 0.1)")
    build.add_argument("--max-entries", type=int, default=8,
                       help="R-tree fanout (default 8)")
    build.add_argument("--calibrate", type=int, default=0, metavar="N",
                       help="fit cost weights from N probe queries")

    info = sub.add_parser("info", help="summarize an index file")
    info.add_argument("index")

    query = sub.add_parser("query", help="answer one localized mining query")
    query.add_argument("index")
    query.add_argument("text", help="REPORT LOCALIZED ASSOCIATION RULES ...")
    query.add_argument("--plan", default=None,
                       help="force a plan (S-E-V, S-VS, SS-E-V, SS-VS, "
                            "SS-E-U-V, ARM) instead of the optimizer")
    query.add_argument("--expand", action="store_true",
                       help="expand to all locally frequent itemsets")
    query.add_argument("--limit", type=int, default=50,
                       help="max rules to print (default 50)")

    plans = sub.add_parser("plans", help="execute all six plans and compare")
    plans.add_argument("index")
    plans.add_argument("text")

    explain = sub.add_parser("explain", help="cost-model ranking for a query")
    explain.add_argument("index")
    explain.add_argument("text")

    suggest = sub.add_parser("suggest",
                             help="suggest thresholds and focal subsets")
    suggest.add_argument("index")
    suggest.add_argument("--qualify-fraction", type=float, default=0.25)
    suggest.add_argument("--top-k", type=int, default=5)

    simpson = sub.add_parser(
        "simpson", help="rules that flip between global and local context"
    )
    simpson.add_argument("index")
    simpson.add_argument("text", help="the localized query defining D^Q")
    simpson.add_argument("--margin", type=float, default=0.05,
                         help="min confidence gap to report (default 0.05)")
    simpson.add_argument("--limit", type=int, default=10)

    rank = sub.add_parser(
        "rank", help="answer a query and rank its rules by a measure"
    )
    rank.add_argument("index")
    rank.add_argument("text")
    rank.add_argument("--measure", default="kulczynski",
                      help="lift, cosine, kulczynski, jaccard, ... "
                           "(default kulczynski)")
    rank.add_argument("--top-k", type=int, default=10)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"colarm: error: {exc}", file=sys.stderr)
        return 2


def _cmd_build(args: argparse.Namespace) -> int:
    table = load_csv(args.csv)
    index = build_mip_index(
        table, primary_support=args.primary_support,
        max_entries=args.max_entries,
    )
    weights = None
    if args.calibrate > 0:
        probes = default_probe_queries(index, n_queries=args.calibrate)
        report = calibrate(index, probes)
        weights = report.weights
        print(f"calibrated on {report.n_runs} probe runs "
              f"(RMS residual {report.residual * 1000:.2f} ms)")
    save_index(index, args.index, weights=weights)
    print(
        f"indexed {table.n_records} records x {table.n_attributes} attributes: "
        f"{index.n_mips} closed frequent itemsets at primary support "
        f"{args.primary_support:.0%} -> {args.index}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index, weights = load_index(args.index)
    stats = index.stats
    print(f"records:            {stats.n_records}")
    print(f"attributes:         {stats.n_attributes}")
    print(f"primary support:    {index.primary_support:.2%}")
    print(f"closed itemsets:    {index.n_mips}")
    print(f"R-tree height:      {index.rtree.height}")
    print(f"itemset lengths:    {dict(sorted(stats.length_histogram.items()))}")
    print(f"calibrated weights: {'yes' if weights else 'no'}")
    for attr in index.table.schema.attributes:
        print(f"  {attr.name}: {list(attr.values)}")
    return 0


def _load_engine(index_path: str) -> Colarm:
    index, weights = load_index(index_path)
    return Colarm.from_index(index, weights=weights)


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    engine.expand = bool(args.expand)
    plan = plan_from_name(args.plan) if args.plan else None
    outcome = engine.query(args.text, plan=plan)
    print(
        f"focal subset: {outcome.dq_size} records; plan {outcome.plan.value} "
        f"({outcome.chosen_by}); {outcome.n_rules} rules in "
        f"{outcome.elapsed * 1000:.1f} ms"
    )
    for rule in outcome.rules[: args.limit]:
        print("  " + rule.render(engine.schema))
    if outcome.n_rules > args.limit:
        print(f"  ... and {outcome.n_rules - args.limit} more")
    return 0


def _cmd_plans(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    parsed = parse_query(args.text, engine.schema)
    choice = engine.choose_plan(parsed.query)
    rows = []
    for kind in PlanKind:
        result = execute_plan(kind, engine.index, parsed.query)
        rows.append(
            [
                kind.value,
                f"{result.elapsed * 1000:.1f}",
                f"{choice.estimates[kind] * 1000:.1f}",
                result.n_rules,
                "<-- optimizer" if kind is choice.kind else "",
            ]
        )
    print(format_table(
        ["plan", "measured ms", "estimated ms", "rules", ""], rows
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index)
    print(engine.choose_plan(args.text).explain())
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    index, _ = load_index(args.index)
    minsupp = suggest_minsupp(index, qualify_fraction=args.qualify_fraction)
    minconf = suggest_minconf(index, target_fraction=args.qualify_fraction)
    print(f"suggested minsupport  = {minsupp:.3f}")
    print(f"suggested minconfidence = {minconf:.3f}")
    print("promising focal subsets:")
    for suggestion in suggest_ranges(index, minsupp=minsupp, top_k=args.top_k):
        print("  " + suggestion.describe(index.table.schema))
    return 0


def _cmd_simpson(args: argparse.Namespace) -> int:
    from repro import tidset as ts
    from repro.analysis.simpson import find_rule_flips, find_vanishing_rules

    engine = _load_engine(args.index)
    query = parse_query(args.text, engine.schema).query
    emerging = find_rule_flips(engine.index, query, margin=args.margin)
    vanishing = find_vanishing_rules(
        engine.index, query, global_minsupp=query.minsupp, margin=args.margin
    )
    dq = engine.index.table.tids_matching(query.range_selections)
    print(f"focal subset: {ts.count(dq)} records — "
          f"{len(emerging)} emerging, {len(vanishing)} vanishing rules "
          f"(margin {args.margin:.2f})")
    for title, flips in (("EMERGING", emerging), ("VANISHING", vanishing)):
        print(f"\n{title}:")
        for flip in flips[: args.limit]:
            print(
                f"  {flip.rule.render(engine.schema)}  "
                f"[global conf {flip.global_confidence:.2f} -> "
                f"local {flip.local_confidence:.2f}]"
            )
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    from repro import tidset as ts
    from repro.analysis.ranking import rank_rules

    engine = _load_engine(args.index)
    query = parse_query(args.text, engine.schema).query
    outcome = engine.query(query)
    dq = engine.index.table.tids_matching(query.range_selections)
    ranked = rank_rules(engine.index, outcome.rules, dq,
                        measure=args.measure, top_k=args.top_k)
    print(f"{outcome.n_rules} rules; top {len(ranked)} by {args.measure}:")
    for rule, score in ranked:
        print(f"  {score:8.3f}  {rule.render(engine.schema)}")
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "info": _cmd_info,
    "simpson": _cmd_simpson,
    "rank": _cmd_rank,
    "query": _cmd_query,
    "plans": _cmd_plans,
    "explain": _cmd_explain,
    "suggest": _cmd_suggest,
}


if __name__ == "__main__":
    sys.exit(main())
